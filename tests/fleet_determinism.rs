//! Fleet-engine integration: the `rem fleet` result digest is
//! bit-identical across shard and thread counts (the property the CI
//! fleet job gates from the CLI), and the shipped fleet scenario file
//! lowers to a spec the engine actually runs.

use rem_core::rem_fleet::{run_fleet, FleetSpec, RunOptions};
use rem_core::ScenarioSpec;
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// A workload small enough for the test profile but busy enough that
/// every interaction path fires: both directions loaded, admission
/// pressure from clustered departures, and enough epochs for RLFs.
fn busy_spec() -> FleetSpec {
    FleetSpec {
        trains: 32,
        ues_per_train: 25,
        corridor_km: 12.0,
        headway_s: 1.0,
        duration_s: 60.0,
        ..FleetSpec::default()
    }
}

#[test]
fn result_hash_is_bit_identical_across_shards_and_threads() {
    let spec = busy_spec();
    let (baseline, _) =
        run_fleet(&spec, RunOptions { shards: 1, threads: 1 }).expect("serial run");
    assert!(baseline.handovers > 0, "the corridor must exercise handovers");
    assert!(baseline.ue_events > 0, "handovers must fan out to UE signaling");
    for shards in [1, 4] {
        for threads in [1, 4] {
            let (report, _) =
                run_fleet(&spec, RunOptions { shards, threads }).expect("sharded run");
            assert_eq!(
                report.result_hash(),
                baseline.result_hash(),
                "shards={shards} threads={threads} must reproduce the serial digest"
            );
            assert_eq!(report, baseline, "every counter must match, not just the digest");
        }
    }
}

#[test]
fn seeds_and_spec_changes_move_the_digest() {
    let spec = busy_spec();
    let (a, _) = run_fleet(&spec, RunOptions::default()).expect("run");
    let (b, _) = run_fleet(&FleetSpec { seed: spec.seed + 1, ..spec.clone() }, RunOptions::default())
        .expect("run");
    assert_ne!(a.result_hash(), b.result_hash(), "the seed must move the digest");
    let (c, _) = run_fleet(&FleetSpec { trains: spec.trains + 1, ..spec }, RunOptions::default())
        .expect("run");
    assert_ne!(a.result_hash(), c.result_hash(), "the schedule must move the digest");
}

#[test]
fn shipped_fleet_scenario_lowers_and_runs_truncated() {
    // Mirrors scenario_spec.rs's truncated-metro smoke: shrink the
    // shipped file's workload and drive the real entry point.
    let mut spec = ScenarioSpec::load(&scenarios_dir().join("fleet_corridor.toml"))
        .expect("load fleet scenario");
    let mut fleet = spec.fleet_spec().expect("[fleet] section present");
    assert!(fleet.trains >= 100, "the shipped corridor is fleet-scale");

    fleet.trains = 16;
    fleet.ues_per_train = 10;
    fleet.duration_s = 30.0;
    spec.fleet = Some(fleet.clone());
    spec.validate().expect("truncated fleet spec stays valid");

    let (serial, _) =
        run_fleet(&fleet, RunOptions { shards: 1, threads: 1 }).expect("serial run");
    let (sharded, timing) =
        run_fleet(&fleet, RunOptions { shards: fleet.shards, threads: 2 }).expect("sharded run");
    assert_eq!(serial.result_hash(), sharded.result_hash());
    assert!(serial.handovers > 0);
    assert!(timing.wall_s > 0.0);
    assert!(
        timing.critical_path_s <= timing.busy_s + 1e-9,
        "the critical path can never exceed the total distributed work"
    );
}
