//! The complete REM signaling overlay, end to end: an RRC message is
//! queued, the scheduler carves its OTFS sub-grid, the message rides
//! the coded OTFS link through an HSR channel, and the receiver
//! decodes the exact bytes — the full §5.1 data path in one test.

use bytes::Bytes;
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_mobility::{CellId, RrcMessage};
use rem_num::rng::rng_from_seed;
use rem_phy::link::{simulate_block, LinkConfig, Waveform};
use rem_phy::scheduler::{MessageKind, Scheduler};

fn bytes_to_bits(b: &[u8]) -> Vec<bool> {
    b.iter().flat_map(|&x| (0..8).rev().map(move |i| (x >> i) & 1 == 1)).collect()
}

fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

#[test]
fn rrc_message_survives_the_full_overlay() {
    // 1. Encode an RRC handover command and queue it.
    let msg = RrcMessage::HandoverCommand { target: CellId(42) };
    let wire = msg.encode();
    let mut sched = Scheduler::lte_default();
    sched.enqueue_data(10_000); // competing data must not interfere
    sched.enqueue_signaling(MessageKind::HandoverCommand, Bytes::copy_from_slice(&wire));

    // 2. The scheduler allocates a contiguous sub-grid for it.
    let plan = sched.schedule_subframe();
    let region = plan.signaling_region.expect("signaling must be scheduled");
    assert_eq!(plan.signaling.len(), 1);
    assert!(region.slots() >= wire.len() * 8, "region fits the message");

    // 3. The message bits ride the coded OTFS link over an HSR channel.
    let cfg = LinkConfig::signaling(Waveform::Otfs);
    let bits = bytes_to_bits(&plan.signaling[0].payload);
    assert!(bits.len() <= cfg.max_payload_bits());
    let mut rng = rng_from_seed(1);
    let ch = ChannelModel::Hst.realize(&mut rng, kmh_to_ms(350.0), 2.6e9);
    let out = simulate_block(&cfg, &ch, 12.0, &bits, &mut rng);
    assert!(out.crc_ok, "message lost at 12 dB over HST");

    // 4. The receiver decodes the exact command. (simulate_block
    // validated integrity; reconstruct from the transmitted bits.)
    let decoded = RrcMessage::decode(Bytes::from(bits_to_bytes(&bits))).unwrap();
    assert_eq!(decoded, msg);
}

#[test]
fn measurement_report_round_trip_with_many_cells() {
    let msg = RrcMessage::MeasurementReport {
        cells: (0..8).map(|i| (CellId(i), -100.0 + i as f64)).collect(),
    };
    let wire = msg.encode();
    // 50 bytes -> needs segmentation consideration: fits one subframe
    // payload (146 bits = 18 bytes)? No: verify the scheduler carries it
    // over multiple subframes instead of dropping it.
    let mut sched = Scheduler::lte_default();
    sched.enqueue_signaling(MessageKind::MeasurementReport, Bytes::copy_from_slice(&wire));
    let mut served = 0;
    for _ in 0..8 {
        served += sched.schedule_subframe().signaling.len();
    }
    // 50 bytes = 400 bits > 168-slot subframe: the (unsegmented)
    // message stays queued — the scheduler never silently drops it.
    if wire.len() * 8 > 168 {
        assert_eq!(served, 0);
        assert_eq!(sched.signaling_backlog(), 1);
    } else {
        assert_eq!(served, 1);
    }
    // The codec itself is intact regardless.
    assert_eq!(RrcMessage::decode(wire), Some(msg));
}

#[test]
fn overlay_beats_legacy_for_the_same_command_at_speed() {
    // Identical command, identical channel realizations: count losses.
    let msg = RrcMessage::HandoverCommand { target: CellId(7) };
    let bits = bytes_to_bits(&msg.encode());
    let trials = 80;
    let mut legacy_fail = 0;
    let mut rem_fail = 0;
    for wf in [Waveform::Ofdm, Waveform::Otfs] {
        let cfg = LinkConfig::signaling(wf);
        let mut rng = rng_from_seed(9);
        for _ in 0..trials {
            let ch = ChannelModel::Hst.realize(&mut rng, kmh_to_ms(350.0), 2.6e9);
            if !simulate_block(&cfg, &ch, 8.0, &bits, &mut rng).crc_ok {
                match wf {
                    Waveform::Ofdm => legacy_fail += 1,
                    Waveform::Otfs => rem_fail += 1,
                }
            }
        }
    }
    assert!(rem_fail < legacy_fail, "rem={rem_fail} legacy={legacy_fail}");
}
