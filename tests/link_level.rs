//! Link-level integration: the full coded OFDM/OTFS pipeline through
//! 3GPP channels reproduces the Fig 10 relationships.

use rem_channel::models::ChannelModel;
use rem_num::rng::rng_from_seed;
use rem_phy::link::{BlerScenario, LinkConfig, Waveform};

#[test]
fn fig10a_shape_otfs_beats_ofdm_at_hsr() {
    // Shared seed: each trial pairs the waveforms on the same channel.
    let base = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Hst)
        .with_snr_db(8.0)
        .with_blocks(120)
        .with_seed(1);
    let ofdm = base.run();
    let otfs = BlerScenario { cfg: LinkConfig::signaling(Waveform::Otfs), ..base }.run();
    assert!(otfs < ofdm, "otfs={otfs} ofdm={ofdm}");
    // Legacy floor: even at very high SNR it keeps failing.
    let ofdm_hi = base.with_snr_db(20.0).with_seed(2).run();
    assert!(ofdm_hi > 0.05, "legacy floor missing: {ofdm_hi}");
}

#[test]
fn fig10b_shape_parity_at_low_mobility() {
    let base = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Eva)
        .with_speed_kmh(30.0)
        .with_carrier_hz(2.0e9)
        .with_snr_db(12.0)
        .with_blocks(120)
        .with_seed(3);
    let ofdm = base.run();
    let otfs = BlerScenario { cfg: LinkConfig::signaling(Waveform::Otfs), ..base }.run();
    // Comparable at low mobility (backward compatibility).
    assert!((ofdm - otfs).abs() < 0.25, "ofdm={ofdm} otfs={otfs}");
}

#[test]
fn scheduler_keeps_signaling_in_contiguous_subgrid_under_load() {
    use bytes::Bytes;
    use rem_phy::scheduler::{MessageKind, Scheduler};
    let mut s = Scheduler::lte_default();
    s.enqueue_data(100_000);
    for i in 0..50 {
        s.enqueue_signaling(
            if i % 2 == 0 { MessageKind::MeasurementReport } else { MessageKind::HandoverCommand },
            Bytes::from(vec![0u8; 6]),
        );
    }
    let mut served = 0;
    for _ in 0..100 {
        let plan = s.schedule_subframe();
        if let Some(r) = plan.signaling_region {
            assert!(r.n0 + r.cols <= 14);
            assert_eq!(r.rows, 12);
            assert_eq!(plan.data_slots, 12 * 14 - r.slots());
        }
        served += plan.signaling.len();
        if s.signaling_backlog() == 0 {
            break;
        }
    }
    assert_eq!(served, 50);
}

#[test]
fn dd_channel_estimation_feeds_algorithm1() {
    // chanest -> Algorithm 1 round trip at realistic pilot SNR.
    use rem_channel::delaydoppler::{dd_channel_matrix, snap_to_grid, DdGrid};
    use rem_channel::{MultipathChannel, Path};
    use rem_crossband::{estimate_band2, SvdEstimatorConfig};
    use rem_num::c64;
    use rem_phy::chanest::estimate_dd;

    let grid = DdGrid::lte(24, 16);
    let raw = MultipathChannel::new(vec![
        Path::new(c64(1.0, 0.0), 0.4e-6, 300.0),
        Path::new(c64(0.0, 0.5), 1.5e-6, -150.0),
    ]);
    let ch = snap_to_grid(&grid, &raw);
    let mut rng = rng_from_seed(4);
    let h1 = estimate_dd(&grid, &ch, 30.0, &mut rng);
    let est = estimate_band2(&grid, &h1, 1.8e9, 2.4e9, &SvdEstimatorConfig::default());
    let truth = dd_channel_matrix(&grid, &ch.scaled_to_carrier(1.8e9, 2.4e9));
    let rel = est.h2_dd.frobenius_dist(&truth) / truth.frobenius_norm();
    assert!(rel < 0.35, "relative error {rel}");
}
