//! End-to-end drills for the resident campaign service: submit over
//! HTTP, crash/drain/restart, and verify the durability contract —
//! zero lost jobs, `--hash`-identical results, poison jobs quarantined
//! instead of wedging the service.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rem_core::{fnv1a64, Comparison, ScenarioSpec};
use rem_serve::{JobQueue, JobState, QueueConfig, ServeConfig, Server};

/// A campaign small enough to finish in seconds but with enough trials
/// (2 planes x 2 seeds) for per-trial checkpoints to matter.
const TINY_SCENARIO: &str = r#"
format = "REMSCENARIO1"
name = "tiny-serve"

[trajectory]
speed_kmh = 300
route_km = 6

[run]
seeds = 2
checkpoint_every = 1
"#;

/// Same campaign, but every trial panics on every attempt: a poison
/// job that must end quarantined, not looping.
const POISON_SCENARIO: &str = r#"
format = "REMSCENARIO1"
name = "poison-serve"

[trajectory]
speed_kmh = 300
route_km = 6

[run]
seeds = 2
checkpoint_every = 1
chaos_panic_rate = 1.0
chaos_fatal = true
"#;

fn scratch_spool(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rem-serve-recovery-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool scratch");
    dir
}

fn serve_config(spool: &Path) -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".into(),
        spool: spool.to_path_buf(),
        workers: 1,
        checkpoint_every: 1,
        ..ServeConfig::default()
    }
}

/// Minimal HTTP/1.1 client: one request, one response, connection
/// closed (matching the server's `Connection: close` behaviour).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to service");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let response_body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, response_body)
}

/// Polls the queue until job `id` reaches a terminal state.
fn await_terminal(server: &Server, id: u64, deadline: Duration) -> rem_serve::Job {
    let start = Instant::now();
    loop {
        let job = server.queue().job(id).expect("job exists");
        if matches!(job.state, JobState::Done | JobState::Quarantined) {
            return job;
        }
        assert!(
            start.elapsed() < deadline,
            "job {id} still {:?} after {deadline:?}",
            job.state
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The digest `rem compare --scenario f --hash` prints for a scenario:
/// the reference every service result must equal.
fn direct_hash(toml_src: &str) -> String {
    let spec = ScenarioSpec::from_toml(toml_src).expect("scenario parses");
    let checked = Comparison::run_checkpointed(&spec.campaign(), &spec.run_policy(), None)
        .expect("direct run succeeds");
    assert!(checked.is_clean());
    let json = serde_json::to_string(&checked.comparison).expect("comparison serializes");
    format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes()))
}

/// Submit over HTTP, run to completion, verify the hash equals a
/// direct one-shot run and the control plane reports a healthy,
/// fully-drained service.
#[test]
fn submitted_job_completes_with_one_shot_identical_hash() {
    let spool = scratch_spool("roundtrip");
    let server = Server::start(&serve_config(&spool)).expect("service starts");
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/jobs", TINY_SCENARIO);
    assert_eq!(status, 201, "submit: {body}");
    assert!(body.contains("\"id\":1"), "submit body: {body}");

    let job = await_terminal(&server, 1, Duration::from_secs(120));
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.result_hash.as_deref(), Some(direct_hash(TINY_SCENARIO).as_str()));

    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    for needle in ["\"status\":\"ok\"", "\"done\":1", "\"queued\":0", "\"quarantined\":0"] {
        assert!(health.contains(needle), "healthz missing {needle}: {health}");
    }
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "rem_serve_jobs_submitted_total 1",
        "rem_serve_jobs_completed_total 1",
        "rem_serve_queue_depth 0",
        "rem_serve_jobs_quarantined 0",
    ] {
        assert!(metrics.contains(needle), "metrics missing {needle}:\n{metrics}");
    }
    let (status, list) = http(addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(list.contains("\"state\":\"done\"") || list.contains("\"state\":\"Done\""), "{list}");

    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Admission control and input validation over HTTP: a full queue is a
/// 503 the client can retry, garbage is a 400, unknown routes 404, and
/// wrong methods 405 — none of them become jobs.
#[test]
fn bad_submissions_are_rejected_without_becoming_jobs() {
    let spool = scratch_spool("admission");
    let mut cfg = serve_config(&spool);
    cfg.queue_capacity = 1;
    let server = Server::start(&cfg).expect("service starts");
    let addr = server.addr();

    let (status, _) = http(addr, "POST", "/jobs", TINY_SCENARIO);
    assert_eq!(status, 201);
    // Queued + running is at capacity while job 1 runs: reject.
    let (status, body) = http(addr, "POST", "/jobs", TINY_SCENARIO);
    assert_eq!(status, 503, "expected queue-full rejection, got: {body}");

    let (status, body) = http(addr, "POST", "/jobs", "format = \"NOPE\"");
    assert_eq!(status, 400, "expected validation rejection, got: {body}");
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/healthz", "");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "GET", "/jobs/999", "");
    assert_eq!(status, 404);

    // Only the one accepted job ever existed.
    assert_eq!(server.queue().jobs().len(), 1);
    let rejected = server.stats().rejected.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected, 1, "exactly the queue-full submit counts as rejected");

    let job = await_terminal(&server, 1, Duration::from_secs(120));
    assert_eq!(job.state, JobState::Done);
    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&spool);
}

/// The `kill -9` drill, deterministically: fabricate the exact durable
/// state a SIGKILLed service leaves behind (journal says Running, a
/// partial per-job checkpoint on disk), restart, and require the job
/// to finish with the one-shot-identical hash while `/healthz` and
/// `/metrics` report the recovery.
#[test]
fn sigkill_state_recovers_to_identical_hash() {
    let spool = scratch_spool("sigkill");
    let jobs_dir = spool.join("jobs");
    std::fs::create_dir_all(&jobs_dir).expect("create jobs dir");

    // Phase 1: the "previous process". Journal a job and claim it so
    // the journal records Running/attempt 1 — then simply stop, as a
    // SIGKILL would, without completing or requeueing anything.
    {
        let (queue, recovered) =
            JobQueue::open(&spool.join("queue.journal"), QueueConfig::default())
                .expect("fresh journal");
        assert_eq!(recovered, 0);
        let id = queue.submit("tiny-serve", TINY_SCENARIO).expect("submit");
        let claimed = queue.claim(Duration::from_millis(10)).expect("claim").expect("a job");
        assert_eq!(claimed.id, id);

        // The job had checkpointed one trial before the kill: build a
        // full checkpoint, then forget everything past trial 1 —
        // byte-wise the file a per-trial checkpointer leaves behind.
        let spec = ScenarioSpec::from_toml(TINY_SCENARIO).expect("scenario parses");
        let mut policy = spec.run_policy();
        policy.checkpoint_every = 1;
        let ckpt = jobs_dir.join(format!("job-{id}.ckpt"));
        Comparison::run_checkpointed(&spec.campaign(), &policy, Some(&ckpt))
            .expect("seed checkpoint");
        let mut c = rem_core::Checkpoint::load(&ckpt).expect("checkpoint loads");
        for i in 1..c.n_trials {
            c.unrecord(i);
        }
        assert_eq!(c.completed(), 1);
        c.save(&ckpt).expect("save truncated checkpoint");
    }

    // Phase 2: restart on the same spool.
    let server = Server::start(&serve_config(&spool)).expect("service restarts");
    assert_eq!(
        server.stats().recovered_jobs.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the Running job must be recovered"
    );
    let job = await_terminal(&server, 1, Duration::from_secs(120));
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.result_hash.as_deref(), Some(direct_hash(TINY_SCENARIO).as_str()));

    let addr = server.addr();
    let (_, health) = http(addr, "GET", "/healthz", "");
    assert!(health.contains("\"recovered_jobs\":1"), "healthz: {health}");
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("rem_serve_recovered_jobs_total 1"),
        "metrics:\n{metrics}"
    );

    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Graceful drain mid-job: the worker stops at a wave boundary, the
/// attempt is returned, and a restarted service finishes the job from
/// its checkpoint with the one-shot-identical hash.
#[test]
fn drain_mid_job_then_restart_finishes_with_identical_hash() {
    let spool = scratch_spool("drain");
    let server = Server::start(&serve_config(&spool)).expect("service starts");
    let id = server.queue().submit("tiny-serve", TINY_SCENARIO).expect("submit");

    // Drain as soon as the worker picks the job up; with per-trial
    // checkpoints this usually lands mid-campaign. (If the job races
    // to Done first the assertions below still hold — the drill then
    // only exercises the drained-while-idle path.)
    let start = Instant::now();
    while server.queue().job(id).expect("job exists").state == JobState::Queued {
        assert!(start.elapsed() < Duration::from_secs(60), "job never claimed");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.drain();
    server.join();

    let parked = {
        let (queue, _) = JobQueue::open(&spool.join("queue.journal"), QueueConfig::default())
            .expect("journal reopens after drain");
        queue.job(id).expect("job persisted")
    };
    assert!(
        matches!(parked.state, JobState::Queued | JobState::Done),
        "drain must park the job as queued (or it finished): {parked:?}"
    );
    if parked.state == JobState::Queued {
        assert_eq!(parked.attempts, 0, "a drained attempt is returned");
    }

    let server = Server::start(&serve_config(&spool)).expect("service restarts");
    let job = await_terminal(&server, id, Duration::from_secs(120));
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.attempts, 1, "exactly one counted attempt end to end");
    assert_eq!(job.result_hash.as_deref(), Some(direct_hash(TINY_SCENARIO).as_str()));
    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&spool);
}

/// A poison job (fatal chaos in every trial) burns its bounded retries
/// and lands in quarantine with the failure recorded; the service
/// stays healthy and keeps serving other jobs.
#[test]
fn poison_job_is_quarantined_and_service_stays_healthy() {
    let spool = scratch_spool("poison");
    let mut cfg = serve_config(&spool);
    cfg.job_retries = 2;
    let server = Server::start(&cfg).expect("service starts");
    let addr = server.addr();

    let (status, _) = http(addr, "POST", "/jobs", POISON_SCENARIO);
    assert_eq!(status, 201);
    let poison = await_terminal(&server, 1, Duration::from_secs(120));
    assert_eq!(poison.state, JobState::Quarantined);
    assert_eq!(poison.attempts, 2, "bounded retries, then quarantine");
    let error = poison.error.expect("quarantined job records its failure");
    assert!(error.contains("quarantined"), "error: {error}");

    // The service is still alive and correct for the next job.
    let (status, _) = http(addr, "POST", "/jobs", TINY_SCENARIO);
    assert_eq!(status, 201);
    let job = await_terminal(&server, 2, Duration::from_secs(120));
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.result_hash.as_deref(), Some(direct_hash(TINY_SCENARIO).as_str()));

    let (_, health) = http(addr, "GET", "/healthz", "");
    assert!(health.contains("\"quarantined\":1"), "healthz: {health}");
    assert!(health.contains("\"status\":\"ok\""), "healthz: {health}");
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    for needle in ["rem_serve_jobs_quarantined_total 1", "rem_serve_jobs_quarantined 1"] {
        assert!(metrics.contains(needle), "metrics missing {needle}:\n{metrics}");
    }

    server.drain();
    server.join();
    let _ = std::fs::remove_dir_all(&spool);
}
