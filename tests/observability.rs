//! Observability acceptance tests: probes observe, they never
//! influence. The metrics registry and trace sink are process-global,
//! so every test that touches them serialises on [`REGISTRY`] —
//! integration tests in this binary run concurrently by default.
//!
//! The determinism contract under test (see `rem-obs` crate docs):
//! counter values and the trace event *set* are invariant under the
//! worker thread count; only event order is scheduling-dependent.

use rem_core::{CampaignSpec, Comparison, DatasetSpec, RunPolicy};
use rem_obs::{metrics, trace, RunManifest};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serialises access to the process-global metrics/trace state.
static REGISTRY: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn campaign() -> CampaignSpec {
    CampaignSpec::new(DatasetSpec::beijing_taiyuan(8.0, 300.0)).with_seeds(&[3, 4])
}

/// Runs the reference campaign on `threads` workers and returns the
/// counter rollup it produced.
fn campaign_counters(threads: usize) -> BTreeMap<String, u64> {
    metrics::reset();
    let policy = RunPolicy { threads, ..RunPolicy::default() };
    let checked = Comparison::run_checkpointed(&campaign().with_threads(threads), &policy, None)
        .expect("campaign");
    assert!(checked.is_clean());
    metrics::snapshot().counters
}

#[test]
fn metric_counters_are_thread_count_invariant() {
    let _g = lock();
    let serial = campaign_counters(1);
    // 2 seeds x 2 planes = 4 simulated runs, regardless of scheduling.
    assert_eq!(serial.get("rem_sim_runs_total"), Some(&4));
    assert_eq!(serial.get("rem_exec_checked_trials_total"), Some(&4));
    let parallel = campaign_counters(4);
    assert_eq!(serial, parallel, "counters must not depend on the worker count");
}

/// Order-insensitive identity of an event: kind plus serialized
/// payload (never `seq`, which is scheduling-dependent).
fn event_keys(events: &[rem_obs::TraceEvent]) -> Vec<String> {
    let mut keys: Vec<String> = events
        .iter()
        .map(|e| format!("{} {}", e.kind(), serde_json::to_string(&e.fields).expect("fields")))
        .collect();
    keys.sort();
    keys
}

fn campaign_trace(threads: usize) -> Vec<rem_obs::TraceEvent> {
    assert!(trace::start(), "integration tests build rem-obs with `enabled`");
    let policy = RunPolicy { threads, ..RunPolicy::default() };
    Comparison::run_checkpointed(&campaign().with_threads(threads), &policy, None)
        .expect("campaign");
    trace::finish()
}

#[test]
fn trace_event_set_is_thread_count_invariant() {
    let _g = lock();
    let serial = campaign_trace(1);
    let keys = event_keys(&serial);
    assert!(
        keys.iter().any(|k| k.starts_with("core/campaign_start")),
        "campaign lifecycle must be traced, got {keys:?}"
    );
    assert!(keys.iter().any(|k| k.starts_with("core/campaign_done")));
    let parallel = campaign_trace(4);
    assert_eq!(keys, event_keys(&parallel), "event set must not depend on the worker count");
    // The offline rollup agrees with itself across thread counts too.
    assert_eq!(
        rem_obs::summary::summarize(&serial).by_kind,
        rem_obs::summary::summarize(&parallel).by_kind
    );
}

#[test]
fn trace_is_inert_until_started() {
    let _g = lock();
    let _ = trace::finish(); // drain + deactivate whatever came before
    trace::emit("itest", "dropped", &[("x", 1u64.into())]);
    assert!(trace::finish().is_empty(), "emit before start() must be a no-op");
    assert!(trace::start());
    trace::emit("itest", "kept", &[("x", 1u64.into())]);
    let events = trace::finish();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind(), "itest/kept");
}

#[test]
fn spans_record_into_histograms() {
    let _g = lock();
    metrics::reset();
    {
        let _s = metrics::span("rem_itest_span_us");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let snap = metrics::snapshot();
    let h = snap.histograms.get("rem_itest_span_us").expect("span must record a histogram");
    assert_eq!(h.count, 1);
    assert!(h.sum >= 1_000, "a 1ms span is at least 1000us, got {}", h.sum);
    // The Prometheus dump carries the histogram.
    let text = metrics::render_prometheus(&snap);
    assert!(text.contains("rem_itest_span_us"), "{text}");
}

#[test]
fn manifest_roundtrip_records_probe_availability() {
    let dir = std::env::temp_dir().join("rem-obs-itest");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("roundtrip.manifest.json");
    let mut m = RunManifest::new("compare", r#"["fingerprint"]"#, 4)
        .with_result_hash("fnv1a64:0011223344556677".to_string());
    m.threads = 4;
    m.save(&path).expect("save");
    let back = RunManifest::load(&path).expect("load");
    assert_eq!(back, m);
    assert_eq!(back.spec_json, r#"["fingerprint"]"#);
    assert!(back.obs_enabled, "this binary links rem-obs with `enabled`");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn jsonl_roundtrip_preserves_the_event_stream() {
    let _g = lock();
    assert!(trace::start());
    trace::emit("itest", "a", &[("v", 3u64.into()), ("s", "x".into())]);
    trace::emit("itest", "b", &[("f", 0.5f64.into()), ("ok", true.into())]);
    let events = trace::finish();
    let jsonl = trace::to_jsonl(&events);
    let back = trace::parse_jsonl(&jsonl).expect("parse");
    assert_eq!(events, back);
}
