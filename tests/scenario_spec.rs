//! Scenario-file integration: the shipped `scenarios/` files load,
//! validate, round-trip losslessly, and the HSR corridor file derives a
//! campaign byte-identical to the CLI's hard-coded flag defaults (the
//! CI hash gate depends on that equivalence).

use rem_core::scenario::{Family, PlaneMix, ProfileSpec, ScenarioError};
use rem_core::{CampaignSpec, DatasetSpec, ScenarioSpec};
use std::path::{Path, PathBuf};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn shipped() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    assert!(files.len() >= 3, "expected >= 3 shipped scenarios, found {files:?}");
    files
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("serialize")
}

#[test]
fn every_shipped_scenario_loads_and_round_trips_losslessly() {
    for file in shipped() {
        let spec = ScenarioSpec::load(&file)
            .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        let canonical = spec.to_toml();
        let back = ScenarioSpec::from_toml(&canonical)
            .unwrap_or_else(|e| panic!("{} canonical form: {e}", file.display()));
        assert_eq!(back, spec, "{}: to_toml/from_toml must be lossless", file.display());
        assert_eq!(
            back.to_toml(),
            canonical,
            "{}: canonical serialization must be a fixed point",
            file.display()
        );
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }
}

#[test]
fn hsr_file_reproduces_the_hardcoded_flag_default_campaign() {
    let spec = ScenarioSpec::load(&scenarios_dir().join("hsr_beijing_shanghai.toml"))
        .expect("load hsr scenario");
    let flag_default =
        CampaignSpec::new(DatasetSpec::beijing_shanghai(40.0, 300.0)).with_seed_count(2);
    // CampaignSpec carries f64s and no PartialEq; serde_json is the
    // byte-level equality the --hash digest is built on.
    assert_eq!(
        json(&spec.campaign()),
        json(&flag_default),
        "scenario campaign must be byte-identical to the CLI flag defaults"
    );
    assert!(spec.fault_config().is_none(), "the clean corridor schedules no faults");
    assert_eq!(spec.single_plane(), None, "HSR file runs the paired comparison");
}

#[test]
fn urban_scenario_is_a_slower_denser_la_variant() {
    let spec = ScenarioSpec::load(&scenarios_dir().join("urban_driving.toml"))
        .expect("load urban scenario");
    assert_eq!(spec.cells.family, Family::LaDriving);
    let d = spec.dataset();
    let la = DatasetSpec::la_driving(spec.trajectory.route_km, spec.trajectory.speed_kmh);
    assert!(d.speed_kmh < 100.0, "urban driving is a low-speed bin");
    assert!(
        d.deployment.site_spacing_m < la.deployment.site_spacing_m,
        "urban deployment must be denser than the freeway calibration"
    );
    assert!(matches!(spec.trajectory.profile, ProfileSpec::Stations { .. }));
    assert_eq!(d.name, la.name, "overrides must not move the family display name");
    assert_eq!(spec.run.seeds, vec![1, 2, 3]);
}

#[test]
fn metro_scenario_schedules_tunnels_as_coverage_hole_faults() {
    let spec =
        ScenarioSpec::load(&scenarios_dir().join("metro.toml")).expect("load metro scenario");
    assert_eq!(spec.cells.family, Family::NrSmallcell);
    let faults = spec.fault_config().expect("metro schedules tunnel faults");
    let stock = rem_core::FaultConfig::default();
    assert!(faults.hole_ms > stock.hole_ms, "tunnels are longer than stock holes");
    assert!(faults.hole_per_min > 0.0);
    let d = spec.dataset();
    assert!(
        d.deployment.site_spacing_m < 500.0,
        "metro cells are denser than the stock nr calibration"
    );
    assert!(matches!(spec.trajectory.profile, ProfileSpec::Stations { .. }));
    // The campaign carries the derived fault schedule.
    assert_eq!(json(&spec.campaign().faults), json(&Some(faults)));
}

#[test]
fn shipped_scenarios_run_the_derived_entry_points() {
    // A truncated metro spec exercises the whole derivation chain
    // end-to-end (deployment synthesis, stations trajectory, fault
    // schedule) without a full campaign's runtime.
    let mut spec =
        ScenarioSpec::load(&scenarios_dir().join("metro.toml")).expect("load metro scenario");
    spec.trajectory.route_km = 4.0;
    spec.run.seeds = vec![1];
    spec.train.clients = 2;
    spec.validate().expect("truncated metro spec stays valid");

    let cmp = rem_core::Comparison::run(&spec.campaign());
    assert!(cmp.legacy.handovers.len() + cmp.rem.handovers.len() > 0, "dense metro cells hand over");

    let t = spec.train_scenario().run();
    assert_eq!(t.n_clients, 2);
    assert!(t.total_messages > 0);
}

#[test]
fn cli_style_overrides_change_the_campaign_and_refuse_bad_values() {
    let mut spec = ScenarioSpec::load(&scenarios_dir().join("hsr_beijing_shanghai.toml"))
        .expect("load hsr scenario");
    let before = spec.fingerprint();
    spec.run.seeds = vec![1, 2, 3, 4];
    spec.validate().expect("seed override is valid");
    assert_eq!(spec.campaign().seeds, vec![1, 2, 3, 4]);
    assert_ne!(spec.fingerprint(), before, "overrides must move the fingerprint");

    spec.trajectory.speed_kmh = -1.0;
    let err = spec.validate().expect_err("negative speed must be rejected");
    match err {
        ScenarioError::OutOfRange { path, .. } => assert_eq!(path, "trajectory.speed_kmh"),
        other => panic!("expected OutOfRange, got {other:?}"),
    }
}

#[test]
fn golden_errors_carry_field_paths_per_variant() {
    let load = |body: &str| ScenarioSpec::from_toml(body);
    let base = "format = \"REMSCENARIO1\"\nname = \"x\"\n\
                [trajectory]\nspeed_kmh = 300\nroute_km = 10\n[cells]\nfamily = \"bs\"\n";

    match load("format = \"REMSCENARIO2\"") {
        Err(ScenarioError::Version { found }) => assert_eq!(found, "REMSCENARIO2"),
        other => panic!("expected Version, got {other:?}"),
    }
    match load("format = \"REMSCENARIO1\"\nname = \"x\"\n[cells]\nfamily = \"bs\"\n") {
        Err(ScenarioError::Missing { path }) => assert_eq!(path, "trajectory"),
        other => panic!("expected Missing, got {other:?}"),
    }
    match load(&format!("{base}typo_field = 1\n")) {
        Err(ScenarioError::Unknown { path }) => assert_eq!(path, "cells.typo_field"),
        other => panic!("expected Unknown, got {other:?}"),
    }
    match load(&base.replace("route_km = 10", "route_km = \"ten\"")) {
        Err(ScenarioError::BadValue { path, .. }) => assert_eq!(path, "trajectory.route_km"),
        other => panic!("expected BadValue, got {other:?}"),
    }
    match load(&base.replace("speed_kmh = 300", "speed_kmh = 0")) {
        Err(ScenarioError::OutOfRange { path, .. }) => {
            assert_eq!(path, "trajectory.speed_kmh")
        }
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    match load("format = ") {
        Err(ScenarioError::Syntax { line, .. }) => assert_eq!(line, 1),
        other => panic!("expected Syntax, got {other:?}"),
    }

    // The CLI folds scenario errors into ExperimentError and exits 2.
    let e: rem_core::ExperimentError =
        ScenarioError::Missing { path: "trajectory".into() }.into();
    assert!(matches!(e, rem_core::ExperimentError::Scenario(_)));
    assert!(e.to_string().contains("trajectory"));
}

#[test]
fn plane_mix_maps_onto_single_plane_commands() {
    let mut spec = ScenarioSpec::new("p", Family::BeijingTaiyuan, 10.0, 300.0);
    assert_eq!(spec.single_plane(), None);
    spec.policy.plane = PlaneMix::Rem;
    assert_eq!(spec.single_plane(), Some(rem_core::Plane::Rem));
    spec.policy.plane = PlaneMix::Legacy;
    assert_eq!(spec.single_plane(), Some(rem_core::Plane::Legacy));
}

#[test]
fn manifests_record_the_scenario_fingerprint() {
    let spec = ScenarioSpec::load(&scenarios_dir().join("metro.toml")).expect("load metro");
    let fp = spec.fingerprint();
    assert!(fp.starts_with("metro:fnv1a64:"), "fingerprint is name-tagged: {fp}");

    let mut m = rem_obs::RunManifest::new("compare", "{}", 2);
    m.scenario = Some(fp.clone());
    let dir = std::env::temp_dir().join("rem-scenario-spec-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("scenario.manifest.json");
    m.save(&path).expect("save");
    let back = rem_obs::RunManifest::load(&path).expect("load");
    assert_eq!(back.scenario.as_deref(), Some(fp.as_str()));
    let _ = std::fs::remove_file(&path);
}
