//! TCP-over-outage integration (Fig 9): stall accounting, RTO
//! inflation, and the REM-vs-legacy stall comparison.

use rem_core::{replay_tcp, CampaignSpec, Comparison, DatasetSpec, STALL_GAP_MS};
use rem_net::{simulate_transfer, LinkModel, Outage, TcpConfig};
use rem_num::rng::rng_from_seed;

#[test]
fn rto_inflates_stall_beyond_outage() {
    // The paper's Fig 9b: a 2.3 s radio failure stalls TCP for longer
    // because of RTO exponential backoff.
    let link = LinkModel {
        outages: vec![Outage { start_ms: 10_000.0, end_ms: 12_300.0 }],
        ..Default::default()
    };
    let mut rng = rng_from_seed(1);
    let trace = simulate_transfer(&TcpConfig::default(), &link, 30_000.0, &mut rng);
    let stall = trace.total_stall_ms(STALL_GAP_MS);
    assert!(stall > 2_300.0, "stall={stall}");
    assert!(!trace.rto_events.is_empty());
    // Transfer recovers.
    assert!(trace.ack_timeline.iter().any(|(t, _)| *t > 15_000.0));
}

#[test]
fn fewer_failures_mean_less_stalling() {
    let spec = DatasetSpec::beijing_shanghai(40.0, 300.0);
    let cmp = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[5, 6]));
    let window = cmp.legacy.duration_s * 1e3;
    let lt = replay_tcp(&cmp.legacy, window, 2);
    let rt = replay_tcp(&cmp.rem, window, 2);
    // REM had fewer failures in this replay...
    assert!(cmp.rem.failures.len() <= cmp.legacy.failures.len());
    // ...and therefore no more total stall time (small tolerance for
    // RTO phase effects).
    assert!(
        rt.total_stall_ms(STALL_GAP_MS) <= lt.total_stall_ms(STALL_GAP_MS) + 2_000.0,
        "rem={} legacy={}",
        rt.total_stall_ms(STALL_GAP_MS),
        lt.total_stall_ms(STALL_GAP_MS)
    );
}

#[test]
fn stall_scales_with_outage_count() {
    let mk = |n: usize| {
        let outages = (0..n)
            .map(|i| Outage { start_ms: 5_000.0 + 20_000.0 * i as f64, end_ms: 8_000.0 + 20_000.0 * i as f64 })
            .collect();
        let link = LinkModel { outages, ..Default::default() };
        let mut rng = rng_from_seed(3);
        simulate_transfer(&TcpConfig::default(), &link, 90_000.0, &mut rng)
            .total_stall_ms(STALL_GAP_MS)
    };
    let one = mk(1);
    let three = mk(3);
    assert!(three > 2.0 * one, "one={one} three={three}");
}
