//! Cross-band estimation accuracy across estimators and regimes —
//! the Fig 12/13 claims as assertions.

use rem_crossband::estimator::{R2f2Estimator, RemEstimator};
use rem_crossband::harness::{
    evaluate, generate_scenarios, test_split, train_optml, Regime, ScenarioConfig,
};
use rem_crossband::optml::OptMlConfig;
use rem_num::rng::rng_from_seed;

#[test]
fn fig12_rem_is_accurate_in_every_regime() {
    let cfg = ScenarioConfig::default();
    for regime in [Regime::Usrp, Regime::Driving, Regime::Hsr] {
        let scenarios = generate_scenarios(regime, &cfg, 60, &mut rng_from_seed(1));
        let res = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
        // Paper Fig 12: <= 2 dB error for >= 90% of measurements and
        // >= 0.9 decision precision (we allow a small margin).
        assert!(
            res.snr_error_percentile(90.0) <= 3.0,
            "{}: p90 error {}",
            regime.label(),
            res.snr_error_percentile(90.0)
        );
        assert!(res.precision >= 0.85, "{}: precision {}", regime.label(), res.precision);
    }
}

#[test]
fn fig13_rem_beats_both_baselines_at_hsr() {
    let cfg = ScenarioConfig::default();
    let scenarios = generate_scenarios(Regime::Hsr, &cfg, 75, &mut rng_from_seed(2));
    let test = test_split(&scenarios);

    let rem = evaluate(&RemEstimator::default(), test, 0.1, 3.0);
    let r2f2 = evaluate(&R2f2Estimator::default(), test, 0.1, 3.0);
    let optml_cfg = OptMlConfig { hidden: 32, epochs: 30, lr: 0.01 };
    let optml = evaluate(&train_optml(&scenarios, &optml_cfg, &cfg.grid, 3), test, 0.1, 3.0);

    assert!(
        rem.mean_snr_error_db() < r2f2.mean_snr_error_db(),
        "rem={} r2f2={}",
        rem.mean_snr_error_db(),
        r2f2.mean_snr_error_db()
    );
    assert!(
        rem.mean_snr_error_db() < optml.mean_snr_error_db(),
        "rem={} optml={}",
        rem.mean_snr_error_db(),
        optml.mean_snr_error_db()
    );
    assert!(rem.precision >= r2f2.precision);
}

#[test]
fn rem_runtime_is_fastest() {
    // Fig 14b's ordering as a coarse wall-clock check (REM's closed
    // form vs R2F2's dictionary search).
    use rem_crossband::estimator::CrossBandEstimator;
    use std::time::Instant;
    let cfg = ScenarioConfig::default();
    let scenarios = generate_scenarios(Regime::Hsr, &cfg, 4, &mut rng_from_seed(4));
    let obs = &scenarios[0].obs;

    let rem = RemEstimator::default();
    let r2f2 = R2f2Estimator::default();
    let t0 = Instant::now();
    for _ in 0..3 {
        let _ = rem.predict_band2_tf(obs);
    }
    let t_rem = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..3 {
        let _ = r2f2.predict_band2_tf(obs);
    }
    let t_r2f2 = t0.elapsed();
    assert!(t_rem < t_r2f2, "rem={t_rem:?} r2f2={t_r2f2:?}");
}

#[test]
fn estimation_noise_degrades_gracefully() {
    let mut errors = Vec::new();
    for pilot_snr in [10.0, 20.0, 35.0] {
        let cfg = ScenarioConfig { pilot_snr_db: pilot_snr, ..Default::default() };
        let scenarios = generate_scenarios(Regime::Driving, &cfg, 40, &mut rng_from_seed(5));
        let res = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
        errors.push(res.mean_snr_error_db());
    }
    // More pilot SNR, less error (weak monotonicity with margin).
    assert!(errors[2] <= errors[0] + 0.3, "{errors:?}");
}
