//! Transport-resilience integration: the `rem net` stall study wired
//! end to end — scenario `[net]` sections driving `NetStudySpec`,
//! thread-count-invariant reports, the ground-truth stall oracle, and
//! the headline claim that the REM-informed shim beats Reno across the
//! fault taxonomy.

use rem_core::{run_net_study, NetPolicy, NetStudySpec, RunPolicy, ScenarioSpec};
use rem_faults::{NetFaultConfig, NetFaultKind};

/// A small-but-live spec: aggressive pathology rates over a window
/// long enough that every fault kind actually fires.
fn live_spec() -> NetStudySpec {
    NetStudySpec {
        faults: NetFaultConfig::aggressive(),
        seeds: vec![1, 2],
        window_ms: 60_000.0,
        loss_prob: 0.003,
    }
}

#[test]
fn study_is_deterministic_across_thread_counts() {
    let spec = live_spec();
    let one = RunPolicy { threads: 1, ..RunPolicy::default() };
    let four = RunPolicy { threads: 4, ..RunPolicy::default() };
    let a = run_net_study(&spec, &one, None).unwrap().into_result().unwrap();
    let b = run_net_study(&spec, &four, None).unwrap().into_result().unwrap();
    assert_eq!(a, b, "net study diverged between 1 and 4 threads");
    assert_eq!(
        a.to_json_pretty(&spec),
        b.to_json_pretty(&spec),
        "rendered report diverged between thread counts"
    );
}

#[test]
fn oracle_is_clean_and_rem_informed_beats_reno_everywhere() {
    let spec = live_spec();
    let report = run_net_study(&spec, &RunPolicy::default(), None)
        .unwrap()
        .into_result()
        .unwrap();
    assert_eq!(report.oracle_mismatches(), 0, "stall oracle flagged unjustified claims");
    let wins = report.stall_wins(NetPolicy::RemInformed, NetPolicy::Reno);
    assert_eq!(
        wins.len(),
        4,
        "REM-informed must out-stall Reno on every pathology, won only {wins:?}"
    );
}

#[test]
fn scenario_net_section_parameterizes_the_study() {
    let toml = r#"
format = "REMSCENARIO1"
name = "net-integration"

[trajectory]
speed_kmh = 60
route_km = 5

[cells]
family = "la"

[net]
rebind_per_min = 0.9
outage_per_min = 1.1
outage_ms = 2500
window_ms = 45000
loss_prob = 0.004

[run]
seeds = 2
"#;
    let spec = ScenarioSpec::from_toml(toml).expect("scenario parses");
    spec.validate().expect("scenario validates");
    let study = spec.net_study_spec().expect("[net] section yields a study spec");
    assert_eq!(study.faults.rebind_per_min, 0.9);
    assert_eq!(study.faults.outage_per_min, 1.1);
    assert_eq!(study.faults.outage_ms, 2500.0);
    assert_eq!(study.window_ms, 45_000.0);
    assert_eq!(study.loss_prob, 0.004);
    assert_eq!(study.seeds, vec![1, 2]);
    // Unset knobs keep the stock pathology mix.
    assert_eq!(study.faults.bloat_per_min, NetFaultConfig::default().bloat_per_min);

    // The overlaid spec is actually runnable end to end.
    study.validate().expect("overlaid study spec validates");
    let trial = rem_core::run_net_trial(&study, NetPolicy::Frto, NetFaultKind::NatRebind, 1);
    assert!(trial.total_acked_bytes > 0, "no bytes moved under the scenario mix");
}

#[test]
fn pathology_isolation_keeps_the_outage_baseline() {
    let spec = live_spec();
    for kind in NetFaultKind::all() {
        // Every pathology scenario keeps the handover-outage baseline
        // so stall deltas are attributable to the pathology itself.
        let cfg = spec.pathology_config(kind);
        assert_eq!(cfg.outage_per_min, spec.faults.outage_per_min, "kind {kind:?}");
        assert_eq!(cfg.outage_ms, spec.faults.outage_ms, "kind {kind:?}");
    }
    // And each non-baseline pathology is exclusive to its own scenario.
    let bloat = spec.pathology_config(NetFaultKind::Bufferbloat);
    assert_eq!(bloat.rebind_per_min, 0.0);
    assert_eq!(bloat.jitter_per_min, 0.0);
    assert!(bloat.bloat_per_min > 0.0);
    let rebind = spec.pathology_config(NetFaultKind::NatRebind);
    assert!(rebind.rebind_per_min > 0.0);
    assert_eq!(rebind.bloat_per_min, 0.0);
}

#[test]
fn fingerprint_round_trips_through_serde_json() {
    // `rem rerun` deserializes the manifest's spec_json with real
    // serde_json; the hand-rolled canonical writer must stay parseable.
    let spec = live_spec();
    let json = spec.to_canonical_json();
    let back: NetStudySpec = serde_json::from_str(&json).expect("fingerprint parses");
    assert_eq!(back, spec);
}
