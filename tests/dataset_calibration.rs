//! Dataset calibration against the paper's Table 2/4 statistics.

use rem_core::{merge, DatasetSpec, Plane, RunConfig, RunMetrics};
use rem_num::rng::rng_from_seed;
use rem_sim::simulate_run;

fn legacy(spec: &DatasetSpec, seeds: &[u64]) -> RunMetrics {
    let mut m = RunMetrics::default();
    for &s in seeds {
        merge(&mut m, simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, s)));
    }
    m
}

#[test]
fn handover_intervals_match_table2_bands() {
    // Paper Table 2: 50.2 s (low), 20.4 s, 19.3 s, 11.3 s.
    let low = legacy(&DatasetSpec::la_driving(40.0, 50.0), &[1, 2]);
    assert!((20.0..90.0).contains(&low.avg_handover_interval_s()), "low: {}", low.avg_handover_interval_s());
    let hsr = legacy(&DatasetSpec::beijing_shanghai(40.0, 325.0), &[1, 2]);
    assert!((6.0..25.0).contains(&hsr.avg_handover_interval_s()), "hsr: {}", hsr.avg_handover_interval_s());
    assert!(hsr.avg_handover_interval_s() < low.avg_handover_interval_s());
}

#[test]
fn cositing_matches_table4() {
    // Paper §3.1: 53.4% of cells share a base station.
    let spec = DatasetSpec::beijing_taiyuan(100.0, 250.0);
    let dep = spec.deployment.generate(&mut rng_from_seed(1));
    let f = dep.cosited_fraction();
    assert!((0.40..0.70).contains(&f), "cosited={f}");
}

#[test]
fn rsrp_range_matches_table4() {
    // Table 4: RSRP in roughly [-134, -59] dBm on the HSR datasets.
    use rem_sim::{RadioEnv, ShadowingCfg};
    let spec = DatasetSpec::beijing_shanghai(30.0, 300.0);
    let dep = spec.deployment.generate(&mut rng_from_seed(2));
    let mut env = RadioEnv::new(dep, ShadowingCfg::default());
    let mut rng = rng_from_seed(3);
    let mut best_min = f64::INFINITY;
    let mut best_max = f64::NEG_INFINITY;
    for step in 0..3000 {
        let pos = step as f64 * 10.0;
        // Coverage holes go below any measurable RSRP by design; the
        // Table 4 range covers *measured* (in-coverage) samples.
        if env.deployment().in_hole(pos) {
            continue;
        }
        if let Some(best) = env.observe(pos, 4_000.0, &mut rng).first() {
            best_min = best_min.min(best.rsrp_dbm);
            best_max = best_max.max(best.rsrp_dbm);
        }
    }
    assert!(best_max < -55.0 && best_max > -100.0, "max={best_max}");
    assert!(best_min > -145.0, "min={best_min}");
}

#[test]
fn conflict_loop_statistics_match_table2_shape() {
    // HSR conflict loops: a handful per hour, 2-6 handovers each.
    let m = legacy(&DatasetSpec::beijing_shanghai(60.0, 300.0), &[1, 2, 3]);
    let loops = m.conflict_loops().count();
    assert!(loops >= 1, "expected at least one conflict loop");
    let per_loop = m.avg_handovers_per_loop();
    assert!((2.0..8.0).contains(&per_loop), "HOs/loop={per_loop}");
}

#[test]
fn proactive_policies_create_theorem2_violations() {
    use rem_mobility::conflict::A3Graph;
    use rem_mobility::CellId;
    let spec = DatasetSpec::beijing_shanghai(30.0, 300.0);
    let mut g = A3Graph::new();
    for i in 0..200u32 {
        for j in (i + 1)..(i + 4).min(200) {
            g.set_offset(CellId(i), CellId(j), spec.a3_offset(CellId(i), CellId(j)));
            g.set_offset(CellId(j), CellId(i), spec.a3_offset(CellId(j), CellId(i)));
        }
    }
    assert!(!g.theorem2_holds(), "dataset policies should violate Theorem 2");
    assert!(g.has_persistent_loop());
    let fixed = g.make_conflict_free();
    assert!(fixed.theorem2_holds());
    assert!(!fixed.has_persistent_loop());
}
