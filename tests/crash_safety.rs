//! Crash-safety acceptance tests: a campaign killed mid-run and
//! resumed from its checkpoint must be **bit-identical** to an
//! uninterrupted run at any worker count, and the checked execution
//! layer must be invisible when nothing fails.

use std::path::PathBuf;

use proptest::prelude::*;
use rem_core::{fnv1a64, CampaignSpec, Comparison, DatasetSpec, ExperimentError, RunPolicy};
use rem_exec::{par_map, par_map_checked, CheckedPolicy, TrialOutcome};
use rem_faults::ChaosConfig;

/// Unique scratch path for one test (tests run concurrently).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rem-crash-safety-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{name}.ckpt"))
}

fn small_campaign() -> CampaignSpec {
    CampaignSpec::new(DatasetSpec::beijing_taiyuan(12.0, 300.0)).with_seeds(&[3, 4, 5])
}

fn hash_of(cmp: &Comparison) -> u64 {
    fnv1a64(serde_json::to_string(cmp).expect("comparison serializes").as_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With zero failures the checked engine is bit-identical to the
    /// plain one: same values, canonical order, no supervision noise.
    #[test]
    fn checked_map_without_failures_equals_plain_map(
        n in 0usize..40,
        threads in 1usize..6,
        mult in 1u64..1000,
    ) {
        let reference = par_map(threads, n, |i| (i as u64).wrapping_mul(mult) % 8923);
        let run = par_map_checked(threads, n, CheckedPolicy::with_retries(2), |i, _attempt| {
            (i as u64).wrapping_mul(mult) % 8923
        });
        prop_assert!(run.is_clean());
        prop_assert_eq!(run.retries, 0);
        prop_assert!(run.overruns.is_empty());
        let values = run.into_values().expect("clean run");
        prop_assert_eq!(values, reference);
    }
}

/// Transient (attempt-0 only) panics are retried and the retried
/// trials reproduce exactly the values an unfaulted run produces.
#[test]
fn transient_panics_retry_to_the_unfaulted_values() {
    let n = 24;
    let chaos = ChaosConfig::transient(11, 0.5);
    let reference = par_map(4, n, |i| i * i + 1);
    let run = par_map_checked(4, n, CheckedPolicy::with_retries(1), |i, attempt| {
        chaos.maybe_panic(i, attempt);
        i * i + 1
    });
    assert!(run.retries > 0, "chaos at rate 0.5 should hit some of {n} trials");
    assert!(run.is_clean());
    assert_eq!(run.into_values().expect("clean"), reference);
}

/// A deterministically-fatal trial is quarantined; every other trial's
/// value is untouched.
#[test]
fn fatal_trial_is_quarantined_without_disturbing_neighbours() {
    let n = 9;
    let run = par_map_checked(3, n, CheckedPolicy::with_retries(2), |i, _attempt| {
        if i == 4 {
            panic!("synthetic fault in trial 4");
        }
        i * 7
    });
    assert!(!run.is_clean());
    let quarantined = run.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].index, 4);
    assert_eq!(quarantined[0].attempts, 3);
    for (i, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            TrialOutcome::Ok(v) => assert_eq!(*v, i * 7, "trial {i}"),
            TrialOutcome::Quarantined(q) => assert_eq!(q.index, 4),
        }
    }
}

/// Kill a campaign after k completed trials (for several k), resume at
/// 1 and at 4 worker threads: the FNV-1a hash of the result must equal
/// the uninterrupted run's hash every time.
#[test]
fn killed_campaign_resumes_bit_identical_at_any_thread_count(
) -> Result<(), Box<dyn std::error::Error>> {
    let campaign = small_campaign();
    let reference = Comparison::run(&campaign.clone().with_threads(1));
    let reference_hash = hash_of(&reference);
    let total = 2 * campaign.seeds.len(); // legacy + REM planes

    let policy = RunPolicy { checkpoint_every: 1, ..RunPolicy::default() };
    for kill_after in [1, 3, 5] {
        for resume_threads in [1usize, 4] {
            let path = scratch(&format!("kill{kill_after}-t{resume_threads}"));
            let _ = std::fs::remove_file(&path);

            // Produce a full checkpoint, then forget every trial past
            // `kill_after` — byte-wise this is exactly the file a run
            // killed after `kill_after` completed trials leaves behind,
            // because the writer checkpoints after every trial wave.
            let checked = Comparison::run_checkpointed(&campaign, &policy, Some(&path))?;
            assert!(checked.is_clean());
            let mut ckpt = rem_core::Checkpoint::load(&path)?;
            for i in kill_after..total {
                ckpt.unrecord(i);
            }
            assert_eq!(ckpt.completed(), kill_after);
            ckpt.save(&path)?;

            let resume_policy = RunPolicy { threads: resume_threads, ..policy.clone() };
            let (resumed_campaign, resumed) = CampaignSpec::resume(&path, &resume_policy)?;
            assert_eq!(resumed_campaign.seeds, campaign.seeds);
            assert_eq!(resumed.resumed_trials, kill_after);
            assert_eq!(resumed.completed_trials, total);
            assert_eq!(
                hash_of(&resumed.comparison),
                reference_hash,
                "kill_after={kill_after} resume_threads={resume_threads}"
            );
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// A quarantined trial leaves a hole in the checkpoint, so "recover
/// from a persistent fault" is just resume-once-the-fault-is-gone.
#[test]
fn quarantine_then_resume_completes_the_campaign() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = small_campaign();
    let reference_hash = hash_of(&Comparison::run(&campaign.clone().with_threads(1)));
    let path = scratch("quarantine-resume");
    let _ = std::fs::remove_file(&path);

    // First run: trial 2 dies on every attempt and is quarantined.
    let policy = RunPolicy { checkpoint_every: 1, ..RunPolicy::default() };
    let checked = Comparison::run_checkpointed_with(&campaign, &policy, Some(&path), |i, _a| {
        if i == 2 {
            panic!("persistent fault in trial 2");
        }
    })?;
    assert_eq!(checked.quarantined.len(), 1);
    assert_eq!(checked.quarantined[0].index, 2);
    assert!(matches!(
        checked.into_result(),
        Err(ExperimentError::Quarantined { .. })
    ));

    // The fault clears (hook gone); resume re-runs exactly trial 2.
    let (_, resumed) = CampaignSpec::resume(&path, &policy)?;
    assert!(resumed.is_clean());
    assert_eq!(resumed.completed_trials, resumed.total_trials);
    assert_eq!(hash_of(&resumed.comparison), reference_hash);
    std::fs::remove_file(&path)?;
    Ok(())
}

/// Flipping one byte of a saved checkpoint is detected as a typed
/// checksum error, never parsed as data.
#[test]
fn corrupted_checkpoint_is_rejected_with_a_typed_error(
) -> Result<(), Box<dyn std::error::Error>> {
    let campaign = small_campaign();
    let path = scratch("corruption");
    let _ = std::fs::remove_file(&path);
    let policy = RunPolicy { checkpoint_every: 1, ..RunPolicy::default() };
    Comparison::run_checkpointed(&campaign, &policy, Some(&path))?;

    let mut bytes = std::fs::read(&path)?;
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes)?;

    match rem_core::Checkpoint::load(&path) {
        Err(ExperimentError::ChecksumMismatch { expected, actual, .. }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path)?;
    Ok(())
}

/// The chaos hook panics only on attempt 0, so a chaos-ridden campaign
/// with retries enabled still hashes identically to a calm one — the
/// property the CI chaos job gates on.
#[test]
fn chaos_campaign_hash_equals_calm_campaign_hash() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = small_campaign().with_threads(2);
    let calm_hash = hash_of(&Comparison::run(&campaign));

    let chaos = ChaosConfig::transient(7, 1.0); // every trial panics once
    let policy = RunPolicy { threads: 2, max_retries: 2, ..RunPolicy::default() };
    let checked = Comparison::run_checkpointed_with(&campaign, &policy, None, |i, a| {
        chaos.maybe_panic(i, a)
    })?;
    assert!(checked.is_clean());
    assert_eq!(checked.retries as usize, 2 * campaign.seeds.len());
    assert_eq!(hash_of(&checked.comparison), calm_hash);
    Ok(())
}
