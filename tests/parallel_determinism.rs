//! Parallel-execution determinism: the acceptance contract of the
//! work-stealing Monte-Carlo engine. Every entry point that fans
//! trials out over `rem_exec` must produce bit-identical results for
//! any worker count — serial (1 thread) is the reference.

use rem_channel::models::ChannelModel;
use rem_core::{CampaignSpec, Comparison, DatasetSpec, Plane};
use rem_phy::link::{BlerScenario, Waveform};

#[test]
fn par_map_preserves_canonical_order_for_any_thread_count() {
    let reference: Vec<usize> = (0..97).map(|i| i * 31 % 89).collect();
    for threads in [1, 2, 3, 4, 8] {
        assert_eq!(
            rem_exec::par_map(threads, 97, |i| i * 31 % 89),
            reference,
            "threads={threads}"
        );
    }
}

#[test]
fn bler_scenario_serial_vs_parallel_outcomes_identical() {
    let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Hst)
        .with_snr_db(4.0)
        .with_blocks(32)
        .with_seed(9);
    let serial = scenario.with_threads(1).outcomes();
    let parallel = scenario.with_threads(4).outcomes();
    assert_eq!(serial, parallel);
    // The scalar reduction agrees too.
    assert_eq!(scenario.with_threads(1).run(), scenario.with_threads(4).run());
}

#[test]
fn comparison_serial_vs_parallel_bit_identical() {
    let campaign =
        CampaignSpec::new(DatasetSpec::beijing_taiyuan(12.0, 300.0)).with_seeds(&[3, 4]);
    let serial = Comparison::run(&campaign.clone().with_threads(1));
    let parallel = Comparison::run(&campaign.with_threads(4));
    // Field-level spot checks (readable failure messages)...
    assert_eq!(serial.legacy.handovers, parallel.legacy.handovers);
    assert_eq!(serial.legacy.failures, parallel.legacy.failures);
    assert_eq!(serial.rem.handovers, parallel.rem.handovers);
    assert_eq!(serial.rem.failures, parallel.rem.failures);
    assert_eq!(serial.legacy.duration_s, parallel.legacy.duration_s);
    // ...then the whole structure.
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn campaign_aggregate_matches_serial_merge() {
    let campaign =
        CampaignSpec::new(DatasetSpec::beijing_shanghai(10.0, 250.0)).with_seeds(&[1, 2]);
    let mut manual = rem_core::RunMetrics::default();
    for &seed in &campaign.seeds {
        let cfg = rem_core::RunConfig::new(campaign.spec.clone(), Plane::Rem, seed);
        rem_core::merge(&mut manual, rem_core::simulate_run(&cfg));
    }
    let agg = campaign.with_threads(4).aggregate(Plane::Rem);
    assert_eq!(
        serde_json::to_string(&manual).unwrap(),
        serde_json::to_string(&agg).unwrap()
    );
}

#[test]
fn child_rng_streams_are_independent_of_scheduling() {
    use rand::Rng;
    // Drawing from per-trial child streams in parallel must reproduce
    // the serial draws exactly: each stream depends only on
    // (seed, label), never on which thread or in what order it runs.
    let draw = |i: usize| -> u64 {
        let mut rng = rem_num::rng::child_rng(77, &format!("trial-{i}"));
        rng.gen()
    };
    let serial: Vec<u64> = (0..64).map(draw).collect();
    for threads in [2, 4, 8] {
        assert_eq!(rem_exec::par_map(threads, 64, draw), serial, "threads={threads}");
    }
    // Distinct labels give distinct streams.
    assert_ne!(draw(0), draw(1));
}

#[test]
fn simulate_train_serial_vs_parallel_identical() {
    let base = rem_core::RunConfig::new(
        DatasetSpec::beijing_taiyuan(10.0, 300.0),
        Plane::Legacy,
        5,
    );
    let train = rem_sim::TrainScenario::new(base)
        .with_clients(4)
        .with_train_len_m(200.0);
    let serial = train.clone().with_threads(1).run();
    let parallel = train.with_threads(4).run();
    assert_eq!(serial.total_messages, parallel.total_messages);
    assert_eq!(serial.peak_rate_per_s, parallel.peak_rate_per_s);
    assert_eq!(serial.mean_rate_per_s, parallel.mean_rate_per_s);
    assert_eq!(serial.failures, parallel.failures);
    assert_eq!(serial.handovers, parallel.handovers);
}
