//! End-to-end integration: a full paired campaign across planes, with
//! the headline claims of the paper asserted on the outputs.

use rem_core::{CampaignSpec, Comparison, DatasetSpec};

fn run(spec: DatasetSpec, seeds: &[u64]) -> Comparison {
    Comparison::run(&CampaignSpec::new(spec).with_seeds(seeds))
}

#[test]
fn rem_beats_legacy_on_hsr_replay() {
    let cmp = run(DatasetSpec::beijing_shanghai(40.0, 300.0), &[1, 2, 3]);

    // Non-trivial campaign.
    assert!(cmp.legacy.handovers.len() >= 20, "legacy HOs: {}", cmp.legacy.handovers.len());
    assert!(cmp.rem.handovers.len() >= 20);

    // Headline: REM reduces failures (excluding coverage holes).
    let l = cmp.legacy.failure_ratio_no_holes();
    let r = cmp.rem.failure_ratio_no_holes();
    assert!(r < l, "rem={r} legacy={l}");

    // Conflict freedom: REM has zero policy-conflict loops.
    assert_eq!(cmp.rem.conflict_loops().count(), 0);

    // Feedback acceleration.
    let lf = rem_num::stats::mean(&cmp.legacy.feedback_delays_ms);
    let rf = rem_num::stats::mean(&cmp.rem.feedback_delays_ms);
    assert!(rf < lf, "rem={rf} legacy={lf}");
}

#[test]
fn rem_failures_comparable_to_low_mobility() {
    // Paper: "REM achieves comparable failure ratios to static and low
    // mobility" — REM at 325 km/h should be within ~2.5x of the legacy
    // low-mobility baseline.
    let hsr = run(DatasetSpec::beijing_shanghai(40.0, 325.0), &[4, 5]);
    let low = run(DatasetSpec::la_driving(40.0, 50.0), &[4, 5]);
    let rem_hsr = hsr.rem.failure_ratio_no_holes();
    let legacy_low = low.legacy.failure_ratio_no_holes();
    assert!(
        rem_hsr <= (legacy_low * 2.5).max(0.05),
        "REM@HSR {rem_hsr} vs legacy@low {legacy_low}"
    );
}

#[test]
fn campaigns_are_reproducible() {
    let spec = DatasetSpec::beijing_taiyuan(15.0, 250.0);
    let a = run(spec.clone(), &[9]);
    let b = run(spec, &[9]);
    assert_eq!(a.legacy.handovers, b.legacy.handovers);
    assert_eq!(a.rem.failures, b.rem.failures);
}

#[test]
fn failure_ratios_grow_with_speed_for_legacy() {
    let slow = run(DatasetSpec::beijing_taiyuan(40.0, 120.0), &[1, 2]);
    let fast = run(DatasetSpec::beijing_taiyuan(40.0, 325.0), &[1, 2]);
    assert!(
        fast.legacy.failure_ratio() > slow.legacy.failure_ratio(),
        "fast={} slow={}",
        fast.legacy.failure_ratio(),
        slow.legacy.failure_ratio()
    );
}
