//! Movement prediction coupled to the campaign: the Kalman filter
//! tracks the (noisy) client trajectory of a simulated run and its
//! predictions anticipate the observed handover cadence — §10's
//! "predictive client trajectory" made executable.

use rem_core::{DatasetSpec, Plane, RunConfig};
use rem_num::rng::{normal, rng_from_seed};
use rem_sim::{simulate_run, TrajectoryFilter};

#[test]
fn filter_tracks_a_campaign_trajectory() {
    let spec = DatasetSpec::beijing_taiyuan(15.0, 300.0);
    let speed = spec.speed_ms();
    let mut f = TrajectoryFilter::new(0.1, 25.0);
    let mut rng = rng_from_seed(3);
    let dt = 1.0;
    // Feed GNSS-grade fixes along the run.
    let steps = spec.duration_s() as usize;
    for i in 0..steps {
        let true_pos = speed * i as f64 * dt;
        f.step(dt, normal(&mut rng, true_pos, 5.0));
    }
    assert!((f.velocity_ms() - speed).abs() < 1.0, "v={} want={speed}", f.velocity_ms());
}

#[test]
fn predicted_site_passings_match_observed_handovers() {
    // The filter's time-to-site predictions should land within a few
    // seconds of when the campaign actually handed the client over
    // near each site.
    let spec = DatasetSpec::beijing_taiyuan(20.0, 300.0);
    let m = simulate_run(&RunConfig::new(spec.clone(), Plane::Rem, 4));
    assert!(m.handovers.len() >= 4);

    let speed = spec.speed_ms();
    let mut f = TrajectoryFilter::new(0.1, 25.0);
    let mut rng = rng_from_seed(5);
    // Train the filter on the first 30 s of trajectory.
    for i in 0..30 {
        f.step(1.0, normal(&mut rng, speed * i as f64, 5.0));
    }
    // Every later handover: predicted arrival at the handover position
    // is within 10% of the actual time.
    for h in m.handovers.iter().filter(|h| h.t_ms > 35_000.0).take(5) {
        let pos_at_ho = speed * h.t_ms / 1e3;
        let predicted = f
            .time_to_site_s(pos_at_ho)
            .expect("handover positions are ahead of the filter");
        let actual = h.t_ms / 1e3 - 29.0; // filter time origin
        let rel = (predicted - actual).abs() / actual;
        assert!(rel < 0.1, "predicted {predicted:.1}s vs actual {actual:.1}s");
    }
}

#[test]
fn doppler_prediction_sign_flips_at_site_passing() {
    let mut f = TrajectoryFilter::new(0.1, 25.0);
    let mut rng = rng_from_seed(7);
    for i in 0..60 {
        f.step(1.0, normal(&mut rng, 90.0 * i as f64, 4.0));
    }
    let site = f.position_m() + 500.0;
    // Approaching now, receding after passing.
    let before = f.predict_doppler_hz(0.0, site, 150.0, 2.6e9);
    let t_pass = f.time_to_site_s(site).unwrap();
    let after = f.predict_doppler_hz(t_pass + 5.0, site, 150.0, 2.6e9);
    assert!(before > 0.0 && after < 0.0, "before={before} after={after}");
}
