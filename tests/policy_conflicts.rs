//! Conflict analysis integration: Theorems 2/3 as executable claims,
//! plus a behavioural check that the sufficient condition actually
//! prevents loops under simulated SNR processes.

use proptest::prelude::*;
use rem_mobility::conflict::A3Graph;
use rem_mobility::events::{EventConfig, EventKind, EventMonitor};
use rem_mobility::policy::CellId;
use rem_mobility::rem_policy::{rem_policies, SimplifyConfig};
use rem_mobility::policy::{legacy_multi_stage_policy, Earfcn};
use rem_num::rng::{rng_from_seed, standard_normal};

/// Simulates three cells' SNR processes and a client following A3
/// rules with the given offsets; returns the handover count within a
/// bounded horizon (a loop shows up as an explosion of handovers).
fn simulate_handovers(offsets: &[[f64; 3]; 3], seed: u64) -> usize {
    let mut rng = rng_from_seed(seed);
    let mut serving = 0usize;
    let mut handovers = 0usize;
    let mut monitors = vec![EventMonitor::default(); 9];
    // Static mean SNRs inside the mutual-coverage region + noise.
    let means = [10.0, 9.0, 11.0];
    let mut t = 0.0;
    while t < 60_000.0 {
        let snr: Vec<f64> = means.iter().map(|m| m + 0.5 * standard_normal(&mut rng)).collect();
        let mut best: Option<(f64, usize)> = None;
        for target in 0..3 {
            if target == serving {
                continue;
            }
            let cfg = EventConfig {
                kind: EventKind::A3 { offset: offsets[serving][target] },
                ttt_ms: 80.0,
                hysteresis_db: 0.0,
            };
            let mon = &mut monitors[serving * 3 + target];
            if mon.observe(&cfg, t, snr[serving], snr[target])
                && best.is_none_or(|(q, _)| snr[target] > q)
            {
                best = Some((snr[target], target));
            }
        }
        if let Some((_, target)) = best {
            serving = target;
            handovers += 1;
            for m in &mut monitors {
                m.reset();
            }
        }
        t += 20.0;
    }
    handovers
}

#[test]
fn theorem2_compliant_offsets_prevent_loops_behaviourally() {
    // Conservative (+3 everywhere): nearly no handovers.
    let ok = [[0.0, 3.0, 3.0], [3.0, 0.0, 3.0], [3.0, 3.0, 0.0]];
    let n_ok = simulate_handovers(&ok, 1);
    // Violating pair (0 <-> 2 sums to -2): persistent oscillation.
    let bad = [[0.0, 3.0, -1.0], [3.0, 0.0, 3.0], [-1.0, 3.0, 0.0]];
    let n_bad = simulate_handovers(&bad, 1);
    assert!(n_bad > 10 * (n_ok + 1), "ok={n_ok} bad={n_bad}");
}

#[test]
fn rem_simplification_of_fig1b_policy_is_conflict_free() {
    // Recreate the Fig 1b-style multi-stage policies for a handful of
    // cells with mixed proactive offsets, simplify, verify.
    let policies: Vec<_> = (0..6u32)
        .map(|i| {
            let offset = if i % 3 == 0 { -3.0 } else { 2.0 };
            legacy_multi_stage_policy(
                CellId(i),
                Earfcn(if i % 2 == 0 { 1825 } else { 2452 }),
                &[Earfcn(100)],
                offset,
                80.0,
                640.0,
            )
        })
        .collect();
    let fixed = rem_policies(&policies, &SimplifyConfig::default());
    let g = rem_mobility::conflict::a3_graph_from_policies(&fixed);
    assert!(g.theorem2_holds());
    assert!(!g.has_persistent_loop());
    for p in &fixed {
        assert!(!p.is_multi_stage());
        assert!(p.stage1.iter().all(|r| matches!(r.event.kind, EventKind::A3 { .. })));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2 (property form): if every composable offset pair sums
    /// to >= 0, Bellman-Ford finds no negative cycle.
    #[test]
    fn theorem2_implies_loop_freedom(raw in proptest::collection::vec(-40i32..80, 20)) {
        let mut g = A3Graph::new();
        let mut k = 0;
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j && k < raw.len() {
                    g.set_offset(CellId(i), CellId(j), raw[k] as f64 / 10.0);
                    k += 1;
                }
            }
        }
        if g.theorem2_holds() {
            prop_assert!(!g.has_persistent_loop());
        }
    }

    /// The clamp repair always restores Theorem 2 and loop freedom.
    #[test]
    fn clamp_repair_always_works(raw in proptest::collection::vec(-60i32..60, 20)) {
        let mut g = A3Graph::new();
        let mut k = 0;
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j && k < raw.len() {
                    g.set_offset(CellId(i), CellId(j), raw[k] as f64 / 10.0);
                    k += 1;
                }
            }
        }
        let fixed = g.make_conflict_free();
        prop_assert!(fixed.theorem2_holds());
        prop_assert!(!fixed.has_persistent_loop());
    }

    /// A5 -> A3 rewriting is sound: whenever A5 fires, its A3 rewrite
    /// fires too (the simplified policy never misses a handover).
    #[test]
    fn a5_rewrite_is_sound(s in -140.0f64..-44.0, n in -140.0f64..-44.0,
                           t1 in -130.0f64..-60.0, t2 in -130.0f64..-60.0) {
        let a5 = EventKind::A5 { serving_below: t1, neighbor_above: t2 };
        let a3 = EventKind::A3 { offset: t2 - t1 };
        if a5.entering(s, n, 0.0) {
            prop_assert!(a3.entering(s, n, 0.0));
        }
    }
}
