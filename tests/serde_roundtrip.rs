//! Serialisation contracts: every public configuration/result type
//! survives a JSON round trip (the stability downstream tooling —
//! including the CLI's policy audit and the trace export — relies on).

use rem_core::{DatasetSpec, ExperimentReport, Plane, RunConfig, RunMetrics};
use rem_mobility::events::{EventConfig, EventKind};
use rem_mobility::policy::{CellId, CellPolicy, Earfcn, HandoverRule, TargetScope};
use rem_net::{CongestionControl, LinkModel, Outage, TcpConfig};
use rem_sim::simulate_run;

fn round_trip<T>(v: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(v).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

#[test]
fn dataset_spec_round_trips() {
    let spec = DatasetSpec::beijing_shanghai(40.0, 300.0);
    let back: DatasetSpec = round_trip(&spec);
    assert_eq!(back.name, spec.name);
    assert_eq!(back.speed_kmh, spec.speed_kmh);
    assert_eq!(back.deployment.route_m, spec.deployment.route_m);
    assert_eq!(back.proactive_prob, spec.proactive_prob);
}

#[test]
fn run_metrics_round_trip_preserves_everything() {
    let mut cfg = RunConfig::new(DatasetSpec::beijing_taiyuan(10.0, 250.0), Plane::Legacy, 1);
    cfg.record_trace = true;
    let m = simulate_run(&cfg);
    let back: RunMetrics = round_trip(&m);
    assert_eq!(back.handovers, m.handovers);
    assert_eq!(back.failures, m.failures);
    assert_eq!(back.loops, m.loops);
    assert_eq!(back.signaling, m.signaling);
    assert_eq!(back.trace.events, m.trace.events);
    assert_eq!(back.feedback_delays_ms, m.feedback_delays_ms);
}

#[test]
fn cell_policy_round_trips() {
    let p = CellPolicy {
        cell: CellId(7),
        earfcn: Earfcn(1825),
        stage1: vec![HandoverRule {
            event: EventConfig {
                kind: EventKind::A3 { offset: -2.5 },
                ttt_ms: 80.0,
                hysteresis_db: 1.0,
            },
            target: TargetScope::IntraFreq,
        }],
        a2_gate: Some(EventConfig {
            kind: EventKind::A2 { thresh: -110.0 },
            ttt_ms: 640.0,
            hysteresis_db: 1.0,
        }),
        stage2: vec![HandoverRule {
            event: EventConfig {
                kind: EventKind::A5 { serving_below: -110.0, neighbor_above: -108.0 },
                ttt_ms: 640.0,
                hysteresis_db: 1.0,
            },
            target: TargetScope::InterFreq(Earfcn(2452)),
        }],
        a1_exit: None,
    };
    assert_eq!(round_trip(&p), p);
}

#[test]
fn tcp_types_round_trip() {
    let cfg = TcpConfig { congestion: CongestionControl::Cubic, ..Default::default() };
    let back: TcpConfig = round_trip(&cfg);
    assert_eq!(back.congestion, CongestionControl::Cubic);
    assert_eq!(back.mss_bytes, cfg.mss_bytes);

    let link = LinkModel {
        rtt_ms: 55.0,
        loss_prob: 0.02,
        outages: vec![Outage { start_ms: 1.0, end_ms: 2.0 }],
        ..Default::default()
    };
    let back: LinkModel = round_trip(&link);
    assert_eq!(back.outages, link.outages);
    assert_eq!(back.rtt_ms, 55.0);
}

#[test]
fn experiment_report_is_stable_json() {
    let mut r = ExperimentReport::new("x").with_context("k", "v");
    r.push_row("row", &[("m", 1.5)]);
    let a = r.to_json();
    let b = ExperimentReport::from_json(&a).unwrap().to_json();
    assert_eq!(a, b, "serialisation must be canonical/stable");
}
