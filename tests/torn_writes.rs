//! Torn-write corruption drills for every `REM*1` durable artifact.
//!
//! A power cut or `kill -9` can leave a checkpoint or queue journal
//! truncated at any byte, and disks can flip bits at rest. Whatever
//! the damage, loading the artifact must yield a **typed**
//! [`ExperimentError`] — never a panic, and never silent acceptance of
//! altered campaign state. (The one legal `Ok` is a flip the format
//! provably cannot distinguish from the pristine file, e.g. a leading
//! zero of the checksum turning into trimmed whitespace; in that case
//! the decoded state must equal the pristine state bit-for-bit.)

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use rem_core::{
    CampaignSpec, Checkpoint, Comparison, DatasetSpec, ExperimentError, RunPolicy,
};
use rem_serve::{JobQueue, QueueConfig};

/// Unique scratch path per invocation (proptest cases run many files).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("rem-torn-write-tests");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{tag}-{}-{n}", std::process::id()))
}

/// Bytes of a pristine checkpoint produced by a real (tiny) campaign.
fn pristine_checkpoint() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = scratch("pristine.ckpt");
        let campaign =
            CampaignSpec::new(DatasetSpec::beijing_taiyuan(12.0, 300.0)).with_seeds(&[3]);
        let policy = RunPolicy { checkpoint_every: 1, ..RunPolicy::default() };
        Comparison::run_checkpointed(&campaign, &policy, Some(&path))
            .expect("tiny campaign checkpoints");
        let bytes = std::fs::read(&path).expect("read pristine checkpoint");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Bytes of a pristine queue journal holding two spooled jobs.
fn pristine_journal() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = scratch("pristine.journal");
        let (queue, recovered) =
            JobQueue::open(&path, QueueConfig::default()).expect("fresh journal opens");
        assert_eq!(recovered, 0);
        queue.submit("alpha", "scenario body a").expect("submit alpha");
        queue.submit("beta", "scenario body b").expect("submit beta");
        let bytes = std::fs::read(&path).expect("read pristine journal");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Every variant a damaged artifact is allowed to surface as.
fn is_typed_corruption(e: &ExperimentError) -> bool {
    matches!(
        e,
        ExperimentError::Corrupt { .. }
            | ExperimentError::ChecksumMismatch { .. }
            | ExperimentError::Serde { .. }
            | ExperimentError::Io { .. }
    )
}

fn truncated(pristine: &[u8], at: usize) -> Vec<u8> {
    pristine[..at].to_vec()
}

fn bit_flipped(pristine: &[u8], at: usize, bit: u8) -> Vec<u8> {
    let mut bytes = pristine.to_vec();
    bytes[at] ^= 1 << bit;
    assert_ne!(bytes[at], pristine[at], "flip must alter the byte");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A checkpoint truncated at any offset is rejected with a typed
    /// error.
    #[test]
    fn truncated_checkpoint_yields_typed_error(frac in 0.0f64..1.0) {
        let pristine = pristine_checkpoint();
        let at = ((pristine.len() as f64) * frac) as usize; // < len
        let path = scratch("trunc.ckpt");
        std::fs::write(&path, truncated(pristine, at)).unwrap();
        match Checkpoint::load(&path) {
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "truncation at {at} surfaced untyped error: {e}"
            ),
            Ok(_) => prop_assert!(false, "truncation at {at} silently accepted"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A checkpoint with any single bit flipped is either rejected with
    /// a typed error or decodes to the exact pristine state (header
    /// flips the format cannot observe).
    #[test]
    fn bit_flipped_checkpoint_never_alters_state(frac in 0.0f64..1.0, bit in 0u8..8) {
        let pristine = pristine_checkpoint();
        let at = ((pristine.len() as f64) * frac) as usize;
        let at = at.min(pristine.len() - 1);
        let path = scratch("flip.ckpt");
        std::fs::write(&path, bit_flipped(pristine, at, bit)).unwrap();

        let reference_path = scratch("ref.ckpt");
        std::fs::write(&reference_path, pristine).unwrap();
        let reference = Checkpoint::load(&reference_path).expect("pristine loads");
        std::fs::remove_file(&reference_path).unwrap();

        match Checkpoint::load(&path) {
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "flip at {at}.{bit} surfaced untyped error: {e}"
            ),
            Ok(c) => prop_assert!(
                c == reference,
                "flip at {at}.{bit} accepted but decoded different state"
            ),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A queue journal truncated at any offset is rejected with a typed
    /// error — a half-written spool never becomes a half-remembered
    /// job list.
    #[test]
    fn truncated_journal_yields_typed_error(frac in 0.0f64..1.0) {
        let pristine = pristine_journal();
        let at = ((pristine.len() as f64) * frac) as usize;
        let path = scratch("trunc.journal");
        std::fs::write(&path, truncated(pristine, at)).unwrap();
        match JobQueue::open(&path, QueueConfig::default()) {
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "truncation at {at} surfaced untyped error: {e}"
            ),
            Ok(_) => prop_assert!(false, "truncation at {at} silently accepted"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A queue journal with any single bit flipped either fails typed
    /// or recovers the exact pristine job list.
    #[test]
    fn bit_flipped_journal_never_alters_jobs(frac in 0.0f64..1.0, bit in 0u8..8) {
        let pristine = pristine_journal();
        let at = ((pristine.len() as f64) * frac) as usize;
        let at = at.min(pristine.len() - 1);
        let path = scratch("flip.journal");
        std::fs::write(&path, bit_flipped(pristine, at, bit)).unwrap();

        let reference_path = scratch("ref.journal");
        std::fs::write(&reference_path, pristine).unwrap();
        let (reference, _) = JobQueue::open(&reference_path, QueueConfig::default())
            .expect("pristine journal opens");
        let reference_jobs = reference.jobs();
        std::fs::remove_file(&reference_path).unwrap();

        match JobQueue::open(&path, QueueConfig::default()) {
            Err(e) => prop_assert!(
                is_typed_corruption(&e),
                "flip at {at}.{bit} surfaced untyped error: {e}"
            ),
            Ok((q, _)) => prop_assert!(
                q.jobs() == reference_jobs,
                "flip at {at}.{bit} accepted but recovered different jobs"
            ),
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Deterministic edge cases the fuzz loop should not have to rediscover.
#[test]
fn empty_and_cross_magic_artifacts_are_rejected() {
    // Empty file: no header line at all.
    let path = scratch("empty.ckpt");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(Checkpoint::load(&path), Err(ExperimentError::Corrupt { .. })));
    std::fs::remove_file(&path).unwrap();

    // A checkpoint fed to the queue opener (and vice versa): the magic
    // says "wrong artifact", not "checksum noise".
    let path = scratch("cross.journal");
    std::fs::write(&path, pristine_checkpoint()).unwrap();
    assert!(matches!(
        JobQueue::open(&path, QueueConfig::default()),
        Err(ExperimentError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).unwrap();

    let path = scratch("cross.ckpt");
    std::fs::write(&path, pristine_journal()).unwrap();
    assert!(matches!(Checkpoint::load(&path), Err(ExperimentError::Corrupt { .. })));
    std::fs::remove_file(&path).unwrap();
}

/// Truncating exactly at the header/body boundary leaves an empty body
/// whose digest cannot match: the most likely torn-write shape (header
/// block flushed, body block lost) is caught as a checksum error.
#[test]
fn header_only_artifact_is_a_checksum_error() {
    let pristine = pristine_checkpoint();
    let header_end =
        pristine.iter().position(|&b| b == b'\n').expect("header newline") + 1;
    let path = scratch("header-only.ckpt");
    std::fs::write(&path, &pristine[..header_end]).unwrap();
    match Checkpoint::load(&path) {
        Err(ExperimentError::ChecksumMismatch { expected, actual, .. }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
