//! End-to-end fault-injection guarantees, across the whole stack:
//!
//! 1. **Oracle**: for every failure the run attributes to an injected
//!    fault, the classified cause equals the injected ground truth
//!    (the Table 2 taxonomy is recovered, not just any failure).
//! 2. **Determinism**: faulted campaigns are bit-identical across
//!    worker-thread counts — injection derives from its own seeded
//!    streams and never perturbs the simulation RNGs.
//! 3. **Recovery**: re-establishment brings clients back after faults,
//!    and the clean (no-faults) path is byte-for-byte unaffected.

use rem_core::{CampaignSpec, Comparison, FaultConfig, FaultKind, Plane};
use rem_sim::{simulate_run, DatasetSpec, RunConfig};
use std::collections::HashSet;

fn spec() -> DatasetSpec {
    DatasetSpec::beijing_taiyuan(20.0, 300.0)
}

#[test]
fn oracle_holds_across_seeds_planes_and_kinds() {
    let mut kinds_seen: HashSet<FaultKind> = HashSet::new();
    let mut pairs = 0usize;
    for plane in [Plane::Legacy, Plane::Rem] {
        for seed in 1..=4u64 {
            let mut cfg = RunConfig::new(spec(), plane, seed);
            cfg.faults = Some(FaultConfig::aggressive());
            let m = simulate_run(&cfg);
            for p in &m.fault_oracle {
                assert!(
                    p.matches(),
                    "{plane:?} seed {seed}: injected {:?} (truth {:?}) classified {:?} at t={:.0}ms",
                    p.kind,
                    p.truth,
                    p.classified,
                    p.t_ms
                );
                kinds_seen.insert(p.kind);
                pairs += 1;
            }
        }
    }
    assert!(pairs > 0, "aggressive injection attributed no failures at all");
    assert!(
        kinds_seen.len() >= 3,
        "expected >=3 distinct fault kinds across the sweep, saw {kinds_seen:?}"
    );
}

#[test]
fn faulted_campaign_bit_identical_across_thread_counts() {
    let campaign = CampaignSpec::new(spec())
        .with_seeds(&[1, 2, 3])
        .with_faults(FaultConfig::aggressive());
    let one = Comparison::run(&campaign.clone().with_threads(1));
    let three = Comparison::run(&campaign.with_threads(3));
    assert_eq!(
        serde_json::to_string(&one).expect("serialize"),
        serde_json::to_string(&three).expect("serialize"),
        "faulted campaign diverged between 1 and 3 worker threads"
    );
    assert!(!one.legacy.injected.is_empty(), "no faults were injected");
}

#[test]
fn injection_degrades_then_recovery_restores_service() {
    let base = RunConfig::new(spec(), Plane::Legacy, 21);
    let clean = simulate_run(&base);
    let mut faulted_cfg = base;
    faulted_cfg.faults = Some(FaultConfig::aggressive());
    let faulted = simulate_run(&faulted_cfg);

    assert!(
        faulted.failures.len() > clean.failures.len(),
        "injection must provoke failures: faulted={} clean={}",
        faulted.failures.len(),
        clean.failures.len()
    );
    // Every failure eventually re-established (or the run ended inside
    // the last outage): recovery machinery actually ran.
    assert!(faulted.reestablish_attempts + 1 >= faulted.failures.len());
    // And service resumed: handovers still happen under faults.
    assert!(!faulted.handovers.is_empty(), "no handovers survived injection");
}

#[test]
fn clean_runs_are_untouched_by_the_fault_subsystem() {
    // `faults: None` must be byte-for-byte the same metrics as a run
    // carrying an all-zero-rate config (whose plan is empty).
    let base = RunConfig::new(spec(), Plane::Legacy, 5);
    let none = simulate_run(&base);
    let mut zeroed = base.clone();
    zeroed.faults = Some(FaultConfig::default().scaled(0.0));
    let zero = simulate_run(&zeroed);
    assert_eq!(
        serde_json::to_string(&none).expect("serialize"),
        serde_json::to_string(&zero).expect("serialize"),
        "an empty fault plan must not perturb the simulation"
    );
    assert!(none.injected.is_empty());
    assert!(none.fault_oracle.is_empty());
}
