//! `rem` — command-line front end for the REM reproduction.
//!
//! ```text
//! rem compare --dataset bs --speed 300 --route-km 40 --seeds 2
//! rem trace   --dataset bt --plane legacy --out trace.jsonl
//! rem audit   policies.json
//! rem bler    --model hst --speed 350 --snr 6 --blocks 200
//! rem storm   --clients 8 --dataset bs --speed 300
//! rem faults  --dataset bt --plane legacy --seeds 3 --verify 2
//! ```

mod args;

use args::{ArgError, Args};
use rem_core::{CampaignSpec, Comparison, DatasetSpec, FaultConfig, FaultKind, Plane, RunConfig};
use rem_mobility::conflict::{a3_graph_from_policies, scan_conflicts};
use rem_mobility::rem_policy::{rem_policies, SimplifyConfig};
use rem_mobility::CellPolicy;
use rem_sim::{simulate_run, simulate_train};

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".into());
    let rest: Vec<String> = argv.collect();
    let result = match cmd.as_str() {
        "compare" => cmd_compare(rest),
        "trace" => cmd_trace(rest),
        "audit" => cmd_audit(rest),
        "bler" => cmd_bler(rest),
        "storm" => cmd_storm(rest),
        "faults" => cmd_faults(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(ArgError(format!("unknown command '{other}' (try `rem help`)"))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn print_help() {
    println!(
        "rem — Reliable Extreme Mobility management (SIGCOMM'20 reproduction)

USAGE: rem <command> [--flag value ...]

COMMANDS:
  compare   Paired legacy-vs-REM replay on a synthetic dataset
              --dataset bt|bs|la|nr (default bs)
              --speed <km/h>       (default 300)
              --route-km <km>      (default 40)
              --seeds <n>          (default 2)
              --threads <n>        (default 0 = all cores)
              --hash               print an FNV-1a 64 digest of the
                                   full comparison (determinism checks)
  trace     Export a MobileInsight-style signaling trace (JSON lines)
              --dataset/--speed/--route-km as above
              --plane legacy|rem   (default legacy)
              --seed <n>           (default 42)
              --out <file>         (default trace.jsonl)
  audit     Audit a JSON file of cell policies for conflicts, apply
            REM's simplification, verify Theorem 2
              <file>               JSON array of CellPolicy
  bler      Coded signaling BLER, legacy OFDM vs REM OTFS
              --model hst|eva|etu|epa  (default hst)
              --speed <km/h>           (default 350)
              --snr <dB>               (default 6)
              --blocks <n>             (default 200)
              --seed <n>               (default 1)
              --threads <n>            (default 0 = all cores)
              --hash                   print an FNV-1a 64 digest of all
                                       per-trial outcomes (determinism)
  storm     Whole-train signaling burst statistics
              --clients <n>        (default 8)
              --threads <n>        (default 0 = all cores)
              --dataset/--speed/--route-km/--plane as above
  faults    Fault-injection campaign: seeded faults (Table 2 taxonomy),
            recovery statistics, and the classification oracle.
            Exits non-zero if any classified cause contradicts the
            injected ground truth.
              --dataset/--speed/--route-km/--plane as above
              --seeds <n>          (default 3)
              --threads <n>        (default 0 = all cores)
              --rate-scale <x>     (default 1.0; scales all fault rates)
              --verify <n>         also re-run on 1 vs <n> threads and
                                   require bit-identical metrics

Monte-Carlo trials are scheduled over --threads workers but reduced
in canonical order: any thread count gives identical results."
    );
}

/// FNV-1a 64 over a serialized result, for cheap determinism checks:
/// CI hashes the same run at different thread counts (and with
/// `REM_DSP_PLAN=off`) and requires the digests to match.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn dataset(a: &Args) -> Result<DatasetSpec, ArgError> {
    let route = a.num_or("route-km", 40.0)?;
    let speed = a.num_or("speed", 300.0)?;
    match a.get_or("dataset", "bs") {
        "bt" => Ok(DatasetSpec::beijing_taiyuan(route, speed)),
        "bs" => Ok(DatasetSpec::beijing_shanghai(route, speed)),
        "la" => Ok(DatasetSpec::la_driving(route, speed)),
        "nr" => Ok(DatasetSpec::nr_smallcell(route, speed)),
        other => Err(ArgError(format!("unknown dataset '{other}' (bt|bs|la|nr)"))),
    }
}

fn plane(a: &Args) -> Result<Plane, ArgError> {
    match a.get_or("plane", "legacy") {
        "legacy" => Ok(Plane::Legacy),
        "rem" => Ok(Plane::Rem),
        other => Err(ArgError(format!("unknown plane '{other}' (legacy|rem)"))),
    }
}

fn cmd_compare(rest: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(rest)?;
    let spec = dataset(&a)?;
    let n_seeds = a.int_or("seeds", 2)? as usize;
    let threads = a.int_or("threads", 0)? as usize;
    println!("{} @ {} km/h, {:.0} km x {} seeds", spec.name, spec.speed_kmh, spec.deployment.route_m / 1e3, n_seeds);
    let campaign = CampaignSpec::new(spec).with_seed_count(n_seeds).with_threads(threads);
    let cmp = Comparison::run(&campaign);
    println!("\n{:<26} {:>10} {:>10}", "", "legacy", "REM");
    println!("{:<26} {:>10} {:>10}", "handovers", cmp.legacy.handovers.len(), cmp.rem.handovers.len());
    println!(
        "{:<26} {:>9.1}% {:>9.1}%",
        "failure ratio",
        cmp.legacy.failure_ratio() * 100.0,
        cmp.rem.failure_ratio() * 100.0
    );
    println!(
        "{:<26} {:>9.1}% {:>9.1}%",
        "failure (w/o holes)",
        cmp.legacy.failure_ratio_no_holes() * 100.0,
        cmp.rem.failure_ratio_no_holes() * 100.0
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "conflict loops",
        cmp.legacy.conflict_loops().count(),
        cmp.rem.conflict_loops().count()
    );
    println!(
        "{:<26} {:>8.0}ms {:>8.0}ms",
        "mean feedback delay",
        rem_num::stats::mean(&cmp.legacy.feedback_delays_ms),
        rem_num::stats::mean(&cmp.rem.feedback_delays_ms)
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "signaling messages",
        cmp.legacy.signaling.total_messages(),
        cmp.rem.signaling.total_messages()
    );
    if a.flag("hash") {
        let json = serde_json::to_string(&cmp).map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    Ok(())
}

fn cmd_trace(rest: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(rest)?;
    let spec = dataset(&a)?;
    let mut cfg = RunConfig::new(spec, plane(&a)?, a.int_or("seed", 42)?);
    cfg.record_trace = true;
    let out = a.get_or("out", "trace.jsonl").to_string();
    let m = simulate_run(&cfg);
    std::fs::write(&out, m.trace.to_jsonl())
        .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {} events to {out} ({} reports, {} commands, {} RLFs)",
        m.trace.len(),
        m.trace.count("MEAS_REPORT"),
        m.trace.count("HO_COMMAND"),
        m.trace.count("RLF"),
    );
    Ok(())
}

fn cmd_audit(rest: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(rest)?;
    let file = a
        .positional()
        .first()
        .ok_or_else(|| ArgError("audit needs a policy JSON file".into()))?;
    let body = std::fs::read_to_string(file)
        .map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    let policies: Vec<CellPolicy> = serde_json::from_str(&body)
        .map_err(|e| ArgError(format!("bad policy JSON: {e}")))?;

    println!("loaded {} policies from {file}", policies.len());
    let conflicts = scan_conflicts(&policies, |_, _| true);
    for c in &conflicts {
        println!(
            "  conflict {:?} <-> {:?}: {} ({})",
            c.a,
            c.b,
            c.kinds,
            if c.intra_frequency { "intra-frequency" } else { "inter-frequency" }
        );
    }
    let g = a3_graph_from_policies(&policies);
    println!("Theorem 2 holds: {}", g.theorem2_holds());
    println!("persistent loop possible: {}", g.has_persistent_loop());
    for cycle in g.find_conflict_cycles(4) {
        println!("  negative cycle: {cycle:?}");
    }

    let fixed = rem_policies(&policies, &SimplifyConfig::default());
    let g2 = a3_graph_from_policies(&fixed);
    println!(
        "after REM simplification: conflicts {}, Theorem 2 {}, loops {}",
        scan_conflicts(&fixed, |_, _| true).len(),
        g2.theorem2_holds(),
        g2.has_persistent_loop()
    );
    Ok(())
}

fn cmd_bler(rest: Vec<String>) -> Result<(), ArgError> {
    use rem_channel::models::ChannelModel;
    use rem_phy::link::{BlerScenario, Waveform};

    let a = Args::parse(rest)?;
    let model = match a.get_or("model", "hst") {
        "hst" => ChannelModel::Hst,
        "eva" => ChannelModel::Eva,
        "etu" => ChannelModel::Etu,
        "epa" => ChannelModel::Epa,
        other => return Err(ArgError(format!("unknown model '{other}'"))),
    };
    let speed_kmh = a.num_or("speed", 350.0)?;
    let snr = a.num_or("snr", 6.0)?;
    let blocks = a.int_or("blocks", 200)? as usize;
    // Same seed for both waveforms: trial i sees the identical channel
    // and payload under each, so the comparison is paired.
    let scenario = BlerScenario::signaling(Waveform::Ofdm, model)
        .with_speed_kmh(speed_kmh)
        .with_snr_db(snr)
        .with_blocks(blocks)
        .with_seed(a.int_or("seed", 1)?)
        .with_threads(a.int_or("threads", 0)? as usize);
    let otfs_scenario =
        BlerScenario { cfg: rem_phy::link::LinkConfig::signaling(Waveform::Otfs), ..scenario };
    let ofdm_outcomes = scenario.outcomes();
    let otfs_outcomes = otfs_scenario.outcomes();
    let bler = |outs: &[rem_phy::BlockOutcome]| {
        outs.iter().filter(|o| !o.crc_ok).count() as f64 / blocks.max(1) as f64
    };
    println!("{model:?} @ {speed_kmh:.0} km/h, SNR {snr} dB, {blocks} blocks:");
    println!("  legacy OFDM BLER: {:.3}", bler(&ofdm_outcomes));
    println!("  REM OTFS BLER:    {:.3}", bler(&otfs_outcomes));
    if a.flag("hash") {
        // Hash the full per-trial outcome record, not just the BLER:
        // any change in SINR or bit-error counts must move the digest.
        let json = serde_json::to_string(&(&ofdm_outcomes, &otfs_outcomes))
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    Ok(())
}

fn cmd_faults(rest: Vec<String>) -> Result<(), ArgError> {
    use rem_mobility::FailureCause;

    let a = Args::parse(rest)?;
    let spec = dataset(&a)?;
    let pl = plane(&a)?;
    let n_seeds = a.int_or("seeds", 3)? as usize;
    let threads = a.int_or("threads", 0)? as usize;
    let scale = a.num_or("rate-scale", 1.0)?;
    let faults = FaultConfig::default().scaled(scale);
    faults.validate().map_err(ArgError)?;

    println!(
        "{} @ {} km/h, {:?} plane, {} seeds, fault rates x{:.2}",
        spec.name, spec.speed_kmh, pl, n_seeds, scale
    );
    let campaign = CampaignSpec::new(spec)
        .with_seed_count(n_seeds)
        .with_threads(threads)
        .with_faults(faults);
    let m = campaign.aggregate(pl);

    println!("\ninjected faults:");
    for kind in FaultKind::all() {
        let n = m.injected.iter().filter(|f| f.kind == kind).count();
        println!("  {:<14} {:>4}", kind.label(), n);
    }
    println!("\nfailures {} / handovers {}:", m.failures.len(), m.handovers.len());
    for cause in [
        FailureCause::FeedbackDelayLoss,
        FailureCause::MissedCell,
        FailureCause::CommandLoss,
        FailureCause::CoverageHole,
    ] {
        let n = m.failures.iter().filter(|f| f.cause == cause).count();
        println!("  {cause:<18?} {n:>4}");
    }
    println!("\nrecovery:");
    println!("  re-establishment attempts {:>4}", m.reestablish_attempts);
    println!("  REM fallback epochs       {:>4}", m.rem_fallback_epochs);
    println!("  X2 backhaul messages      {:>4}", m.signaling.x2_messages);

    let mismatches = m.oracle_mismatches();
    println!(
        "\noracle: {} attributed failures, {} mismatched",
        m.fault_oracle.len(),
        mismatches.len()
    );
    for p in &mismatches {
        println!(
            "  t={:.0}ms {}: truth {:?}, classified {:?}",
            p.t_ms,
            p.kind.label(),
            p.truth,
            p.classified
        );
    }

    let verify = a.int_or("verify", 0)? as usize;
    if verify > 0 {
        let serial = campaign.clone().with_threads(1).aggregate(pl);
        let parallel = campaign.clone().with_threads(verify).aggregate(pl);
        let a_json = serde_json::to_string(&serial)
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        let b_json = serde_json::to_string(&parallel)
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        if a_json != b_json {
            eprintln!("error: 1-thread and {verify}-thread campaigns diverged");
            std::process::exit(1);
        }
        println!("\nverified: 1-thread and {verify}-thread campaigns are bit-identical");
    }

    if !mismatches.is_empty() {
        eprintln!("error: fault oracle found misclassified failures");
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_storm(rest: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(rest)?;
    let spec = dataset(&a)?;
    let cfg = RunConfig::new(spec, plane(&a)?, a.int_or("seed", 7)?);
    let clients = a.int_or("clients", 8)? as usize;
    let threads = a.int_or("threads", 0)? as usize;
    let t = simulate_train(&cfg, clients, 400.0, 1_000.0, threads);
    println!(
        "{} clients, {} messages total: mean {:.1} msg/s, peak {:.1} msg/s over {:.0} ms windows",
        t.n_clients, t.total_messages, t.mean_rate_per_s, t.peak_rate_per_s, t.window_ms
    );
    println!("handovers {} / failures {}", t.handovers, t.failures);
    Ok(())
}
