//! `rem` — command-line front end for the REM reproduction.
//!
//! ```text
//! rem compare --dataset bs --speed 300 --route-km 40 --seeds 2
//! rem compare --scenario scenarios/hsr_beijing_shanghai.toml --hash
//! rem trace   --dataset bt --plane legacy --out trace.jsonl
//! rem audit   policies.json
//! rem bler    --model hst --speed 350 --snr 6 --blocks 200
//! rem train   --clients 8 --dataset bs --speed 300
//! rem faults  --dataset bt --plane legacy --seeds 3 --verify 2
//! rem net     study --seeds 3 --hash --json BENCH_net.json
//! rem fleet   --trains 1000 --shards 4 --hash
//! rem scenario validate scenarios/
//! ```

mod args;
mod obs;
mod serve;

use args::{ArgError, Args, CommonArgs};
use obs::ObsSession;
use rem_core::rem_faults::ChaosConfig;
use rem_core::scenario::{Family, PlaneMix};
use rem_core::{
    fnv1a64, CampaignSpec, Comparison, DatasetSpec, ExperimentError, FaultConfig, FaultKind,
    Plane, RunConfig, RunPolicy, ScenarioSpec,
};
use rem_mobility::conflict::{a3_graph_from_policies, scan_conflicts};
use rem_mobility::rem_policy::{rem_policies, SimplifyConfig};
use rem_mobility::CellPolicy;
use rem_sim::{simulate_run, TrainScenario};
use std::path::{Path, PathBuf};

/// Everything a command can fail with, mapped to distinct exit codes:
/// usage errors (bad flags, bad scenario files) exit 2,
/// experiment/runtime errors (I/O, corrupt checkpoints, quarantined
/// trials...) exit 1.
enum CliError {
    /// Bad flags or arguments.
    Arg(ArgError),
    /// The campaign itself failed.
    Experiment(ExperimentError),
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        CliError::Experiment(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Arg(e) => write!(f, "{e}"),
            CliError::Experiment(e) => write!(f, "{e}"),
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".into());
    let rest: Vec<String> = argv.collect();
    let result = match cmd.as_str() {
        "compare" => cmd_compare(rest),
        "trace" => cmd_trace(rest),
        "audit" => cmd_audit(rest),
        "bler" => cmd_bler(rest),
        // `storm` is the historical name of `train`; both spellings run
        // the whole-train study.
        "train" | "storm" => cmd_train(rest),
        "fleet" => cmd_fleet(rest),
        "faults" => cmd_faults(rest),
        "net" => cmd_net(rest),
        "serve" => serve::cmd_serve(rest),
        "scenario" => cmd_scenario(rest),
        "obs" => obs::cmd_obs(rest),
        "rerun" => obs::cmd_rerun(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(ArgError(format!("unknown command '{other}' (try `rem help`)")).into()),
    };
    match result {
        Ok(()) => {}
        Err(CliError::Arg(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        // A bad scenario file is a usage error, not a campaign failure:
        // the invocation was wrong, nothing ran.
        Err(CliError::Experiment(ExperimentError::Scenario(e))) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        // SIGINT/SIGTERM drained the run at a wave boundary: the
        // checkpoint (and its manifest) are on disk. 130 is the shell
        // convention for an interrupted process.
        Err(CliError::Experiment(e @ ExperimentError::Interrupted { .. })) => {
            eprintln!("{e}");
            std::process::exit(130);
        }
        Err(CliError::Experiment(e)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Loads `--scenario <file>` when present and folds every explicit
/// command-line flag on top: flags win over the file, absent flags keep
/// the file's values. The result is re-validated, so an override that
/// breaks an invariant fails exactly like a bad file would.
fn scenario_from(a: &Args, common: &CommonArgs) -> Result<Option<ScenarioSpec>, CliError> {
    let Some(path) = &common.scenario else { return Ok(None) };
    let mut spec = ScenarioSpec::load(Path::new(path)).map_err(ExperimentError::from)?;
    if let Some(code) = a.get("dataset") {
        spec.cells.family = Family::from_code(code)
            .ok_or_else(|| ArgError(format!("unknown dataset '{code}' (bt|bs|la|nr)")))?;
    }
    if let Some(v) = a.num_opt("speed")? {
        spec.trajectory.speed_kmh = v;
    }
    if let Some(v) = a.num_opt("route-km")? {
        spec.trajectory.route_km = v;
    }
    if let Some(p) = a.get("plane") {
        spec.policy.plane = match p {
            "legacy" => PlaneMix::Legacy,
            "rem" => PlaneMix::Rem,
            "both" => PlaneMix::Both,
            other => {
                return Err(ArgError(format!("unknown plane '{other}' (legacy|rem|both)")).into())
            }
        };
    }
    if let Some(m) = a.get("model") {
        spec.link.model = link_model(m)?;
    }
    if let Some(v) = a.num_opt("snr")? {
        spec.link.snr_db = v;
    }
    if let Some(n) = a.int_opt("blocks")? {
        spec.link.blocks = n as usize;
    }
    if let Some(s) = a.int_opt("seed")? {
        spec.link.seed = s;
        spec.train.seed = s;
    }
    if let Some(x) = a.num_opt("rate-scale")? {
        spec.faults.get_or_insert_with(Default::default).rate_scale = Some(x);
    }
    if let Some(n) = a.int_opt("clients")? {
        spec.train.clients = n as usize;
    }
    common.overlay_run(&mut spec.run);
    spec.validate().map_err(ExperimentError::from)?;
    Ok(Some(spec))
}

/// Arms graceful shutdown for a checkpointed one-shot run: SIGINT or
/// SIGTERM flips a flag the execution policy polls at wave boundaries,
/// so the run stops with a complete, resumable checkpoint instead of
/// dying mid-wave. Without `--checkpoint`/`--resume` there is nothing
/// to save, so the default kill-the-process behaviour stays.
fn arm_graceful_shutdown(policy: &mut RunPolicy, ckpt: Option<&Path>) {
    if ckpt.is_none() {
        return;
    }
    rem_serve::signal::install();
    policy.cancel = Some(std::sync::Arc::new(rem_serve::signal::requested));
}

/// On an interrupted (SIGINT/SIGTERM) run the checkpoint is already
/// flushed — waves persist as they complete — but the manifest is not.
/// Write it hash-less (the run is incomplete) so the checkpoint
/// carries its reproduction recipe, reading kind/fingerprint/total
/// back from the checkpoint itself, then print the resume hint.
fn finish_interrupted(
    session: &ObsSession,
    policy: &RunPolicy,
    chaos: &Option<ChaosConfig>,
    scenario: Option<String>,
    ckpt: Option<&Path>,
) {
    let Some(path) = ckpt else { return };
    if !session.wants_manifest(ckpt) {
        return;
    }
    if let Ok(c) = rem_core::Checkpoint::load(path) {
        if let Ok(m) = obs::campaign_manifest(
            &c.kind,
            &c.spec_json,
            c.n_trials,
            policy,
            chaos,
            None,
            scenario,
        ) {
            let _ = session.finish(&m, ckpt);
        }
        eprintln!(
            "interrupted: {} of {} trials checkpointed in {}; rerun with --resume {} to finish",
            c.completed(),
            c.n_trials,
            path.display(),
            path.display()
        );
    }
}

/// Runs `body` with interruption handling: on
/// [`ExperimentError::Interrupted`] the hash-less manifest is written
/// before the error propagates (exit 130).
fn checkpointed<T>(
    session: &ObsSession,
    policy: &RunPolicy,
    chaos: &Option<ChaosConfig>,
    scenario: Option<String>,
    ckpt: Option<&Path>,
    body: impl FnOnce() -> Result<T, ExperimentError>,
) -> Result<T, CliError> {
    match body() {
        Err(e @ ExperimentError::Interrupted { .. }) => {
            finish_interrupted(session, policy, chaos, scenario, ckpt);
            Err(e.into())
        }
        other => Ok(other?),
    }
}

/// Prints the supervision summary of a checked run when anything
/// noteworthy happened.
fn print_supervision(
    retries: u64,
    resumed: usize,
    quarantined: &[rem_core::rem_exec::QuarantinedTrial],
    overruns: &[rem_core::rem_exec::DeadlineOverrun],
    health: &rem_core::rem_num::DegradedStats,
) {
    if resumed > 0 {
        println!("resumed {resumed} trial(s) from checkpoint");
    }
    if retries > 0 {
        println!("retried {retries} panicking attempt(s)");
    }
    for o in overruns {
        println!(
            "deadline overrun: trial {} took {} ms (deadline {} ms)",
            o.index, o.elapsed_ms, o.deadline_ms
        );
    }
    for q in quarantined {
        println!("quarantined: {q}");
    }
    if !health.is_clean() {
        println!("numerical health: {health}");
    }
}

fn print_help() {
    println!(
        "rem — Reliable Extreme Mobility management (SIGCOMM'20 reproduction)

USAGE: rem <command> [--flag value ...]

Campaign commands (compare, bler, faults, train) accept
  --scenario <file>    load a declarative REMSCENARIO1 TOML scenario
                       (see scenarios/) as the base configuration; any
                       other flag on the command line overrides the
                       corresponding scenario field
and the shared execution flags
  --threads <n>        worker threads (default 0 = all cores)
  --hash               print an FNV-1a 64 digest of the full result
                       (determinism checks)
  --checkpoint <file>  save campaign state atomically as trials finish;
                       also arms graceful shutdown: SIGINT/SIGTERM
                       stops at the next wave with a complete,
                       resumable checkpoint + manifest (exit 130)
  --resume <file>      resume a killed campaign: only the missing
                       trials run; the result is bit-identical to an
                       uninterrupted run
  --checkpoint-every <n>   trials per checkpoint wave (default 16)
  --max-retries <n>        panicking-trial retries before quarantine
                           (default 1)
  --trial-timeout-ms <ms>  report trials exceeding this deadline
                           (detection only)
  --chaos-panic <rate>     inject deterministic trial panics (CI
                           crash-safety gate); --chaos-fatal makes them
                           persist past retries, --chaos-seed <n> picks
                           the victims
  --obs-trace <file>   write the observability trace (JSONL) plus
                       <file>.metrics.prom and <file>.manifest.json;
                       campaigns with --checkpoint also write
                       <ckpt>.manifest.json

COMMANDS:
  compare   Paired legacy-vs-REM replay on a synthetic dataset
              --dataset bt|bs|la|nr (default bs)
              --speed <km/h>       (default 300)
              --route-km <km>      (default 40)
              --seeds <n>          (default 2)
  trace     Export a MobileInsight-style signaling trace (JSON lines)
              --dataset/--speed/--route-km as above
              --plane legacy|rem   (default legacy)
              --seed <n>           (default 42)
              --out <file>         (default trace.jsonl)
  audit     Audit a JSON file of cell policies for conflicts, apply
            REM's simplification, verify Theorem 2
              <file>               JSON array of CellPolicy
  bler      Coded signaling BLER, legacy OFDM vs REM OTFS
              --model hst|eva|etu|epa  (default hst)
              --speed <km/h>           (default 350)
              --snr <dB>               (default 6)
              --blocks <n>             (default 200)
              --seed <n>               (default 1)
  train     Whole-train signaling burst statistics (alias: storm).
            Each client is an independent checkpointable trial, so the
            shared execution flags (--checkpoint/--resume/--hash/...)
            work exactly as for compare; --resume repeats the original
            flags.
              --clients <n>        (default 8)
              --seed <n>           (default 7)
              --dataset/--speed/--route-km/--plane as above
  fleet     Fleet-scale sharded corridor campaign: thousands of trains
            (each a moving bundle of UE contexts) over a bidirectional
            rail corridor, sharded by geography onto the worker pool.
            Cross-shard handover intents exchange at epoch barriers in
            canonical train-id order, so the result digest is
            bit-identical for every --shards and --threads choice.
              --trains <n>         (default 64)
              --ues <n>            UE contexts per train (default 100)
              --corridor-km <km>   (default 60)
              --cell-spacing-m <m> (default 1000)
              --speed <km/h>       (default 300)
              --jitter <frac>      per-train speed jitter (default 0.1)
              --headway <s>        departure spacing per end (default 10)
              --duration <s>       simulated window (default 120)
              --epoch-ms <ms>      exchange cadence (default 100)
              --seed <n>           (default 7)
              --shards <n>         geographic shards (default 4)
              --scenario <file>    base config from the [fleet] section
  faults    Fault-injection campaign: seeded faults (Table 2 taxonomy),
            recovery statistics, and the classification oracle.
            Exits non-zero if any classified cause contradicts the
            injected ground truth.
              --dataset/--speed/--route-km/--plane as above
              --seeds <n>          (default 3)
              --rate-scale <x>     (default 1.0; scales all fault rates)
              --verify <n>         also re-run on 1 vs <n> threads and
                                   require bit-identical metrics
  net       Transport stall study (Fig 9) across the cellular link
            pathology taxonomy: bufferbloat, jitter spikes, silent NAT
            rebinds and handover outage bursts, each replayed under
            reno, frto and rem-informed recovery. Stalls are classified
            by cause and checked against the injected ground truth;
            exits non-zero on any unjustified stall or recovery.
              study                study subcommand (required)
              --seeds <n>          (default 3)
              --window-ms <ms>     transfer window (default 60000)
              --loss <p>           base loss probability (default 0.003)
              --aggressive         high-rate pathology mix
              --json <file>        write the full report (BENCH_net.json)
              --verify <n>         also re-run on 1 vs <n> threads and
                                   require bit-identical reports
              --scenario <file>    pathology mix from the [net] section
  serve     Resident campaign service: a durable job queue (REMQUEUE1
            journal under --spool), a supervised worker pool running
            each job through the checkpointed campaign machinery, and
            a small HTTP control plane. SIGINT/SIGTERM drains
            gracefully; kill -9 loses nothing — a restart requeues
            in-flight jobs and resumes them from their checkpoints
            with identical result hashes.
              --listen <addr:port>   (default 127.0.0.1:7787; port 0
                                     picks a free port, written to
                                     <spool>/serve.addr)
              --spool <dir>          durable state dir (default
                                     .rem-spool)
              --workers <n>          concurrent jobs (default 1)
              --queue-cap <n>        admission bound; beyond it POST
                                     /jobs returns 503 (default 64)
              --job-retries <n>      attempts before a job is
                                     quarantined as poison (default 2)
              --job-threads <n>      threads inside each job's campaign
                                     (default 0 = all cores)
              --checkpoint-every <n> trials per checkpoint wave
                                     (default 4)
              --job-timeout-s <s>    flag jobs with stale heartbeats
                                     (detection only; default 0 = off)
            Routes: POST /jobs (scenario TOML body), GET /jobs,
            GET /jobs/<id>, GET /healthz, GET /metrics (Prometheus).
  scenario  Tooling over scenario files (the CI scenario gate)
              validate <file-or-dir>...  parse + validate each file,
                                         print its fingerprint
              smoke <file-or-dir>...     additionally run a 1-seed
                                         paired comparison end-to-end
  obs       Offline tools over observability artifacts
              summarize <trace.jsonl>  per-kind event counts of an
                                       --obs-trace file
  rerun     Replay a campaign (compare, aggregate, bler, train, net,
            fleet) from its run manifest alone and verify the
            recomputed result digest (exit 1 on mismatch)
              <file.manifest.json>     written by --obs-trace or
                                       --checkpoint
              --threads <n>            (default 0 = all cores; results
                                       are thread-count invariant)

Monte-Carlo trials are scheduled over --threads workers but reduced
in canonical order: any thread count gives identical results."
    );
}

fn dataset(a: &Args) -> Result<DatasetSpec, ArgError> {
    let route = a.num_or("route-km", 40.0)?;
    let speed = a.num_or("speed", 300.0)?;
    match a.get_or("dataset", "bs") {
        "bt" => Ok(DatasetSpec::beijing_taiyuan(route, speed)),
        "bs" => Ok(DatasetSpec::beijing_shanghai(route, speed)),
        "la" => Ok(DatasetSpec::la_driving(route, speed)),
        "nr" => Ok(DatasetSpec::nr_smallcell(route, speed)),
        other => Err(ArgError(format!("unknown dataset '{other}' (bt|bs|la|nr)"))),
    }
}

fn plane(a: &Args) -> Result<Plane, ArgError> {
    match a.get_or("plane", "legacy") {
        "legacy" => Ok(Plane::Legacy),
        "rem" => Ok(Plane::Rem),
        other => Err(ArgError(format!("unknown plane '{other}' (legacy|rem)"))),
    }
}

fn link_model(code: &str) -> Result<rem_channel::models::ChannelModel, ArgError> {
    use rem_channel::models::ChannelModel;
    match code {
        "hst" => Ok(ChannelModel::Hst),
        "eva" => Ok(ChannelModel::Eva),
        "etu" => Ok(ChannelModel::Etu),
        "epa" => Ok(ChannelModel::Epa),
        other => Err(ArgError(format!("unknown model '{other}' (hst|eva|etu|epa)"))),
    }
}

fn cmd_compare(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    let scn = scenario_from(&a, &common)?;
    let (mut policy, chaos) = match &scn {
        Some(s) => (s.run_policy(), s.chaos()),
        None => (common.run_policy(), common.chaos()),
    };
    let session = ObsSession::begin(&common);
    let ckpt_path = common.ckpt_path();
    arm_graceful_shutdown(&mut policy, ckpt_path.as_deref());
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);

    let (campaign, checked) = if let Some(resume) = &common.resume {
        // The checkpoint carries the campaign fingerprint: dataset
        // flags are ignored, only the execution policy applies.
        let (campaign, checked) =
            checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt_path.as_deref(), || {
                CampaignSpec::resume(Path::new(resume), &policy)
            })?;
        println!(
            "{} @ {} km/h, resumed from {resume} ({} of {} trials replayed)",
            campaign.spec.name, campaign.spec.speed_kmh, checked.resumed_trials,
            checked.total_trials
        );
        (campaign, checked)
    } else {
        let campaign = match &scn {
            Some(s) => s.campaign(),
            None => {
                let n_seeds = common.seeds.unwrap_or(2);
                CampaignSpec::new(dataset(&a)?)
                    .with_seed_count(n_seeds)
                    .with_threads(policy.threads)
            }
        };
        println!(
            "{} @ {} km/h, {:.0} km x {} seeds",
            campaign.spec.name,
            campaign.spec.speed_kmh,
            campaign.spec.deployment.route_m / 1e3,
            campaign.seeds.len()
        );
        let checked =
            checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt_path.as_deref(), || {
                match &chaos {
                    Some(c) => Comparison::run_checkpointed_with(
                        &campaign,
                        &policy,
                        ckpt_path.as_deref(),
                        |i, attempt| c.maybe_panic(i, attempt),
                    ),
                    None => Comparison::run_checkpointed(&campaign, &policy, ckpt_path.as_deref()),
                }
            })?;
        (campaign, checked)
    };
    let cmp = &checked.comparison;
    println!("\n{:<26} {:>10} {:>10}", "", "legacy", "REM");
    println!("{:<26} {:>10} {:>10}", "handovers", cmp.legacy.handovers.len(), cmp.rem.handovers.len());
    println!(
        "{:<26} {:>9.1}% {:>9.1}%",
        "failure ratio",
        cmp.legacy.failure_ratio() * 100.0,
        cmp.rem.failure_ratio() * 100.0
    );
    println!(
        "{:<26} {:>9.1}% {:>9.1}%",
        "failure (w/o holes)",
        cmp.legacy.failure_ratio_no_holes() * 100.0,
        cmp.rem.failure_ratio_no_holes() * 100.0
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "conflict loops",
        cmp.legacy.conflict_loops().count(),
        cmp.rem.conflict_loops().count()
    );
    println!(
        "{:<26} {:>8.0}ms {:>8.0}ms",
        "mean feedback delay",
        rem_num::stats::mean(&cmp.legacy.feedback_delays_ms),
        rem_num::stats::mean(&cmp.rem.feedback_delays_ms)
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "signaling messages",
        cmp.legacy.signaling.total_messages(),
        cmp.rem.signaling.total_messages()
    );
    if common.hash {
        let json = serde_json::to_string(cmp).map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    print_supervision(
        checked.retries,
        checked.resumed_trials,
        &checked.quarantined,
        &checked.overruns,
        &checked.health,
    );
    if session.wants_manifest(ckpt_path.as_deref()) {
        // A quarantined campaign still gets its trace and manifest
        // (that run is exactly the one worth diagnosing), but no
        // result hash: the comparison holds fallback values.
        let json = serde_json::to_string(cmp).map_err(|e| ArgError(format!("serialize: {e}")))?;
        let hash = checked.is_clean().then(|| obs::hash_string(&json));
        let manifest = obs::campaign_manifest(
            "compare",
            &campaign.fingerprint()?,
            2 * campaign.seeds.len(),
            &policy,
            &chaos,
            hash,
            scn_fp,
        )?;
        session.finish(&manifest, ckpt_path.as_deref())?;
    }
    if !checked.is_clean() {
        return Err(ExperimentError::Quarantined { trials: checked.quarantined }.into());
    }
    Ok(())
}

fn cmd_trace(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let spec = dataset(&a)?;
    let mut cfg = RunConfig::new(spec, plane(&a)?, a.int_or("seed", 42)?);
    cfg.record_trace = true;
    let out = a.get_or("out", "trace.jsonl").to_string();
    let m = simulate_run(&cfg);
    std::fs::write(&out, m.trace.to_jsonl())
        .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {} events to {out} ({} reports, {} commands, {} RLFs)",
        m.trace.len(),
        m.trace.count("MEAS_REPORT"),
        m.trace.count("HO_COMMAND"),
        m.trace.count("RLF"),
    );
    Ok(())
}

fn cmd_audit(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let file = a
        .positional()
        .first()
        .ok_or_else(|| ArgError("audit needs a policy JSON file".into()))?;
    let body = std::fs::read_to_string(file)
        .map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    let policies: Vec<CellPolicy> = serde_json::from_str(&body)
        .map_err(|e| ArgError(format!("bad policy JSON: {e}")))?;

    println!("loaded {} policies from {file}", policies.len());
    let conflicts = scan_conflicts(&policies, |_, _| true);
    for c in &conflicts {
        println!(
            "  conflict {:?} <-> {:?}: {} ({})",
            c.a,
            c.b,
            c.kinds,
            if c.intra_frequency { "intra-frequency" } else { "inter-frequency" }
        );
    }
    let g = a3_graph_from_policies(&policies);
    println!("Theorem 2 holds: {}", g.theorem2_holds());
    println!("persistent loop possible: {}", g.has_persistent_loop());
    for cycle in g.find_conflict_cycles(4) {
        println!("  negative cycle: {cycle:?}");
    }

    let fixed = rem_policies(&policies, &SimplifyConfig::default());
    let g2 = a3_graph_from_policies(&fixed);
    println!(
        "after REM simplification: conflicts {}, Theorem 2 {}, loops {}",
        scan_conflicts(&fixed, |_, _| true).len(),
        g2.theorem2_holds(),
        g2.has_persistent_loop()
    );
    Ok(())
}

fn cmd_bler(rest: Vec<String>) -> Result<(), CliError> {
    use rem_phy::link::{BlerScenario, Waveform};

    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    let scn = scenario_from(&a, &common)?;
    let (mut policy, chaos) = match &scn {
        Some(s) => (s.run_policy(), s.chaos()),
        None => (common.run_policy(), common.chaos()),
    };
    let session = ObsSession::begin(&common);
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);

    // Same seed for both waveforms: trial i sees the identical channel
    // and payload under each, so the comparison is paired.
    let (scenario, otfs_scenario) = if let Some(resume) = &common.resume {
        // The checkpoint carries both scenarios; link flags are
        // ignored, only the execution policy applies.
        let ckpt = rem_core::Checkpoint::load(Path::new(resume))?;
        if ckpt.kind != "bler" {
            return Err(ExperimentError::SpecMismatch {
                path: PathBuf::from(resume),
                detail: format!("kind '{}' is not a bler campaign", ckpt.kind),
            }
            .into());
        }
        let (s, o): (BlerScenario, BlerScenario) = serde_json::from_str(&ckpt.spec_json)
            .map_err(|e| ExperimentError::serde("bler scenarios in checkpoint", e))?;
        (s.with_threads(policy.threads), o.with_threads(policy.threads))
    } else if let Some(s) = &scn {
        (s.bler_scenario(Waveform::Ofdm), s.bler_scenario(Waveform::Otfs))
    } else {
        let s = BlerScenario::signaling(Waveform::Ofdm, link_model(a.get_or("model", "hst"))?)
            .with_speed_kmh(a.num_or("speed", 350.0)?)
            .with_snr_db(a.num_or("snr", 6.0)?)
            .with_blocks(a.int_or("blocks", 200)? as usize)
            .with_seed(a.int_or("seed", 1)?)
            .with_threads(policy.threads);
        let o = BlerScenario { cfg: rem_phy::link::LinkConfig::signaling(Waveform::Otfs), ..s };
        (s, o)
    };
    let blocks = scenario.blocks;

    // Trial space: [0, blocks) runs OFDM block i, [blocks, 2*blocks)
    // runs OTFS block i - blocks. The fingerprint pins both scenarios
    // at threads = 0 so a resume may change the worker count.
    let fingerprint =
        serde_json::to_string(&(scenario.with_threads(0), otfs_scenario.with_threads(0)))
            .map_err(|e| ExperimentError::serde("bler fingerprint", e))?;
    let ckpt_path = common.ckpt_path();
    arm_graceful_shutdown(&mut policy, ckpt_path.as_deref());
    let run =
        checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt_path.as_deref(), || {
            rem_core::run_trials_checkpointed(
                "bler",
                &fingerprint,
                2 * blocks,
                &policy,
                ckpt_path.as_deref(),
                |i, attempt| {
                    if let Some(c) = &chaos {
                        c.maybe_panic(i, attempt);
                    }
                    if i < blocks {
                        scenario.trial(i)
                    } else {
                        otfs_scenario.trial(i - blocks)
                    }
                },
            )
        })?;

    let (ofdm_outcomes, otfs_outcomes) = run.values.split_at(blocks);
    let bler = |outs: &[Option<rem_phy::BlockOutcome>]| {
        let done = outs.iter().flatten().count();
        outs.iter().flatten().filter(|o| !o.crc_ok).count() as f64 / done.max(1) as f64
    };
    println!(
        "{:?} @ {:.0} km/h, SNR {} dB, {} blocks:",
        scenario.model,
        rem_channel::doppler::ms_to_kmh(scenario.speed_ms),
        scenario.snr_db,
        blocks
    );
    println!("  legacy OFDM BLER: {:.3}", bler(ofdm_outcomes));
    println!("  REM OTFS BLER:    {:.3}", bler(otfs_outcomes));
    if common.hash {
        // Hash the full per-trial outcome record, not just the BLER:
        // any change in SINR or bit-error counts must move the digest.
        // `Vec<Option<T>>` with every slot `Some` serializes exactly
        // like `Vec<T>`, so clean-run digests match pre-checkpoint
        // releases.
        let json = serde_json::to_string(&(ofdm_outcomes, otfs_outcomes))
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    print_supervision(
        run.retries,
        run.resumed_trials,
        &run.quarantined,
        &run.overruns,
        &run.health,
    );
    if session.wants_manifest(ckpt_path.as_deref()) {
        let json = serde_json::to_string(&(ofdm_outcomes, otfs_outcomes))
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        let hash = run.is_clean().then(|| obs::hash_string(&json));
        let manifest = obs::campaign_manifest(
            "bler",
            &fingerprint,
            2 * blocks,
            &policy,
            &chaos,
            hash,
            scn_fp,
        )?;
        session.finish(&manifest, ckpt_path.as_deref())?;
    }
    if !run.is_clean() {
        return Err(ExperimentError::Quarantined { trials: run.quarantined }.into());
    }
    Ok(())
}

fn cmd_faults(rest: Vec<String>) -> Result<(), CliError> {
    use rem_mobility::FailureCause;

    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    let scn = scenario_from(&a, &common)?;
    let (mut policy, chaos) = match &scn {
        Some(s) => (s.run_policy(), s.chaos()),
        None => (common.run_policy(), common.chaos()),
    };
    // A fault campaign always injects: a scenario without a `[faults]`
    // section runs the stock schedule, exactly like the flag path.
    let (spec, pl, seeds, faults) = match &scn {
        Some(s) => (
            s.dataset(),
            s.single_plane().unwrap_or(Plane::Legacy),
            s.run.seeds.clone(),
            s.fault_config().unwrap_or_default(),
        ),
        None => {
            let n_seeds = common.seeds.unwrap_or(3);
            let scale = a.num_or("rate-scale", 1.0)?;
            (
                dataset(&a)?,
                plane(&a)?,
                (1..=n_seeds as u64).collect(),
                FaultConfig::default().scaled(scale),
            )
        }
    };
    faults.validate().map_err(ArgError)?;
    let session = ObsSession::begin(&common);

    println!(
        "{} @ {} km/h, {:?} plane, {} seeds, fault injection on",
        spec.name,
        spec.speed_kmh,
        pl,
        seeds.len()
    );
    let campaign = CampaignSpec::new(spec)
        .with_seeds(&seeds)
        .with_threads(policy.threads)
        .with_faults(faults);
    // `--checkpoint` doubles as resume: rerunning the same command with
    // an existing checkpoint computes only the missing trials.
    let ckpt = common.ckpt_path();
    arm_graceful_shutdown(&mut policy, ckpt.as_deref());
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);
    let checked = checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt.as_deref(), || {
        match &chaos {
            Some(c) => campaign
                .aggregate_checkpointed_with(pl, &policy, ckpt.as_deref(), |i, at| {
                    c.maybe_panic(i, at)
                }),
            None => campaign.aggregate_checkpointed(pl, &policy, ckpt.as_deref()),
        }
    })?;
    let m = &checked.metrics;

    println!("\ninjected faults:");
    for kind in FaultKind::all() {
        let n = m.injected.iter().filter(|f| f.kind == kind).count();
        println!("  {:<14} {:>4}", kind.label(), n);
    }
    println!("\nfailures {} / handovers {}:", m.failures.len(), m.handovers.len());
    for cause in [
        FailureCause::FeedbackDelayLoss,
        FailureCause::MissedCell,
        FailureCause::CommandLoss,
        FailureCause::CoverageHole,
    ] {
        let n = m.failures.iter().filter(|f| f.cause == cause).count();
        println!("  {cause:<18?} {n:>4}");
    }
    println!("\nrecovery:");
    println!("  re-establishment attempts {:>4}", m.reestablish_attempts);
    println!("  REM fallback epochs       {:>4}", m.rem_fallback_epochs);
    println!("  X2 backhaul messages      {:>4}", m.signaling.x2_messages);

    let mismatches = m.oracle_mismatches();
    println!(
        "\noracle: {} attributed failures, {} mismatched",
        m.fault_oracle.len(),
        mismatches.len()
    );
    for p in &mismatches {
        println!(
            "  t={:.0}ms {}: truth {:?}, classified {:?}",
            p.t_ms,
            p.kind.label(),
            p.truth,
            p.classified
        );
    }

    let verify = a.int_or("verify", 0)? as usize;
    if verify > 0 {
        let serial = campaign.clone().with_threads(1).aggregate(pl);
        let parallel = campaign.clone().with_threads(verify).aggregate(pl);
        let a_json = serde_json::to_string(&serial)
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        let b_json = serde_json::to_string(&parallel)
            .map_err(|e| ArgError(format!("serialize: {e}")))?;
        if a_json != b_json {
            eprintln!("error: 1-thread and {verify}-thread campaigns diverged");
            std::process::exit(1);
        }
        println!("\nverified: 1-thread and {verify}-thread campaigns are bit-identical");
    }

    if common.hash {
        let json = serde_json::to_string(m).map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    print_supervision(
        checked.retries,
        checked.resumed_trials,
        &checked.quarantined,
        &checked.overruns,
        &checked.health,
    );
    if session.wants_manifest(ckpt.as_deref()) {
        // Same fingerprint `aggregate_checkpointed` stores in the
        // checkpoint: the plane is part of the campaign identity.
        let fingerprint =
            serde_json::to_string(&(&campaign.spec, &campaign.seeds, &campaign.faults, pl))
                .map_err(|e| ArgError(format!("serialize: {e}")))?;
        let json = serde_json::to_string(m).map_err(|e| ArgError(format!("serialize: {e}")))?;
        let hash = checked.is_clean().then(|| obs::hash_string(&json));
        let manifest = obs::campaign_manifest(
            "aggregate",
            &fingerprint,
            campaign.seeds.len(),
            &policy,
            &chaos,
            hash,
            scn_fp,
        )?;
        session.finish(&manifest, ckpt.as_deref())?;
    }
    if !checked.is_clean() {
        return Err(ExperimentError::Quarantined { trials: checked.quarantined.clone() }.into());
    }
    if !mismatches.is_empty() {
        eprintln!("error: fault oracle found misclassified failures");
        std::process::exit(1);
    }
    Ok(())
}

/// `rem net study` — the Fig-9-style transport stall study: every
/// recovery policy (reno, frto, rem-informed) replays every pathology
/// scenario of the cellular-link fault taxonomy over the same
/// handover-outage baseline; stalls are classified by cause, bucketed
/// into duration histograms, and checked against the injected ground
/// truth. Runs under the same crash-safety machinery as the other
/// campaigns, so `--checkpoint`/`--resume`/`--hash`/chaos behave
/// exactly like `rem compare`.
fn cmd_net(rest: Vec<String>) -> Result<(), CliError> {
    use rem_core::rem_faults::{NetFaultConfig, NetFaultKind};
    use rem_core::{run_net_study, run_net_study_with, NetPolicy, NetStudySpec};

    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    match a.positional().first().map(String::as_str) {
        Some("study") => {}
        _ => {
            return Err(ArgError(
                "usage: rem net study [--scenario <file>] [--aggressive] [--seeds <n>] \
                 [--window-ms <ms>] [--loss <p>] [--json <file>] [--verify <n>] \
                 (see `rem help`)"
                    .to_string(),
            )
            .into())
        }
    }
    let scn = scenario_from(&a, &common)?;
    let (mut policy, chaos) = match &scn {
        Some(s) => (s.run_policy(), s.chaos()),
        None => (common.run_policy(), common.chaos()),
    };
    // Spec precedence: stock defaults, `--aggressive`, the scenario's
    // `[net]` section, then explicit flags.
    let mut spec = NetStudySpec::default();
    if a.flag("aggressive") {
        spec.faults = NetFaultConfig::aggressive();
    }
    match &scn {
        Some(s) => match s.net_study_spec() {
            Some(ns) => spec = ns,
            // A scenario without `[net]` still provides its seeds.
            None => spec.seeds = s.run.seeds.clone(),
        },
        None => {
            if let Some(n) = common.seeds {
                spec.seeds = (1..=n as u64).collect();
            }
        }
    }
    if let Some(v) = a.num_opt("window-ms")? {
        spec.window_ms = v;
    }
    if let Some(v) = a.num_opt("loss")? {
        spec.loss_prob = v;
    }
    spec.validate().map_err(ArgError)?;
    let session = ObsSession::begin(&common);

    println!(
        "net stall study: {} policies x {} pathologies x {} seeds, {:.0} s window",
        NetPolicy::all().len(),
        NetFaultKind::all().len(),
        spec.seeds.len(),
        spec.window_ms / 1e3,
    );
    let ckpt = common.ckpt_path();
    arm_graceful_shutdown(&mut policy, ckpt.as_deref());
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);
    let checked = checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt.as_deref(), || {
        match &chaos {
            Some(c) => run_net_study_with(&spec, &policy, ckpt.as_deref(), |i, at| {
                c.maybe_panic(i, at)
            }),
            None => run_net_study(&spec, &policy, ckpt.as_deref()),
        }
    })?;
    let report = &checked.report;

    println!(
        "\n{:<13} {:<16} {:>10} {:>7} {:>12} {:>7}",
        "policy", "pathology", "stall ms", "stalls", "acked bytes", "oracle"
    );
    for c in &report.cells {
        println!(
            "{:<13} {:<16} {:>10.0} {:>7} {:>12} {:>7}",
            c.policy.label(),
            c.pathology.label(),
            c.total_stall_ms,
            c.stalls,
            c.total_acked_bytes,
            if c.oracle_mismatches == 0 { "ok".to_string() } else { c.oracle_mismatches.to_string() },
        );
    }

    println!("\nstall duration histogram (count per bucket):");
    println!(
        "{:<13} {:<16} {:>6} {:>6} {:>6} {:>7} {:>6}",
        "policy", "pathology", "1-2s", "2-4s", "4-8s", "8-16s", "16s+"
    );
    for c in &report.cells {
        let h = &c.histogram;
        println!(
            "{:<13} {:<16} {:>6} {:>6} {:>6} {:>7} {:>6}",
            c.policy.label(),
            c.pathology.label(),
            h[0],
            h[1],
            h[2],
            h[3],
            h[4]
        );
    }

    println!("\nrecovery machinery (summed over pathologies):");
    for p in NetPolicy::all() {
        let cells: Vec<_> =
            report.cells.iter().filter(|c| c.policy == p).collect();
        println!(
            "  {:<13} spurious RTO {}/{} undone, {} reconnects, {:.0} ms frozen",
            p.label(),
            cells.iter().map(|c| c.spurious_rto_undone).sum::<u64>(),
            cells.iter().map(|c| c.spurious_rto_detected).sum::<u64>(),
            cells.iter().map(|c| c.reconnects).sum::<u64>(),
            cells.iter().map(|c| c.frozen_ms).sum::<f64>(),
        );
    }

    let wins = report.stall_wins(NetPolicy::RemInformed, NetPolicy::Reno);
    println!(
        "\nrem-informed stalls less than reno on {}/{} pathologies ({})",
        wins.len(),
        NetFaultKind::all().len(),
        wins.iter().map(|k| k.label()).collect::<Vec<_>>().join(", "),
    );

    let verify = a.int_or("verify", 0)? as usize;
    if verify > 0 {
        let serial =
            run_net_study(&spec, &RunPolicy { threads: 1, ..Default::default() }, None)?
                .into_result()?;
        let parallel =
            run_net_study(&spec, &RunPolicy { threads: verify, ..Default::default() }, None)?
                .into_result()?;
        if serial.to_json_pretty(&spec) != parallel.to_json_pretty(&spec) {
            eprintln!("error: 1-thread and {verify}-thread studies diverged");
            std::process::exit(1);
        }
        println!("\nverified: 1-thread and {verify}-thread studies are bit-identical");
    }

    let json = report.to_json_pretty(&spec);
    if let Some(path) = a.get("json") {
        std::fs::write(path, &json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }
    if common.hash {
        println!("hash: {}", obs::hash_string(&json));
    }
    print_supervision(
        checked.retries,
        checked.resumed_trials,
        &checked.quarantined,
        &checked.overruns,
        &checked.health,
    );
    if session.wants_manifest(ckpt.as_deref()) {
        let hash = checked.is_clean().then(|| obs::hash_string(&json));
        let mut manifest = obs::campaign_manifest(
            "net",
            &rem_core::net_study_fingerprint(&spec),
            spec.n_trials(),
            &policy,
            &chaos,
            hash,
            scn_fp,
        )?;
        manifest.net = serde_json::from_str(&format!(
            "{{\"policies\": {}, \"pathologies\": {}, \"stall_gap_ms\": {}, \
             \"oracle_slack_ms\": {}, \"window_ms\": {}}}",
            NetPolicy::all().len(),
            NetFaultKind::all().len(),
            rem_core::NET_STALL_GAP_MS,
            rem_core::NET_ORACLE_SLACK_MS,
            spec.window_ms,
        ))
        .ok();
        session.finish(&manifest, ckpt.as_deref())?;
    }
    if !checked.is_clean() {
        return Err(ExperimentError::Quarantined { trials: checked.quarantined.clone() }.into());
    }
    if report.oracle_mismatches() > 0 {
        eprintln!("error: stall oracle found unjustified stalls or recoveries");
        std::process::exit(1);
    }
    Ok(())
}

/// `rem train` (historically `rem storm`) — the whole-train
/// signaling-burst study over [`TrainScenario`], under the same
/// crash-safety machinery as the other campaigns: each client is an
/// independent checkpointable trial, so `--checkpoint`/`--resume`,
/// `--hash`, chaos injection and graceful SIGINT/SIGTERM shutdown all
/// behave exactly like `rem compare`. A `--resume` must repeat the
/// original flags (the checkpoint's fingerprint is verified).
fn cmd_train(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    let scn = scenario_from(&a, &common)?;
    let (mut policy, chaos) = match &scn {
        Some(s) => (s.run_policy(), s.chaos()),
        None => (common.run_policy(), common.chaos()),
    };
    let session = ObsSession::begin(&common);
    let ckpt_path = common.ckpt_path();
    arm_graceful_shutdown(&mut policy, ckpt_path.as_deref());
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);
    let train = match &scn {
        Some(s) => s.train_scenario(),
        None => {
            let cfg = RunConfig::new(dataset(&a)?, plane(&a)?, a.int_or("seed", 7)?);
            TrainScenario::new(cfg).with_clients(a.int_or("clients", 8)? as usize)
        }
    };
    let checked =
        checkpointed(&session, &policy, &chaos, scn_fp.clone(), ckpt_path.as_deref(), || {
            rem_core::run_train_checkpointed(&train, &policy, ckpt_path.as_deref(), |i, at| {
                if let Some(c) = &chaos {
                    c.maybe_panic(i, at);
                }
            })
        })?;
    let t = &checked.metrics;
    println!(
        "{} clients, {} messages total: mean {:.1} msg/s, peak {:.1} msg/s over {:.0} ms windows",
        t.n_clients, t.total_messages, t.mean_rate_per_s, t.peak_rate_per_s, t.window_ms
    );
    println!("handovers {} / failures {}", t.handovers, t.failures);
    if let Some(s) = &scn {
        println!("scenario: {}", s.fingerprint());
    }
    if common.hash {
        let json = serde_json::to_string(t).map_err(|e| ArgError(format!("serialize: {e}")))?;
        println!("hash: fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
    }
    print_supervision(
        checked.retries,
        checked.resumed_trials,
        &checked.quarantined,
        &checked.overruns,
        &checked.health,
    );
    if session.wants_manifest(ckpt_path.as_deref()) {
        let fingerprint = rem_core::train_fingerprint(&train)?;
        let json = serde_json::to_string(t).map_err(|e| ArgError(format!("serialize: {e}")))?;
        let hash = checked.is_clean().then(|| obs::hash_string(&json));
        let manifest = obs::campaign_manifest(
            "train",
            &fingerprint,
            train.clients,
            &policy,
            &chaos,
            hash,
            scn_fp,
        )?;
        session.finish(&manifest, ckpt_path.as_deref())?;
    }
    if !checked.is_clean() {
        return Err(ExperimentError::Quarantined { trials: checked.quarantined }.into());
    }
    Ok(())
}

/// `rem fleet` — the fleet-scale sharded corridor campaign: thousands
/// of trains with per-UE signaling state over a geographically sharded
/// corridor, bit-identical for every `--shards`/`--threads` choice.
/// Base configuration comes from the `[fleet]` scenario section when
/// `--scenario` is given; explicit flags win over the file.
fn cmd_fleet(rest: Vec<String>) -> Result<(), CliError> {
    use rem_core::rem_fleet::{run_fleet, RunOptions};

    let a = Args::parse(rest)?;
    let common = CommonArgs::parse(&a)?;
    let scn = scenario_from(&a, &common)?;
    let session = ObsSession::begin(&common);
    let scn_fp = scn.as_ref().map(ScenarioSpec::fingerprint);

    let mut spec = scn.as_ref().and_then(ScenarioSpec::fleet_spec).unwrap_or_default();
    if let Some(v) = a.int_opt("trains")? {
        spec.trains = v as u32;
    }
    if let Some(v) = a.int_opt("ues")? {
        spec.ues_per_train = v as u32;
    }
    if let Some(v) = a.num_opt("corridor-km")? {
        spec.corridor_km = v;
    }
    if let Some(v) = a.num_opt("cell-spacing-m")? {
        spec.cell_spacing_m = v;
    }
    if let Some(v) = a.num_opt("speed")? {
        spec.speed_kmh = v;
    }
    if let Some(v) = a.num_opt("jitter")? {
        spec.speed_jitter = v;
    }
    if let Some(v) = a.num_opt("headway")? {
        spec.headway_s = v;
    }
    if let Some(v) = a.num_opt("duration")? {
        spec.duration_s = v;
    }
    if let Some(v) = a.num_opt("epoch-ms")? {
        spec.epoch_ms = v;
    }
    if let Some(v) = a.int_opt("seed")? {
        spec.seed = v;
    }
    if let Some(v) = a.int_opt("shards")? {
        spec.shards = v as u32;
    }
    // A bad overlay is a bad invocation: same usage exit as a bad file.
    spec.validate().map_err(ArgError)?;

    let threads = common
        .threads
        .or_else(|| scn.as_ref().map(|s| s.run.threads))
        .unwrap_or(0);
    let opts = RunOptions { shards: spec.shards, threads };
    // Unreachable after the validate() above, but map it the same way.
    let (report, timing) = run_fleet(&spec, opts).map_err(ArgError)?;

    println!(
        "{} trains / {} UEs over {} cells ({} km corridor), {} epochs of {} ms",
        report.trains, report.ues, report.cells, spec.corridor_km, report.epochs, spec.epoch_ms
    );
    println!(
        "handovers {} (denied {}), rlfs {}, ue events {} (ue failures {})",
        report.handovers, report.denied, report.rlfs, report.ue_events, report.ue_failures
    );
    let sim_s = report.sim_window_ms as f64 / 1_000.0;
    println!(
        "wall {:.3} s ({:.0}x realtime), critical path {:.3} s, exchange {:.3} s, \
         {} shards x {} threads",
        timing.wall_s,
        sim_s / timing.wall_s.max(1e-9),
        timing.critical_path_s,
        timing.exchange_s,
        spec.shards,
        threads
    );
    if let Some(s) = &scn {
        println!("scenario: {}", s.fingerprint());
    }
    if common.hash {
        println!("hash: {}", report.result_hash());
    }
    if session.wants_manifest(None) {
        let policy = match &scn {
            Some(s) => s.run_policy(),
            None => common.run_policy(),
        };
        let mut manifest = obs::campaign_manifest(
            "fleet",
            &spec.fingerprint(),
            spec.trains as usize,
            &policy,
            // Chaos injection rides the trial runner, which the fleet
            // engine does not use; never record chaos that cannot fire.
            &None,
            Some(obs::hash_string(&report.to_json())),
            scn_fp,
        )?;
        manifest.fleet = Some(
            serde_json::to_value(&timing)
                .map_err(|e| ArgError(format!("serialize fleet timing: {e}")))?,
        );
        session.finish(&manifest, None)?;
    }
    Ok(())
}

/// Expands `rem scenario` positionals into concrete files: a directory
/// contributes every `*.toml` inside it, sorted by name.
fn scenario_files(paths: &[String]) -> Result<Vec<PathBuf>, CliError> {
    let mut files = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
                .map_err(|e| ArgError(format!("cannot read {}: {e}", path.display())))?
                .filter_map(|entry| entry.ok().map(|entry| entry.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(ArgError("no scenario files given (expected files or directories)".into())
            .into());
    }
    Ok(files)
}

/// `rem scenario validate|smoke <file-or-dir>...` — the CI gate over
/// the `scenarios/` directory. `validate` loads and fully validates
/// each file; `smoke` additionally replays a 1-seed paired comparison
/// so every shipped scenario is known to run end-to-end.
fn cmd_scenario(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let usage = || {
        CliError::Arg(ArgError(
            "usage: rem scenario validate|smoke <file-or-dir>... (see `rem help`)".to_string(),
        ))
    };
    let (verb, rest) = a.positional().split_first().ok_or_else(usage)?;
    let smoke = match verb.as_str() {
        "validate" => false,
        "smoke" => true,
        _ => return Err(usage()),
    };
    let files = scenario_files(rest)?;

    let mut failed = 0usize;
    for file in &files {
        match ScenarioSpec::load(file) {
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                failed += 1;
            }
            Ok(spec) => {
                println!("ok: {} ({})", file.display(), spec.fingerprint());
                if smoke {
                    let mut campaign = spec.campaign();
                    campaign.seeds.truncate(1);
                    let cmp = Comparison::run(&campaign);
                    println!(
                        "   1-seed smoke: legacy {:.1}% -> REM {:.1}% failures, \
                         {} + {} handovers",
                        cmp.legacy.failure_ratio() * 100.0,
                        cmp.rem.failure_ratio() * 100.0,
                        cmp.legacy.handovers.len(),
                        cmp.rem.handovers.len()
                    );
                }
            }
        }
    }
    if failed > 0 {
        return Err(ArgError(format!(
            "{failed} of {} scenario file(s) failed validation",
            files.len()
        ))
        .into());
    }
    Ok(())
}
