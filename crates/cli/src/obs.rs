//! CLI-side observability plumbing: the `--obs-trace` session, run
//! manifests, and the `rem obs` / `rem rerun` subcommands.
//!
//! A campaign command opens an [`ObsSession`] right after flag
//! parsing. When `--obs-trace <file>` is present the session resets
//! the metrics registry and activates the trace sink; when the
//! campaign finishes it drains the sink to `<file>` (JSONL), dumps
//! every metric to `<file>.metrics.prom` (Prometheus text format) and
//! writes the run manifest to `<file>.manifest.json`. Campaigns that
//! checkpoint also drop `<ckpt>.manifest.json` next to the checkpoint,
//! so every artifact on disk carries its own reproduction recipe:
//! `rem rerun <manifest>` replays the campaign from the manifest alone
//! and fails (exit 1) unless the recomputed `--hash` digest matches.

use crate::args::{ArgError, Args, CommonArgs};
use crate::CliError;
use rem_core::rem_faults::ChaosConfig;
use rem_core::{fnv1a64, RunPolicy};
use rem_obs::RunManifest;
use std::path::{Path, PathBuf};

/// Formats a result digest the way `--hash` prints it.
pub fn hash_string(json: &str) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes()))
}

/// `<path>.manifest.json` — the manifest written beside an artifact.
pub fn manifest_path_for(artifact: &Path) -> PathBuf {
    PathBuf::from(format!("{}.manifest.json", artifact.display()))
}

/// One command's observability scope, created right after flag
/// parsing so the whole campaign is covered.
pub struct ObsSession {
    trace_path: Option<PathBuf>,
}

impl ObsSession {
    /// Opens the session. With `--obs-trace <file>` this clears the
    /// metrics registry and activates the trace sink (warning on
    /// stderr when the binary was built without the `obs` feature and
    /// the file would stay empty).
    pub fn begin(c: &CommonArgs) -> Self {
        let trace_path = c.obs_trace.as_deref().map(PathBuf::from);
        if trace_path.is_some() {
            rem_obs::metrics::reset();
            if !rem_obs::trace::start() {
                eprintln!(
                    "warning: --obs-trace requested but probes are compiled out \
                     (build rem-cli with the default `obs` feature); \
                     trace and metrics will be empty"
                );
            }
        }
        Self { trace_path }
    }

    /// Closes the session: drains the trace sink to the `--obs-trace`
    /// file, dumps the metrics registry beside it, and writes the run
    /// manifest next to both the trace and any checkpoint file.
    pub fn finish(
        &self,
        manifest: &RunManifest,
        checkpoint: Option<&Path>,
    ) -> Result<(), CliError> {
        let io = |path: &Path, e: std::io::Error| {
            CliError::Arg(ArgError(format!("cannot write {}: {e}", path.display())))
        };
        if let Some(trace_path) = &self.trace_path {
            let events = rem_obs::trace::finish();
            std::fs::write(trace_path, rem_obs::trace::to_jsonl(&events))
                .map_err(|e| io(trace_path, e))?;
            let prom = PathBuf::from(format!("{}.metrics.prom", trace_path.display()));
            let snap = rem_obs::metrics::snapshot();
            std::fs::write(&prom, rem_obs::metrics::render_prometheus(&snap))
                .map_err(|e| io(&prom, e))?;
            let mpath = manifest_path_for(trace_path);
            manifest.save(&mpath).map_err(|e| CliError::Arg(ArgError(e)))?;
            println!(
                "obs: {} events -> {}, {} metrics -> {}, manifest -> {}",
                events.len(),
                trace_path.display(),
                snap.counters.len() + snap.histograms.len(),
                prom.display(),
                mpath.display()
            );
        }
        if let Some(ckpt) = checkpoint {
            let mpath = manifest_path_for(ckpt);
            manifest.save(&mpath).map_err(|e| CliError::Arg(ArgError(e)))?;
            println!("manifest -> {}", mpath.display());
        }
        Ok(())
    }

    /// True when anything will be written at [`ObsSession::finish`]
    /// (used to skip hash computation when nobody consumes it).
    pub fn wants_manifest(&self, checkpoint: Option<&Path>) -> bool {
        self.trace_path.is_some() || checkpoint.is_some()
    }
}

/// Builds a campaign manifest from the shared execution-policy flags.
/// `scenario` is the fingerprint of the `--scenario` file the run was
/// launched from, when there was one.
pub fn campaign_manifest(
    kind: &str,
    spec_json: &str,
    n_trials: usize,
    policy: &RunPolicy,
    chaos: &Option<ChaosConfig>,
    result_hash: Option<String>,
    scenario: Option<String>,
) -> Result<RunManifest, CliError> {
    let mut m = RunManifest::new(kind, spec_json, n_trials);
    m.threads = policy.threads;
    m.max_retries = policy.max_retries;
    m.trial_timeout_ms = policy.trial_timeout_ms;
    m.checkpoint_every = policy.checkpoint_every;
    m.chaos = match chaos {
        Some(c) => Some(
            serde_json::to_value(c)
                .map_err(|e| CliError::Arg(ArgError(format!("serialize chaos config: {e}"))))?,
        ),
        None => None,
    };
    m.result_hash = result_hash;
    m.scenario = scenario;
    Ok(m)
}

/// `rem obs <subcommand>` — offline tooling over observability
/// artifacts. `summarize <trace.jsonl>` prints order-independent
/// per-kind event counts.
pub fn cmd_obs(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let usage = || {
        CliError::Arg(ArgError(
            "usage: rem obs summarize <trace.jsonl> (see `rem help`)".to_string(),
        ))
    };
    let mut pos = a.positional().iter();
    match pos.next().map(String::as_str) {
        Some("summarize") => {
            let file = pos.next().ok_or_else(usage)?;
            let body = std::fs::read_to_string(file)
                .map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
            let events = rem_obs::trace::parse_jsonl(&body).map_err(ArgError)?;
            print!("{}", rem_obs::summary::summarize(&events));
            // SIMD/DSP provenance from the sibling manifest, when the
            // trace has one (traces from older runs or bare files
            // simply don't print these lines).
            if let Ok(m) = RunManifest::load(&manifest_path_for(Path::new(file))) {
                if !m.simd_dispatch.is_empty() {
                    println!("simd dispatch: {} (cpu: {})", m.simd_dispatch, m.cpu_features);
                }
                if !m.plan_cache.is_empty() {
                    println!("plan cache: {}", m.plan_cache);
                }
            }
            Ok(())
        }
        _ => Err(usage()),
    }
}

/// `rem rerun <manifest> [--threads N]` — replays the campaign a
/// manifest describes, from the manifest alone, and verifies the
/// recomputed result digest against the recorded one. Exit 1 on
/// mismatch: the artifact no longer reproduces.
pub fn cmd_rerun(rest: Vec<String>) -> Result<(), CliError> {
    use rem_core::{CampaignSpec, Comparison, DatasetSpec, FaultConfig, Plane};
    use rem_phy::link::BlerScenario;

    let a = Args::parse(rest)?;
    let file = a
        .positional()
        .first()
        .ok_or_else(|| ArgError("rerun needs a manifest file (see `rem help`)".to_string()))?;
    let manifest = RunManifest::load(Path::new(file)).map_err(ArgError)?;
    let policy =
        RunPolicy { threads: a.int_or("threads", 0)? as usize, ..RunPolicy::default() };
    println!(
        "rerunning {} campaign ({} trials) from {file}",
        manifest.kind, manifest.n_trials
    );

    let recomputed = match manifest.kind.as_str() {
        "compare" => {
            let (spec, seeds, faults): (DatasetSpec, Vec<u64>, Option<FaultConfig>) =
                serde_json::from_str(&manifest.spec_json).map_err(|e| {
                    ArgError(format!("manifest spec_json is not a compare fingerprint: {e}"))
                })?;
            let campaign = CampaignSpec { spec, seeds, threads: policy.threads, faults };
            let checked = Comparison::run_checkpointed(&campaign, &policy, None)?;
            let cmp = checked.into_result()?;
            serde_json::to_string(&cmp)
                .map_err(|e| ArgError(format!("serialize comparison: {e}")))?
        }
        "aggregate" => {
            let (spec, seeds, faults, plane): (
                DatasetSpec,
                Vec<u64>,
                Option<FaultConfig>,
                Plane,
            ) = serde_json::from_str(&manifest.spec_json).map_err(|e| {
                ArgError(format!("manifest spec_json is not an aggregate fingerprint: {e}"))
            })?;
            let campaign = CampaignSpec { spec, seeds, threads: policy.threads, faults };
            let checked = campaign.aggregate_checkpointed(plane, &policy, None)?;
            let metrics = checked.into_result()?;
            serde_json::to_string(&metrics)
                .map_err(|e| ArgError(format!("serialize metrics: {e}")))?
        }
        "bler" => {
            let (scenario, otfs_scenario): (BlerScenario, BlerScenario) =
                serde_json::from_str(&manifest.spec_json).map_err(|e| {
                    ArgError(format!("manifest spec_json is not a bler fingerprint: {e}"))
                })?;
            let blocks = scenario.blocks;
            let run = rem_core::run_trials_checkpointed(
                "bler",
                &manifest.spec_json,
                2 * blocks,
                &policy,
                None,
                |i, _attempt| {
                    if i < blocks {
                        scenario.trial(i)
                    } else {
                        otfs_scenario.trial(i - blocks)
                    }
                },
            )?;
            let (ofdm, otfs) = run.values.split_at(blocks);
            serde_json::to_string(&(ofdm, otfs))
                .map_err(|e| ArgError(format!("serialize outcomes: {e}")))?
        }
        "train" => {
            // The tuple written by `rem_core::train_fingerprint`.
            #[allow(clippy::type_complexity)]
            let (spec, plane, seed, clamp, ablation, faults, clients, train_len_m, window_ms): (
                rem_core::DatasetSpec,
                Plane,
                u64,
                bool,
                rem_sim::run::RemAblation,
                Option<FaultConfig>,
                usize,
                f64,
                f64,
            ) = serde_json::from_str(&manifest.spec_json).map_err(|e| {
                ArgError(format!("manifest spec_json is not a train fingerprint: {e}"))
            })?;
            let mut cfg = rem_core::RunConfig::new(spec, plane, seed);
            cfg.rem_clamp_offsets = clamp;
            cfg.ablation = ablation;
            cfg.faults = faults;
            let train = rem_sim::TrainScenario::new(cfg)
                .with_clients(clients)
                .with_train_len_m(train_len_m)
                .with_window_ms(window_ms);
            let checked =
                rem_core::run_train_checkpointed(&train, &policy, None, |_i, _at| {})?;
            let metrics = checked.into_result()?;
            serde_json::to_string(&metrics)
                .map_err(|e| ArgError(format!("serialize metrics: {e}")))?
        }
        "net" => {
            let spec: rem_core::NetStudySpec =
                serde_json::from_str(&manifest.spec_json).map_err(|e| {
                    ArgError(format!("manifest spec_json is not a net study fingerprint: {e}"))
                })?;
            let checked = rem_core::run_net_study(&spec, &policy, None)?;
            let report = checked.into_result()?;
            report.to_json_pretty(&spec)
        }
        "fleet" => {
            use rem_core::rem_fleet::{run_fleet, FleetSpec, RunOptions};
            let spec: FleetSpec = serde_json::from_str(&manifest.spec_json).map_err(|e| {
                ArgError(format!("manifest spec_json is not a fleet fingerprint: {e}"))
            })?;
            // Shards ride the spec; threads are this invocation's
            // choice — both are identity-free by construction.
            let opts = RunOptions { shards: spec.shards, threads: policy.threads };
            let (report, _timing) = run_fleet(&spec, opts).map_err(ArgError)?;
            report.to_json()
        }
        other => {
            return Err(ArgError(format!(
                "cannot rerun kind '{other}' (supported: compare, aggregate, bler, train, \
                 net, fleet)"
            ))
            .into())
        }
    };

    let digest = hash_string(&recomputed);
    match &manifest.result_hash {
        Some(expected) if *expected == digest => {
            println!("hash: {digest}");
            println!("reproduced: recomputed hash matches the manifest");
            Ok(())
        }
        Some(expected) => {
            eprintln!("error: hash mismatch — manifest {expected}, recomputed {digest}");
            std::process::exit(1);
        }
        None => {
            println!("hash: {digest}");
            println!("manifest records no result hash; nothing to verify");
            Ok(())
        }
    }
}
