//! `rem serve` — the resident campaign service.
//!
//! Thin shell over [`rem_serve::Server`]: parse flags into a
//! [`ServeConfig`], install the SIGINT/SIGTERM handler, start the
//! service, and block until a signal drains it. All the interesting
//! behaviour (durable queue, supervised workers, HTTP control plane)
//! lives in the `rem-serve` crate so tests can drive it in-process.

use crate::args::{ArgError, Args};
use crate::CliError;
use rem_serve::{signal, ServeConfig, Server};
use std::path::PathBuf;

/// Parses `rem serve` flags and runs the service to completion.
pub fn cmd_serve(rest: Vec<String>) -> Result<(), CliError> {
    let a = Args::parse(rest)?;
    let d = ServeConfig::default();
    let cfg = ServeConfig {
        listen: a.get_or("listen", &d.listen).to_string(),
        spool: PathBuf::from(a.get_or("spool", ".rem-spool")),
        workers: a.int_or("workers", d.workers as u64)? as usize,
        queue_capacity: a.int_or("queue-cap", d.queue_capacity as u64)? as usize,
        job_retries: a.int_or("job-retries", d.job_retries as u64)? as u32,
        job_threads: a.int_or("job-threads", d.job_threads as u64)? as usize,
        checkpoint_every: a.int_or("checkpoint-every", d.checkpoint_every as u64)? as usize,
        job_timeout_s: a.int_or("job-timeout-s", d.job_timeout_s)?,
    };
    if cfg.queue_capacity == 0 {
        return Err(ArgError("--queue-cap must be at least 1".into()).into());
    }
    if cfg.job_retries == 0 {
        return Err(ArgError("--job-retries must be at least 1".into()).into());
    }

    signal::install();
    let server = Server::start(&cfg)?;
    let recovered = server.stats().recovered_jobs.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "rem serve: listening on http://{} (spool {}, {} worker(s), queue cap {})",
        server.addr(),
        cfg.spool.display(),
        cfg.workers.max(1),
        cfg.queue_capacity
    );
    if recovered > 0 {
        println!("recovered {recovered} in-flight job(s) from the journal; resuming from checkpoints");
    }
    println!("routes: POST /jobs  GET /jobs  GET /jobs/<id>  GET /healthz  GET /metrics");
    server.run_to_completion();
    println!("rem serve: drained cleanly (queue state persisted; restart resumes in-flight jobs)");
    Ok(())
}
