//! A tiny argument parser: `--key value` flags with typed lookups and
//! helpful errors, plus [`CommonArgs`] — the one flattened struct
//! holding the execution knobs every campaign subcommand shares.

use rem_core::rem_faults::ChaosConfig;
use rem_core::scenario::RunSpec;
use rem_core::RunPolicy;
use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed `--key value` flags plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Parse error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parses a raw token stream (without the program/subcommand names).
    /// A `--key` followed by another `--flag` (or nothing) is a boolean
    /// switch; otherwise the next token is its value.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let val = it.next().expect("peeked");
                        out.flags.insert(key.to_string(), val);
                    }
                    _ => {
                        out.flags.insert(key.to_string(), String::new());
                    }
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// True when `--key` was present at all (with or without a value).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// String flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Numeric flag with a default.
    pub fn num_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Integer flag with a default.
    pub fn int_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Integer flag, `None` when absent.
    pub fn int_opt(&self, key: &str) -> Result<Option<u64>, ArgError> {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'")))
            })
            .transpose()
    }

    /// Numeric flag, `None` when absent.
    pub fn num_opt(&self, key: &str) -> Result<Option<f64>, ArgError> {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'")))
            })
            .transpose()
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// The execution flags shared by every campaign subcommand (`compare`,
/// `bler`, `faults`, `train`): scenario file, threads, seeds, result
/// hashing, checkpointing, crash-safety, chaos injection and the
/// observability trace. Parsed once instead of per-command.
///
/// Every knob is presence-aware (`None`/`false` = the flag was
/// absent), so the same struct serves both modes: falling back to the
/// CLI defaults when no scenario file is involved, and overriding only
/// what the user actually typed on top of a loaded `--scenario` spec.
#[derive(Clone, Debug, Default)]
pub struct CommonArgs {
    /// `--scenario <file>` — declarative base configuration.
    pub scenario: Option<String>,
    /// `--threads <n>` (`0` = all cores).
    pub threads: Option<usize>,
    /// `--seeds <n>` — Monte-Carlo seed count (expands to `1..=n`).
    pub seeds: Option<usize>,
    /// `--hash` — print the FNV-1a 64 result digest.
    pub hash: bool,
    /// `--checkpoint <file>`.
    pub checkpoint: Option<String>,
    /// `--resume <file>`.
    pub resume: Option<String>,
    /// `--checkpoint-every <n>` — trials per checkpoint wave.
    pub checkpoint_every: Option<usize>,
    /// `--max-retries <n>` — panicking-trial retries before quarantine.
    pub max_retries: Option<u32>,
    /// `--trial-timeout-ms <ms>` (`0` disables the deadline).
    pub trial_timeout_ms: Option<u64>,
    /// `--chaos-panic <rate>` — deterministic trial-panic injection.
    pub chaos_panic: Option<f64>,
    /// `--chaos-fatal` — chaos panics persist past retries.
    pub chaos_fatal: bool,
    /// `--chaos-seed <n>` — chaos stream seed.
    pub chaos_seed: Option<u64>,
    /// `--obs-trace <file>` — observability trace destination.
    pub obs_trace: Option<String>,
}

impl CommonArgs {
    /// Extracts the shared flags from a parsed token stream, validating
    /// values that have a legal range.
    pub fn parse(a: &Args) -> Result<Self, ArgError> {
        let c = Self {
            scenario: a.get("scenario").map(String::from),
            threads: a.int_opt("threads")?.map(|n| n as usize),
            seeds: a.int_opt("seeds")?.map(|n| n as usize),
            hash: a.flag("hash"),
            checkpoint: a.get("checkpoint").map(String::from),
            resume: a.get("resume").map(String::from),
            checkpoint_every: a.int_opt("checkpoint-every")?.map(|n| n as usize),
            max_retries: a.int_opt("max-retries")?.map(|n| n as u32),
            trial_timeout_ms: a.int_opt("trial-timeout-ms")?,
            chaos_panic: a.num_opt("chaos-panic")?,
            chaos_fatal: a.flag("chaos-fatal"),
            chaos_seed: a.int_opt("chaos-seed")?,
            obs_trace: a.get("obs-trace").map(String::from),
        };
        if let Some(rate) = c.chaos_panic {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ArgError(format!(
                    "--chaos-panic expects a rate in [0,1], got {rate}"
                )));
            }
        }
        Ok(c)
    }

    /// Folds the explicit flags into a scenario's `[run]` section:
    /// whatever the user typed wins, everything else keeps the file's
    /// value.
    pub fn overlay_run(&self, run: &mut RunSpec) {
        if let Some(t) = self.threads {
            run.threads = t;
        }
        if let Some(n) = self.seeds {
            run.seeds = (1..=n as u64).collect();
        }
        if let Some(n) = self.checkpoint_every {
            run.checkpoint_every = n;
        }
        if let Some(n) = self.max_retries {
            run.max_retries = n;
        }
        if let Some(ms) = self.trial_timeout_ms {
            run.trial_timeout_ms = (ms > 0).then_some(ms);
        }
        if let Some(rate) = self.chaos_panic {
            run.chaos_panic_rate = rate;
        }
        if self.chaos_fatal {
            run.chaos_fatal = true;
        }
        if let Some(seed) = self.chaos_seed {
            run.chaos_seed = seed;
        }
    }

    /// The crash-safety policy from flags alone, with the historical
    /// CLI defaults for anything absent.
    pub fn run_policy(&self) -> RunPolicy {
        RunPolicy {
            threads: self.threads.unwrap_or(0),
            max_retries: self.max_retries.unwrap_or(1),
            trial_timeout_ms: self.trial_timeout_ms.filter(|&ms| ms > 0),
            checkpoint_every: self.checkpoint_every.unwrap_or(16),
            cancel: None,
        }
    }

    /// The chaos config from flags alone; `None` when chaos is off.
    pub fn chaos(&self) -> Option<ChaosConfig> {
        let rate = self.chaos_panic.unwrap_or(0.0);
        (rate > 0.0).then(|| ChaosConfig {
            seed: self.chaos_seed.unwrap_or(7),
            panic_rate: rate,
            fatal: self.chaos_fatal,
        })
    }

    /// The checkpoint file the runner should use: `--resume` doubles as
    /// the write path, else `--checkpoint`.
    pub fn ckpt_path(&self) -> Option<PathBuf> {
        self.resume.as_deref().or(self.checkpoint.as_deref()).map(PathBuf::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(toks("--speed 300 input.json --seeds 4")).unwrap();
        assert_eq!(a.get_or("speed", "0"), "300");
        assert_eq!(a.int_or("seeds", 1).unwrap(), 4);
        assert_eq!(a.positional(), &["input.json".to_string()]);
    }

    #[test]
    fn defaults_and_requirements() {
        let a = Args::parse(toks("--x 1")).unwrap();
        assert_eq!(a.num_or("y", 2.5).unwrap(), 2.5);
        assert!(a.require("z").is_err());
        assert_eq!(a.require("x").unwrap(), "1");
    }

    #[test]
    fn bad_values_error() {
        let a = Args::parse(toks("--n abc")).unwrap();
        assert!(a.int_or("n", 0).is_err());
        assert!(a.num_or("n", 0.0).is_err());
    }

    #[test]
    fn boolean_switches() {
        let a = Args::parse(toks("--hash --seeds 4 --verbose")).unwrap();
        assert!(a.flag("hash"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("absent"));
        assert_eq!(a.int_or("seeds", 1).unwrap(), 4);
    }

    #[test]
    fn common_args_defaults_match_the_historical_cli() {
        let c = CommonArgs::parse(&Args::parse(toks("")).unwrap()).unwrap();
        let p = c.run_policy();
        assert_eq!(p.threads, 0);
        assert_eq!(p.max_retries, 1);
        assert_eq!(p.trial_timeout_ms, None);
        assert_eq!(p.checkpoint_every, 16);
        assert!(c.chaos().is_none());
        assert!(c.ckpt_path().is_none());
        assert!(!c.hash);
    }

    #[test]
    fn common_args_overlay_only_touches_present_flags() {
        let a = Args::parse(toks("--threads 4 --seeds 3 --chaos-panic 0.5")).unwrap();
        let c = CommonArgs::parse(&a).unwrap();
        let mut run = RunSpec { checkpoint_every: 99, ..RunSpec::default() };
        c.overlay_run(&mut run);
        assert_eq!(run.threads, 4);
        assert_eq!(run.seeds, vec![1, 2, 3]);
        assert_eq!(run.checkpoint_every, 99, "absent flag must keep the spec value");
        assert_eq!(run.chaos_panic_rate, 0.5);
        assert_eq!(run.chaos_seed, 7, "absent flag must keep the spec value");
    }

    #[test]
    fn common_args_validates_the_chaos_rate() {
        let a = Args::parse(toks("--chaos-panic 1.5")).unwrap();
        assert!(CommonArgs::parse(&a).is_err());
    }

    #[test]
    fn resume_doubles_as_the_checkpoint_path() {
        let a = Args::parse(toks("--resume r.ckpt --checkpoint c.ckpt")).unwrap();
        let c = CommonArgs::parse(&a).unwrap();
        assert_eq!(c.ckpt_path().unwrap(), PathBuf::from("r.ckpt"));
    }
}
