//! A tiny, dependency-free argument parser: `--key value` flags with
//! typed lookups and helpful errors.

use std::collections::HashMap;

/// Parsed `--key value` flags plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

/// Parse error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parses a raw token stream (without the program/subcommand names).
    /// A `--key` followed by another `--flag` (or nothing) is a boolean
    /// switch; otherwise the next token is its value.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let val = it.next().expect("peeked");
                        out.flags.insert(key.to_string(), val);
                    }
                    _ => {
                        out.flags.insert(key.to_string(), String::new());
                    }
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// True when `--key` was present at all (with or without a value).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// String flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Numeric flag with a default.
    pub fn num_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Integer flag with a default.
    pub fn int_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(toks("--speed 300 input.json --seeds 4")).unwrap();
        assert_eq!(a.get_or("speed", "0"), "300");
        assert_eq!(a.int_or("seeds", 1).unwrap(), 4);
        assert_eq!(a.positional(), &["input.json".to_string()]);
    }

    #[test]
    fn defaults_and_requirements() {
        let a = Args::parse(toks("--x 1")).unwrap();
        assert_eq!(a.num_or("y", 2.5).unwrap(), 2.5);
        assert!(a.require("z").is_err());
        assert_eq!(a.require("x").unwrap(), "1");
    }

    #[test]
    fn bad_values_error() {
        let a = Args::parse(toks("--n abc")).unwrap();
        assert!(a.int_or("n", 0).is_err());
        assert!(a.num_or("n", 0.0).is_err());
    }

    #[test]
    fn boolean_switches() {
        let a = Args::parse(toks("--hash --seeds 4 --verbose")).unwrap();
        assert!(a.flag("hash"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("absent"));
        assert_eq!(a.int_or("seeds", 1).unwrap(), 4);
    }
}
