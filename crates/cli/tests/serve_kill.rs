//! Black-box `kill -9` drill against the real `rem` binary: start the
//! service, submit a job, SIGKILL the process mid-run, restart on the
//! same spool, and require zero lost jobs plus a result hash identical
//! to a one-shot `rem compare --scenario <f> --hash` run. Finishes
//! with a SIGTERM to check the graceful-drain exit path (exit 0).
#![cfg(unix)]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// 2 planes x 4 seeds with per-trial checkpoints: slow enough that the
/// SIGKILL below lands mid-campaign, fast enough for CI.
const SCENARIO: &str = r#"
format = "REMSCENARIO1"
name = "kill-drill"

[trajectory]
speed_kmh = 300
route_km = 8

[run]
seeds = 4
checkpoint_every = 1
"#;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rem-serve-kill-test")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to service");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Starts `rem serve` on the spool and waits for `<spool>/serve.addr`.
fn start_service(spool: &Path) -> (Child, SocketAddr) {
    let addr_file = spool.join("serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_rem"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--spool",
            spool.to_str().expect("utf-8 spool path"),
            "--checkpoint-every",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn rem serve");
    let start = Instant::now();
    loop {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = s.trim().parse::<SocketAddr>() {
                return (child, addr);
            }
        }
        assert!(start.elapsed() < Duration::from_secs(60), "service never published its address");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Substring-extracts `"field":"value"` from a JSON body.
fn json_str_field(body: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":\"");
    let start = body.find(&key)? + key.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

/// The reference digest from the one-shot CLI path.
fn one_shot_hash(scenario_file: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_rem"))
        .args(["compare", "--scenario", scenario_file.to_str().unwrap(), "--hash"])
        .output()
        .expect("run rem compare");
    assert!(out.status.success(), "one-shot compare failed: {:?}", out);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("hash: "))
        .unwrap_or_else(|| panic!("no hash line in:\n{stdout}"))
        .to_string()
}

#[test]
fn sigkill_midrun_loses_no_jobs_and_reproduces_the_hash() {
    let spool = scratch("spool");
    let scenario_file = spool.join("kill-drill.toml");
    std::fs::write(&scenario_file, SCENARIO).expect("write scenario");

    // Round 1: submit, wait until the job is provably mid-run (state
    // Running and a checkpoint wave on disk), then SIGKILL.
    let (mut child, addr) = start_service(&spool);
    let (status, body) = http(addr, "POST", "/jobs", SCENARIO);
    assert_eq!(status, 201, "submit: {body}");
    let ckpt = spool.join("jobs").join("job-1.ckpt");
    let start = Instant::now();
    let mut saw_running = false;
    while start.elapsed() < Duration::from_secs(120) {
        let (_, jobs) = http(addr, "GET", "/jobs", "");
        if jobs.contains("\"state\":\"Done\"") {
            break; // Too fast to catch mid-run; the drill degrades gracefully.
        }
        if jobs.contains("\"state\":\"Running\"") && ckpt.exists() {
            saw_running = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the service");
    let _ = child.wait();

    // Round 2: restart on the same spool. The journal must still hold
    // the job, the service must report the recovery, and the job must
    // finish with the hash an uninterrupted one-shot run produces.
    let (child, addr) = start_service(&spool);
    let start = Instant::now();
    let job = loop {
        let (status, body) = http(addr, "GET", "/jobs/1", "");
        assert_eq!(status, 200, "job 1 lost after SIGKILL: {body}");
        if body.contains("\"state\":\"Done\"") {
            break body;
        }
        assert!(
            !body.contains("\"state\":\"Quarantined\""),
            "job quarantined instead of recovered: {body}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(300),
            "job did not finish after restart: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    let got = json_str_field(&job, "result_hash").expect("done job has a result hash");
    assert_eq!(got, one_shot_hash(&scenario_file), "service result diverged from one-shot run");

    let (_, health) = http(addr, "GET", "/healthz", "");
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    if saw_running {
        assert!(
            health.contains("\"recovered_jobs\":1"),
            "healthz must report the recovery: {health}"
        );
        assert!(
            metrics.contains("rem_serve_recovered_jobs_total 1"),
            "metrics must report the recovery:\n{metrics}"
        );
    }
    assert!(metrics.contains("rem_serve_queue_depth 0"), "queue drained:\n{metrics}");

    // Round 3: graceful exit — SIGTERM must drain and exit 0.
    let pid = child.id().to_string();
    let term = Command::new("kill").args(["-TERM", &pid]).status().expect("send SIGTERM");
    assert!(term.success());
    let mut child = child;
    let status = child.wait().expect("wait for drained service");
    assert!(status.success(), "graceful drain must exit 0, got {status:?}");

    let _ = std::fs::remove_dir_all(&spool);
}
