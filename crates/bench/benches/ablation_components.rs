//! Component ablation (beyond the paper's figures): which of REM's
//! three mechanisms — OTFS signaling, cross-band feedback, simplified
//! conflict-free policy — contributes how much of the failure
//! reduction? Each variant disables one component and replays the
//! same environments.

use rem_bench::{bench_args, header, pct, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane, RunMetrics};
use rem_sim::run::RemAblation;

fn run(
    spec: &DatasetSpec,
    plane: Plane,
    ablation: RemAblation,
    clamp: bool,
    threads: usize,
) -> RunMetrics {
    CampaignSpec::new(spec.clone()).with_threads(threads).aggregate_with(plane, |cfg| {
        cfg.ablation = ablation;
        cfg.rem_clamp_offsets = clamp;
    })
}

fn main() {
    let args = bench_args();
    header("Ablation: REM component contributions (300 km/h, Beijing-Shanghai)");
    let spec = DatasetSpec::beijing_shanghai(ROUTE_KM, 300.0);
    let full = RemAblation::default();
    let no_otfs = RemAblation { otfs_signaling: false, ..full };
    let no_xband = RemAblation { crossband_feedback: false, ..full };

    let variants: [(&str, Plane, RemAblation, bool); 5] = [
        ("legacy (baseline)", Plane::Legacy, full, true),
        ("REM full", Plane::Rem, full, true),
        ("REM - OTFS signaling", Plane::Rem, no_otfs, true),
        ("REM - cross-band feedback", Plane::Rem, no_xband, true),
        ("REM - conflict repair", Plane::Rem, full, false),
    ];
    println!(
        "{:<28} {:>9} {:>10} {:>12} {:>8}",
        "variant", "failures", "w/o holes", "fb delay ms", "loops"
    );
    for (name, plane, ablation, clamp) in variants {
        let m = run(&spec, plane, ablation, clamp, args.threads);
        println!(
            "{:<28} {:>9} {:>10} {:>12.0} {:>8}",
            name,
            pct(m.failure_ratio()),
            pct(m.failure_ratio_no_holes()),
            rem_num::stats::mean(&m.feedback_delays_ms),
            m.conflict_loops().count(),
        );
    }
    println!("\nEach removed component should cost reliability relative to 'REM full'.");
}
