//! Fig 2: unreliable handover triggering & execution.
//! (a) measurement/feedback delay CDF, HSR vs driving;
//! (b) block-error-rate CDF in the 5 s before signaling-loss failures.

use rem_bench::{bench_args, header, print_cdf, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane};
use rem_mobility::feedback::{sample_feedback_delays, MeasurementTiming};
use rem_num::rng::rng_from_seed;

fn main() {
    let args = bench_args();
    header("Fig 2a: measurement delay CDF (legacy feedback pipeline)");
    let t = MeasurementTiming::default();
    let mut rng = rng_from_seed(1);
    let hsr: Vec<f64> =
        sample_feedback_delays(5000, &t, &mut rng).iter().map(|d| d.0 / 1e3).collect();
    // Driving: fewer inter-frequency candidates are configured.
    let mut rng = rng_from_seed(2);
    let driving: Vec<f64> = sample_feedback_delays(5000, &t, &mut rng)
        .iter()
        .map(|d| (d.0 * 0.6) / 1e3) // sparser carrier layout
        .collect();
    print_cdf("HSR (100-350 km/h)", &hsr, 12, "s");
    print_cdf("Driving (30-100 km/h)", &driving, 12, "s");
    println!("paper: HSR average 800 ms, long tail to several seconds");

    header("Fig 2b: block error rate before signaling-loss failures");
    let spec = DatasetSpec::beijing_shanghai(ROUTE_KM, 325.0);
    let agg = CampaignSpec::new(spec).with_threads(args.threads).aggregate(Plane::Legacy);
    let ul: Vec<f64> = agg.bler_before_failure_ul.iter().map(|b| b * 100.0).collect();
    let dl: Vec<f64> = agg.bler_before_failure_dl.iter().map(|b| b * 100.0).collect();
    print_cdf("uplink (measurement feedback)", &ul, 11, "%");
    print_cdf("downlink (handover command)", &dl, 11, "%");
    println!(
        "mean BLER before failures: UL {:.1}% DL {:.1}%  (paper: UL 9.9%, DL 30.3%)",
        rem_num::stats::mean(&ul),
        rem_num::stats::mean(&dl)
    );
}
