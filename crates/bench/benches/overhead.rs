//! Signaling overhead (paper §7.2 closing claim: "REM retains marginal
//! overhead of signaling traffic and latency without hurting data
//! transfer"). Counts the signaling messages each plane generates on
//! identical replays, plus the SFFT processing cost REM adds
//! (O(MN log MN), §5.1 — compare the measured kernel in
//! `dsp_throughput`).

use rem_bench::{bench_args, header, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane, RunMetrics};

fn agg(spec: &DatasetSpec, plane: Plane, threads: usize) -> RunMetrics {
    CampaignSpec::new(spec.clone()).with_threads(threads).aggregate(plane)
}

fn main() {
    let args = bench_args();
    header("Signaling overhead: legacy vs REM on identical replays");
    println!(
        "{:<24} {:>8} {:>9} {:>9} {:>10} {:>10} {:>11}",
        "scenario", "plane", "reports", "commands", "reconfigs", "HARQ tx", "msgs/min"
    );
    for (name, spec) in [
        ("BT 250 km/h", DatasetSpec::beijing_taiyuan(ROUTE_KM, 250.0)),
        ("BS 325 km/h", DatasetSpec::beijing_shanghai(ROUTE_KM, 325.0)),
        ("LA 50 km/h", DatasetSpec::la_driving(ROUTE_KM, 50.0)),
    ] {
        for plane in [Plane::Legacy, Plane::Rem] {
            let m = agg(&spec, plane, args.threads);
            println!(
                "{:<24} {:>8} {:>9} {:>9} {:>10} {:>10} {:>11.1}",
                name,
                format!("{plane:?}"),
                m.signaling.reports,
                m.signaling.commands,
                m.signaling.reconfigs,
                m.signaling.harq_transmissions,
                m.signaling_rate_per_min(),
            );
        }
    }
    println!("\nREM sends no reconfigurations (no multi-stage policy) and fewer");
    println!("retransmissions (OTFS messages rarely need HARQ); its extra cost is");
    println!("the SFFT pre/post-processing — see `dsp_throughput` (~34 us/subframe).");

    header("Data-speed benefit (paper §8): measurement gaps saved");
    use rem_mobility::feedback::{continuous_interfreq_overhead, MeasurementGapCfg};
    for (freqs, pat, name) in [
        (1usize, MeasurementGapCfg::pattern0(), "1 inter-freq, 6ms/40ms"),
        (2, MeasurementGapCfg::pattern1(), "2 inter-freq, 6ms/80ms"),
        (3, MeasurementGapCfg::pattern1(), "3 inter-freq, 6ms/80ms"),
    ] {
        let oh = continuous_interfreq_overhead(freqs, &pat);
        println!(
            "  {:<26} legacy (no multi-stage) loses {:>5.1}% of spectrum; REM loses 0%",
            name,
            oh * 100.0
        );
    }
    println!("  (paper: 38.3-61.7% — cross-band estimation removes the gaps entirely)");
}
