//! 5G numerology ablation (paper §3.4): larger subcarrier spacing
//! shortens symbols, shrinking Doppler-induced ICI and CSI aging — but
//! even mu=2 does not close the legacy/REM gap at 350 km/h, supporting
//! the paper's claim that 5G's OFDM refinements inherit the problem.

use rem_bench::header;
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_channel::DdGrid;
use rem_num::rng::rng_from_seed;
use rem_phy::link::{measure_bler, CsiModel, LinkConfig, OtfsReceiver, Waveform};
use rem_phy::Modulation;

fn main() {
    header("Ablation: 5G NR numerologies at 350 km/h (HST, SNR 6 dB)");
    println!("{:>4} {:>10} {:>12} {:>10}", "mu", "SCS kHz", "legacy OFDM", "REM OTFS");
    let blocks = 200;
    for mu in 0..=2u32 {
        let grid = DdGrid::nr(mu, 12, 14);
        let ofdm_cfg = LinkConfig {
            grid,
            modulation: Modulation::Qpsk,
            waveform: Waveform::Ofdm,
            csi: CsiModel::PilotHold { period: 4 },
            otfs_receiver: OtfsReceiver::TwoStep,
        };
        let otfs_cfg = LinkConfig {
            grid,
            modulation: Modulation::Qpsk,
            waveform: Waveform::Otfs,
            csi: CsiModel::DdProfile,
            otfs_receiver: OtfsReceiver::TwoStep,
        };
        let mut r1 = rng_from_seed(21);
        let ofdm = measure_bler(&ofdm_cfg, ChannelModel::Hst, kmh_to_ms(350.0), 2.6e9, 6.0, blocks, &mut r1);
        let mut r2 = rng_from_seed(21);
        let otfs = measure_bler(&otfs_cfg, ChannelModel::Hst, kmh_to_ms(350.0), 2.6e9, 6.0, blocks, &mut r2);
        println!("{mu:>4} {:>10} {ofdm:>12.3} {otfs:>10.3}", 15 * (1 << mu));
    }
    println!("\nHigher SCS helps legacy OFDM (shorter symbols age less) but the");
    println!("delay-Doppler overlay stays ahead at every numerology.");

    header("5G dense small cells at 300 km/h (campaign level)");
    use rem_core::{Comparison, DatasetSpec};
    let lte = Comparison::run(&DatasetSpec::beijing_shanghai(30.0, 300.0), &[1, 2]);
    let nr = Comparison::run(&DatasetSpec::nr_smallcell(30.0, 300.0), &[1, 2]);
    println!(
        "{:<16} {:>9} {:>12} {:>12}",
        "deployment", "HO int.", "legacy fail", "REM fail"
    );
    for (name, cmp) in [("LTE macro", &lte), ("5G small-cell", &nr)] {
        println!(
            "{:<16} {:>8.1}s {:>11.1}% {:>11.1}%",
            name,
            cmp.legacy.avg_handover_interval_s(),
            cmp.legacy.failure_ratio() * 100.0,
            cmp.rem.failure_ratio() * 100.0,
        );
    }
    println!("(§3.4: denser cells -> shorter handover intervals and more failures;");
    println!(" REM keeps its margin on the 5G layout too)");
}
