//! 5G numerology ablation (paper §3.4): larger subcarrier spacing
//! shortens symbols, shrinking Doppler-induced ICI and CSI aging — but
//! even mu=2 does not close the legacy/REM gap at 350 km/h, supporting
//! the paper's claim that 5G's OFDM refinements inherit the problem.
//!
//! Usage: `cargo bench --bench ablation_numerology -- [blocks] [--threads N]`

use rem_bench::{bench_args, header};
use rem_channel::models::ChannelModel;
use rem_channel::DdGrid;
use rem_phy::link::{BlerScenario, CsiModel, LinkConfig, OtfsReceiver, Waveform};
use rem_phy::Modulation;

fn main() {
    let args = bench_args();
    header("Ablation: 5G NR numerologies at 350 km/h (HST, SNR 6 dB)");
    println!("{:>4} {:>10} {:>12} {:>10}", "mu", "SCS kHz", "legacy OFDM", "REM OTFS");
    let blocks = args.trials_or(200);
    for mu in 0..=2u32 {
        let grid = DdGrid::nr(mu, 12, 14);
        let ofdm_cfg = LinkConfig {
            grid,
            modulation: Modulation::Qpsk,
            waveform: Waveform::Ofdm,
            csi: CsiModel::PilotHold { period: 4 },
            otfs_receiver: OtfsReceiver::TwoStep,
        };
        let otfs_cfg = LinkConfig {
            grid,
            modulation: Modulation::Qpsk,
            waveform: Waveform::Otfs,
            csi: CsiModel::DdProfile,
            otfs_receiver: OtfsReceiver::TwoStep,
        };
        // Shared seed 21: the waveforms see identical channel draws.
        let base = BlerScenario::new(ofdm_cfg, ChannelModel::Hst)
            .with_blocks(blocks)
            .with_seed(21)
            .with_threads(args.threads);
        let ofdm = base.run();
        let otfs = BlerScenario { cfg: otfs_cfg, ..base }.run();
        println!("{mu:>4} {:>10} {ofdm:>12.3} {otfs:>10.3}", 15 * (1 << mu));
    }
    println!("\nHigher SCS helps legacy OFDM (shorter symbols age less) but the");
    println!("delay-Doppler overlay stays ahead at every numerology.");

    header("5G dense small cells at 300 km/h (campaign level)");
    use rem_core::{CampaignSpec, Comparison, DatasetSpec};
    let campaign = |spec| {
        CampaignSpec::new(spec).with_seeds(&[1, 2]).with_threads(args.threads)
    };
    let lte = Comparison::run(&campaign(DatasetSpec::beijing_shanghai(30.0, 300.0)));
    let nr = Comparison::run(&campaign(DatasetSpec::nr_smallcell(30.0, 300.0)));
    println!(
        "{:<16} {:>9} {:>12} {:>12}",
        "deployment", "HO int.", "legacy fail", "REM fail"
    );
    for (name, cmp) in [("LTE macro", &lte), ("5G small-cell", &nr)] {
        println!(
            "{:<16} {:>8.1}s {:>11.1}% {:>11.1}%",
            name,
            cmp.legacy.avg_handover_interval_s(),
            cmp.legacy.failure_ratio() * 100.0,
            cmp.rem.failure_ratio() * 100.0,
        );
    }
    println!("(§3.4: denser cells -> shorter handover intervals and more failures;");
    println!(" REM keeps its margin on the 5G layout too)");
}
