//! Crash-safety overhead benchmarks: what panic isolation and
//! checkpointing cost when nothing goes wrong. The checked engine
//! wraps every trial in `catch_unwind` plus watchdog bookkeeping, and
//! the checkpoint writer serializes + fsyncs per wave — both must stay
//! cheap relative to a real Monte-Carlo trial (~ms of DSP).

use criterion::{criterion_group, criterion_main, Criterion};
use rem_core::rem_exec::{par_map, par_map_checked, CheckedPolicy};
use rem_core::{fnv1a64, Checkpoint};
use std::hint::black_box;

/// A trial-shaped unit of work: enough arithmetic that scheduling
/// noise doesn't dominate, cheap enough that supervision overhead is
/// visible if it regresses.
fn synthetic_trial(i: usize) -> f64 {
    let mut acc = i as f64 + 1.0;
    for k in 1..200 {
        acc = (acc * 1.000_1 + k as f64).sqrt();
    }
    acc
}

fn bench_checked_overhead(c: &mut Criterion) {
    const N: usize = 256;
    for threads in [1usize, 4] {
        c.bench_function(&format!("par_map_{N}_t{threads}"), |b| {
            b.iter(|| black_box(par_map(threads, N, synthetic_trial)))
        });
        c.bench_function(&format!("par_map_checked_{N}_t{threads}"), |b| {
            b.iter(|| {
                black_box(par_map_checked(
                    threads,
                    N,
                    CheckedPolicy::with_retries(1),
                    |i, _attempt| synthetic_trial(i),
                ))
            })
        });
    }
}

fn bench_checkpoint_io(c: &mut Criterion) {
    const N: usize = 512;
    let mut ckpt = Checkpoint::new("bench", "{\"spec\":1}".to_string(), N);
    for i in 0..N {
        ckpt.record(i, format!("[{:.6},{{}}]", synthetic_trial(i)));
    }
    let path = std::env::temp_dir().join("rem-bench-crash-safety.ckpt");

    c.bench_function("checkpoint_save_512", |b| {
        b.iter(|| ckpt.save(black_box(&path)).expect("save"))
    });
    ckpt.save(&path).expect("save");
    c.bench_function("checkpoint_load_512", |b| {
        b.iter(|| black_box(Checkpoint::load(black_box(&path)).expect("load")))
    });
    let _ = std::fs::remove_file(&path);

    let blob: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 251) as u8).collect();
    c.bench_function("fnv1a64_1mib", |b| b.iter(|| black_box(fnv1a64(black_box(&blob)))));
}

criterion_group!(benches, bench_checked_overhead, bench_checkpoint_io);
criterion_main!(benches);
