//! Fig 12: viability of REM's cross-band estimation — SNR error CDF
//! and handover decision precision across the three regimes.

use rem_bench::{header, print_cdf};
use rem_crossband::estimator::RemEstimator;
use rem_crossband::harness::{evaluate, generate_scenarios, Regime, ScenarioConfig};
use rem_num::rng::rng_from_seed;

fn main() {
    header("Fig 12: REM cross-band estimation viability");
    let cfg = ScenarioConfig::default();
    let n = std::env::args().find_map(|a| a.parse::<usize>().ok()).unwrap_or(120);
    for regime in [Regime::Usrp, Regime::Hsr, Regime::Driving] {
        let scenarios = generate_scenarios(regime, &cfg, n, &mut rng_from_seed(5));
        let res = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
        println!();
        print_cdf(&format!("{} SNR error", regime.label()), &res.snr_errors_db, 10, "dB");
        println!(
            "  {}: precision {:.2}, 90th-pct error {:.2} dB  (paper: <=2 dB for >=90%, precision ~0.93-0.95)",
            regime.label(),
            res.precision,
            res.snr_error_percentile(90.0)
        );
    }
}
