//! Fig 15: failures after removing the aggressive (proactive)
//! policies. REM's Theorem-2 repair clamps negative offsets; the
//! question is whether losing proactive handovers costs failures —
//! it does not, because REM's faster feedback and robust signaling
//! already prevent the late handovers the proactive offsets targeted.

use rem_bench::{bench_args, header, pct, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane, RunMetrics};

fn agg(spec: &DatasetSpec, plane: Plane, clamp: bool, threads: usize) -> RunMetrics {
    CampaignSpec::new(spec.clone())
        .with_threads(threads)
        .aggregate_with(plane, |cfg| cfg.rem_clamp_offsets = clamp)
}

fn main() {
    let args = bench_args();
    header("Fig 15: failures (w/o coverage holes) after conflict repair");
    println!(
        "{:>10} {:>12} {:>14} {:>16}",
        "km/h", "legacy OFDM", "REM (clamped)", "REM (unclamped)"
    );
    for (speed, spec) in [
        (150.0, DatasetSpec::beijing_shanghai(ROUTE_KM, 150.0)),
        (250.0, DatasetSpec::beijing_shanghai(ROUTE_KM, 250.0)),
        (325.0, DatasetSpec::beijing_shanghai(ROUTE_KM, 325.0)),
    ] {
        let legacy = agg(&spec, Plane::Legacy, true, args.threads);
        let rem = agg(&spec, Plane::Rem, true, args.threads);
        let rem_raw = agg(&spec, Plane::Rem, false, args.threads);
        println!(
            "{speed:>10} {:>12} {:>14} {:>16}",
            pct(legacy.failure_ratio_no_holes()),
            pct(rem.failure_ratio_no_holes()),
            pct(rem_raw.failure_ratio_no_holes()),
        );
    }
    println!("\npaper: REM retains negligible failures after fixing conflicts —");
    println!("operators no longer need the conflict-prone proactive policies.");
}
