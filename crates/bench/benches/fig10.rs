//! Fig 10: signaling block error rate vs SNR — legacy OFDM vs REM's
//! OTFS overlay, through the full coded pipeline (CRC, convolutional
//! code, interleaver, QAM, Viterbi) on 3GPP channels.
//! (a) high-speed rail (HST @350 km/h); (b) low mobility (EVA).

use rem_bench::header;
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_num::rng::rng_from_seed;
use rem_phy::link::{measure_bler, LinkConfig, Waveform};

fn sweep(title: &str, model: ChannelModel, speed_kmh: f64, carrier: f64, blocks: usize) {
    header(title);
    println!("{:>7} {:>12} {:>10}", "SNR dB", "legacy OFDM", "REM OTFS");
    for snr in [-8.0, -4.0, 0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0] {
        let mut r1 = rng_from_seed(10);
        let ofdm = measure_bler(
            &LinkConfig::signaling(Waveform::Ofdm),
            model,
            kmh_to_ms(speed_kmh),
            carrier,
            snr,
            blocks,
            &mut r1,
        );
        let mut r2 = rng_from_seed(10);
        let otfs = measure_bler(
            &LinkConfig::signaling(Waveform::Otfs),
            model,
            kmh_to_ms(speed_kmh),
            carrier,
            snr,
            blocks,
            &mut r2,
        );
        println!("{snr:>7} {:>12.3} {:>10.3}", ofdm, otfs);
    }
}

fn main() {
    let blocks = std::env::args()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(300);
    sweep(
        "Fig 10a: BLER vs SNR, high-speed rails (HST, 350 km/h)",
        ChannelModel::Hst,
        350.0,
        2.6e9,
        blocks,
    );
    println!("paper: legacy keeps a high error floor; REM drops steeply with SNR");
    sweep(
        "Fig 10b: BLER vs SNR, low mobility (EVA, 30 km/h)",
        ChannelModel::Eva,
        30.0,
        2.0e9,
        blocks,
    );
    println!("paper: the two waveforms are comparable in low mobility");
}
