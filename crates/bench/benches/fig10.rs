//! Fig 10: signaling block error rate vs SNR — legacy OFDM vs REM's
//! OTFS overlay, through the full coded pipeline (CRC, convolutional
//! code, interleaver, QAM, Viterbi) on 3GPP channels.
//! (a) high-speed rail (HST @350 km/h); (b) low mobility (EVA).
//!
//! Usage: `cargo bench --bench fig10 -- [blocks] [--threads N]`

use rem_bench::{bench_args, header};
use rem_channel::models::ChannelModel;
use rem_phy::link::{BlerScenario, LinkConfig, Waveform};

fn sweep(
    title: &str,
    model: ChannelModel,
    speed_kmh: f64,
    carrier: f64,
    blocks: usize,
    threads: usize,
) {
    header(title);
    println!("{:>7} {:>12} {:>10}", "SNR dB", "legacy OFDM", "REM OTFS");
    // One scenario per SNR point; both waveforms share seed 10, so each
    // trial is a paired draw of the same channel and payload.
    let base = BlerScenario::signaling(Waveform::Ofdm, model)
        .with_speed_kmh(speed_kmh)
        .with_carrier_hz(carrier)
        .with_blocks(blocks)
        .with_seed(10)
        .with_threads(threads);
    for snr in [-8.0, -4.0, 0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0] {
        let ofdm = base.with_snr_db(snr).run();
        let otfs = BlerScenario {
            cfg: LinkConfig::signaling(Waveform::Otfs),
            ..base.with_snr_db(snr)
        }
        .run();
        println!("{snr:>7} {:>12.3} {:>10.3}", ofdm, otfs);
    }
}

fn main() {
    let args = bench_args();
    let blocks = args.trials_or(300);
    sweep(
        "Fig 10a: BLER vs SNR, high-speed rails (HST, 350 km/h)",
        ChannelModel::Hst,
        350.0,
        2.6e9,
        blocks,
        args.threads,
    );
    println!("paper: legacy keeps a high error floor; REM drops steeply with SNR");
    sweep(
        "Fig 10b: BLER vs SNR, low mobility (EVA, 30 km/h)",
        ChannelModel::Eva,
        30.0,
        2.0e9,
        blocks,
        args.threads,
    );
    println!("paper: the two waveforms are comparable in low mobility");
}
