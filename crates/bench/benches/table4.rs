//! Table 4: dataset overview — the generator's self-reported statistics
//! next to the paper's.

use rem_bench::header;
use rem_core::{DatasetSpec, Plane, RunConfig};
use rem_num::rng::rng_from_seed;
use rem_sim::simulate_run;

fn main() {
    header("Table 4: overview of (synthetic) extreme mobility datasets");
    let scenarios = [
        (DatasetSpec::la_driving(60.0, 50.0), "619 km, 932 cells (503 BS), 1157 HOs"),
        (DatasetSpec::beijing_taiyuan(60.0, 250.0), "1136 km, 1281 cells (878 BS), 2030 HOs"),
        (DatasetSpec::beijing_shanghai(60.0, 300.0), "51367 km, 3139 cells (1735 BS), 23779 HOs"),
    ];
    for (spec, paper) in scenarios {
        let mut rng = rng_from_seed(1);
        let dep = spec.deployment.generate(&mut rng);
        let m = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 1));
        let carriers: Vec<String> = spec
            .deployment
            .carriers
            .iter()
            .map(|c| format!("{:.1}MHz/{}MHz", c.carrier_hz / 1e6, c.bandwidth_mhz))
            .collect();
        println!("\n{} @ {} km/h", spec.name, spec.speed_kmh);
        println!("  route: {:.0} km (scaled run)", spec.deployment.route_m / 1e3);
        println!("  cells: {} ({} base stations), co-sited fraction {:.1}%",
            dep.num_cells(), dep.sites.len(), dep.cosited_fraction() * 100.0);
        println!("  carriers: {}", carriers.join(", "));
        println!("  handovers: {} ({:.1}/km), feedback msgs: {}",
            m.handovers.len(),
            m.handovers.len() as f64 / (spec.deployment.route_m / 1e3),
            m.feedback_delays_ms.len());
        println!("  paper (full-scale): {paper}");
    }
    println!("\nNote: routes are scaled down (60 km) for bench runtime; densities, not");
    println!("totals, are the calibration target. See tests/dataset_calibration.rs.");
}
