//! Fleet-scale mobility throughput, machine-readable: runs the
//! `rem-fleet` sharded corridor engine on a headline workload (10^4
//! trains / 10^6 UE contexts) across a shard-count series and writes
//! `BENCH_fleet.json` with trains/sec, UE-events/sec and the shard
//! scaling curve, so CI can archive the fleet engine's perf trajectory
//! next to the DSP numbers.
//!
//! Two throughput bases are reported per series point and labelled as
//! such in the JSON:
//!
//! * `wall_s` — end-to-end wall time on *this* host. On a single-core
//!   CI runner every shard executes serially, so wall time cannot show
//!   parallel speedup.
//! * `critical_path_s` — sum over epochs of the *maximum* per-shard
//!   advance time, measured inside the engine: the time a host with
//!   `>= shards` cores would spend in the parallel phase. This is the
//!   standard critical-path basis for parallel-DES scaling claims and
//!   is what `scaling.speedup_1_to_4` reports.
//!
//! The series also cross-checks `result_hash` equality across every
//! shard count — a free determinism gate on every bench run.
//!
//! Usage: `cargo bench -p rem-bench --bench fleet_json [-- --test]`
//! (`--test` shrinks the workload to a ~100-train smoke run; the JSON
//! is written either way). Output lands in the working directory, or
//! at `$BENCH_FLEET_JSON` when set. `REM_BENCH_SKIP_MANIFEST=1` skips
//! the sibling run manifest (offline stub builds, where serde_json is
//! a type-check-only stand-in).

use rem_fleet::{run_fleet, FleetSpec, FleetTiming, RunOptions};
use std::time::Instant;

/// One measured point of the shard series.
struct Point {
    shards: u32,
    wall_s: f64,
    timing: FleetTiming,
    hash: String,
    trains: u32,
    ue_events: u64,
    sim_s: f64,
}

fn measure(spec: &FleetSpec, shards: u32) -> Point {
    // threads = 1 keeps the advance phase serial, so `wall_s` is a
    // clean single-core baseline and `critical_path_s` is measured
    // without thread-pool noise on small CI hosts.
    let t0 = Instant::now();
    let (report, timing) =
        run_fleet(spec, RunOptions { shards, threads: 1 }).expect("bench spec is valid");
    let wall_s = t0.elapsed().as_secs_f64();
    Point {
        shards,
        wall_s,
        hash: report.result_hash(),
        trains: report.trains,
        ue_events: report.ue_events,
        sim_s: report.sim_window_ms as f64 / 1_000.0,
        timing,
    }
}

fn point_json(p: &Point) -> String {
    let parallel_s = p.timing.critical_path_s + p.timing.exchange_s;
    format!(
        concat!(
            "{{\"shards\":{},\"threads\":1,\"wall_s\":{:.6},",
            "\"critical_path_s\":{:.6},\"busy_s\":{:.6},\"exchange_s\":{:.6},",
            "\"trains_per_sec_wall\":{:.1},\"ue_events_per_sec_wall\":{:.1},",
            "\"trains_per_sec_critical_path\":{:.1},",
            "\"realtime_factor_wall\":{:.1}}}"
        ),
        p.shards,
        p.wall_s,
        p.timing.critical_path_s,
        p.timing.busy_s,
        p.timing.exchange_s,
        p.trains as f64 / p.wall_s,
        p.ue_events as f64 / p.wall_s,
        p.trains as f64 / parallel_s.max(1e-9),
        p.sim_s / p.wall_s,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");

    // Headline: 10^4 trains x 100 UEs = 10^6 UE contexts over a 60 km
    // corridor loaded from both ends (5000 departures per end at 120 ms
    // headway — the aggregate of many parallel lines feeding one
    // corridor). Smoke: ~100 trains, CI-sized.
    let spec = if smoke {
        FleetSpec {
            trains: 100,
            ues_per_train: 100,
            corridor_km: 30.0,
            headway_s: 2.0,
            duration_s: 120.0,
            ..FleetSpec::default()
        }
    } else {
        FleetSpec {
            trains: 10_000,
            ues_per_train: 100,
            corridor_km: 60.0,
            headway_s: 0.12,
            duration_s: 600.0,
            ..FleetSpec::default()
        }
    };
    spec.validate().expect("bench spec is valid");

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shard_series: &[u32] = &[1, 2, 4, 8];

    let points: Vec<Point> = shard_series
        .iter()
        .map(|&shards| {
            let p = measure(&spec, shards);
            println!(
                "fleet: {} trains, {} shards -> wall {:.3} s, critical path {:.3} s ({})",
                p.trains, shards, p.wall_s, p.timing.critical_path_s, p.hash
            );
            p
        })
        .collect();

    // Determinism gate: the digest must not move with the shard count.
    for p in &points[1..] {
        assert_eq!(p.hash, points[0].hash, "shard count {} moved the result hash", p.shards);
    }

    let speedup_1_to_4 = {
        let p1 = points.iter().find(|p| p.shards == 1).expect("series has 1");
        let p4 = points.iter().find(|p| p.shards == 4).expect("series has 4");
        (p1.timing.critical_path_s + p1.timing.exchange_s)
            / (p4.timing.critical_path_s + p4.timing.exchange_s).max(1e-9)
    };

    let series: Vec<String> = points.iter().map(point_json).collect();
    let head = &points[0];
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_json\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"host_cores\": {cores},\n",
            "  \"spec\": {spec},\n",
            "  \"hash\": \"{hash}\",\n",
            "  \"trains\": {trains},\n",
            "  \"ues\": {ues},\n",
            "  \"ue_events\": {events},\n",
            "  \"sim_window_s\": {sim},\n",
            "  \"series\": [\n    {series}\n  ],\n",
            "  \"scaling\": {{\n",
            "    \"basis\": \"critical_path_s + exchange_s (measured per-epoch max \
             shard advance; wall_s shows no parallel speedup on a {cores}-core host)\",\n",
            "    \"speedup_1_to_4\": {speedup:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if smoke { "smoke" } else { "full" },
        cores = host_cores,
        spec = spec.fingerprint(),
        hash = head.hash,
        trains = head.trains,
        ues = spec.total_ues(),
        events = head.ue_events,
        sim = head.sim_s,
        series = series.join(",\n    "),
        speedup = speedup_1_to_4,
    );

    let path = std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(&path, &report).expect("write BENCH_fleet.json");
    print!("{report}");
    if std::env::var_os("REM_BENCH_SKIP_MANIFEST").is_none() {
        let manifest =
            rem_obs::RunManifest::new("bench:fleet_json", &spec.fingerprint(), 1)
                .with_result_hash(head.hash.clone());
        let mpath = format!("{path}.manifest.json");
        manifest.save(std::path::Path::new(&mpath)).expect("write bench manifest");
        println!("wrote {path} (+ {mpath})");
    } else {
        println!("wrote {path} (manifest skipped)");
    }
    println!(
        "fleet: {} trains / {} UEs, {:.0} trains/s wall, shard scaling 1->4: {:.2}x \
         (critical path)",
        head.trains,
        spec.total_ues(),
        head.trains as f64 / head.wall_s,
        speedup_1_to_4
    );
}
