//! Fig 11: SNR stability over one second — legacy per-slot OFDM SINR
//! fluctuates with fading; REM's delay-Doppler symbols see the
//! grid-effective (diversity-averaged) SINR.

use rem_bench::header;
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_channel::DdGrid;
use rem_num::rng::rng_from_seed;
use rem_num::stats::{lin_to_db, std_dev};
use rem_phy::ofdm::{otfs_effective_sinr, slot_sinrs, tf_channel};

fn series(title: &str, model: ChannelModel, speed_kmh: f64, snr_db: f64) {
    header(title);
    let grid = DdGrid::lte_subframe();
    let mut rng = rng_from_seed(3);
    let nv = rem_num::stats::db_to_lin(-snr_db);
    let mut legacy = Vec::new();
    let mut rem = Vec::new();
    println!("{:>7} {:>12} {:>10}", "t (ms)", "legacy dB", "REM dB");
    // One channel realization evolving over 1 s; one subframe per 50 ms
    // (print resolution; the channel advances continuously).
    let ch0 = model.realize(&mut rng, kmh_to_ms(speed_kmh), 2.6e9);
    for step in 0..=20 {
        let t = step as f64 * 0.05;
        let ch = ch0.advanced_by(t);
        let gains = tf_channel(&grid, &ch);
        let sinrs = slot_sinrs(&gains, &grid, &ch, nv);
        // Legacy: the SINR of one representative resource element.
        let slot = lin_to_db(sinrs[step % sinrs.len()].max(1e-12));
        let eff = lin_to_db(otfs_effective_sinr(&sinrs).max(1e-12));
        legacy.push(slot);
        rem.push(eff);
        println!("{:>7.0} {slot:>12.2} {eff:>10.2}", t * 1e3);
    }
    println!(
        "std dev: legacy {:.2} dB, REM {:.2} dB (paper: REM visibly flatter)",
        std_dev(&legacy),
        std_dev(&rem)
    );
}

fn main() {
    series("Fig 11a: SNR stability, high-speed rails (350 km/h)", ChannelModel::Hst, 350.0, 18.0);
    series("Fig 11b: SNR stability, low mobility (EVA, 30 km/h)", ChannelModel::Eva, 30.0, 18.0);
}
