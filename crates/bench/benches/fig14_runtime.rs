//! Fig 14b: cross-band estimation runtime — REM's closed-form SVD
//! pipeline vs R2F2's iterative fitting vs OptML's network inference.
//! (Criterion benchmark; the paper reports 158.1 ms / 2.4 s / 416.3 ms
//! on their hardware — the *ordering and ratios* are the target.)

use criterion::{criterion_group, criterion_main, Criterion};
use rem_crossband::estimator::{CrossBandEstimator, R2f2Estimator, RemEstimator};
use rem_crossband::harness::{generate_scenarios, train_optml, Regime, ScenarioConfig};
use rem_crossband::optml::OptMlConfig;
use rem_num::rng::rng_from_seed;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let cfg = ScenarioConfig::default();
    let scenarios = generate_scenarios(Regime::Hsr, &cfg, 25, &mut rng_from_seed(9));
    let obs = scenarios.last().unwrap().obs.clone();

    let rem = RemEstimator::default();
    let r2f2 = R2f2Estimator::default();
    let optml = train_optml(
        &scenarios,
        &OptMlConfig { hidden: 32, epochs: 10, lr: 0.01 },
        &cfg.grid,
        10,
    );

    let mut g = c.benchmark_group("fig14b_crossband_runtime");
    g.sample_size(20);
    g.bench_function("REM (SVD closed form)", |b| {
        b.iter(|| black_box(rem.predict_band2_tf(black_box(&obs))))
    });
    g.bench_function("R2F2 (iterative fit)", |b| {
        b.iter(|| black_box(r2f2.predict_band2_tf(black_box(&obs))))
    });
    g.bench_function("OptML (NN inference)", |b| {
        b.iter(|| black_box(optml.predict_band2_tf(black_box(&obs))))
    });
    g.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
