//! Campaign-service throughput, machine-readable: stands up an
//! in-process `rem-serve` instance, pushes a batch of small scenario
//! jobs through the real HTTP control plane, and writes
//! `BENCH_serve.json` with submit→complete latency, steady-state
//! jobs/sec and the graceful-drain time, so CI can archive the
//! service's perf trajectory next to the DSP numbers.
//!
//! Usage: `cargo bench -p rem-bench --bench serve_json [-- --test]`
//! (`--test` shrinks the batch to a smoke run; the JSON is written
//! either way). The output lands in the working directory, or at
//! `$BENCH_SERVE_JSON` when set.

use rem_serve::{JobState, ServeConfig, Server};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One queue wait + one seed + a short route: the smallest job the
/// service treats exactly like a real campaign.
const JOB_SCENARIO: &str = r#"
format = "REMSCENARIO1"
name = "serve-bench"

[trajectory]
speed_kmh = 300
route_km = 5

[run]
seeds = 1
checkpoint_every = 1
"#;

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to service");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let jobs: u64 = if smoke { 2 } else { 12 };

    let spool = std::env::temp_dir()
        .join("rem-serve-bench")
        .join(format!("spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).expect("create bench spool");

    let cfg = ServeConfig {
        listen: "127.0.0.1:0".into(),
        spool: spool.clone(),
        workers: 1,
        queue_capacity: jobs as usize + 1,
        checkpoint_every: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(&cfg).expect("service starts");
    let addr = server.addr();

    // Control-plane round-trip cost, measured while the queue is idle.
    let healthz_us = {
        let n = if smoke { 3 } else { 25 };
        let t0 = Instant::now();
        for _ in 0..n {
            let (status, _) = http(addr, "GET", "/healthz", "");
            assert_eq!(status, 200);
        }
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    };

    // Batch: submit everything up front (steady-state queue pressure),
    // then watch completions; per-job latency is submit→Done including
    // queue wait, which is what a service client experiences.
    let batch_start = Instant::now();
    let mut submitted_at = Vec::with_capacity(jobs as usize);
    for _ in 0..jobs {
        let t = Instant::now();
        let (status, body) = http(addr, "POST", "/jobs", JOB_SCENARIO);
        assert_eq!(status, 201, "submit failed: {body}");
        submitted_at.push(t);
    }
    let submit_us = batch_start.elapsed().as_secs_f64() * 1e6 / jobs as f64;

    let mut latency_s = vec![f64::NAN; jobs as usize];
    let mut pending: Vec<u64> = (1..=jobs).collect();
    let deadline = Instant::now() + Duration::from_secs(if smoke { 300 } else { 900 });
    while !pending.is_empty() {
        assert!(Instant::now() < deadline, "bench jobs did not finish: {pending:?} left");
        pending.retain(|&id| {
            let job = server.queue().job(id).expect("job exists");
            match job.state {
                JobState::Done => {
                    latency_s[(id - 1) as usize] =
                        submitted_at[(id - 1) as usize].elapsed().as_secs_f64();
                    false
                }
                JobState::Quarantined => panic!("bench job {id} quarantined: {:?}", job.error),
                _ => true,
            }
        });
        std::thread::sleep(Duration::from_millis(5));
    }
    let wall_s = batch_start.elapsed().as_secs_f64();
    let jobs_per_sec = jobs as f64 / wall_s;
    let mean_latency_s = latency_s.iter().sum::<f64>() / jobs as f64;
    let max_latency_s = latency_s.iter().cloned().fold(0.0, f64::max);
    let min_latency_s = latency_s.iter().cloned().fold(f64::INFINITY, f64::min);

    // Drain an idle service: the floor every graceful shutdown pays
    // (worker joins + supervisor exit + journal already durable).
    let t0 = Instant::now();
    server.drain();
    server.join();
    let drain_ms = t0.elapsed().as_secs_f64() * 1e3;

    let report = serde_json::json!({
        "bench": "serve_json",
        "mode": if smoke { "smoke" } else { "full" },
        "jobs": jobs,
        "workers": 1,
        "service": {
            "healthz_roundtrip_us": healthz_us,
            "submit_roundtrip_us": submit_us,
            "jobs_per_sec": jobs_per_sec,
            "submit_to_complete_s": {
                "mean": mean_latency_s,
                "min": min_latency_s,
                "max": max_latency_s,
            },
            "soak_wall_s": wall_s,
            "idle_drain_ms": drain_ms,
        },
    });

    let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialise bench report");
    std::fs::write(&path, &pretty).expect("write BENCH_serve.json");
    let spec = serde_json::json!({ "jobs": jobs, "smoke": smoke });
    let manifest = rem_obs::RunManifest::new("bench:serve_json", &spec.to_string(), jobs as usize);
    let mpath = format!("{path}.manifest.json");
    manifest.save(std::path::Path::new(&mpath)).expect("write bench manifest");
    println!("{pretty}");
    println!("wrote {path} (+ {mpath})");
    println!(
        "serve: {jobs} jobs at {jobs_per_sec:.2} jobs/s, mean submit→complete \
         {mean_latency_s:.2} s, drain {drain_ms:.0} ms"
    );
    let _ = std::fs::remove_dir_all(&spool);
}
