//! Fig 13: cross-band estimation on the HSR regime — REM vs the R2F2
//! and OptML baselines (80/20 train/test for OptML, 6-path config for
//! both baselines, per the paper's protocol).

use rem_bench::{header, print_cdf};
use rem_crossband::estimator::{R2f2Estimator, RemEstimator};
use rem_crossband::harness::{
    evaluate, generate_scenarios, test_split, train_optml, Regime, ScenarioConfig,
};
use rem_crossband::optml::OptMlConfig;
use rem_num::rng::rng_from_seed;

fn main() {
    header("Fig 13: cross-band estimation with the HSR dataset");
    let cfg = ScenarioConfig::default();
    let n = std::env::args().find_map(|a| a.parse::<usize>().ok()).unwrap_or(150);
    let scenarios = generate_scenarios(Regime::Hsr, &cfg, n, &mut rng_from_seed(6));
    let test = test_split(&scenarios);

    let rem = evaluate(&RemEstimator::default(), test, 0.1, 3.0);
    let r2f2 = evaluate(&R2f2Estimator::default(), test, 0.1, 3.0);
    let optml_est = train_optml(&scenarios, &OptMlConfig::default(), &cfg.grid, 7);
    let optml = evaluate(&optml_est, test, 0.1, 3.0);

    for res in [&rem, &r2f2, &optml] {
        println!();
        print_cdf(&format!("{} SNR error", res.name), &res.snr_errors_db, 10, "dB");
        println!("  {}: mean error {:.2} dB, precision {:.2}", res.name, res.mean_snr_error_db(), res.precision);
    }
    println!("\npaper: REM precision 0.95 vs OptML 0.65 vs R2F2 0.11;");
    println!("REM mean SNR error 86.8% below R2F2, 51.9% below OptML");
}
