//! OTFS receiver ablation: two-step TF-MMSE vs delay-Doppler message
//! passing (paper ref [21]) through the full coded pipeline on a
//! doubly-selective channel.
//!
//! Usage: `cargo bench --bench ablation_receiver -- [blocks] [--threads N]`

use rem_bench::{bench_args, header};
use rem_channel::models::ChannelModel;
use rem_phy::link::{BlerScenario, LinkConfig, OtfsReceiver, Waveform};

fn main() {
    let args = bench_args();
    header("Ablation: OTFS receivers (ETU @300 km/h, coded BLER)");
    let blocks = args.trials_or(150);
    println!("{:>7} {:>12} {:>16}", "SNR dB", "two-step", "message passing");
    // Shared seed 31: both receivers decode identical channel/payload
    // draws per trial.
    let base = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Etu)
        .with_speed_kmh(300.0)
        .with_blocks(blocks)
        .with_seed(31)
        .with_threads(args.threads);
    let mp_cfg = LinkConfig {
        otfs_receiver: OtfsReceiver::MessagePassing,
        ..LinkConfig::signaling(Waveform::Otfs)
    };
    for snr in [-2.0, 0.0, 2.0, 4.0, 8.0] {
        let two = base.with_snr_db(snr).run();
        let mp = BlerScenario { cfg: mp_cfg, ..base.with_snr_db(snr) }.run();
        println!("{snr:>7} {two:>12.3} {mp:>16.3}");
    }
    println!("\nOn real (off-grid) channels the coded pipelines land close: the MP");
    println!("detector models only the thresholded sparse taps, so fractional");
    println!("delay/Doppler leakage becomes unmodelled interference, offsetting its");
    println!("gain over the two-step receiver. On on-grid channels (see the");
    println!("`mp_detect` unit tests) MP wins decisively.");
}
