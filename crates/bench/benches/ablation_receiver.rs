//! OTFS receiver ablation: two-step TF-MMSE vs delay-Doppler message
//! passing (paper ref [21]) through the full coded pipeline on a
//! doubly-selective channel.

use rem_bench::header;
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_num::rng::rng_from_seed;
use rem_phy::link::{measure_bler, LinkConfig, OtfsReceiver, Waveform};

fn main() {
    header("Ablation: OTFS receivers (ETU @300 km/h, coded BLER)");
    let blocks = 150;
    println!("{:>7} {:>12} {:>16}", "SNR dB", "two-step", "message passing");
    for snr in [-2.0, 0.0, 2.0, 4.0, 8.0] {
        let mut r1 = rng_from_seed(31);
        let two = measure_bler(
            &LinkConfig::signaling(Waveform::Otfs),
            ChannelModel::Etu,
            kmh_to_ms(300.0),
            2.6e9,
            snr,
            blocks,
            &mut r1,
        );
        let mut r2 = rng_from_seed(31);
        let mp_cfg = LinkConfig {
            otfs_receiver: OtfsReceiver::MessagePassing,
            ..LinkConfig::signaling(Waveform::Otfs)
        };
        let mp = measure_bler(&mp_cfg, ChannelModel::Etu, kmh_to_ms(300.0), 2.6e9, snr, blocks, &mut r2);
        println!("{snr:>7} {two:>12.3} {mp:>16.3}");
    }
    println!("\nOn real (off-grid) channels the coded pipelines land close: the MP");
    println!("detector models only the thresholded sparse taps, so fractional");
    println!("delay/Doppler leakage becomes unmodelled interference, offsetting its");
    println!("gain over the two-step receiver. On on-grid channels (see the");
    println!("`mp_detect` unit tests) MP wins decisively.");
}
