//! Fig 14a: feedback delays, legacy sequential measurement vs REM's
//! cross-band estimation (CDF) — both from the analytic timing model
//! and from the campaign simulator's recorded attempts.

use rem_bench::{bench_args, header, print_cdf, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane};
use rem_mobility::feedback::{sample_feedback_delays, MeasurementTiming};
use rem_num::rng::rng_from_seed;
use rem_num::stats::mean;

fn main() {
    let args = bench_args();
    header("Fig 14a: feedback delay CDF, legacy vs REM (timing model)");
    let t = MeasurementTiming::default();
    let mut rng = rng_from_seed(8);
    let samples = sample_feedback_delays(5000, &t, &mut rng);
    let legacy: Vec<f64> = samples.iter().map(|s| s.0).collect();
    let rem: Vec<f64> = samples.iter().map(|s| s.1).collect();
    print_cdf("legacy", &legacy, 10, "ms");
    print_cdf("REM", &rem, 10, "ms");
    println!(
        "means: legacy {:.1} ms -> REM {:.1} ms (paper: 802.5 -> 242.4 ms)",
        mean(&legacy),
        mean(&rem)
    );

    header("Fig 14a': realized feedback delays from the campaign replays");
    let spec = DatasetSpec::beijing_shanghai(ROUTE_KM, 300.0);
    let campaign =
        CampaignSpec::new(spec).with_seeds(&[1, 2]).with_threads(args.threads);
    let l = campaign.aggregate(Plane::Legacy);
    let r = campaign.aggregate(Plane::Rem);
    println!(
        "realized means: legacy {:.0} ms -> REM {:.0} ms",
        mean(&l.feedback_delays_ms),
        mean(&r.feedback_delays_ms)
    );
}
