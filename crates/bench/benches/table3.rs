//! Table 3: two-cell policy conflicts by event-pair type, scanned over
//! the synthetic datasets' neighbour relations with the exact
//! satisfiability checker.

use rem_bench::header;
use rem_core::DatasetSpec;
use rem_mobility::conflict::find_two_cell_conflicts;
use rem_mobility::events::{EventConfig, EventKind};
use rem_mobility::policy::{CellId, CellPolicy, Earfcn, HandoverRule, TargetScope};
use rem_num::rng::rng_from_seed;
use std::collections::BTreeMap;

/// Builds the policy cell `a` runs toward frequency `fb`, using the
/// dataset's per-pair offsets for A3 and a deterministic hash to pick
/// which inter-frequency rule style (A4 / A5 / A3) the operator used.
fn policy_for(spec: &DatasetSpec, a: CellId, ea: Earfcn, b: CellId, eb: Earfcn) -> CellPolicy {
    let mut rules = Vec::new();
    if ea == eb {
        rules.push(HandoverRule {
            event: EventConfig {
                kind: EventKind::A3 { offset: spec.a3_offset(a, b) },
                ttt_ms: spec.intra_ttt_ms,
                hysteresis_db: 1.0,
            },
            target: TargetScope::IntraFreq,
        });
    } else {
        // Inter-frequency relations: most operators configure these in
        // one direction only (coverage fallback), so a *bidirectional*
        // — and hence conflict-capable — config is rare (~15% of
        // relations; direction decided by a stable hash).
        let h = (a.0 as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17)
            ^ (b.0 as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
        let hp = ((a.0.min(b.0) as u64) << 32 | a.0.max(b.0) as u64)
            .wrapping_mul(0xD6E8FEB86659FD93);
        let bidirectional = hp % 100 < 15;
        let is_primary_direction = (hp >> 16) % 2 == (a.0 < b.0) as u64;
        if bidirectional || is_primary_direction {
            let kind = match h % 3 {
                0 => EventKind::A4 { thresh: -110.0 - (h % 7) as f64 },
                1 => EventKind::A5 {
                    serving_below: -95.0 - (h % 11) as f64,
                    neighbor_above: -108.0 + (h % 5) as f64,
                },
                _ => EventKind::A3 { offset: spec.a3_offset(a, b) },
            };
            rules.push(HandoverRule {
                event: EventConfig { kind, ttt_ms: spec.inter_ttt_ms, hysteresis_db: 1.0 },
                target: TargetScope::InterFreq(eb),
            });
        }
    }
    CellPolicy { cell: a, earfcn: ea, stage1: rules, a2_gate: None, stage2: vec![], a1_exit: None }
}

fn scan(spec: &DatasetSpec, seed: u64) -> BTreeMap<(String, bool), usize> {
    let mut rng = rng_from_seed(seed);
    let dep = spec.deployment.generate(&mut rng);
    let mut counts: BTreeMap<(String, bool), usize> = BTreeMap::new();
    // Neighbour relations: cells within 2 sites of each other.
    for (i, si) in dep.sites.iter().enumerate() {
        for sj in dep.sites.iter().skip(i).take(3) {
            for ca in &si.cells {
                for cb in &sj.cells {
                    if ca.id >= cb.id {
                        continue;
                    }
                    let pa = policy_for(spec, ca.id, ca.earfcn, cb.id, cb.earfcn);
                    let pb = policy_for(spec, cb.id, cb.earfcn, ca.id, ca.earfcn);
                    for c in find_two_cell_conflicts(&pa, &pb) {
                        *counts.entry((c.kinds, c.intra_frequency)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    counts
}

fn main() {
    header("Table 3: two-cell policy conflicts by type");
    for (name, spec, paper) in [
        (
            "Beijing-Taiyuan",
            DatasetSpec::beijing_taiyuan(200.0, 250.0),
            "A3-A3 155 (92.8%), A3-A4 4, A3-A5 1, A4-A4 2, A4-A5 5, A5-A5 0",
        ),
        (
            "Beijing-Shanghai",
            DatasetSpec::beijing_shanghai(200.0, 300.0),
            "A3-A3 749 (55.9%), A3-A4 316, A3-A5 24, A4-A4 200, A4-A5 49, A5-A5 2",
        ),
    ] {
        let counts = scan(&spec, 1);
        let total: usize = counts.values().sum();
        println!("\n{name} (total {total}):");
        for ((kinds, intra), n) in &counts {
            println!(
                "  {kinds:<7} {:<15} {n:>5} ({:.1}%)",
                if *intra { "intra-frequency" } else { "inter-frequency" },
                *n as f64 / total.max(1) as f64 * 100.0
            );
        }
        println!("  paper: {paper}");
    }
}
