//! Fig 9: REM's benefit for TCP — stalling times (a) and a microtrace
//! around one failure showing RTO inflation (b).

use rem_bench::{bench_args, header, ROUTE_KM};
use rem_core::{replay_tcp, CampaignSpec, Comparison, DatasetSpec, STALL_GAP_MS};

fn main() {
    let args = bench_args();
    header("Fig 9a: TCP stalling time, legacy vs REM");
    println!(
        "{:>8} {:>13} {:>13} {:>14} {:>14} {:>9}  (paper avg: 7.9->4.2s @200, 6.6->4.5s @300)",
        "km/h", "legacy total", "REM total", "legacy avg", "REM avg", "failures"
    );
    for speed in [200.0, 300.0] {
        let spec = DatasetSpec::beijing_shanghai(ROUTE_KM, speed);
        let cmp = Comparison::run(
            &CampaignSpec::new(spec).with_seeds(&[5, 6]).with_threads(args.threads),
        );
        let window = cmp.legacy.duration_s * 1e3;
        let lt = replay_tcp(&cmp.legacy, window, 9);
        let rt = replay_tcp(&cmp.rem, window, 9);
        let avg = |t: &rem_net::TcpTrace| {
            let p = t.stall_periods(STALL_GAP_MS);
            if p.is_empty() { 0.0 } else { t.total_stall_ms(STALL_GAP_MS) / 1e3 / p.len() as f64 }
        };
        println!(
            "{speed:>8} {:>12.1}s {:>12.1}s {:>13.1}s {:>13.1}s {:>4}/{:<4}",
            lt.total_stall_ms(STALL_GAP_MS) / 1e3,
            rt.total_stall_ms(STALL_GAP_MS) / 1e3,
            avg(&lt),
            avg(&rt),
            cmp.legacy.failures.len(),
            cmp.rem.failures.len(),
        );
    }

    header("Fig 9b: TCP data transfer across one failure (RTO backoff)");
    // A single 2.3 s outage, as in the paper's trace.
    let metrics = rem_core::RunMetrics {
        duration_s: 40.0,
        failures: vec![rem_sim::FailureRecord {
            t_ms: 12_000.0,
            cause: rem_mobility::FailureCause::CommandLoss,
            outage_ms: 2_300.0,
        }],
        ..Default::default()
    };
    let trace = replay_tcp(&metrics, 40_000.0, 11);
    println!("{:>7} {:>12}", "t (s)", "thput Mbps");
    for (t, mbps) in trace.throughput_series_mbps(1_000.0) {
        println!("{:>7.1} {mbps:>12.2}", t / 1e3);
    }
    for (t, rto) in &trace.rto_events {
        println!("RTO expiry at {:.2}s -> RTO {:.2}s", t / 1e3, rto / 1e3);
    }
    println!(
        "stall: {:.1}s for a 2.3s outage (paper: ~6.5s stall, RTO inflated to 6.28s)",
        trace.total_stall_ms(STALL_GAP_MS) / 1e3
    );
}
