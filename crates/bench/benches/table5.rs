//! Table 5: reduction of failures and policy conflicts, legacy (LGC)
//! vs REM, across datasets and speed bins.

use rem_bench::{bench_args, eps, header, pct, ROUTE_KM, SEEDS};
use rem_core::{CampaignSpec, Comparison, DatasetSpec, ExperimentReport};
use rem_mobility::FailureCause;

fn row(label: &str, l: f64, r: f64) {
    println!("  {:<26} {:>8} {:>8} {:>8}", label, pct(l), pct(r), eps(Comparison::epsilon(l, r)));
}

fn main() {
    let args = bench_args();
    header("Table 5: failure/conflict reduction, LGC vs REM");
    let mut report = ExperimentReport::new("table5")
        .with_context("route_km", &format!("{ROUTE_KM}"))
        .with_context("seeds", &format!("{SEEDS:?}"));
    let scenarios = [
        ("Low mobility 0-100", DatasetSpec::la_driving(ROUTE_KM, 50.0), "4.3->3.0% (0.43x)"),
        ("Beijing-Taiyuan 200-300", DatasetSpec::beijing_taiyuan(ROUTE_KM, 250.0), "8.1->4.2% (0.9x)"),
        ("Beijing-Shanghai 100-200", DatasetSpec::beijing_shanghai(ROUTE_KM, 150.0), "5.2->2.4% (1.2x)"),
        ("Beijing-Shanghai 200-300", DatasetSpec::beijing_shanghai(ROUTE_KM, 250.0), "10.6->2.63% (3.0x)"),
        ("Beijing-Shanghai 300-350", DatasetSpec::beijing_shanghai(ROUTE_KM, 325.0), "12.5->3.5% (2.6x)"),
    ];
    for (name, spec, paper) in scenarios {
        let cmp = Comparison::run(&CampaignSpec::new(spec).with_threads(args.threads));
        println!("\n{name}   [paper total: {paper}]");
        println!("  {:<26} {:>8} {:>8} {:>8}", "", "LGC", "REM", "eps");
        row("total failure ratio", cmp.legacy.failure_ratio(), cmp.rem.failure_ratio());
        row(
            "failure w/o coverage hole",
            cmp.legacy.failure_ratio_no_holes(),
            cmp.rem.failure_ratio_no_holes(),
        );
        for cause in FailureCause::all() {
            row(
                cause.label(),
                cmp.legacy.failure_ratio_by(cause),
                cmp.rem.failure_ratio_by(cause),
            );
        }
        row(
            "total HO in conflicts",
            cmp.legacy.handovers_in_loops_fraction(),
            cmp.rem.handovers_in_loops_fraction(),
        );
        println!(
            "  {:<26} {:>8} {:>8}",
            "conflict loops (count)",
            cmp.legacy.conflict_loops().count(),
            cmp.rem.conflict_loops().count()
        );
        report.push_row(
            name,
            &[
                ("legacy_fail", cmp.legacy.failure_ratio()),
                ("rem_fail", cmp.rem.failure_ratio()),
                ("legacy_fail_no_holes", cmp.legacy.failure_ratio_no_holes()),
                ("rem_fail_no_holes", cmp.rem.failure_ratio_no_holes()),
                ("legacy_loops", cmp.legacy.conflict_loops().count() as f64),
                ("rem_loops", cmp.rem.conflict_loops().count() as f64),
            ],
        );
    }
    match report.save() {
        Ok(path) => println!("\nJSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON report: {e}"),
    }
}
