//! Table 2: network reliability of the *legacy* plane across speed
//! bins — handover intervals, failure breakdown, and policy-conflict
//! loop statistics.

use rem_bench::{bench_args, header, pct, ROUTE_KM};
use rem_core::{CampaignSpec, DatasetSpec, Plane, RunMetrics};
use rem_mobility::FailureCause;

fn legacy_agg(spec: &DatasetSpec, threads: usize) -> RunMetrics {
    CampaignSpec::new(spec.clone()).with_threads(threads).aggregate(Plane::Legacy)
}

fn main() {
    let args = bench_args();
    header("Table 2: Network reliability in extreme mobility (legacy plane)");
    let scenarios = [
        ("low mobility 0-100", DatasetSpec::la_driving(ROUTE_KM, 50.0), "50.2s/4.3%"),
        ("HSR 100-200", DatasetSpec::beijing_taiyuan(ROUTE_KM, 150.0), "20.4s/5.2%"),
        ("HSR 200-300", DatasetSpec::beijing_taiyuan(ROUTE_KM, 250.0), "19.3s/10.6%"),
        ("HSR 300-350", DatasetSpec::beijing_shanghai(ROUTE_KM, 325.0), "11.3s/12.5%"),
    ];
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>7} {:>9} {:>7} {:>7}  (paper int/fail)",
        "scenario", "HO int.", "fail", "fb d/l", "missed", "cmdloss", "holes", "loop int.", "HO/loop", "disr/loop", "intra%", "inter%"
    );
    for (name, spec, paper) in scenarios {
        let m = legacy_agg(&spec, args.threads);
        println!(
            "{:<20} {:>7.1}s {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8.1}s {:>7.1} {:>8.2}s {:>6.0}% {:>6.0}%  ({paper})",
            name,
            m.avg_handover_interval_s(),
            pct(m.failure_ratio()),
            pct(m.failure_ratio_by(FailureCause::FeedbackDelayLoss)),
            pct(m.failure_ratio_by(FailureCause::MissedCell)),
            pct(m.failure_ratio_by(FailureCause::CommandLoss)),
            pct(m.failure_ratio_by(FailureCause::CoverageHole)),
            m.avg_loop_interval_s(),
            m.avg_handovers_per_loop(),
            m.avg_disruption_per_loop_s(),
            m.intra_freq_loop_fraction() * 100.0,
            (1.0 - m.intra_freq_loop_fraction()) * 100.0,
        );
    }
    println!("\npaper rows: failures 4.3/5.2/10.6/12.5%; loops every 5284/410/1090/195s; 2.2-3.9 HO/loop");
}
