//! DSP kernel throughput, machine-readable: times the planned FFT
//! path against the pre-PR per-call baseline (kept as
//! `fft_unplanned`/`ifft_unplanned`), the SFFT hot path, and the
//! runtime-dispatched SIMD kernels (Viterbi ACS, QAM soft demap)
//! against their scalar references, plus the stage-major batched link
//! pipeline against the per-block baseline, and writes
//! `BENCH_dsp.json` so CI can archive the perf trajectory.
//!
//! Usage: `cargo bench -p rem-bench --bench dsp_json [-- --test]`
//! (`--test` shrinks iteration counts to a smoke run; the JSON is
//! written either way). The output lands in the working directory, or
//! at `$BENCH_DSP_JSON` when set.
//!
//! On a CPU without a vector tier (or under `REM_DSP_SIMD=off`) the
//! "simd" timings fall back to the scalar kernel, so the speedup
//! columns read ~1.0 — the report's `simd.dispatch` field says which
//! tier actually ran.

use rem_channel::models::ChannelModel;
use rem_num::fft::{fft, fft_unplanned};
use rem_num::rng::{complex_gaussian, rng_from_seed};
use rem_num::simd::{self, SimdTier};
use rem_num::{CMatrix, Complex64};
use rem_phy::convcode;
use rem_phy::dsp::DspScratch;
use rem_phy::link::{simulate_block_with, LinkConfig, Waveform};
use rem_phy::otfs::sfft_into;
use rem_phy::qam::{self, Modulation};
use rem_phy::{BatchJob, LinkBatch};
use std::hint::black_box;
use std::time::Instant;

/// Mean microseconds per call over `iters` calls, after `warmup` calls.
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (warmup, iters) = if smoke { (2, 5) } else { (50, 400) };
    let tier = simd::active_tier();

    let mut rng = rng_from_seed(1);
    let x1200: Vec<Complex64> = (0..1200).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    let x1024: Vec<Complex64> = (0..1024).map(|_| complex_gaussian(&mut rng, 1.0)).collect();

    // 1200-point Bluestein, planned (cached twiddles + pre-transformed
    // chirp kernel, SIMD butterflies) vs the per-call baseline.
    let mut buf = x1200.clone();
    let planned_1200 = time_us(warmup, iters, || {
        buf.copy_from_slice(&x1200);
        fft(black_box(&mut buf));
    });
    let unplanned_1200 = time_us(warmup, iters, || {
        buf.copy_from_slice(&x1200);
        fft_unplanned(black_box(&mut buf));
    });

    let mut buf2 = x1024.clone();
    let planned_1024 = time_us(warmup, iters, || {
        buf2.copy_from_slice(&x1024);
        fft(black_box(&mut buf2));
    });
    let unplanned_1024 = time_us(warmup, iters, || {
        buf2.copy_from_slice(&x1024);
        fft_unplanned(black_box(&mut buf2));
    });

    // SFFT of the LTE signaling subframe through the zero-allocation
    // path with a persistent scratch.
    let mut ws = DspScratch::new();
    let g12 = CMatrix::from_fn(12, 14, |_, _| complex_gaussian(&mut rng, 1.0));
    let mut out12 = CMatrix::zeros(12, 14);
    let sfft_12x14 = time_us(warmup, iters * 2, || {
        sfft_into(black_box(&g12), &mut out12, &mut ws);
        black_box(&out12);
    });

    // QAM soft demap: per-symbol LLRs over a full-band 16-QAM grid,
    // scalar kernel vs the active SIMD tier (same entry point, forced
    // tier) — the per-block hot path of every receiver.
    let qam_syms: Vec<Complex64> =
        (0..4096).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    let mut llr_buf: Vec<f64> = Vec::with_capacity(4 * qam_syms.len());
    let qam_scalar = time_us(warmup, iters, || {
        llr_buf.clear();
        qam::demodulate_soft_into_with_tier(
            black_box(&qam_syms),
            Modulation::Qam16,
            0.1,
            &mut llr_buf,
            SimdTier::Scalar,
        );
        black_box(&llr_buf);
    });
    let qam_simd = time_us(warmup, iters, || {
        llr_buf.clear();
        qam::demodulate_soft_into_with_tier(
            black_box(&qam_syms),
            Modulation::Qam16,
            0.1,
            &mut llr_buf,
            tier,
        );
        black_box(&llr_buf);
    });

    // Viterbi: flat bit-packed trellis on a full signaling payload,
    // scalar ACS vs the vectorised add-compare-select.
    let payload_len = LinkConfig::signaling(Waveform::Otfs).max_payload_bits();
    let payload: Vec<bool> = (0..payload_len).map(|i| i % 3 == 0).collect();
    let coded = convcode::encode(&payload);
    let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
    let mut trellis = convcode::TrellisScratch::new();
    let viterbi_scalar = time_us(warmup, iters, || {
        black_box(convcode::decode_soft_with_tier(
            black_box(&llrs),
            payload_len,
            &mut trellis,
            SimdTier::Scalar,
        ));
    });
    let viterbi_simd = time_us(warmup, iters, || {
        black_box(convcode::decode_soft_with_tier(
            black_box(&llrs),
            payload_len,
            &mut trellis,
            tier,
        ));
    });

    // End-to-end coded block (the Monte-Carlo trial unit), per-block.
    let cfg = LinkConfig::signaling(Waveform::Otfs);
    let ch = ChannelModel::Hst.realize(&mut rng, 97.2, 2.6e9);
    let mut block_rng = rng_from_seed(2);
    let block_iters = (iters / 4).max(3);
    let block = time_us(warmup.min(5), block_iters, || {
        black_box(simulate_block_with(&cfg, &ch, 10.0, &payload, &mut block_rng, &mut ws));
    });

    // The same trial unit through the stage-major batch driver at a
    // sweep of batch sizes, reported as microseconds per block so the
    // series is directly comparable to the per-block number above.
    let mk_jobs = |n: usize| -> Vec<BatchJob> {
        let mut jrng = rng_from_seed(3);
        (0..n)
            .map(|i| BatchJob {
                ch: ChannelModel::Hst.realize(&mut jrng, 97.2, 2.6e9),
                payload: payload.clone(),
                rng: rng_from_seed(100 + i as u64),
            })
            .collect()
    };
    let clone_jobs = |proto: &[BatchJob]| -> Vec<BatchJob> {
        proto
            .iter()
            .map(|j| BatchJob {
                ch: j.ch.clone(),
                payload: j.payload.clone(),
                rng: j.rng.clone(),
            })
            .collect()
    };
    let mut lb = LinkBatch::new();
    let mut batch_series = Vec::new();
    let mut batched_8 = block;
    for &bs in &[1usize, 4, 8, 16] {
        let proto = mk_jobs(bs);
        let calls = (block_iters / bs).max(3);
        let per_call = time_us(warmup.min(5).min(calls), calls, || {
            let mut jobs = clone_jobs(&proto);
            black_box(lb.run(&cfg, 10.0, &mut jobs, &mut ws));
        });
        let per_block = per_call / bs as f64;
        if bs == 8 {
            batched_8 = per_block;
        }
        batch_series.push(serde_json::json!({ "batch": bs, "us_per_block": per_block }));
    }

    let report = serde_json::json!({
        "bench": "dsp_json",
        "mode": if smoke { "smoke" } else { "full" },
        "iterations": iters,
        "simd": {
            "dispatch": tier.name(),
            "cpu_features": simd::cpu_features(),
        },
        "kernels": {
            "fft_1200_bluestein": {
                "planned_us": planned_1200,
                "unplanned_us": unplanned_1200,
                "speedup": unplanned_1200 / planned_1200,
            },
            "fft_1024_radix2": {
                "planned_us": planned_1024,
                "unplanned_us": unplanned_1024,
                "speedup": unplanned_1024 / planned_1024,
            },
            "sfft_12x14_into": { "planned_us": sfft_12x14 },
            "qam_llr": {
                "symbols": qam_syms.len(),
                "modulation": "qam16",
                "scalar_us": qam_scalar,
                "simd_us": qam_simd,
                "speedup": qam_scalar / qam_simd,
            },
            "viterbi_decode_soft": {
                "scalar_us": viterbi_scalar,
                "simd_us": viterbi_simd,
                "speedup": viterbi_scalar / viterbi_simd,
                "payload_bits": payload_len,
            },
            "otfs_coded_block_12x14": {
                "us": block,
                "batched_us_per_block": batched_8,
                "batch": 8,
                "speedup": block / batched_8,
            },
        },
        "batch_throughput": batch_series,
    });

    let path = std::env::var("BENCH_DSP_JSON").unwrap_or_else(|_| "BENCH_dsp.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialise bench report");
    std::fs::write(&path, &pretty).expect("write BENCH_dsp.json");
    // Provenance manifest beside the artifact (git SHA, plan-cache
    // mode, SIMD tier, iteration counts). No result hash: timings are
    // not deterministic, only attributable.
    let spec = serde_json::json!({ "warmup": warmup, "iters": iters, "smoke": smoke });
    let manifest = rem_obs::RunManifest::new("bench:dsp_json", &spec.to_string(), iters);
    let mpath = format!("{path}.manifest.json");
    manifest.save(std::path::Path::new(&mpath)).expect("write bench manifest");
    println!("{pretty}");
    println!("wrote {path} (+ {mpath})");
    println!(
        "simd dispatch: {} | viterbi {viterbi_scalar:.2} -> {viterbi_simd:.2} us, \
         qam_llr {qam_scalar:.2} -> {qam_simd:.2} us, \
         otfs block {block:.2} -> {batched_8:.2} us (batch 8)",
        tier.name()
    );
}
