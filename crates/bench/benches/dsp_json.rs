//! DSP kernel throughput, machine-readable: times the planned FFT
//! path against the pre-PR per-call baseline (kept as
//! `fft_unplanned`/`ifft_unplanned`) plus the SFFT and Viterbi hot
//! paths, and writes `BENCH_dsp.json` so CI can archive the perf
//! trajectory.
//!
//! Usage: `cargo bench -p rem-bench --bench dsp_json [-- --test]`
//! (`--test` shrinks iteration counts to a smoke run; the JSON is
//! written either way). The output lands in the working directory, or
//! at `$BENCH_DSP_JSON` when set.

use rem_channel::models::ChannelModel;
use rem_num::fft::{fft, fft_unplanned};
use rem_num::rng::{complex_gaussian, rng_from_seed};
use rem_num::{CMatrix, Complex64};
use rem_phy::convcode;
use rem_phy::dsp::DspScratch;
use rem_phy::link::{simulate_block_with, LinkConfig, Waveform};
use rem_phy::otfs::sfft_into;
use std::hint::black_box;
use std::time::Instant;

/// Mean microseconds per call over `iters` calls, after `warmup` calls.
fn time_us(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (warmup, iters) = if smoke { (2, 5) } else { (50, 400) };

    let mut rng = rng_from_seed(1);
    let x1200: Vec<Complex64> = (0..1200).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    let x1024: Vec<Complex64> = (0..1024).map(|_| complex_gaussian(&mut rng, 1.0)).collect();

    // The tentpole number: 1200-point Bluestein, planned (cached
    // twiddles + pre-transformed chirp kernel) vs the per-call baseline.
    let mut buf = x1200.clone();
    let planned_1200 = time_us(warmup, iters, || {
        buf.copy_from_slice(&x1200);
        fft(black_box(&mut buf));
    });
    let unplanned_1200 = time_us(warmup, iters, || {
        buf.copy_from_slice(&x1200);
        fft_unplanned(black_box(&mut buf));
    });

    let mut buf2 = x1024.clone();
    let planned_1024 = time_us(warmup, iters, || {
        buf2.copy_from_slice(&x1024);
        fft(black_box(&mut buf2));
    });
    let unplanned_1024 = time_us(warmup, iters, || {
        buf2.copy_from_slice(&x1024);
        fft_unplanned(black_box(&mut buf2));
    });

    // SFFT of the LTE signaling subframe through the zero-allocation
    // path with a persistent scratch.
    let mut ws = DspScratch::new();
    let g12 = CMatrix::from_fn(12, 14, |_, _| complex_gaussian(&mut rng, 1.0));
    let mut out12 = CMatrix::zeros(12, 14);
    let sfft_12x14 = time_us(warmup, iters * 2, || {
        sfft_into(black_box(&g12), &mut out12, &mut ws);
        black_box(&out12);
    });

    // Viterbi: flat bit-packed trellis on a full signaling payload.
    let payload_len = LinkConfig::signaling(Waveform::Otfs).max_payload_bits();
    let payload: Vec<bool> = (0..payload_len).map(|i| i % 3 == 0).collect();
    let coded = convcode::encode(&payload);
    let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
    let viterbi = time_us(warmup, iters, || {
        black_box(convcode::decode_soft(black_box(&llrs), payload_len));
    });

    // End-to-end coded block (the Monte-Carlo trial unit).
    let cfg = LinkConfig::signaling(Waveform::Otfs);
    let ch = ChannelModel::Hst.realize(&mut rng, 97.2, 2.6e9);
    let mut block_rng = rng_from_seed(2);
    let block = time_us(warmup.min(5), (iters / 4).max(3), || {
        black_box(simulate_block_with(&cfg, &ch, 10.0, &payload, &mut block_rng, &mut ws));
    });

    let report = serde_json::json!({
        "bench": "dsp_json",
        "mode": if smoke { "smoke" } else { "full" },
        "iterations": iters,
        "kernels": {
            "fft_1200_bluestein": {
                "planned_us": planned_1200,
                "unplanned_us": unplanned_1200,
                "speedup": unplanned_1200 / planned_1200,
            },
            "fft_1024_radix2": {
                "planned_us": planned_1024,
                "unplanned_us": unplanned_1024,
                "speedup": unplanned_1024 / planned_1024,
            },
            "sfft_12x14_into": { "planned_us": sfft_12x14 },
            "viterbi_decode_soft": { "flat_trellis_us": viterbi, "payload_bits": payload_len },
            "otfs_coded_block_12x14": { "us": block },
        },
    });

    let path = std::env::var("BENCH_DSP_JSON").unwrap_or_else(|_| "BENCH_dsp.json".into());
    let pretty = serde_json::to_string_pretty(&report).expect("serialise bench report");
    std::fs::write(&path, &pretty).expect("write BENCH_dsp.json");
    // Provenance manifest beside the artifact (git SHA, plan-cache
    // mode, iteration counts). No result hash: timings are not
    // deterministic, only attributable.
    let spec = serde_json::json!({ "warmup": warmup, "iters": iters, "smoke": smoke });
    let manifest = rem_obs::RunManifest::new("bench:dsp_json", &spec.to_string(), iters);
    let mpath = format!("{path}.manifest.json");
    manifest.save(std::path::Path::new(&mpath)).expect("write bench manifest");
    println!("{pretty}");
    println!("wrote {path} (+ {mpath})");
    println!(
        "fft_1200_bluestein: planned {planned_1200:.2} us vs unplanned {unplanned_1200:.2} us \
         ({:.2}x)",
        unplanned_1200 / planned_1200
    );
}
