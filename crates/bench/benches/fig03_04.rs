//! Figs 3 & 4: policy-conflict example traces. Two cells with
//! conflicting policies; the client crossing their boundary
//! oscillates (Fig 3: inter-frequency load balancing; Fig 4:
//! intra-frequency mutually-proactive A3).

use rem_bench::header;
use rem_mobility::events::{EventConfig, EventKind, EventMonitor};
use rem_num::rng::rng_from_seed;
use rem_num::rng::standard_normal;

/// One trace sample: `(t_s, rsrp1, rsrp2, serving)`.
type TraceSample = (f64, f64, f64, u8);

/// Simulates a 10 s crossing: two RSRP ramps + light noise, two
/// event monitors implementing each cell's rule toward the other.
/// Returns (time, rsrp1, rsrp2, serving) samples and handover times.
fn crossing(
    rule_1to2: EventKind,
    rule_2to1: EventKind,
    seed: u64,
) -> (Vec<TraceSample>, Vec<f64>) {
    let mut rng = rng_from_seed(seed);
    let mut serving = 1u8;
    let mut mon12 = EventMonitor::default();
    let mut mon21 = EventMonitor::default();
    let cfg = |kind| EventConfig { kind, ttt_ms: 80.0, hysteresis_db: 0.5 };
    let mut samples = Vec::new();
    let mut handovers = Vec::new();
    let mut guard_until = 0.0;
    let mut t = 0.0;
    while t <= 10_000.0 {
        // Cell 1 decays, cell 2 rises; both meander slightly.
        let r1 = -96.0 - t / 1e3 + 0.8 * standard_normal(&mut rng);
        let r2 = -102.0 + 0.9 * t / 1e3 + 0.8 * standard_normal(&mut rng);
        if t >= guard_until {
            if serving == 1 {
                if mon12.observe(&cfg(rule_1to2), t, r1, r2) {
                    serving = 2;
                    handovers.push(t);
                    mon12.reset();
                    mon21.reset();
                    guard_until = t + 1_000.0;
                }
            } else if mon21.observe(&cfg(rule_2to1), t, r2, r1) {
                serving = 1;
                handovers.push(t);
                mon12.reset();
                mon21.reset();
                guard_until = t + 1_000.0;
            }
        }
        if (t as u64).is_multiple_of(500) {
            samples.push((t / 1e3, r1, r2, serving));
        }
        t += 20.0;
    }
    (samples, handovers)
}

fn report(name: &str, paper: &str, rule_1to2: EventKind, rule_2to1: EventKind) {
    header(name);
    let (samples, handovers) = crossing(rule_1to2, rule_2to1, 7);
    println!("{:>6} {:>9} {:>9} {:>8}", "t (s)", "RSRP1", "RSRP2", "serving");
    for (t, r1, r2, s) in samples {
        println!("{t:>6.1} {r1:>9.1} {r2:>9.1} {s:>8}");
    }
    println!("handovers at: {:?} (count {})", handovers.iter().map(|t| (t / 100.0).round() / 10.0).collect::<Vec<_>>(), handovers.len());
    println!("paper: {paper}");
}

fn main() {
    report(
        "Fig 3: load-balancing conflict (A4 vs A5, inter-frequency)",
        "8 handovers within 15 s while RSRP2 in (-110, -95) and RSRP1 > -100",
        EventKind::A4 { thresh: -110.0 },
        EventKind::A5 { serving_below: -95.0, neighbor_above: -100.0 },
    );
    report(
        "Fig 4: failure-induced conflict (proactive A3-A3, intra-frequency)",
        "oscillation while |RSRP3 - RSRP4| inside the (-3, +1) window",
        EventKind::A3 { offset: -3.0 },
        EventKind::A3 { offset: -1.0 },
    );
}
