//! Fault-injection robustness sweep: failure/recovery statistics and
//! the classification oracle under escalating fault rates, both planes.
//!
//! Not a paper table — this is the regression harness for the
//! `rem-faults` subsystem: every printed row re-checks that classified
//! failure causes match the injected ground truth, so `cargo bench
//! --bench faults` doubles as an oracle audit.

use rem_bench::{bench_args, header, pct};
use rem_core::{CampaignSpec, DatasetSpec, FaultConfig, FaultKind, Plane, RunMetrics};

fn faulted_agg(spec: &DatasetSpec, plane: Plane, scale: f64, threads: usize) -> RunMetrics {
    CampaignSpec::new(spec.clone())
        .with_seeds(&[1, 2, 3])
        .with_threads(threads)
        .with_faults(FaultConfig::default().scaled(scale))
        .aggregate(plane)
}

fn main() {
    let args = bench_args();
    header("Fault injection: reliability and oracle under seeded faults");
    let spec = DatasetSpec::beijing_taiyuan(30.0, 300.0);
    println!(
        "{:<10} {:>6} {:>9} {:>7} {:>7} {:>8} {:>8} {:>9} {:>7}",
        "plane", "rate", "injected", "fail", "HOs", "reestab", "fallback", "oracle", "miss"
    );
    let mut any_mismatch = false;
    for plane in [Plane::Legacy, Plane::Rem] {
        for scale in [0.0, 0.5, 1.0, 2.0] {
            let m = faulted_agg(&spec, plane, scale, args.threads);
            let mismatches = m.oracle_mismatches().len();
            any_mismatch |= mismatches > 0;
            println!(
                "{:<10} {:>5.1}x {:>9} {:>7} {:>7} {:>8} {:>8} {:>9} {:>7}",
                format!("{plane:?}"),
                scale,
                m.injected.len(),
                pct(m.failure_ratio()),
                m.handovers.len(),
                m.reestablish_attempts,
                m.rem_fallback_epochs,
                m.fault_oracle.len(),
                mismatches,
            );
        }
    }
    println!("\nper-kind injection mix at 1.0x (legacy):");
    let m = faulted_agg(&spec, Plane::Legacy, 1.0, args.threads);
    for kind in FaultKind::all() {
        let n = m.injected.iter().filter(|f| f.kind == kind).count();
        println!("  {:<14} {:>4}", kind.label(), n);
    }
    if any_mismatch {
        println!("\nWARNING: oracle mismatches detected — classifier disagrees with injected truth");
        std::process::exit(1);
    }
    println!("\noracle clean: every attributed failure classified as its injected cause");
}
