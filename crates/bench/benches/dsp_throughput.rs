//! Library performance benchmarks: the DSP kernels every REM
//! operation rides on (FFT, SFFT, SVD, Viterbi, MP detection) and the
//! end-to-end block pipeline. Criterion timings — run with
//! `cargo bench -p rem-bench --bench dsp_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use rem_channel::models::ChannelModel;
use rem_channel::DdGrid;
use rem_num::fft::{fft_unplanned, fft_vec};
use rem_num::rng::{complex_gaussian, rng_from_seed};
use rem_num::svd::svd;
use rem_num::{CMatrix, Complex64};
use rem_phy::convcode;
use rem_phy::dsp::DspScratch;
use rem_phy::link::{simulate_block, LinkConfig, Waveform};
use rem_phy::mp_detect::{apply_dd_channel, mp_detect, DdTap, MpConfig};
use rem_phy::otfs::{sfft, sfft_into};
use rem_phy::Modulation;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);

    // FFT: power-of-two and Bluestein paths, planned (cached twiddles,
    // pre-transformed Bluestein kernel) vs the pre-plan per-call
    // baseline kept as `fft_unplanned`.
    let x1024: Vec<Complex64> = (0..1024).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    let x1200: Vec<Complex64> = (0..1200).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    c.bench_function("fft_1024_radix2", |b| b.iter(|| black_box(fft_vec(black_box(&x1024)))));
    c.bench_function("fft_1200_bluestein", |b| b.iter(|| black_box(fft_vec(black_box(&x1200)))));
    let mut scratch1200 = x1200.clone();
    c.bench_function("fft_1200_bluestein_unplanned", |b| {
        b.iter(|| {
            scratch1200.copy_from_slice(&x1200);
            fft_unplanned(black_box(&mut scratch1200));
        })
    });

    // SFFT of an LTE subframe and a 4-RB grid; the `_into` variant
    // exercises the zero-allocation steady state.
    let g12 = CMatrix::from_fn(12, 14, |_, _| complex_gaussian(&mut rng, 1.0));
    let g48 = CMatrix::from_fn(48, 14, |_, _| complex_gaussian(&mut rng, 1.0));
    c.bench_function("sfft_12x14", |b| b.iter(|| black_box(sfft(black_box(&g12)))));
    c.bench_function("sfft_48x14", |b| b.iter(|| black_box(sfft(black_box(&g48)))));
    let mut ws = DspScratch::new();
    let mut out12 = CMatrix::zeros(12, 14);
    c.bench_function("sfft_12x14_into", |b| {
        b.iter(|| {
            sfft_into(black_box(&g12), &mut out12, &mut ws);
            black_box(&out12);
        })
    });

    // Viterbi on a full signaling payload: flat bit-packed trellis.
    let vit_cfg = LinkConfig::signaling(Waveform::Otfs);
    let vit_payload: Vec<bool> = (0..vit_cfg.max_payload_bits()).map(|i| i % 3 == 0).collect();
    let vit_coded = convcode::encode(&vit_payload);
    let vit_llrs: Vec<f64> = vit_coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
    c.bench_function("viterbi_decode_soft_146", |b| {
        b.iter(|| black_box(convcode::decode_soft(black_box(&vit_llrs), vit_payload.len())))
    });

    // SVD at the cross-band working size.
    let h = CMatrix::from_fn(24, 16, |_, _| complex_gaussian(&mut rng, 1.0));
    c.bench_function("svd_24x16", |b| b.iter(|| black_box(svd(black_box(&h)))));

    // Full coded block through the HST channel (the Fig 10 unit).
    let cfg = LinkConfig::signaling(Waveform::Otfs);
    let ch = ChannelModel::Hst.realize(&mut rng, 97.2, 2.6e9);
    let payload: Vec<bool> = (0..cfg.max_payload_bits()).map(|i| i % 3 == 0).collect();
    let mut block_rng = rng_from_seed(2);
    c.bench_function("otfs_coded_block_12x14", |b| {
        b.iter(|| black_box(simulate_block(&cfg, &ch, 10.0, &payload, &mut block_rng)))
    });

    // MP detection on an 8x8 grid with 3 taps.
    let taps = vec![
        DdTap { dk: 0, dl: 0, gain: Complex64::ONE },
        DdTap { dk: 1, dl: 1, gain: rem_num::c64(0.3, 0.2) },
        DdTap { dk: 2, dl: 0, gain: rem_num::c64(0.0, 0.25) },
    ];
    let xdd = CMatrix::from_fn(8, 8, |_, _| rem_num::c64(0.7071, 0.7071));
    let y = apply_dd_channel(&xdd, &taps);
    c.bench_function("mp_detect_8x8_3taps", |b| {
        b.iter(|| {
            black_box(mp_detect(
                black_box(&y),
                &taps,
                Modulation::Qpsk,
                0.01,
                &MpConfig::default(),
            ))
        })
    });

    let _ = DdGrid::lte_subframe();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
