//! Shared helpers for the table/figure regeneration benches.
//!
//! Every bench target prints the series/rows of one paper table or
//! figure next to the paper's reported values, so `cargo bench` output
//! doubles as the EXPERIMENTS.md evidence.

use rem_num::stats::Ecdf;

/// Route length (km) used by campaign benches. Longer routes tighten
/// the statistics at the cost of runtime.
pub const ROUTE_KM: f64 = 60.0;

/// Seeds aggregated per configuration.
pub const SEEDS: [u64; 4] = [1, 2, 3, 4];

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// Prints an ECDF as `(x, percent)` rows.
pub fn print_cdf(label: &str, data: &[f64], points: usize, unit: &str) {
    let e = Ecdf::new(data);
    println!("-- CDF: {label} ({} samples) --", e.len());
    for (x, p) in e.series(points) {
        println!("  {x:>10.2} {unit:<4} {:>6.1}%", p * 100.0);
    }
}

/// Formats a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats the paper's epsilon reduction factor.
pub fn eps(e: f64) -> String {
    if e.is_infinite() {
        "inf".to_string()
    } else {
        format!("{e:.1}x")
    }
}
