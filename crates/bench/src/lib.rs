//! Shared helpers for the table/figure regeneration benches.
//!
//! Every bench target prints the series/rows of one paper table or
//! figure next to the paper's reported values, so `cargo bench` output
//! doubles as the EXPERIMENTS.md evidence.

use rem_num::stats::Ecdf;

/// Route length (km) used by campaign benches. Longer routes tighten
/// the statistics at the cost of runtime.
///
/// Re-exported from [`rem_core`]: the campaign configuration (route,
/// seeds, threads) now lives in [`rem_core::CampaignSpec`] so benches
/// and the CLI share one sweep-configuration type.
pub use rem_core::DEFAULT_ROUTE_KM as ROUTE_KM;

/// Seeds aggregated per configuration (re-exported from [`rem_core`]).
pub use rem_core::DEFAULT_SEEDS as SEEDS;

/// Arguments of a `harness = false` bench invocation: the optional
/// positional trial-count and the `--threads N` worker count.
///
/// Cargo passes its own tokens (e.g. `--bench`) through to the binary;
/// unknown flags are ignored rather than rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// First bare integer argument (conventionally the Monte-Carlo
    /// block/trial count), if any.
    pub trials: Option<usize>,
    /// Worker threads (`0` = all available hardware threads).
    pub threads: usize,
}

impl BenchArgs {
    /// The positional trial count, or `default` when absent.
    pub fn trials_or(&self, default: usize) -> usize {
        self.trials.unwrap_or(default)
    }
}

/// Parses bench command-line tokens (everything after the program
/// name). See [`BenchArgs`].
pub fn parse_bench_args<I, S>(tokens: I) -> BenchArgs
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = BenchArgs { trials: None, threads: 0 };
    let mut it = tokens.into_iter();
    while let Some(tok) = it.next() {
        let tok = tok.as_ref();
        if tok == "--threads" {
            if let Some(v) = it.next() {
                if let Ok(n) = v.as_ref().parse() {
                    out.threads = n;
                }
            }
        } else if out.trials.is_none() {
            if let Ok(n) = tok.parse() {
                out.trials = Some(n);
            }
        }
    }
    out
}

/// [`parse_bench_args`] over the process arguments.
pub fn bench_args() -> BenchArgs {
    parse_bench_args(std::env::args().skip(1))
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// Prints an ECDF as `(x, percent)` rows.
pub fn print_cdf(label: &str, data: &[f64], points: usize, unit: &str) {
    let e = Ecdf::new(data);
    println!("-- CDF: {label} ({} samples) --", e.len());
    for (x, p) in e.series(points) {
        println!("  {x:>10.2} {unit:<4} {:>6.1}%", p * 100.0);
    }
}

/// Formats a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats the paper's epsilon reduction factor.
pub fn eps(e: f64) -> String {
    if e.is_infinite() {
        "inf".to_string()
    } else {
        format!("{e:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_args_parses_positional_and_threads() {
        let a = parse_bench_args(["60", "--threads", "2"]);
        assert_eq!(a, BenchArgs { trials: Some(60), threads: 2 });
        assert_eq!(a.trials_or(200), 60);
    }

    #[test]
    fn bench_args_defaults() {
        let a = parse_bench_args::<_, &str>([]);
        assert_eq!(a, BenchArgs { trials: None, threads: 0 });
        assert_eq!(a.trials_or(200), 200);
    }

    #[test]
    fn bench_args_ignores_cargo_tokens() {
        // Cargo injects e.g. `--bench`; the threads value must not be
        // mistaken for the positional trial count.
        let a = parse_bench_args(["--bench", "--threads", "4", "80"]);
        assert_eq!(a, BenchArgs { trials: Some(80), threads: 4 });
        let b = parse_bench_args(["--threads", "4"]);
        assert_eq!(b.trials, None);
        assert_eq!(b.threads, 4);
    }

    #[test]
    fn campaign_constants_come_from_core() {
        assert_eq!(ROUTE_KM, rem_core::DEFAULT_ROUTE_KM);
        assert_eq!(SEEDS, rem_core::DEFAULT_SEEDS);
    }
}
