#![warn(missing_docs)]

//! # rem-exec
//!
//! Deterministic parallel execution for embarrassingly parallel
//! Monte-Carlo workloads: BLER blocks, per-seed campaign replays, and
//! SNR/speed sweep points.
//!
//! Every headline result in this workspace is a loop over *independent*
//! trials whose randomness is derived from `(seed, trial index)` rather
//! than threaded through a shared `&mut SimRng`. That makes the trials
//! schedulable in any order on any number of workers while the reduced
//! result stays bit-identical — the property the paper's paired
//! same-seed replay methodology (§7) depends on.
//!
//! [`par_map`] (and its per-worker-state sibling [`par_map_with`]) is
//! the whole API: worker threads *steal* trial indices
//! from a shared atomic counter (a single-ended work-stealing queue —
//! whichever worker is free takes the next trial, so uneven trial costs
//! load-balance themselves), and results are reduced back in canonical
//! trial order, independent of which worker computed what when.
//!
//! Scoped threads come from the standard library
//! ([`std::thread::scope`], the stabilised descendant of
//! `crossbeam::thread::scope`), so the crate's only dependency is the
//! workspace's own `rem-obs` probe layer, whose calls compile to
//! nothing unless a binary turns its `enabled` feature on.
//!
//! ## Observability
//!
//! Both entry points count their calls and trials
//! (`rem_exec_par_map_*` / `rem_exec_checked_*`), and the checked
//! runner additionally counts retries, quarantines and deadline
//! overruns and emits one `exec/quarantine` or `exec/deadline_overrun`
//! trace event per affected trial, in canonical index order. Probes never touch trial values or
//! scheduling, so instrumented and uninstrumented builds produce
//! bit-identical results.
//!
//! ```
//! // Any thread count — including 1 — produces the same vector.
//! let serial = rem_exec::par_map(1, 100, |i| i * i);
//! let parallel = rem_exec::par_map(4, 100, |i| i * i);
//! assert_eq!(serial, parallel);
//! ```

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Number of hardware threads available to this process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "use every available
/// hardware thread"; anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

/// Maps `f` over the trial indices `0..n` on `threads` worker threads
/// (`0` = available parallelism) and returns the results **in canonical
/// trial order** — `out[i] == f(i)` regardless of scheduling.
///
/// Work distribution is dynamic: each worker repeatedly claims the next
/// unclaimed index from a shared atomic cursor, so slow trials don't
/// stall a statically assigned stripe. Determinism is therefore the
/// *caller's* contract to keep per-trial: `f` must depend only on its
/// index (derive per-trial RNG streams from `(seed, index)`, e.g. with
/// `rem_num::rng::child_rng`), never on shared mutable state.
///
/// Panics in `f` are propagated to the caller after the scope joins.
pub fn par_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(threads, n, || (), move |(), i| f(i))
}

/// [`par_map`] with per-worker mutable state: each worker thread calls
/// `init()` exactly once and threads the resulting value through every
/// trial it claims as `f(&mut state, index)`.
///
/// This is the hook DSP scratch reuse hangs off: a worker's FFT planner,
/// trellis and LLR buffers are built once and reused across all of its
/// trials instead of being reallocated per block. The determinism
/// contract is unchanged — and sharpened: `f`'s *result* must depend
/// only on `index`, with the state acting as a cache/scratch whose
/// contents never influence values (plans are pure functions of length,
/// buffers are fully overwritten). The state never crosses threads, so
/// `S` need not be `Send`.
///
/// Panics in `init` or `f` are propagated to the caller after the scope
/// joins.
pub fn par_map_with<T, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    rem_obs::metrics::inc("rem_exec_par_map_calls_total");
    rem_obs::metrics::add("rem_exec_par_map_trials_total", n as u64);
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rem-exec worker panicked")).collect()
    });

    // Canonical-order reduction: scatter each worker's (index, value)
    // pairs into place, then collect in index order.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            debug_assert!(slots[i].is_none(), "trial {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("trial {i} never ran")))
        .collect()
}

/// Folds the results of [`par_map`] in canonical trial order: trials
/// run in parallel, the reduction runs serially over `0..n`, so the
/// fold sees results exactly as a serial loop would.
pub fn par_map_reduce<T, A, F, R>(threads: usize, n: usize, init: A, f: F, mut reduce: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    let mut acc = init;
    for v in par_map(threads, n, f) {
        acc = reduce(acc, v);
    }
    acc
}

// ---------------------------------------------------------------------------
// Crash-safe ("checked") execution: panic isolation, bounded seeded
// retry, deadline watchdog, quarantine.
// ---------------------------------------------------------------------------

/// Retry/timeout policy for [`par_map_checked`] and
/// [`par_map_with_checked`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckedPolicy {
    /// How many times a panicking trial is re-attempted before it is
    /// quarantined. `0` means a single attempt (no retry). The closure
    /// receives the attempt number, so a chaos/fault hook can behave
    /// differently per attempt while the *real* trial computation stays
    /// a pure function of the index — the property that keeps a retried
    /// trial bit-identical to an unfaulted run.
    pub max_retries: u32,
    /// Per-trial deadline. The watchdog cannot preempt a running
    /// closure (there is no safe way to kill a thread mid-trial); it
    /// *detects*: trials still running past the deadline are reported
    /// on stderr while the campaign runs, and every trial whose total
    /// elapsed time exceeded the deadline appears in
    /// [`CheckedRun::overruns`]. Trial *values* are never affected, so
    /// results stay bit-identical whether or not a deadline is set.
    pub trial_timeout: Option<Duration>,
}

impl CheckedPolicy {
    /// Policy with `max_retries` retries and no deadline.
    pub fn with_retries(max_retries: u32) -> Self {
        Self { max_retries, trial_timeout: None }
    }

    /// Sets the per-trial deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.trial_timeout = Some(timeout);
        self
    }
}

/// A trial that panicked on every allowed attempt and was removed from
/// the campaign instead of aborting it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedTrial {
    /// Canonical trial index.
    pub index: usize,
    /// Attempts made (`max_retries + 1`).
    pub attempts: u32,
    /// Stringified payload of the *last* panic (`&str`/`String`
    /// payloads verbatim, otherwise a placeholder).
    pub payload: String,
}

impl std::fmt::Display for QuarantinedTrial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trial {} quarantined after {} attempt(s): {}",
            self.index, self.attempts, self.payload
        )
    }
}

/// A trial whose wall-clock time exceeded the policy deadline
/// (reported, never enforced — see [`CheckedPolicy::trial_timeout`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineOverrun {
    /// Canonical trial index.
    pub index: usize,
    /// Observed elapsed time (ms). For a trial flagged while still
    /// running this is the elapsed time at detection, refreshed to the
    /// final elapsed time once the trial completes.
    pub elapsed_ms: u64,
    /// The configured deadline (ms).
    pub deadline_ms: u64,
}

/// Result of one checked trial, in canonical index order.
#[derive(Clone, Debug, PartialEq)]
pub enum TrialOutcome<T> {
    /// The trial produced a value (possibly after retries).
    Ok(T),
    /// The trial panicked on every attempt and was quarantined.
    Quarantined(QuarantinedTrial),
}

impl<T> TrialOutcome<T> {
    /// The value, if the trial succeeded.
    pub fn ok(&self) -> Option<&T> {
        match self {
            TrialOutcome::Ok(v) => Some(v),
            TrialOutcome::Quarantined(_) => None,
        }
    }

    /// Consumes the outcome into its value, if any.
    pub fn into_ok(self) -> Option<T> {
        match self {
            TrialOutcome::Ok(v) => Some(v),
            TrialOutcome::Quarantined(_) => None,
        }
    }

    /// True for [`TrialOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, TrialOutcome::Ok(_))
    }
}

/// Everything a checked campaign produced: per-trial outcomes in
/// canonical order plus the supervision report.
#[derive(Clone, Debug)]
pub struct CheckedRun<T> {
    /// `outcomes[i]` is trial `i`'s result, independent of scheduling.
    pub outcomes: Vec<TrialOutcome<T>>,
    /// Trials whose elapsed time exceeded the policy deadline, sorted
    /// by index.
    pub overruns: Vec<DeadlineOverrun>,
    /// Total panicking attempts that were retried (quarantined trials'
    /// final attempts are not counted here; see
    /// [`CheckedRun::quarantined`]).
    pub retries: u64,
}

impl<T> CheckedRun<T> {
    /// The quarantined trials, in canonical index order.
    pub fn quarantined(&self) -> Vec<&QuarantinedTrial> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                TrialOutcome::Quarantined(q) => Some(q),
                TrialOutcome::Ok(_) => None,
            })
            .collect()
    }

    /// True when every trial produced a value.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(TrialOutcome::is_ok)
    }

    /// Consumes the run into plain values; `Err` carries the
    /// quarantine list if any trial failed.
    pub fn into_values(self) -> Result<Vec<T>, Vec<QuarantinedTrial>> {
        if self.is_clean() {
            Ok(self.outcomes.into_iter().filter_map(TrialOutcome::into_ok).collect())
        } else {
            Err(self
                .outcomes
                .into_iter()
                .filter_map(|o| match o {
                    TrialOutcome::Quarantined(q) => Some(q),
                    TrialOutcome::Ok(_) => None,
                })
                .collect())
        }
    }
}

thread_local! {
    /// Set while a checked trial attempt runs: the wrapped panic hook
    /// stays silent for panics we are going to catch and report
    /// ourselves.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that delegates to the
/// previous hook unless the current thread is inside a checked trial.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Stringifies a panic payload (`&str` and `String` verbatim).
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`par_map`] hardened for long campaigns: each trial runs under
/// `catch_unwind` with up to `policy.max_retries` re-attempts, and a
/// trial that panics on every attempt is **quarantined** (reported with
/// its index and panic payload) instead of aborting the whole run.
///
/// `f(index, attempt)` must make its *result* a pure function of
/// `index` — the attempt number exists so fault-injection hooks can
/// panic on early attempts only. Under that contract a run with zero
/// failures is bit-identical to `par_map(threads, n, |i| f(i, 0))`,
/// and a retried trial reproduces exactly the value an unfaulted run
/// would have produced, so unaffected trials' aggregates (and hashes)
/// never move.
pub fn par_map_checked<T, F>(
    threads: usize,
    n: usize,
    policy: CheckedPolicy,
    f: F,
) -> CheckedRun<T>
where
    T: Send,
    F: Fn(usize, u32) -> T + Sync,
{
    par_map_with_checked(threads, n, policy, || (), move |(), i, a| f(i, a))
}

/// [`par_map_checked`] with per-worker state (the checked sibling of
/// [`par_map_with`]). After a panic the worker's state is considered
/// poisoned and is rebuilt with `init()` before the next attempt —
/// scratch buffers mid-mutation must never leak into a retry.
pub fn par_map_with_checked<T, S, I, F>(
    threads: usize,
    n: usize,
    policy: CheckedPolicy,
    init: I,
    f: F,
) -> CheckedRun<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, u32) -> T + Sync,
{
    install_quiet_panic_hook();
    rem_obs::metrics::inc("rem_exec_checked_calls_total");
    rem_obs::metrics::add("rem_exec_checked_trials_total", n as u64);
    let workers = resolve_threads(threads).min(n.max(1));
    let deadline_ms = policy.trial_timeout.map(|d| d.as_millis().max(1) as u64);
    let epoch = Instant::now();

    // Per-worker "what am I running and since when" slots for the
    // watchdog: `busy_index` holds index+1 (0 = idle), `busy_since_ms`
    // the start offset from `epoch`.
    struct WorkerSlot {
        busy_index: AtomicUsize,
        busy_since_ms: AtomicU64,
    }
    let slots: Vec<WorkerSlot> = (0..workers.max(1))
        .map(|_| WorkerSlot { busy_index: AtomicUsize::new(0), busy_since_ms: AtomicU64::new(0) })
        .collect();
    let live_overruns: Mutex<Vec<DeadlineOverrun>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);

    // One worker's trial loop over a shared cursor; returns
    // (index, outcome, elapsed_ms) triples plus its retry count.
    struct WorkerPart<T> {
        results: Vec<(usize, TrialOutcome<T>, u64)>,
        retries: u64,
    }
    let run_worker = |slot: &WorkerSlot, cursor: &AtomicUsize| -> WorkerPart<T> {
        let mut state = init();
        let mut results = Vec::new();
        let mut retries = 0u64;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let started = Instant::now();
            slot.busy_since_ms
                .store(started.duration_since(epoch).as_millis() as u64, Ordering::Relaxed);
            slot.busy_index.store(i + 1, Ordering::Relaxed);
            let mut outcome = None;
            let mut last_payload = String::new();
            let attempts = policy.max_retries + 1;
            for attempt in 0..attempts {
                SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
                let caught =
                    std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut state, i, attempt)));
                SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
                match caught {
                    Ok(v) => {
                        outcome = Some(TrialOutcome::Ok(v));
                        break;
                    }
                    Err(payload) => {
                        last_payload = payload_to_string(payload);
                        // The state may be mid-mutation; rebuild it.
                        state = init();
                        if attempt + 1 < attempts {
                            retries += 1;
                        }
                    }
                }
            }
            let outcome = outcome.unwrap_or_else(|| {
                TrialOutcome::Quarantined(QuarantinedTrial {
                    index: i,
                    attempts,
                    payload: last_payload,
                })
            });
            slot.busy_index.store(0, Ordering::Relaxed);
            let elapsed_ms = started.elapsed().as_millis() as u64;
            results.push((i, outcome, elapsed_ms));
        }
        WorkerPart { results, retries }
    };

    let parts: Vec<WorkerPart<T>> = if workers <= 1 || n <= 1 {
        let cursor = AtomicUsize::new(0);
        vec![run_worker(&slots[0], &cursor)]
    } else {
        let cursor = AtomicUsize::new(0);
        let run_worker = &run_worker;
        std::thread::scope(|scope| {
            // Watchdog: flags trials still running past the deadline.
            if let Some(dl) = deadline_ms {
                let slots = &slots;
                let done = &done;
                let live = &live_overruns;
                scope.spawn(move || {
                    let tick = Duration::from_millis((dl / 2).clamp(10, 200));
                    let mut flagged: Vec<usize> = Vec::new();
                    while !done.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        let now_ms = epoch.elapsed().as_millis() as u64;
                        for slot in slots {
                            let idx1 = slot.busy_index.load(Ordering::Relaxed);
                            if idx1 == 0 {
                                continue;
                            }
                            let since = slot.busy_since_ms.load(Ordering::Relaxed);
                            let elapsed = now_ms.saturating_sub(since);
                            let index = idx1 - 1;
                            if elapsed > dl && !flagged.contains(&index) {
                                flagged.push(index);
                                eprintln!(
                                    "rem-exec: trial {index} running for {elapsed} ms \
                                     (deadline {dl} ms)"
                                );
                                live.lock().unwrap().push(DeadlineOverrun {
                                    index,
                                    elapsed_ms: elapsed,
                                    deadline_ms: dl,
                                });
                            }
                        }
                    }
                });
            }
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slot = &slots[w];
                    let cursor = &cursor;
                    scope.spawn(move || run_worker(slot, cursor))
                })
                .collect();
            let parts = handles
                .into_iter()
                .map(|h| h.join().expect("rem-exec checked worker panicked"))
                .collect();
            done.store(true, Ordering::Relaxed);
            parts
        })
    };

    // Canonical-order reduction, as in `par_map_with`.
    let mut slots_out: Vec<Option<TrialOutcome<T>>> = (0..n).map(|_| None).collect();
    let mut overruns = live_overruns.into_inner().unwrap();
    let mut retries = 0u64;
    for part in parts {
        retries += part.retries;
        for (i, outcome, elapsed_ms) in part.results {
            if let Some(dl) = deadline_ms {
                if elapsed_ms > dl {
                    // Refresh a live flag with the final elapsed time,
                    // or record the overrun post-hoc.
                    if let Some(o) = overruns.iter_mut().find(|o| o.index == i) {
                        o.elapsed_ms = elapsed_ms;
                    } else {
                        overruns.push(DeadlineOverrun {
                            index: i,
                            elapsed_ms,
                            deadline_ms: dl,
                        });
                    }
                }
            }
            debug_assert!(slots_out[i].is_none(), "trial {i} computed twice");
            slots_out[i] = Some(outcome);
        }
    }
    overruns.sort_by_key(|o| o.index);
    let outcomes: Vec<TrialOutcome<T>> = slots_out
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("trial {i} never ran")))
        .collect();

    // Supervision probes, emitted after the canonical-order reduction
    // so the trace is deterministic even under contention.
    rem_obs::metrics::add("rem_exec_checked_retries_total", retries);
    rem_obs::metrics::add("rem_exec_checked_overruns_total", overruns.len() as u64);
    for o in &overruns {
        rem_obs::trace::emit(
            "exec",
            "deadline_overrun",
            &[
                ("index", o.index.into()),
                ("elapsed_ms", o.elapsed_ms.into()),
                ("deadline_ms", o.deadline_ms.into()),
            ],
        );
    }
    for outcome in &outcomes {
        if let TrialOutcome::Quarantined(q) = outcome {
            rem_obs::metrics::inc("rem_exec_checked_quarantined_total");
            rem_obs::trace::emit(
                "exec",
                "quarantine",
                &[("index", q.index.into()), ("attempts", q.attempts.into())],
            );
        }
    }
    CheckedRun { outcomes, overruns, retries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::AtomicUsize;

    /// A cheap deterministic per-index value with an uneven cost
    /// profile, to exercise the stealing path.
    fn trial(i: usize) -> u64 {
        let mut h = DefaultHasher::new();
        i.hash(&mut h);
        // Uneven work: some indices spin longer than others.
        let spin = (i % 7) * 400;
        let mut x = h.finish();
        for _ in 0..spin {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        x
    }

    #[test]
    fn preserves_canonical_order() {
        let out = par_map(4, 64, |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn any_thread_count_is_bit_identical() {
        let reference: Vec<u64> = (0..97).map(trial).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            assert_eq!(par_map(threads, 97, trial), reference, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(available_parallelism() >= 1);
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let out = par_map(0, 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_sizes() {
        assert!(par_map(4, 0, |i| i).is_empty());
        assert_eq!(par_map(4, 1, |i| i * 10), vec![0]);
        // More workers than trials.
        assert_eq!(par_map(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let _ = par_map(8, 50, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn reduce_sees_canonical_order() {
        let order = par_map_reduce(4, 20, Vec::new(), |i| i, |mut acc, i| {
            acc.push(i);
            acc
        });
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn with_state_matches_stateless_and_is_thread_invariant() {
        // The state is a scratch buffer; results must not depend on it
        // or on how trials were distributed.
        let reference: Vec<u64> = (0..97).map(trial).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_with(
                threads,
                97,
                Vec::<u64>::new,
                |scratch, i| {
                    scratch.push(i as u64); // state mutates freely...
                    trial(i) // ...but the result depends only on i.
                },
            );
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn init_runs_once_per_worker_serial_path() {
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            1,
            10,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| i,
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    // ---- checked execution ----

    #[test]
    fn checked_with_zero_failures_matches_par_map() {
        let reference: Vec<u64> = (0..61).map(trial).collect();
        for threads in [1, 2, 4, 8] {
            let run = par_map_checked(threads, 61, CheckedPolicy::default(), |i, _a| trial(i));
            assert!(run.is_clean());
            assert_eq!(run.retries, 0);
            assert_eq!(run.into_values().unwrap(), reference, "threads={threads}");
        }
    }

    #[test]
    fn panicking_trials_are_retried_to_the_unfaulted_value() {
        // Panic on attempt 0 for every third trial; the retry must
        // reproduce exactly what an unfaulted run computes.
        let reference: Vec<u64> = (0..40).map(trial).collect();
        for threads in [1, 4] {
            let run = par_map_checked(threads, 40, CheckedPolicy::with_retries(2), |i, a| {
                if i % 3 == 0 && a == 0 {
                    panic!("chaos {i}");
                }
                trial(i)
            });
            assert!(run.is_clean(), "threads={threads}");
            assert_eq!(run.retries, 14, "threads={threads}"); // ceil(40/3)
            assert_eq!(run.into_values().unwrap(), reference);
        }
    }

    #[test]
    fn poisoned_trial_is_quarantined_without_aborting() {
        for threads in [1, 3] {
            let run = par_map_checked(threads, 20, CheckedPolicy::with_retries(1), |i, _a| {
                if i == 7 {
                    panic!("always broken");
                }
                trial(i)
            });
            assert!(!run.is_clean());
            let qs = run.quarantined();
            assert_eq!(qs.len(), 1);
            assert_eq!(qs[0].index, 7);
            assert_eq!(qs[0].attempts, 2);
            assert_eq!(qs[0].payload, "always broken");
            // Every other trial's value is untouched.
            for (i, o) in run.outcomes.iter().enumerate() {
                if i != 7 {
                    assert_eq!(o.ok(), Some(&trial(i)), "index {i}");
                }
            }
        }
    }

    #[test]
    fn quarantine_reports_non_string_payloads() {
        let run = par_map_checked(1, 2, CheckedPolicy::default(), |i, _a| {
            if i == 1 {
                std::panic::panic_any(42usize);
            }
            i
        });
        let qs = run.quarantined();
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].payload, "<non-string panic payload>");
    }

    #[test]
    fn worker_state_is_rebuilt_after_a_panic() {
        // A panicking attempt leaves a marker in the scratch; the retry
        // must see a freshly initialised state.
        let run = par_map_with_checked(
            1,
            4,
            CheckedPolicy::with_retries(1),
            Vec::<usize>::new,
            |scratch, i, a| {
                assert!(
                    !scratch.contains(&usize::MAX),
                    "poisoned scratch leaked into trial {i} attempt {a}"
                );
                if i == 2 && a == 0 {
                    scratch.push(usize::MAX);
                    panic!("poison");
                }
                scratch.push(i);
                i
            },
        );
        assert!(run.is_clean());
        assert_eq!(run.retries, 1);
    }

    #[test]
    fn deadline_overruns_are_reported_not_enforced() {
        let policy = CheckedPolicy::default().with_timeout(Duration::from_millis(5));
        let run = par_map_checked(2, 6, policy, |i, _a| {
            if i == 3 {
                std::thread::sleep(Duration::from_millis(40));
            }
            i
        });
        // The slow trial still completes with its value...
        assert!(run.is_clean());
        assert_eq!(run.outcomes[3].ok(), Some(&3));
        // ...and is flagged in the overrun report.
        assert!(run.overruns.iter().any(|o| o.index == 3), "overruns={:?}", run.overruns);
        for o in &run.overruns {
            assert_eq!(o.deadline_ms, 5);
            assert!(o.elapsed_ms > 5);
        }
    }

    #[test]
    fn checked_degenerate_sizes() {
        let empty = par_map_checked(4, 0, CheckedPolicy::default(), |i, _a| i);
        assert!(empty.outcomes.is_empty());
        assert!(empty.is_clean());
        let one = par_map_checked(4, 1, CheckedPolicy::default(), |i, _a| i * 10);
        assert_eq!(one.outcomes[0].ok(), Some(&0));
    }

    #[test]
    fn checked_preserves_canonical_order_under_contention() {
        let run = par_map_checked(8, 120, CheckedPolicy::with_retries(1), |i, a| {
            if i % 11 == 0 && a == 0 {
                panic!("flaky");
            }
            trial(i)
        });
        assert!(run.is_clean());
        let vals = run.into_values().unwrap();
        assert_eq!(vals, (0..120).map(trial).collect::<Vec<_>>());
    }
}
