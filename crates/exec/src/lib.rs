#![warn(missing_docs)]

//! # rem-exec
//!
//! Deterministic parallel execution for embarrassingly parallel
//! Monte-Carlo workloads: BLER blocks, per-seed campaign replays, and
//! SNR/speed sweep points.
//!
//! Every headline result in this workspace is a loop over *independent*
//! trials whose randomness is derived from `(seed, trial index)` rather
//! than threaded through a shared `&mut SimRng`. That makes the trials
//! schedulable in any order on any number of workers while the reduced
//! result stays bit-identical — the property the paper's paired
//! same-seed replay methodology (§7) depends on.
//!
//! [`par_map`] (and its per-worker-state sibling [`par_map_with`]) is
//! the whole API: worker threads *steal* trial indices
//! from a shared atomic counter (a single-ended work-stealing queue —
//! whichever worker is free takes the next trial, so uneven trial costs
//! load-balance themselves), and results are reduced back in canonical
//! trial order, independent of which worker computed what when.
//!
//! Scoped threads come from the standard library
//! ([`std::thread::scope`], the stabilised descendant of
//! `crossbeam::thread::scope`), so the crate has zero dependencies and
//! builds in hermetic environments.
//!
//! ```
//! // Any thread count — including 1 — produces the same vector.
//! let serial = rem_exec::par_map(1, 100, |i| i * i);
//! let parallel = rem_exec::par_map(4, 100, |i| i * i);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "use every available
/// hardware thread"; anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

/// Maps `f` over the trial indices `0..n` on `threads` worker threads
/// (`0` = available parallelism) and returns the results **in canonical
/// trial order** — `out[i] == f(i)` regardless of scheduling.
///
/// Work distribution is dynamic: each worker repeatedly claims the next
/// unclaimed index from a shared atomic cursor, so slow trials don't
/// stall a statically assigned stripe. Determinism is therefore the
/// *caller's* contract to keep per-trial: `f` must depend only on its
/// index (derive per-trial RNG streams from `(seed, index)`, e.g. with
/// `rem_num::rng::child_rng`), never on shared mutable state.
///
/// Panics in `f` are propagated to the caller after the scope joins.
pub fn par_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(threads, n, || (), move |(), i| f(i))
}

/// [`par_map`] with per-worker mutable state: each worker thread calls
/// `init()` exactly once and threads the resulting value through every
/// trial it claims as `f(&mut state, index)`.
///
/// This is the hook DSP scratch reuse hangs off: a worker's FFT planner,
/// trellis and LLR buffers are built once and reused across all of its
/// trials instead of being reallocated per block. The determinism
/// contract is unchanged — and sharpened: `f`'s *result* must depend
/// only on `index`, with the state acting as a cache/scratch whose
/// contents never influence values (plans are pure functions of length,
/// buffers are fully overwritten). The state never crosses threads, so
/// `S` need not be `Send`.
///
/// Panics in `init` or `f` are propagated to the caller after the scope
/// joins.
pub fn par_map_with<T, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rem-exec worker panicked")).collect()
    });

    // Canonical-order reduction: scatter each worker's (index, value)
    // pairs into place, then collect in index order.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            debug_assert!(slots[i].is_none(), "trial {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("trial {i} never ran")))
        .collect()
}

/// Folds the results of [`par_map`] in canonical trial order: trials
/// run in parallel, the reduction runs serially over `0..n`, so the
/// fold sees results exactly as a serial loop would.
pub fn par_map_reduce<T, A, F, R>(threads: usize, n: usize, init: A, f: F, mut reduce: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    let mut acc = init;
    for v in par_map(threads, n, f) {
        acc = reduce(acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::AtomicUsize;

    /// A cheap deterministic per-index value with an uneven cost
    /// profile, to exercise the stealing path.
    fn trial(i: usize) -> u64 {
        let mut h = DefaultHasher::new();
        i.hash(&mut h);
        // Uneven work: some indices spin longer than others.
        let spin = (i % 7) * 400;
        let mut x = h.finish();
        for _ in 0..spin {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        x
    }

    #[test]
    fn preserves_canonical_order() {
        let out = par_map(4, 64, |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn any_thread_count_is_bit_identical() {
        let reference: Vec<u64> = (0..97).map(trial).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            assert_eq!(par_map(threads, 97, trial), reference, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(available_parallelism() >= 1);
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let out = par_map(0, 10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_sizes() {
        assert!(par_map(4, 0, |i| i).is_empty());
        assert_eq!(par_map(4, 1, |i| i * 10), vec![0]);
        // More workers than trials.
        assert_eq!(par_map(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let _ = par_map(8, 50, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn reduce_sees_canonical_order() {
        let order = par_map_reduce(4, 20, Vec::new(), |i| i, |mut acc, i| {
            acc.push(i);
            acc
        });
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn with_state_matches_stateless_and_is_thread_invariant() {
        // The state is a scratch buffer; results must not depend on it
        // or on how trials were distributed.
        let reference: Vec<u64> = (0..97).map(trial).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_with(
                threads,
                97,
                Vec::<u64>::new,
                |scratch, i| {
                    scratch.push(i as u64); // state mutates freely...
                    trial(i) // ...but the result depends only on i.
                },
            );
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn init_runs_once_per_worker_serial_path() {
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            1,
            10,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| i,
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_map(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
