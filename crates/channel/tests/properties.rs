//! Property-based tests for the channel substrate.

use proptest::prelude::*;
use rem_channel::delaydoppler::{dd_channel_matrix, gamma_matrix, p_matrix, phi_matrix, snap_to_grid, DdGrid};
use rem_channel::doppler::{coherence_time_s, max_doppler_hz};
use rem_channel::path::{MultipathChannel, Path};
use rem_num::c64;

fn channel_strategy() -> impl Strategy<Value = MultipathChannel> {
    proptest::collection::vec(
        ((-1.0f64..1.0, -1.0f64..1.0), 0.0f64..4e-6, -800.0f64..800.0),
        1..6,
    )
    .prop_map(|paths| {
        MultipathChannel::new(
            paths
                .into_iter()
                .map(|((re, im), tau, nu)| Path::new(c64(re, im), tau, nu))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn carrier_scaling_preserves_delays_and_gains(ch in channel_strategy(),
                                                  f1 in 0.7e9f64..3e9, f2 in 0.7e9f64..3e9) {
        let scaled = ch.scaled_to_carrier(f1, f2);
        for (a, b) in ch.paths().iter().zip(scaled.paths()) {
            prop_assert_eq!(a.gain, b.gain);
            prop_assert_eq!(a.delay_s, b.delay_s);
            prop_assert!((b.doppler_hz - a.doppler_hz * f2 / f1).abs() < 1e-9 * (1.0 + a.doppler_hz.abs()));
        }
    }

    #[test]
    fn advancing_preserves_total_power(ch in channel_strategy(), dt in 0.0f64..1.0) {
        let adv = ch.advanced_by(dt);
        prop_assert!((adv.total_power() - ch.total_power()).abs() < 1e-9 * ch.total_power().max(1e-12));
    }

    #[test]
    fn normalization_yields_unit_power(ch in channel_strategy()) {
        let mut c = ch;
        if c.total_power() > 1e-12 {
            c.normalize_power();
            prop_assert!((c.total_power() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tf_gain_bounded_by_gain_sum(ch in channel_strategy(), t in 0.0f64..0.01, f in -10e6f64..10e6) {
        let bound: f64 = ch.paths().iter().map(|p| p.gain.abs()).sum();
        prop_assert!(ch.tf_gain(t, f).abs() <= bound + 1e-9);
    }

    #[test]
    fn coherence_time_inverse_to_speed(v1 in 1.0f64..50.0, f in 0.7e9f64..3e9) {
        let t1 = coherence_time_s(v1, f);
        let t2 = coherence_time_s(2.0 * v1, f);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
        prop_assert!((max_doppler_hz(v1, f) * t1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dd_matrix_equals_factor_product(ch in channel_strategy()) {
        let grid = DdGrid::lte(10, 8);
        let h = dd_channel_matrix(&grid, &ch);
        let prod = gamma_matrix(&grid, &ch)
            .matmul(&p_matrix(&ch))
            .matmul(&phi_matrix(&grid, &ch));
        prop_assert!(h.frobenius_dist(&prod) < 1e-9 * h.frobenius_norm().max(1.0));
    }

    #[test]
    fn snapped_channel_is_on_grid(ch in channel_strategy()) {
        let grid = DdGrid::lte(12, 14);
        let s = snap_to_grid(&grid, &ch);
        for p in s.paths() {
            let k = p.delay_s / grid.delta_tau();
            let l = p.doppler_hz / grid.delta_nu();
            prop_assert!((k - k.round()).abs() < 1e-6);
            prop_assert!((l - l.round()).abs() < 1e-6);
            prop_assert!(p.delay_s >= 0.0);
        }
    }

    #[test]
    fn dd_energy_of_on_grid_channel_matches_path_power(
        mags in proptest::collection::vec(0.1f64..1.0, 1..4)
    ) {
        // Distinct on-grid placements: energy identity holds exactly.
        let grid = DdGrid::lte(16, 12);
        let paths: Vec<Path> = mags
            .iter()
            .enumerate()
            .map(|(i, &m)| Path::new(c64(m, 0.0), (i as f64 + 1.0) * grid.delta_tau(),
                                     (i as f64) * grid.delta_nu()))
            .collect();
        let ch = MultipathChannel::new(paths);
        let h = dd_channel_matrix(&grid, &ch);
        let energy: f64 = h.frobenius_norm().powi(2);
        prop_assert!((energy - ch.total_power()).abs() < 1e-6 * ch.total_power());
    }
}

/// Paper Appendix A: the delay-Doppler representation is stable — the
/// path profile magnitudes `{|h_p|, tau_p, nu_p}` are invariant as the
/// channel evolves, while the time-frequency response decorrelates
/// within a coherence time.
#[test]
fn appendix_a_delay_doppler_stability() {
    use rem_channel::models::ChannelModel;
    use rem_num::rng::rng_from_seed;

    let mut rng = rng_from_seed(42);
    let speed = 97.2; // 350 km/h
    let carrier = 2.6e9;
    let ch0 = ChannelModel::Hst.realize(&mut rng, speed, carrier);
    let tc = rem_channel::doppler::coherence_time_s(speed, carrier);

    // Advance by 3.5 coherence times (non-integer so the dominant
    // path phase does not wrap back to its start).
    let ch1 = ch0.advanced_by(3.5 * tc);

    // Time-frequency response: decorrelated (large relative change).
    let g0 = ch0.tf_gain(0.0, 0.0);
    let g1 = ch1.tf_gain(0.0, 0.0);
    let tf_change = g0.dist(g1) / g0.abs().max(1e-12);
    assert!(tf_change > 0.5, "TF should decorrelate: change={tf_change}");

    // Delay-Doppler profile: magnitudes/delays/Dopplers identical.
    for (a, b) in ch0.paths().iter().zip(ch1.paths()) {
        assert!((a.gain.abs() - b.gain.abs()).abs() < 1e-12);
        assert_eq!(a.delay_s, b.delay_s);
        assert_eq!(a.doppler_hz, b.doppler_hz);
    }
}

/// 5G numerologies shorten symbols: delta_tau grows coarser in delay,
/// finer in Doppler, and the ICI term shrinks quadratically with SCS.
#[test]
fn nr_numerology_scaling() {
    use rem_channel::delaydoppler::DdGrid;
    use rem_channel::noise::ici_relative_power;

    let mu0 = DdGrid::nr(0, 12, 14);
    let mu1 = DdGrid::nr(1, 12, 14);
    let mu2 = DdGrid::nr(2, 12, 14);
    assert!((mu0.delta_f - 15e3).abs() < 1e-9);
    assert!((mu1.delta_f - 30e3).abs() < 1e-9);
    assert!((mu2.delta_f - 60e3).abs() < 1e-9);
    assert!((mu1.duration_s() - mu0.duration_s() / 2.0).abs() < 1e-12);
    // ICI at 870 Hz Doppler: each numerology step divides it by 4.
    let i0 = ici_relative_power(870.0, mu0.t_sym);
    let i1 = ici_relative_power(870.0, mu1.t_sym);
    assert!((i0 / i1 - 4.0).abs() < 1e-9);
}
