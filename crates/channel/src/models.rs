//! 3GPP reference multipath channel models.
//!
//! The paper evaluates REM against "4G/5G standard channel models"
//! (§1, §7.2): the Extended Pedestrian A / Vehicular A / Typical Urban
//! tapped-delay-line profiles of TS 36.101/36.104 Annex B, plus the
//! high-speed-train (HST) scenario. A *realization* draws a complex
//! Rayleigh gain per tap (Rician for the HST line-of-sight tap) and a
//! per-tap Doppler shift from the Jakes angle-of-arrival model
//! `nu_p = nu_max cos(theta_p)`.

use crate::doppler::max_doppler_hz;
use crate::path::{MultipathChannel, Path};
use rand::Rng;
use rem_num::rng::complex_gaussian;
use rem_num::{Complex64, SimRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A 3GPP-style tapped-delay-line profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Extended Pedestrian A: 7 taps, 410 ns max excess delay. The
    /// paper's low-mobility baseline regimes use this or EVA.
    Epa,
    /// Extended Vehicular A: 9 taps, 2510 ns max excess delay. Used by
    /// the paper's "low mobility (EVA)" comparisons (Fig 10b/11b).
    Eva,
    /// Extended Typical Urban: 9 taps, 5000 ns max excess delay.
    Etu,
    /// High-speed train: strongly Rician (dominant line-of-sight) with
    /// a small scattered component — the paper's HSR regime.
    Hst,
}

impl ChannelModel {
    /// `(delay in ns, relative power in dB)` for each tap.
    pub fn taps(self) -> &'static [(f64, f64)] {
        match self {
            ChannelModel::Epa => &[
                (0.0, 0.0),
                (30.0, -1.0),
                (70.0, -2.0),
                (90.0, -3.0),
                (110.0, -8.0),
                (190.0, -17.2),
                (410.0, -20.8),
            ],
            ChannelModel::Eva => &[
                (0.0, 0.0),
                (30.0, -1.5),
                (150.0, -1.4),
                (310.0, -3.6),
                (370.0, -0.6),
                (710.0, -9.1),
                (1090.0, -7.0),
                (1730.0, -12.0),
                (2510.0, -16.9),
            ],
            ChannelModel::Etu => &[
                (0.0, -1.0),
                (50.0, -1.0),
                (120.0, -1.0),
                (200.0, 0.0),
                (230.0, 0.0),
                (500.0, 0.0),
                (1600.0, -3.0),
                (2300.0, -5.0),
                (5000.0, -7.0),
            ],
            // HST: LOS tap plus sparse scatterers (trackside masts,
            // gantries). Delays reflect the 80–550 m BS-track geometry
            // cited by the paper (§5.2).
            ChannelModel::Hst => &[
                (0.0, 0.0),
                (300.0, -10.0),
                (900.0, -13.0),
                (1600.0, -16.0),
            ],
        }
    }

    /// Rician K-factor in dB for the first tap; `None` means all taps
    /// are Rayleigh.
    pub fn k_factor_db(self) -> Option<f64> {
        match self {
            ChannelModel::Hst => Some(10.0),
            _ => None,
        }
    }

    /// Number of taps.
    pub fn num_taps(self) -> usize {
        self.taps().len()
    }

    /// Draws one channel realization for a client at `speed_ms` under
    /// carrier `carrier_hz`. The profile is normalized to unit average
    /// power; tap Doppler shifts follow the Jakes model, except the HST
    /// line-of-sight tap which takes the full `+nu_max` (train
    /// approaching the base station, the worst case the paper studies).
    pub fn realize(self, rng: &mut SimRng, speed_ms: f64, carrier_hz: f64) -> MultipathChannel {
        let taps = self.taps();
        let total_lin: f64 = taps.iter().map(|&(_, p_db)| 10f64.powf(p_db / 10.0)).sum();
        let nu_max = max_doppler_hz(speed_ms, carrier_hz);
        let k_lin = self.k_factor_db().map(|k| 10f64.powf(k / 10.0));

        let mut paths = Vec::with_capacity(taps.len());
        for (idx, &(delay_ns, p_db)) in taps.iter().enumerate() {
            let p_lin = 10f64.powf(p_db / 10.0) / total_lin;
            // Tap positions vary with the local geometry: jitter every
            // non-LOS delay per realization (+-40%). This is what makes
            // the multipath profile location-dependent rather than a
            // fixed fingerprint.
            let delay_ns = if idx == 0 {
                delay_ns
            } else {
                delay_ns * (1.0 + 0.4 * rng.gen_range(-1.0..1.0))
            };
            let (gain, doppler) = if let (0, Some(k)) = (idx, k_lin) {
                // Rician first tap: deterministic LOS + diffuse part.
                let los_pow = p_lin * k / (k + 1.0);
                let nlos_pow = p_lin / (k + 1.0);
                let los_phase: f64 = rng.gen_range(0.0..2.0 * PI);
                let gain = Complex64::cis(los_phase).scale(los_pow.sqrt())
                    + complex_gaussian(rng, nlos_pow);
                (gain, nu_max)
            } else {
                let theta: f64 = rng.gen_range(0.0..2.0 * PI);
                (complex_gaussian(rng, p_lin), nu_max * theta.cos())
            };
            paths.push(Path::new(gain, delay_ns * 1e-9, doppler));
        }
        MultipathChannel::new(paths)
    }

    /// Like [`realize`](Self::realize) but with deterministic unit-power
    /// taps (no Rayleigh draw): useful for ground-truth comparisons in
    /// estimation tests where a random deep fade would mask algorithmic
    /// error.
    pub fn realize_deterministic(
        self,
        rng: &mut SimRng,
        speed_ms: f64,
        carrier_hz: f64,
    ) -> MultipathChannel {
        let taps = self.taps();
        let total_lin: f64 = taps.iter().map(|&(_, p_db)| 10f64.powf(p_db / 10.0)).sum();
        let nu_max = max_doppler_hz(speed_ms, carrier_hz);
        let mut paths = Vec::with_capacity(taps.len());
        for &(delay_ns, p_db) in taps {
            let p_lin = 10f64.powf(p_db / 10.0) / total_lin;
            let theta: f64 = rng.gen_range(0.0..2.0 * PI);
            let phase: f64 = rng.gen_range(0.0..2.0 * PI);
            paths.push(Path::new(
                Complex64::cis(phase).scale(p_lin.sqrt()),
                delay_ns * 1e-9,
                nu_max * theta.cos(),
            ));
        }
        MultipathChannel::new(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn profiles_are_nontrivial_and_sorted_by_delay() {
        for m in [ChannelModel::Epa, ChannelModel::Eva, ChannelModel::Etu, ChannelModel::Hst] {
            let taps = m.taps();
            assert!(taps.len() >= 4, "{m:?}");
            for w in taps.windows(2) {
                assert!(w[1].0 > w[0].0, "{m:?} delays must increase");
            }
            assert_eq!(taps[0].0, 0.0);
        }
    }

    #[test]
    fn tap_counts_match_3gpp() {
        assert_eq!(ChannelModel::Epa.num_taps(), 7);
        assert_eq!(ChannelModel::Eva.num_taps(), 9);
        assert_eq!(ChannelModel::Etu.num_taps(), 9);
    }

    #[test]
    fn realization_has_unit_mean_power() {
        let mut rng = rng_from_seed(3);
        let n = 4000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += ChannelModel::Eva.realize(&mut rng, 30.0, 2e9).total_power();
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean power {mean}");
    }

    #[test]
    fn doppler_bounded_by_nu_max() {
        let mut rng = rng_from_seed(5);
        let speed = 97.2; // 350 km/h
        let nu_max = max_doppler_hz(speed, 2.6e9);
        for _ in 0..100 {
            let ch = ChannelModel::Hst.realize(&mut rng, speed, 2.6e9);
            assert!(ch.max_doppler_hz() <= nu_max + 1e-9);
        }
    }

    #[test]
    fn hst_is_dominated_by_los() {
        let mut rng = rng_from_seed(7);
        let mut los_frac = 0.0;
        let n = 500;
        for _ in 0..n {
            let ch = ChannelModel::Hst.realize(&mut rng, 97.2, 2e9);
            los_frac += ch.paths()[0].gain.norm_sqr() / ch.total_power();
        }
        los_frac /= n as f64;
        assert!(los_frac > 0.7, "LOS fraction {los_frac}");
    }

    #[test]
    fn hst_los_doppler_is_full_shift() {
        let mut rng = rng_from_seed(11);
        let speed = 97.2;
        let nu_max = max_doppler_hz(speed, 2e9);
        let ch = ChannelModel::Hst.realize(&mut rng, speed, 2e9);
        assert!((ch.paths()[0].doppler_hz - nu_max).abs() < 1e-9);
    }

    #[test]
    fn deterministic_variant_has_exactly_unit_power() {
        let mut rng = rng_from_seed(13);
        let ch = ChannelModel::Eva.realize_deterministic(&mut rng, 30.0, 2e9);
        assert!((ch.total_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn static_client_realization_has_zero_doppler() {
        let mut rng = rng_from_seed(17);
        let ch = ChannelModel::Epa.realize(&mut rng, 0.0, 2e9);
        assert_eq!(ch.max_doppler_hz(), 0.0);
    }

    #[test]
    fn realizations_are_seed_deterministic() {
        let a = ChannelModel::Eva.realize(&mut rng_from_seed(23), 50.0, 2e9);
        let b = ChannelModel::Eva.realize(&mut rng_from_seed(23), 50.0, 2e9);
        assert_eq!(a, b);
    }
}
