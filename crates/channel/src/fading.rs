//! Time-correlated small-scale fading (Jakes sum-of-sinusoids).
//!
//! The per-message link model draws independent fades; for trace-level
//! studies (SNR time series, correlated HARQ retransmissions) a
//! *process* with the right temporal statistics is needed: Rayleigh
//! envelope, autocorrelation `J0(2 pi f_d tau)`, coherence time
//! `~1/f_d`. The classic Jakes simulator sums equal-power sinusoids at
//! Doppler shifts `f_d cos(theta_k)` with random phases.

use rand::Rng;
use rem_num::{c64, Complex64, SimRng};
use std::f64::consts::PI;

/// A Jakes sum-of-sinusoids fading process with unit average power.
#[derive(Clone, Debug)]
pub struct JakesFader {
    max_doppler_hz: f64,
    /// Per-oscillator `(doppler_hz, phase_i, phase_q)`.
    oscillators: Vec<(f64, f64, f64)>,
}

impl JakesFader {
    /// Creates a fader with `n_osc` oscillators (16–32 gives smooth
    /// statistics) for maximum Doppler `max_doppler_hz`.
    pub fn new(max_doppler_hz: f64, n_osc: usize, rng: &mut SimRng) -> Self {
        assert!(n_osc > 0, "need at least one oscillator");
        let oscillators = (0..n_osc)
            .map(|k| {
                // Angles spread over the circle with random offset
                // (avoids the classic Jakes correlation artifacts).
                let theta =
                    2.0 * PI * (k as f64 + rng.gen_range(0.0..1.0)) / n_osc as f64;
                (
                    max_doppler_hz * theta.cos(),
                    rng.gen_range(0.0..2.0 * PI),
                    rng.gen_range(0.0..2.0 * PI),
                )
            })
            .collect();
        Self { max_doppler_hz, oscillators }
    }

    /// The configured maximum Doppler (Hz).
    pub fn max_doppler_hz(&self) -> f64 {
        self.max_doppler_hz
    }

    /// Complex channel gain at time `t` (seconds). Unit average power.
    pub fn gain_at(&self, t: f64) -> Complex64 {
        let n = self.oscillators.len() as f64;
        let scale = (1.0 / n).sqrt();
        let mut acc = Complex64::ZERO;
        for &(fd, pi_, pq) in &self.oscillators {
            let ang = 2.0 * PI * fd * t;
            acc += c64((ang + pi_).cos(), (ang + pq).sin()).scale(scale);
        }
        // Components each have variance 1/2 -> unit total power.
        acc
    }

    /// Power gain (linear) at time `t`.
    pub fn power_at(&self, t: f64) -> f64 {
        self.gain_at(t).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn fader(fd: f64, seed: u64) -> JakesFader {
        JakesFader::new(fd, 24, &mut rng_from_seed(seed))
    }

    #[test]
    fn unit_average_power() {
        let f = fader(100.0, 1);
        let n = 20_000;
        let p: f64 = (0..n).map(|i| f.power_at(i as f64 * 1e-3)).sum::<f64>() / n as f64;
        assert!((p - 1.0).abs() < 0.1, "p={p}");
    }

    #[test]
    fn envelope_fades_deeply_sometimes() {
        // Rayleigh-like: deep fades (<-10 dB) occur with ~10% probability.
        let f = fader(200.0, 2);
        let n = 20_000;
        let deep = (0..n).filter(|&i| f.power_at(i as f64 * 1e-3) < 0.1).count();
        let frac = deep as f64 / n as f64;
        assert!((0.03..0.25).contains(&frac), "deep-fade fraction {frac}");
    }

    #[test]
    fn autocorrelation_decays_on_coherence_scale() {
        // Correlation high within Tc/4, low beyond several Tc.
        let fd = 100.0; // Tc ~ 10 ms
        let f = fader(fd, 3);
        let n = 4000;
        let samples: Vec<Complex64> =
            (0..n).map(|i| f.gain_at(i as f64 * 1e-4)).collect();
        let corr = |lag: usize| -> f64 {
            let mut acc = Complex64::ZERO;
            for i in 0..(n - lag) {
                acc += samples[i] * samples[i + lag].conj();
            }
            acc.abs() / (n - lag) as f64
        };
        let c0 = corr(0);
        let c_small = corr(25); // 2.5 ms
        let c_large = corr(400); // 40 ms = 4 Tc
        assert!(c_small / c0 > 0.5, "small-lag corr {}", c_small / c0);
        assert!(c_large / c0 < 0.5, "large-lag corr {}", c_large / c0);
    }

    #[test]
    fn faster_doppler_decorrelates_faster() {
        let slow = fader(50.0, 4);
        let fast = fader(500.0, 4);
        let corr_at = |f: &JakesFader, tau: f64| -> f64 {
            let n = 3000;
            let mut acc = Complex64::ZERO;
            for i in 0..n {
                let t = i as f64 * 1e-4;
                acc += f.gain_at(t) * f.gain_at(t + tau).conj();
            }
            acc.abs() / n as f64
        };
        let tau = 2e-3;
        assert!(corr_at(&slow, tau) > corr_at(&fast, tau));
    }

    #[test]
    fn zero_doppler_is_static() {
        let f = fader(0.0, 5);
        let g0 = f.gain_at(0.0);
        let g1 = f.gain_at(10.0);
        assert!(g0.dist(g1) < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fader(120.0, 9);
        let b = fader(120.0, 9);
        assert!(a.gain_at(0.123).dist(b.gain_at(0.123)) < 1e-12);
    }
}
