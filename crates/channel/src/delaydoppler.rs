//! Sampled delay-Doppler channel matrices (paper §5.2, Eq. 5–6).
//!
//! Discretising the OFDM time-frequency plane into an `M x N` grid
//! (subcarrier spacing `delta_f`, symbol duration `T`) induces a dual
//! `M x N` delay-Doppler grid with quantisation steps
//! `delta_tau = 1 / (M delta_f)` and `delta_nu = 1 / (N T)`. The
//! windowed channel sampled on that grid factorises as
//!
//! ```text
//! H = Γ · P · Φ
//! ```
//!
//! with `Γ (M x P)` the frequency-independent delay-spread factor,
//! `P (P x P)` the diagonal of path magnitudes, and `Φ (P x N)` the
//! frequency-dependent Doppler-spread factor — the decomposition that
//! REM approximates with an SVD for cross-band estimation.

use crate::path::MultipathChannel;
use rem_num::{CMatrix, Complex64};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// An `M x N` delay-Doppler grid induced by an OFDM numerology.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DdGrid {
    /// Number of delay bins (= OFDM subcarriers), `M`.
    pub m: usize,
    /// Number of Doppler bins (= OFDM symbols), `N`.
    pub n: usize,
    /// Subcarrier spacing in Hz, `delta_f`.
    pub delta_f: f64,
    /// Symbol duration in seconds, `T`.
    pub t_sym: f64,
}

impl DdGrid {
    /// Standard 4G LTE numerology: `delta_f = 15 kHz`, `T = 66.7 us`.
    pub fn lte(m: usize, n: usize) -> Self {
        Self { m, n, delta_f: 15e3, t_sym: 1.0 / 15e3 }
    }

    /// One LTE subframe: 12 subcarriers x 14 symbols (1 ms).
    pub fn lte_subframe() -> Self {
        Self::lte(12, 14)
    }

    /// 5G NR numerology `mu` (paper §3.4 / TS 38.211): subcarrier
    /// spacing `15 * 2^mu` kHz, symbol duration `1/(15*2^mu kHz)`.
    /// `mu` in 0..=4 covers 15/30/60/120/240 kHz.
    pub fn nr(mu: u32, m: usize, n: usize) -> Self {
        let scs = 15e3 * 2f64.powi(mu as i32);
        Self { m, n, delta_f: scs, t_sym: 1.0 / scs }
    }

    /// Delay quantisation step `delta_tau = 1 / (M delta_f)`, seconds.
    pub fn delta_tau(&self) -> f64 {
        1.0 / (self.m as f64 * self.delta_f)
    }

    /// Doppler quantisation step `delta_nu = 1 / (N T)`, Hz.
    pub fn delta_nu(&self) -> f64 {
        1.0 / (self.n as f64 * self.t_sym)
    }

    /// Total grid duration `N T`, seconds.
    pub fn duration_s(&self) -> f64 {
        self.n as f64 * self.t_sym
    }

    /// Total bandwidth `M delta_f`, Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.m as f64 * self.delta_f
    }
}

/// Delay-spread entry `Γ(k delta_tau, tau_p) = sum_{d=0}^{M-1}
/// e^{j 2 pi (k delta_tau - tau_p) d delta_f}` (geometric sum, closed
/// form away from the unit-ratio singularity).
pub fn gamma_entry(grid: &DdGrid, k: usize, tau_p: f64) -> Complex64 {
    let x = 2.0 * PI * (k as f64 * grid.delta_tau() - tau_p) * grid.delta_f;
    geometric_phasor_sum(x, grid.m)
}

/// Doppler-spread entry `Φ(l delta_nu, nu_p) = sum_{c=0}^{N-1}
/// e^{-j 2 pi (l delta_nu - nu_p) c T}`.
pub fn phi_entry(grid: &DdGrid, l: usize, nu_p: f64) -> Complex64 {
    let x = -2.0 * PI * (l as f64 * grid.delta_nu() - nu_p) * grid.t_sym;
    geometric_phasor_sum(x, grid.n)
}

/// `sum_{d=0}^{n-1} e^{j x d}`.
fn geometric_phasor_sum(x: f64, n: usize) -> Complex64 {
    let r = Complex64::cis(x);
    if r.dist(Complex64::ONE) < 1e-12 {
        Complex64::from_real(n as f64)
    } else {
        (Complex64::ONE - Complex64::cis(x * n as f64)) / (Complex64::ONE - r)
    }
}

/// The delay factor `Γ / M` as an `M x P` matrix (paper's normalised
/// form, so that `H = Γ P Φ` with the `1/(MN)` absorbed).
pub fn gamma_matrix(grid: &DdGrid, ch: &MultipathChannel) -> CMatrix {
    let paths = ch.paths();
    CMatrix::from_fn(grid.m, paths.len(), |k, p| {
        gamma_entry(grid, k, paths[p].delay_s).scale(1.0 / grid.m as f64)
    })
}

/// The diagonal magnitude factor `P` (`P x P`).
pub fn p_matrix(ch: &MultipathChannel) -> CMatrix {
    let mags: Vec<f64> = ch.paths().iter().map(|p| p.gain.abs()).collect();
    CMatrix::diag_real(&mags)
}

/// The Doppler factor `Φ / N` as a `P x N` matrix, including each
/// path's phase term `e^{-j(theta_p + 2 pi tau_p nu_p)}` where
/// `h_p = |h_p| e^{-j theta_p}`.
pub fn phi_matrix(grid: &DdGrid, ch: &MultipathChannel) -> CMatrix {
    let paths = ch.paths();
    CMatrix::from_fn(paths.len(), grid.n, |p, l| {
        let path = paths[p];
        // h_p = |h_p| e^{-j theta_p}  =>  theta_p = -arg(h_p).
        let theta_p = -path.gain.arg();
        let phase = Complex64::cis(-(theta_p + 2.0 * PI * path.delay_s * path.doppler_hz));
        phi_entry(grid, l, path.doppler_hz) * phase.scale(1.0 / grid.n as f64)
    })
}

/// The sampled delay-Doppler channel matrix `H = (Γ/M) P (Φ/N)`
/// (`M x N`), i.e. entry `(k, l)` is `h_w(k delta_tau, l delta_nu) / (M N)`
/// in the paper's notation. This is the quantity Algorithm 1 receives
/// as its input "channel estimation matrix".
pub fn dd_channel_matrix(grid: &DdGrid, ch: &MultipathChannel) -> CMatrix {
    gamma_matrix(grid, ch).matmul(&p_matrix(ch)).matmul(&phi_matrix(grid, ch))
}

/// Places each path on its nearest delay-Doppler bin — the "on-grid"
/// idealisation under which Theorem 1 holds exactly. Returns a new
/// channel whose delays/Dopplers are integer multiples of the grid
/// steps.
pub fn snap_to_grid(grid: &DdGrid, ch: &MultipathChannel) -> MultipathChannel {
    let dt = grid.delta_tau();
    let dv = grid.delta_nu();
    MultipathChannel::new(
        ch.paths()
            .iter()
            .map(|p| {
                let k = (p.delay_s / dt).round().max(0.0);
                let l = (p.doppler_hz / dv).round();
                crate::path::Path::new(p.gain, k * dt, l * dv)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use rem_num::c64;

    fn on_grid_channel(grid: &DdGrid) -> MultipathChannel {
        // Paths exactly on distinct grid points (Theorem 1 condition ii).
        let dt = grid.delta_tau();
        let dv = grid.delta_nu();
        MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.0, 0.6), 2.0 * dt, 3.0 * dv),
            Path::new(c64(-0.3, 0.3), 5.0 * dt, -2.0 * dv + grid.n as f64 * dv),
        ])
    }

    #[test]
    fn grid_steps() {
        let g = DdGrid::lte_subframe();
        assert_eq!(g.m, 12);
        assert_eq!(g.n, 14);
        assert!((g.delta_tau() - 1.0 / (12.0 * 15e3)).abs() < 1e-18);
        assert!((g.delta_nu() - 15e3 / 14.0).abs() < 1e-9);
        assert!((g.duration_s() - 14.0 / 15e3).abs() < 1e-12);
        assert!((g.bandwidth_hz() - 180e3).abs() < 1e-9);
    }

    #[test]
    fn gamma_peaks_at_matching_bin() {
        let g = DdGrid::lte(16, 8);
        let tau = 3.0 * g.delta_tau();
        // At k=3 the phasor sum is coherent: magnitude M.
        assert!((gamma_entry(&g, 3, tau).abs() - 16.0).abs() < 1e-9);
        // At other bins of an on-grid path it is zero.
        assert!(gamma_entry(&g, 5, tau).abs() < 1e-9);
    }

    #[test]
    fn phi_peaks_at_matching_bin() {
        let g = DdGrid::lte(8, 16);
        let nu = 5.0 * g.delta_nu();
        assert!((phi_entry(&g, 5, nu).abs() - 16.0).abs() < 1e-9);
        assert!(phi_entry(&g, 2, nu).abs() < 1e-9);
    }

    #[test]
    fn off_grid_path_leaks_to_neighbours() {
        let g = DdGrid::lte(16, 8);
        let tau = 3.5 * g.delta_tau();
        // Fractional delay: energy spreads, peak below M.
        assert!(gamma_entry(&g, 3, tau).abs() < 16.0);
        assert!(gamma_entry(&g, 4, tau).abs() > 1.0);
    }

    #[test]
    fn dd_matrix_of_on_grid_channel_is_sparse() {
        let g = DdGrid::lte(16, 12);
        let ch = on_grid_channel(&g);
        let h = dd_channel_matrix(&g, &ch);
        // Energy should be concentrated on exactly num_paths entries.
        let mut mags: Vec<f64> = h.as_slice().iter().map(|z| z.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(mags[2] > 1e-3);
        assert!(mags[3] < 1e-9, "expected sparsity, got {}", mags[3]);
    }

    #[test]
    fn dd_matrix_entries_match_path_magnitudes() {
        let g = DdGrid::lte(16, 12);
        let ch = on_grid_channel(&g);
        let h = dd_channel_matrix(&g, &ch);
        // Path 2 sits at (k=2, l=3) with |h| = 0.6; the normalised
        // matrix entry magnitude equals the path magnitude.
        assert!((h[(2, 3)].abs() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn factorisation_matches_direct_product() {
        let g = DdGrid::lte(10, 9);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.9, 0.1), 0.3e-6, 120.0),
            Path::new(c64(-0.2, 0.5), 1.1e-6, -80.0),
        ]);
        let h = dd_channel_matrix(&g, &ch);
        let g1 = gamma_matrix(&g, &ch);
        let p = p_matrix(&ch);
        let f = phi_matrix(&g, &ch);
        assert!(h.frobenius_dist(&g1.matmul(&p).matmul(&f)) < 1e-12);
        assert_eq!(h.shape(), (10, 9));
    }

    #[test]
    fn snap_to_grid_quantises() {
        let g = DdGrid::lte(12, 14);
        let ch = MultipathChannel::new(vec![Path::new(
            c64(1.0, 0.0),
            2.4 * g.delta_tau(),
            3.6 * g.delta_nu(),
        )]);
        let s = snap_to_grid(&g, &ch);
        assert!((s.paths()[0].delay_s / g.delta_tau() - 2.0).abs() < 1e-9);
        assert!((s.paths()[0].doppler_hz / g.delta_nu() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_matrix_is_frequency_independent_of_doppler() {
        // Changing path Doppler must not change Γ (delay factor).
        let g = DdGrid::lte(8, 8);
        let ch1 = MultipathChannel::new(vec![Path::new(c64(1.0, 0.0), 0.5e-6, 100.0)]);
        let ch2 = MultipathChannel::new(vec![Path::new(c64(1.0, 0.0), 0.5e-6, 999.0)]);
        assert!(gamma_matrix(&g, &ch1).frobenius_dist(&gamma_matrix(&g, &ch2)) < 1e-12);
    }
}
