//! Multipath channel representation in per-path form.
//!
//! A time-varying wireless channel is a sum of `P` discrete propagation
//! paths (paper Eq. 1):
//!
//! ```text
//! h(tau, nu) = sum_p  h_p * delta(tau - tau_p) * delta(nu - nu_p)
//! ```
//!
//! where `h_p` is the complex attenuation, `tau_p` the propagation
//! delay and `nu_p` the Doppler shift of path `p`. The equivalent
//! time-frequency form used by OFDM is
//!
//! ```text
//! H(t, f) = sum_p h_p * exp(j 2 pi (t nu_p - f tau_p))
//! ```
//!
//! This module stores the per-path profile and evaluates both forms.

use rem_num::{c64, CMatrix, Complex64};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// One propagation path: complex gain, delay and Doppler shift.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Complex attenuation `h_p`.
    pub gain: Complex64,
    /// Propagation delay `tau_p` in seconds.
    pub delay_s: f64,
    /// Doppler frequency shift `nu_p` in Hz.
    pub doppler_hz: f64,
}

impl Path {
    /// Convenience constructor.
    pub fn new(gain: Complex64, delay_s: f64, doppler_hz: f64) -> Self {
        Self { gain, delay_s, doppler_hz }
    }
}

/// A multipath channel: the set `{(h_p, tau_p, nu_p)}`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MultipathChannel {
    paths: Vec<Path>,
}

impl MultipathChannel {
    /// Creates a channel from explicit paths.
    pub fn new(paths: Vec<Path>) -> Self {
        Self { paths }
    }

    /// A single-path (flat, static) channel with the given gain.
    pub fn flat(gain: Complex64) -> Self {
        Self { paths: vec![Path::new(gain, 0.0, 0.0)] }
    }

    /// The paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths `P`.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Total average power `sum_p |h_p|^2`.
    pub fn total_power(&self) -> f64 {
        self.paths.iter().map(|p| p.gain.norm_sqr()).sum()
    }

    /// Scales all gains so the total power is 1. No-op on a zero channel.
    pub fn normalize_power(&mut self) {
        let p = self.total_power();
        if p > 0.0 {
            let s = 1.0 / p.sqrt();
            for path in &mut self.paths {
                path.gain = path.gain.scale(s);
            }
        }
    }

    /// Largest absolute Doppler shift across paths, in Hz.
    pub fn max_doppler_hz(&self) -> f64 {
        self.paths.iter().map(|p| p.doppler_hz.abs()).fold(0.0, f64::max)
    }

    /// Largest path delay, in seconds.
    pub fn max_delay_s(&self) -> f64 {
        self.paths.iter().map(|p| p.delay_s).fold(0.0, f64::max)
    }

    /// RMS delay spread (power-weighted), in seconds.
    pub fn rms_delay_spread_s(&self) -> f64 {
        let ptot = self.total_power();
        if ptot == 0.0 {
            return 0.0;
        }
        let mean: f64 =
            self.paths.iter().map(|p| p.gain.norm_sqr() * p.delay_s).sum::<f64>() / ptot;
        let var: f64 = self
            .paths
            .iter()
            .map(|p| p.gain.norm_sqr() * (p.delay_s - mean).powi(2))
            .sum::<f64>()
            / ptot;
        var.sqrt()
    }

    /// Evaluates the time-frequency response `H(t, f)`.
    ///
    /// `f` is the frequency offset from the band's reference (carrier)
    /// frequency; the Doppler shifts are assumed already computed for
    /// that carrier.
    pub fn tf_gain(&self, t: f64, f: f64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for p in &self.paths {
            let phase = 2.0 * PI * (t * p.doppler_hz - f * p.delay_s);
            acc += p.gain * Complex64::cis(phase);
        }
        acc
    }

    /// Samples `H` on an OFDM grid: `M` subcarriers spaced `delta_f`,
    /// `N` symbols of duration `t_sym`. Entry `(m, n)` is the gain of
    /// subcarrier `m` during symbol `n`.
    pub fn tf_grid(&self, m: usize, n: usize, delta_f: f64, t_sym: f64) -> CMatrix {
        CMatrix::from_fn(m, n, |sc, sym| self.tf_gain(sym as f64 * t_sym, sc as f64 * delta_f))
    }

    /// Re-derives this channel as seen on another carrier frequency:
    /// delays and attenuations are frequency-independent, Doppler
    /// scales as `nu_2 = nu_1 * f2 / f1` (paper §5.2).
    pub fn scaled_to_carrier(&self, f1_hz: f64, f2_hz: f64) -> Self {
        let ratio = f2_hz / f1_hz;
        Self {
            paths: self
                .paths
                .iter()
                .map(|p| Path::new(p.gain, p.delay_s, p.doppler_hz * ratio))
                .collect(),
        }
    }

    /// Advances the channel by `dt` seconds: each path accumulates the
    /// phase rotation its Doppler dictates. This models the slow
    /// delay-Doppler evolution (paper Appendix A): the profile
    /// `{|h_p|, tau_p, nu_p}` is invariant, only phases rotate.
    pub fn advanced_by(&self, dt: f64) -> Self {
        Self {
            paths: self
                .paths
                .iter()
                .map(|p| {
                    Path::new(
                        p.gain * Complex64::cis(2.0 * PI * p.doppler_hz * dt),
                        p.delay_s,
                        p.doppler_hz,
                    )
                })
                .collect(),
        }
    }

    /// Average wideband SNR (linear) when this channel carries unit-power
    /// signal over noise power `noise_var`, ignoring fading selectivity:
    /// `total_power / noise_var`.
    pub fn mean_snr_linear(&self, noise_var: f64) -> f64 {
        self.total_power() / noise_var
    }
}

/// Builds a path with gain given in dB (power) and phase in radians.
pub fn path_from_db(power_db: f64, phase: f64, delay_s: f64, doppler_hz: f64) -> Path {
    let amp = 10f64.powf(power_db / 20.0);
    Path::new(c64(amp * phase.cos(), amp * phase.sin()), delay_s, doppler_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path() -> MultipathChannel {
        MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 100.0),
            Path::new(c64(0.0, 0.5), 1e-6, -50.0),
        ])
    }

    #[test]
    fn flat_channel_is_constant() {
        let ch = MultipathChannel::flat(c64(0.8, 0.6));
        for (t, f) in [(0.0, 0.0), (1e-3, 5e6), (0.5, -2e6)] {
            assert!(ch.tf_gain(t, f).dist(c64(0.8, 0.6)) < 1e-12);
        }
    }

    #[test]
    fn power_and_normalization() {
        let mut ch = two_path();
        assert!((ch.total_power() - 1.25).abs() < 1e-12);
        ch.normalize_power();
        assert!((ch.total_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tf_gain_at_origin_is_gain_sum() {
        let ch = two_path();
        assert!(ch.tf_gain(0.0, 0.0).dist(c64(1.0, 0.5)) < 1e-12);
    }

    #[test]
    fn doppler_rotates_phase_over_time() {
        let ch = MultipathChannel::new(vec![Path::new(Complex64::ONE, 0.0, 100.0)]);
        // After 1/4 of a Doppler period the phase is +pi/2.
        let g = ch.tf_gain(1.0 / 400.0, 0.0);
        assert!(g.dist(Complex64::I) < 1e-12);
    }

    #[test]
    fn delay_rotates_phase_over_frequency() {
        let ch = MultipathChannel::new(vec![Path::new(Complex64::ONE, 1e-6, 0.0)]);
        // f * tau = 0.25 => phase -pi/2.
        let g = ch.tf_gain(0.0, 0.25e6);
        assert!(g.dist(-Complex64::I) < 1e-12);
    }

    #[test]
    fn max_doppler_and_delay() {
        let ch = two_path();
        assert_eq!(ch.max_doppler_hz(), 100.0);
        assert_eq!(ch.max_delay_s(), 1e-6);
    }

    #[test]
    fn rms_delay_spread_single_path_zero() {
        let ch = MultipathChannel::flat(Complex64::ONE);
        assert_eq!(ch.rms_delay_spread_s(), 0.0);
        assert!(two_path().rms_delay_spread_s() > 0.0);
    }

    #[test]
    fn carrier_scaling_scales_doppler_only() {
        let ch = two_path();
        let s = ch.scaled_to_carrier(1e9, 2e9);
        for (a, b) in ch.paths().iter().zip(s.paths()) {
            assert_eq!(a.gain, b.gain);
            assert_eq!(a.delay_s, b.delay_s);
            assert!((b.doppler_hz - 2.0 * a.doppler_hz).abs() < 1e-9);
        }
    }

    #[test]
    fn advance_preserves_profile_magnitudes() {
        let ch = two_path();
        let adv = ch.advanced_by(0.01);
        for (a, b) in ch.paths().iter().zip(adv.paths()) {
            assert!((a.gain.abs() - b.gain.abs()).abs() < 1e-12);
            assert_eq!(a.delay_s, b.delay_s);
            assert_eq!(a.doppler_hz, b.doppler_hz);
        }
        // Zero-Doppler path unchanged; others rotated.
        let stat = MultipathChannel::flat(Complex64::ONE).advanced_by(1.0);
        assert!(stat.paths()[0].gain.dist(Complex64::ONE) < 1e-12);
    }

    #[test]
    fn tf_grid_shape_and_values() {
        let ch = two_path();
        let g = ch.tf_grid(4, 3, 15e3, 66.7e-6);
        assert_eq!(g.shape(), (4, 3));
        assert!(g[(2, 1)].dist(ch.tf_gain(66.7e-6, 2.0 * 15e3)) < 1e-12);
    }

    #[test]
    fn path_from_db_has_right_power() {
        let p = path_from_db(-3.0, 0.0, 0.0, 0.0);
        assert!((p.gain.norm_sqr() - 10f64.powf(-0.3)).abs() < 1e-9);
    }
}
