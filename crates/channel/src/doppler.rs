//! Doppler and coherence-time helpers (paper §2).
//!
//! A client moving at speed `v` under carrier frequency `f` sees a
//! maximum Doppler shift `nu_max = v f / c` and an OFDM coherence time
//! `Tc` proportional to `1 / nu_max`. The paper quantifies `Tc ≈ c /
//! (f v)`, e.g. ~1.2–6.2 ms for 200–350 km/h on LTE bands, versus the
//! 40–640 ms measurement triggering intervals operators configure —
//! the two-orders-of-magnitude gap at the heart of §3.1.

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Converts km/h to m/s.
#[inline]
pub fn kmh_to_ms(kmh: f64) -> f64 {
    kmh / 3.6
}

/// Converts m/s to km/h.
#[inline]
pub fn ms_to_kmh(ms: f64) -> f64 {
    ms * 3.6
}

/// Maximum Doppler shift `nu_max = v f / c` in Hz for speed in m/s and
/// carrier in Hz.
#[inline]
pub fn max_doppler_hz(speed_ms: f64, carrier_hz: f64) -> f64 {
    speed_ms * carrier_hz / SPEED_OF_LIGHT
}

/// OFDM coherence time using the paper's estimate `Tc ≈ c / (f v)`
/// (i.e. `1 / nu_max`), in seconds. Returns `f64::INFINITY` for a
/// static client.
#[inline]
pub fn coherence_time_s(speed_ms: f64, carrier_hz: f64) -> f64 {
    let nu = max_doppler_hz(speed_ms, carrier_hz);
    if nu == 0.0 {
        f64::INFINITY
    } else {
        1.0 / nu
    }
}

/// Doppler shift of a single path arriving at angle `theta` (radians)
/// relative to the direction of motion: `nu = nu_max cos(theta)`.
#[inline]
pub fn path_doppler_hz(speed_ms: f64, carrier_hz: f64, theta: f64) -> f64 {
    max_doppler_hz(speed_ms, carrier_hz) * theta.cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion() {
        assert!((kmh_to_ms(360.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn doppler_at_350kmh_2ghz() {
        // 350 km/h at 2 GHz: ~648 Hz.
        let nu = max_doppler_hz(kmh_to_ms(350.0), 2e9);
        assert!((nu - 648.6).abs() < 1.0, "nu={nu}");
    }

    #[test]
    fn paper_coherence_time_range() {
        // Paper §3.1: Tc in [1.16 ms, 6.18 ms] for f in [874.2, 2665] MHz
        // and v in [200, 350] km/h.
        let tc_min = coherence_time_s(kmh_to_ms(350.0), 2665e6);
        let tc_max = coherence_time_s(kmh_to_ms(200.0), 874.2e6);
        assert!((tc_min * 1e3 - 1.16).abs() < 0.02, "tc_min={}", tc_min * 1e3);
        assert!((tc_max * 1e3 - 6.18).abs() < 0.03, "tc_max={}", tc_max * 1e3);
    }

    #[test]
    fn paper_low_mobility_example() {
        // §2: vehicle at 60 km/h under 900 MHz -> Tc ≈ 20 ms.
        let tc = coherence_time_s(kmh_to_ms(60.0), 900e6);
        assert!((tc * 1e3 - 20.0).abs() < 0.5, "tc={}", tc * 1e3);
    }

    #[test]
    fn static_client_has_infinite_coherence() {
        assert!(coherence_time_s(0.0, 2e9).is_infinite());
    }

    #[test]
    fn path_doppler_geometry() {
        let v = kmh_to_ms(300.0);
        let f = 2e9;
        let nu_max = max_doppler_hz(v, f);
        assert!((path_doppler_hz(v, f, 0.0) - nu_max).abs() < 1e-9);
        assert!(path_doppler_hz(v, f, std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!((path_doppler_hz(v, f, std::f64::consts::PI) + nu_max).abs() < 1e-9);
    }
}

/// Doppler shift seen from a trackside base station as the train moves
/// (the 3GPP HST scenario's deterministic trajectory): the shift is
/// `nu_max * cos(theta(t))` where `theta` is the angle between the
/// direction of motion and the line of sight,
/// `cos(theta) = (bs_along - pos) / distance`.
///
/// Positive while approaching, sweeping through 0 abeam of the mast,
/// negative when receding — the S-curve of TS 36.101 B.3.
pub fn hst_doppler_hz(
    pos_along_m: f64,
    bs_along_m: f64,
    bs_lateral_m: f64,
    speed_ms: f64,
    carrier_hz: f64,
) -> f64 {
    let dx = bs_along_m - pos_along_m;
    let dist = (dx * dx + bs_lateral_m * bs_lateral_m).sqrt();
    if dist <= 0.0 {
        return 0.0;
    }
    max_doppler_hz(speed_ms, carrier_hz) * dx / dist
}

#[cfg(test)]
mod hst_tests {
    use super::*;

    #[test]
    fn hst_doppler_s_curve() {
        let v = kmh_to_ms(350.0);
        let f = 2.6e9;
        let nu_max = max_doppler_hz(v, f);
        // Far ahead: near +nu_max.
        let ahead = hst_doppler_hz(0.0, 5_000.0, 100.0, v, f);
        assert!(ahead > 0.99 * nu_max, "ahead={ahead}");
        // Abeam: zero.
        let abeam = hst_doppler_hz(1_000.0, 1_000.0, 100.0, v, f);
        assert!(abeam.abs() < 1e-9);
        // Far behind: near -nu_max.
        let behind = hst_doppler_hz(10_000.0, 5_000.0, 100.0, v, f);
        assert!(behind < -0.99 * nu_max, "behind={behind}");
        // Bounded everywhere.
        for x in (0..100).map(|i| i as f64 * 100.0) {
            assert!(hst_doppler_hz(x, 5_000.0, 100.0, v, f).abs() <= nu_max + 1e-9);
        }
    }

    #[test]
    fn hst_doppler_transition_width_scales_with_lateral() {
        // A larger lateral offset stretches the zero crossing.
        let v = kmh_to_ms(300.0);
        let f = 2e9;
        let slope_near = hst_doppler_hz(990.0, 1_000.0, 50.0, v, f)
            - hst_doppler_hz(1_010.0, 1_000.0, 50.0, v, f);
        let slope_far = hst_doppler_hz(990.0, 1_000.0, 500.0, v, f)
            - hst_doppler_hz(1_010.0, 1_000.0, 500.0, v, f);
        assert!(slope_near > slope_far, "near={slope_near} far={slope_far}");
    }
}
