//! Noise models: AWGN and Doppler-induced inter-carrier interference.
//!
//! OFDM's orthogonality assumes the channel is static over a symbol;
//! Doppler spread breaks that and leaks power between subcarriers
//! (inter-carrier interference, ICI). The paper's §2/§3 argue this is
//! one of the mechanisms that make signal-strength feedback and OFDM
//! signaling unreliable in extreme mobility. We model ICI as an
//! additional Gaussian noise floor whose relative power follows the
//! classic small-`fd T` expansion for a Jakes spectrum:
//! `P_ici ≈ (pi * fd * T)^2 / 6` of the received signal power.

use rand::Rng;
use rem_num::rng::complex_gaussian;
use rem_num::{CMatrix, Complex64};
use std::f64::consts::PI;

/// Generates an `m x n` matrix of i.i.d. circularly-symmetric complex
/// Gaussian noise with per-entry variance `var`.
pub fn awgn_matrix(rng: &mut impl Rng, m: usize, n: usize, var: f64) -> CMatrix {
    CMatrix::from_fn(m, n, |_, _| complex_gaussian(rng, var))
}

/// Adds AWGN of variance `var` to a vector of samples, in place.
pub fn add_awgn(rng: &mut impl Rng, samples: &mut [Complex64], var: f64) {
    for s in samples.iter_mut() {
        *s += complex_gaussian(rng, var);
    }
}

/// Relative ICI power (fraction of received signal power) for maximum
/// Doppler `fd_hz` and OFDM symbol duration `t_sym_s`, using the
/// second-order Jakes-spectrum expansion `(pi fd T)^2 / 6`, clamped to
/// at most 1.
pub fn ici_relative_power(fd_hz: f64, t_sym_s: f64) -> f64 {
    let x = PI * fd_hz * t_sym_s;
    (x * x / 6.0).min(1.0)
}

/// Effective per-subcarrier SINR (linear) of an OFDM resource element
/// whose channel gain has squared magnitude `gain_sq`, with thermal
/// noise variance `noise_var` and Doppler `fd_hz` over symbols of
/// `t_sym_s`:
///
/// `sinr = gain_sq / (noise_var + gain_sq * P_ici_rel)`
pub fn ofdm_slot_sinr(gain_sq: f64, noise_var: f64, fd_hz: f64, t_sym_s: f64) -> f64 {
    let ici = gain_sq * ici_relative_power(fd_hz, t_sym_s);
    gain_sq / (noise_var + ici)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn awgn_power_matches_variance() {
        let mut rng = rng_from_seed(1);
        let m = awgn_matrix(&mut rng, 80, 80, 0.5);
        assert!((m.mean_power() - 0.5).abs() < 0.03);
    }

    #[test]
    fn add_awgn_perturbs_in_place() {
        let mut rng = rng_from_seed(2);
        let mut v = vec![Complex64::ONE; 1000];
        add_awgn(&mut rng, &mut v, 0.01);
        let mean: Complex64 = v.iter().sum::<Complex64>().scale(1.0 / v.len() as f64);
        assert!(mean.dist(Complex64::ONE) < 0.02);
        assert!(v.iter().any(|z| z.dist(Complex64::ONE) > 1e-4));
    }

    #[test]
    fn ici_grows_quadratically_with_doppler() {
        let t = 66.7e-6;
        let p1 = ici_relative_power(100.0, t);
        let p2 = ici_relative_power(200.0, t);
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ici_is_negligible_at_low_mobility() {
        // 60 km/h at 900 MHz: fd ~ 50 Hz.
        let p = ici_relative_power(50.0, 66.7e-6);
        assert!(p < 1e-4, "p={p}");
    }

    #[test]
    fn ici_is_clamped() {
        assert_eq!(ici_relative_power(1e9, 1.0), 1.0);
    }

    #[test]
    fn sinr_saturates_with_ici_floor() {
        let t = 66.7e-6;
        let fd = 650.0; // 350 km/h @ 2 GHz
        // At huge SNR, ICI bounds the SINR.
        let sinr_hi = ofdm_slot_sinr(1.0, 1e-9, fd, t);
        let floor = 1.0 / ici_relative_power(fd, t);
        assert!((sinr_hi - floor).abs() / floor < 0.01);
        // At low SNR, thermal noise dominates: sinr ~ gain/noise.
        let sinr_lo = ofdm_slot_sinr(1.0, 10.0, fd, t);
        assert!((sinr_lo - 0.1).abs() < 0.01);
    }
}
