#![warn(missing_docs)]

//! # rem-channel
//!
//! Wireless channel substrate for the REM reproduction: per-path
//! multipath channels `{h_p, tau_p, nu_p}` (paper Eq. 1), 3GPP
//! reference tapped-delay-line models (EPA/EVA/ETU plus the
//! high-speed-train scenario), Doppler/coherence-time math, the
//! sampled delay-Doppler channel matrices `H = Γ P Φ` that REM's
//! cross-band estimator decomposes, AWGN/ICI noise models and
//! large-scale propagation (path loss, correlated shadowing).
//!
//! ```
//! use rem_channel::models::ChannelModel;
//! use rem_channel::doppler::kmh_to_ms;
//! use rem_num::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(1);
//! let ch = ChannelModel::Hst.realize(&mut rng, kmh_to_ms(350.0), 2.6e9);
//! assert!(ch.max_doppler_hz() > 500.0); // extreme mobility regime
//! ```

pub mod delaydoppler;
pub mod doppler;
pub mod fading;
pub mod models;
pub mod noise;
pub mod path;
pub mod radio;

pub use delaydoppler::{dd_channel_matrix, DdGrid};
pub use fading::JakesFader;
pub use models::ChannelModel;
pub use path::{MultipathChannel, Path};
