//! Large-scale radio propagation: path loss and correlated shadowing.
//!
//! These drive the RSRP traces of the mobility simulator: received
//! power = transmit power − path loss − shadowing, plus the small-scale
//! fading handled by [`crate::models`]. Values are in dB/dBm
//! throughout, the unit the paper's datasets report (RSRP in
//! [−140, −44] dBm, Table 4).

use rand::Rng;
use rem_num::rng::standard_normal;
use serde::{Deserialize, Serialize};

/// Free-space path loss in dB for distance `d_m` (meters) and carrier
/// `f_hz`. Clamped below at 1 m to avoid negative loss at the mast.
pub fn free_space_pl_db(d_m: f64, f_hz: f64) -> f64 {
    let d_km = (d_m.max(1.0)) / 1000.0;
    let f_mhz = f_hz / 1e6;
    32.45 + 20.0 * d_km.log10() + 20.0 * f_mhz.log10()
}

/// Log-distance path loss: `PL(d) = pl0_db + 10 * n * log10(d / d0)`.
pub fn log_distance_pl_db(d_m: f64, d0_m: f64, pl0_db: f64, exponent: f64) -> f64 {
    pl0_db + 10.0 * exponent * (d_m.max(d0_m) / d0_m).log10()
}

/// 3GPP-style rural-macro path loss (the regime of trackside HSR
/// deployments): `PL = 128.1 + 37.6 log10(d_km)` at 2 GHz, with a
/// `21 log10(f / 2 GHz)` frequency correction.
pub fn rural_macro_pl_db(d_m: f64, f_hz: f64) -> f64 {
    let d_km = (d_m.max(10.0)) / 1000.0;
    128.1 + 37.6 * d_km.log10() + 21.0 * (f_hz / 2e9).log10()
}

/// Spatially-correlated log-normal shadowing along a 1-D trajectory
/// (Gudmundson model): an AR(1) process over travelled distance with
/// standard deviation `sigma_db` and decorrelation distance
/// `d_corr_m`. Each cell gets its own independent track.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShadowingTrack {
    sigma_db: f64,
    d_corr_m: f64,
    state_db: f64,
    initialized: bool,
}

impl ShadowingTrack {
    /// Creates a track; the first sample is drawn fresh from
    /// `N(0, sigma^2)`.
    pub fn new(sigma_db: f64, d_corr_m: f64) -> Self {
        assert!(sigma_db >= 0.0 && d_corr_m > 0.0);
        Self { sigma_db, d_corr_m, state_db: 0.0, initialized: false }
    }

    /// Advances the track by `delta_m` metres of client movement and
    /// returns the new shadowing value in dB.
    pub fn advance(&mut self, rng: &mut impl Rng, delta_m: f64) -> f64 {
        if !self.initialized {
            self.state_db = self.sigma_db * standard_normal(rng);
            self.initialized = true;
            return self.state_db;
        }
        let rho = (-delta_m.abs() / self.d_corr_m).exp();
        let innov = self.sigma_db * (1.0 - rho * rho).sqrt() * standard_normal(rng);
        self.state_db = rho * self.state_db + innov;
        self.state_db
    }

    /// Current value without advancing (0 until first `advance`).
    pub fn current_db(&self) -> f64 {
        self.state_db
    }

    /// Configured standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;
    use rem_num::stats::{mean, std_dev};

    #[test]
    fn free_space_doubles_distance_plus_6db() {
        let a = free_space_pl_db(1000.0, 2e9);
        let b = free_space_pl_db(2000.0, 2e9);
        assert!((b - a - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn free_space_known_value() {
        // 1 km @ 2.4 GHz ~ 100.05 dB.
        let pl = free_space_pl_db(1000.0, 2.4e9);
        assert!((pl - 100.05).abs() < 0.1, "pl={pl}");
    }

    #[test]
    fn log_distance_matches_free_space_with_n2() {
        let pl0 = free_space_pl_db(100.0, 2e9);
        let a = log_distance_pl_db(1000.0, 100.0, pl0, 2.0);
        let b = free_space_pl_db(1000.0, 2e9);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn rural_macro_reasonable_rsrp_range() {
        // 43 dBm EIRP, 500 m: RSRP should land in a plausible band.
        let rsrp = 43.0 - rural_macro_pl_db(500.0, 2e9);
        assert!(rsrp > -100.0 && rsrp < -60.0, "rsrp={rsrp}");
        // And decay with distance.
        assert!(rural_macro_pl_db(2000.0, 2e9) > rural_macro_pl_db(200.0, 2e9));
    }

    #[test]
    fn path_loss_monotone_in_frequency() {
        assert!(rural_macro_pl_db(500.0, 2.6e9) > rural_macro_pl_db(500.0, 0.9e9));
        assert!(free_space_pl_db(500.0, 2.6e9) > free_space_pl_db(500.0, 0.9e9));
    }

    #[test]
    fn shadowing_moments() {
        let mut rng = rng_from_seed(3);
        let mut tr = ShadowingTrack::new(4.0, 50.0);
        // Large steps decorrelate samples -> i.i.d. N(0, 16).
        let xs: Vec<f64> = (0..20_000).map(|_| tr.advance(&mut rng, 5000.0)).collect();
        assert!(mean(&xs).abs() < 0.1);
        assert!((std_dev(&xs) - 4.0).abs() < 0.1);
    }

    #[test]
    fn shadowing_small_steps_are_correlated() {
        let mut rng = rng_from_seed(5);
        let mut tr = ShadowingTrack::new(6.0, 100.0);
        let first = tr.advance(&mut rng, 0.0);
        let mut max_jump: f64 = 0.0;
        let mut prev = first;
        for _ in 0..100 {
            let cur = tr.advance(&mut rng, 1.0); // 1 m steps, 100 m decorrelation
            max_jump = max_jump.max((cur - prev).abs());
            prev = cur;
        }
        // 1 m steps with 100 m decorrelation keep innovations small.
        assert!(max_jump < 4.0, "max_jump={max_jump}");
    }

    #[test]
    fn shadowing_deterministic_per_seed() {
        let mut a = ShadowingTrack::new(4.0, 50.0);
        let mut b = ShadowingTrack::new(4.0, 50.0);
        let mut ra = rng_from_seed(9);
        let mut rb = rng_from_seed(9);
        for _ in 0..32 {
            assert_eq!(a.advance(&mut ra, 10.0), b.advance(&mut rb, 10.0));
        }
    }
}
