//! Handover policies and the multi-stage decision engine (paper §3.2).
//!
//! Each serving cell runs a local policy: a set of [`HandoverRule`]s
//! (event + target scope). Operators deploy *multi-stage* policies
//! (Fig 1b): intra-frequency neighbours are monitored continuously;
//! inter-frequency monitoring is only reconfigured on an A2 ("serving
//! weak") gate because it costs measurement gaps, and torn down again
//! on A1 ("serving strong"). REM collapses this to single-stage A3-only
//! policies over cross-band-estimated qualities (§5.3).

use crate::events::{EventConfig, EventKind, EventMonitor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Globally unique cell identifier (ECI-like).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Base station identifier (eNB/gNB); several cells may share one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BaseStationId(pub u32);

/// Frequency channel number (EARFCN-like).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Earfcn(pub u32);

/// Which neighbours a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetScope {
    /// Same frequency as the serving cell (no measurement gap needed).
    IntraFreq,
    /// One specific other frequency (requires gaps / reconfiguration in
    /// legacy; covered by cross-band estimation in REM).
    InterFreq(Earfcn),
    /// Any frequency — REM's simplified single-stage scope.
    AnyFreq,
}

/// One policy rule: when `event` fires for a candidate in `target`,
/// hand over to it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HandoverRule {
    /// The triggering event.
    pub event: EventConfig,
    /// Candidate scope.
    pub target: TargetScope,
}

/// A serving cell's policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellPolicy {
    /// The cell this policy belongs to.
    pub cell: CellId,
    /// The cell's own frequency.
    pub earfcn: Earfcn,
    /// Stage-1 rules (always active; legacy: intra-frequency only).
    pub stage1: Vec<HandoverRule>,
    /// A2 gate that activates stage 2 (legacy multi-stage only).
    pub a2_gate: Option<EventConfig>,
    /// Stage-2 rules (inter-frequency; active only after the A2 gate).
    pub stage2: Vec<HandoverRule>,
    /// A1 event that deactivates stage 2 again.
    pub a1_exit: Option<EventConfig>,
}

impl CellPolicy {
    /// True when the policy has an inter-frequency second stage.
    pub fn is_multi_stage(&self) -> bool {
        self.a2_gate.is_some() && !self.stage2.is_empty()
    }

    /// All rules across stages.
    pub fn all_rules(&self) -> impl Iterator<Item = &HandoverRule> {
        self.stage1.iter().chain(self.stage2.iter())
    }
}

/// One neighbour measurement sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NeighborMeasurement {
    /// The measured cell.
    pub cell: CellId,
    /// Its frequency.
    pub earfcn: Earfcn,
    /// Measured quality (RSRP dBm for legacy, delay-Doppler SNR dB for REM).
    pub quality: f64,
}

/// Actions the policy engine can emit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Hand over to this cell (the rule that fired is included).
    Handover {
        /// Chosen target.
        target: CellId,
        /// Event type name that triggered ("A3", "A4", ...).
        rule_event: EventKind,
    },
    /// Stage 2 activated: the client must be reconfigured for
    /// inter-frequency measurements (costs a round trip + gaps).
    EnterStage2,
    /// Stage 2 deactivated.
    ExitStage2,
}

/// Which monitoring stage the engine is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Intra-frequency monitoring only.
    IntraOnly,
    /// Intra + inter-frequency monitoring.
    IntraInter,
}

/// Runtime evaluation of a [`CellPolicy`] over a measurement stream.
#[derive(Clone, Debug)]
pub struct PolicyEngine {
    policy: CellPolicy,
    stage: Stage,
    /// Monitors keyed by (rule index into stage1+stage2, candidate cell).
    monitors: HashMap<(usize, CellId), EventMonitor>,
    a2_monitor: EventMonitor,
    a1_monitor: EventMonitor,
}

impl PolicyEngine {
    /// Creates an engine in stage 1.
    pub fn new(policy: CellPolicy) -> Self {
        Self {
            policy,
            stage: Stage::IntraOnly,
            monitors: HashMap::new(),
            a2_monitor: EventMonitor::default(),
            a1_monitor: EventMonitor::default(),
        }
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &CellPolicy {
        &self.policy
    }

    /// Whether a rule's scope admits a candidate at `earfcn`.
    fn scope_admits(&self, scope: TargetScope, earfcn: Earfcn) -> bool {
        match scope {
            TargetScope::IntraFreq => earfcn == self.policy.earfcn,
            TargetScope::InterFreq(f) => earfcn == f,
            TargetScope::AnyFreq => true,
        }
    }

    /// Feeds one measurement epoch. `neighbors` must contain only the
    /// cells the client can currently measure (in legacy stage 1 that
    /// is intra-frequency cells; the caller models measurement
    /// capability — see `rem-sim`).
    ///
    /// Returns all actions triggered this epoch; at most one
    /// [`PolicyAction::Handover`] (the best-quality candidate among
    /// fired rules in rule order).
    pub fn step(
        &mut self,
        now_ms: f64,
        serving_quality: f64,
        neighbors: &[NeighborMeasurement],
    ) -> Vec<PolicyAction> {
        let mut actions = Vec::new();

        // Stage gates.
        if self.policy.is_multi_stage() {
            if self.stage == Stage::IntraOnly {
                if let Some(gate) = self.policy.a2_gate {
                    if self.a2_monitor.observe(&gate, now_ms, serving_quality, 0.0) {
                        self.stage = Stage::IntraInter;
                        self.a1_monitor.reset();
                        actions.push(PolicyAction::EnterStage2);
                    }
                }
            } else if let Some(exit) = self.policy.a1_exit {
                if self.a1_monitor.observe(&exit, now_ms, serving_quality, 0.0) {
                    self.stage = Stage::IntraOnly;
                    self.a2_monitor.reset();
                    // Inter-frequency monitors are torn down.
                    let stage1_len = self.policy.stage1.len();
                    self.monitors.retain(|(ri, _), _| *ri < stage1_len);
                    actions.push(PolicyAction::ExitStage2);
                }
            }
        }

        // Evaluate rules.
        let stage1_len = self.policy.stage1.len();
        let rules: Vec<(usize, HandoverRule)> = self
            .policy
            .stage1
            .iter()
            .copied()
            .enumerate()
            .chain(
                self.policy
                    .stage2
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(i, r)| (i + stage1_len, r)),
            )
            .collect();

        let mut best: Option<(f64, CellId, EventKind)> = None;
        for (ri, rule) in rules {
            let stage2_rule = ri >= stage1_len;
            if stage2_rule && self.stage != Stage::IntraInter {
                continue;
            }
            for nb in neighbors {
                if !self.scope_admits(rule.target, nb.earfcn) {
                    continue;
                }
                let mon = self.monitors.entry((ri, nb.cell)).or_default();
                if mon.observe(&rule.event, now_ms, serving_quality, nb.quality)
                    && best.is_none_or(|(q, _, _)| nb.quality > q)
                {
                    best = Some((nb.quality, nb.cell, rule.event.kind));
                }
            }
        }
        if let Some((_, target, rule_event)) = best {
            actions.push(PolicyAction::Handover { target, rule_event });
        }
        actions
    }

    /// Clears all monitor state (call after a handover completes).
    pub fn reset(&mut self) {
        self.monitors.clear();
        self.a2_monitor.reset();
        self.a1_monitor.reset();
        self.stage = Stage::IntraOnly;
    }
}

/// Builds the typical legacy multi-stage policy of Fig 1b for a cell:
/// intra-frequency A3, A2-gated inter-frequency A4 rules per listed
/// frequency, A1 exit.
pub fn legacy_multi_stage_policy(
    cell: CellId,
    earfcn: Earfcn,
    inter_freqs: &[Earfcn],
    a3_offset_db: f64,
    intra_ttt_ms: f64,
    inter_ttt_ms: f64,
) -> CellPolicy {
    let stage2 = inter_freqs
        .iter()
        .map(|&f| HandoverRule {
            event: EventConfig {
                kind: EventKind::A4 { thresh: -108.0 },
                ttt_ms: inter_ttt_ms,
                hysteresis_db: 1.0,
            },
            target: TargetScope::InterFreq(f),
        })
        .collect();
    CellPolicy {
        cell,
        earfcn,
        stage1: vec![HandoverRule {
            event: EventConfig {
                kind: EventKind::A3 { offset: a3_offset_db },
                ttt_ms: intra_ttt_ms,
                hysteresis_db: 1.0,
            },
            target: TargetScope::IntraFreq,
        }],
        a2_gate: Some(EventConfig {
            kind: EventKind::A2 { thresh: -110.0 },
            ttt_ms: inter_ttt_ms,
            hysteresis_db: 1.0,
        }),
        stage2,
        a1_exit: Some(EventConfig {
            kind: EventKind::A1 { thresh: -85.0 },
            ttt_ms: inter_ttt_ms,
            hysteresis_db: 1.0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(cell: u32, earfcn: u32, q: f64) -> NeighborMeasurement {
        NeighborMeasurement { cell: CellId(cell), earfcn: Earfcn(earfcn), quality: q }
    }

    fn simple_a3_policy(ttt: f64) -> CellPolicy {
        CellPolicy {
            cell: CellId(0),
            earfcn: Earfcn(1825),
            stage1: vec![HandoverRule {
                event: EventConfig {
                    kind: EventKind::A3 { offset: 3.0 },
                    ttt_ms: ttt,
                    hysteresis_db: 0.0,
                },
                target: TargetScope::IntraFreq,
            }],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        }
    }

    #[test]
    fn a3_handover_to_better_intra_cell() {
        let mut eng = PolicyEngine::new(simple_a3_policy(0.0));
        let actions = eng.step(0.0, -100.0, &[nb(1, 1825, -95.0)]);
        assert_eq!(
            actions,
            vec![PolicyAction::Handover {
                target: CellId(1),
                rule_event: EventKind::A3 { offset: 3.0 }
            }]
        );
    }

    #[test]
    fn inter_freq_neighbor_ignored_by_intra_rule() {
        let mut eng = PolicyEngine::new(simple_a3_policy(0.0));
        let actions = eng.step(0.0, -100.0, &[nb(1, 2452, -80.0)]);
        assert!(actions.is_empty());
    }

    #[test]
    fn best_candidate_wins() {
        let mut eng = PolicyEngine::new(simple_a3_policy(0.0));
        let actions =
            eng.step(0.0, -100.0, &[nb(1, 1825, -95.0), nb(2, 1825, -90.0), nb(3, 1825, -96.0)]);
        assert!(matches!(actions[0], PolicyAction::Handover { target: CellId(2), .. }));
    }

    #[test]
    fn ttt_applies_per_candidate() {
        let mut eng = PolicyEngine::new(simple_a3_policy(100.0));
        assert!(eng.step(0.0, -100.0, &[nb(1, 1825, -95.0)]).is_empty());
        assert!(eng.step(50.0, -100.0, &[nb(1, 1825, -95.0)]).is_empty());
        let actions = eng.step(100.0, -100.0, &[nb(1, 1825, -95.0)]);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn multi_stage_gates_inter_frequency() {
        let pol = legacy_multi_stage_policy(CellId(0), Earfcn(1825), &[Earfcn(2452)], 3.0, 0.0, 0.0);
        let mut eng = PolicyEngine::new(pol);
        assert_eq!(eng.stage(), Stage::IntraOnly);
        // Strong inter-freq neighbour, but serving still fine: nothing.
        let a = eng.step(0.0, -100.0, &[nb(9, 2452, -80.0)]);
        assert!(a.is_empty());
        // Serving degrades below A2 (-110): stage 2 opens, and with a
        // zero TTT the A4 rule fires on the inter-freq cell in the same
        // epoch.
        let a = eng.step(1.0, -112.0, &[nb(9, 2452, -80.0)]);
        assert!(a.contains(&PolicyAction::EnterStage2));
        assert_eq!(eng.stage(), Stage::IntraInter);
        assert!(a
            .iter()
            .any(|x| matches!(x, PolicyAction::Handover { target: CellId(9), .. })));
    }

    #[test]
    fn a1_exit_closes_stage2() {
        let pol = legacy_multi_stage_policy(CellId(0), Earfcn(1825), &[Earfcn(2452)], 3.0, 0.0, 0.0);
        let mut eng = PolicyEngine::new(pol);
        eng.step(0.0, -112.0, &[]);
        assert_eq!(eng.stage(), Stage::IntraInter);
        // Serving recovers above A1 (-85): stage 2 closes.
        let a = eng.step(1.0, -80.0, &[]);
        assert!(a.contains(&PolicyAction::ExitStage2));
        assert_eq!(eng.stage(), Stage::IntraOnly);
    }

    #[test]
    fn anyfreq_scope_admits_everything() {
        let mut pol = simple_a3_policy(0.0);
        pol.stage1[0].target = TargetScope::AnyFreq;
        let mut eng = PolicyEngine::new(pol);
        let a = eng.step(0.0, -100.0, &[nb(1, 2452, -90.0)]);
        assert!(matches!(a[0], PolicyAction::Handover { target: CellId(1), .. }));
    }

    #[test]
    fn reset_returns_to_stage1() {
        let pol = legacy_multi_stage_policy(CellId(0), Earfcn(1825), &[Earfcn(2452)], 3.0, 0.0, 0.0);
        let mut eng = PolicyEngine::new(pol);
        eng.step(0.0, -112.0, &[]);
        assert_eq!(eng.stage(), Stage::IntraInter);
        eng.reset();
        assert_eq!(eng.stage(), Stage::IntraOnly);
    }

    #[test]
    fn multi_stage_detection() {
        let pol = legacy_multi_stage_policy(CellId(0), Earfcn(1), &[Earfcn(2)], 3.0, 40.0, 640.0);
        assert!(pol.is_multi_stage());
        assert!(!simple_a3_policy(0.0).is_multi_stage());
        assert_eq!(pol.all_rules().count(), 2);
    }
}
