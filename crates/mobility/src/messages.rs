//! RRC-style signaling messages with a compact binary wire format.
//!
//! These are the payloads that ride the signaling overlay: measurement
//! reports (uplink, trigger phase), handover commands (downlink,
//! execute phase), measurement reconfigurations and completions. The
//! encoding matters only insofar as message *size* drives the
//! scheduler's sub-grid allocation and the per-message block error
//! probability, but it is a real, round-trippable codec.

use crate::policy::CellId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Signaling messages exchanged during mobility management.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RrcMessage {
    /// Uplink: measured cell qualities (dB, centi-dB fixed point on the
    /// wire).
    MeasurementReport {
        /// `(cell, quality_db)` entries.
        cells: Vec<(CellId, f64)>,
    },
    /// Downlink: hand over to `target`.
    HandoverCommand {
        /// Target cell.
        target: CellId,
    },
    /// Downlink: reconfigure measurements (e.g. enter stage 2); carries
    /// the list of frequencies to start measuring.
    Reconfiguration {
        /// EARFCN values to measure.
        earfcns: Vec<u32>,
    },
    /// Uplink: handover complete (sent to the *target* cell).
    HandoverComplete,
}

const TAG_REPORT: u8 = 1;
const TAG_COMMAND: u8 = 2;
const TAG_RECONF: u8 = 3;
const TAG_COMPLETE: u8 = 4;

impl RrcMessage {
    /// Encodes to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            RrcMessage::MeasurementReport { cells } => {
                b.put_u8(TAG_REPORT);
                b.put_u8(cells.len().min(255) as u8);
                for (cell, q) in cells.iter().take(255) {
                    b.put_u32(cell.0);
                    // centi-dB fixed point, clamped to i16.
                    let q = (q * 100.0).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
                    b.put_i16(q);
                }
            }
            RrcMessage::HandoverCommand { target } => {
                b.put_u8(TAG_COMMAND);
                b.put_u32(target.0);
            }
            RrcMessage::Reconfiguration { earfcns } => {
                b.put_u8(TAG_RECONF);
                b.put_u8(earfcns.len().min(255) as u8);
                for &f in earfcns.iter().take(255) {
                    b.put_u32(f);
                }
            }
            RrcMessage::HandoverComplete => {
                b.put_u8(TAG_COMPLETE);
            }
        }
        b.freeze()
    }

    /// Decodes from the wire format; `None` on malformed input.
    pub fn decode(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 1 {
            return None;
        }
        match data.get_u8() {
            TAG_REPORT => {
                if data.remaining() < 1 {
                    return None;
                }
                let n = data.get_u8() as usize;
                if data.remaining() < n * 6 {
                    return None;
                }
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    let cell = CellId(data.get_u32());
                    let q = data.get_i16() as f64 / 100.0;
                    cells.push((cell, q));
                }
                Some(RrcMessage::MeasurementReport { cells })
            }
            TAG_COMMAND => {
                if data.remaining() < 4 {
                    return None;
                }
                Some(RrcMessage::HandoverCommand { target: CellId(data.get_u32()) })
            }
            TAG_RECONF => {
                if data.remaining() < 1 {
                    return None;
                }
                let n = data.get_u8() as usize;
                if data.remaining() < n * 4 {
                    return None;
                }
                Some(RrcMessage::Reconfiguration {
                    earfcns: (0..n).map(|_| data.get_u32()).collect(),
                })
            }
            TAG_COMPLETE => Some(RrcMessage::HandoverComplete),
            _ => None,
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encode().len()
    }

    /// Encoded size in bits (what the scheduler and link layer care
    /// about).
    pub fn size_bits(&self) -> usize {
        self.size_bytes() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: RrcMessage) {
        let enc = msg.encode();
        assert_eq!(RrcMessage::decode(enc), Some(msg));
    }

    #[test]
    fn round_trips() {
        round_trip(RrcMessage::MeasurementReport {
            cells: vec![(CellId(17), -101.25), (CellId(3), 12.5)],
        });
        round_trip(RrcMessage::HandoverCommand { target: CellId(99) });
        round_trip(RrcMessage::Reconfiguration { earfcns: vec![1825, 2452, 100] });
        round_trip(RrcMessage::HandoverComplete);
    }

    #[test]
    fn quality_quantised_to_centidb() {
        let msg = RrcMessage::MeasurementReport { cells: vec![(CellId(1), -100.123)] };
        match RrcMessage::decode(msg.encode()).unwrap() {
            RrcMessage::MeasurementReport { cells } => {
                assert!((cells[0].1 - -100.12).abs() < 1e-9);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sizes_are_compact() {
        assert_eq!(RrcMessage::HandoverComplete.size_bytes(), 1);
        assert_eq!(RrcMessage::HandoverCommand { target: CellId(1) }.size_bytes(), 5);
        let report = RrcMessage::MeasurementReport {
            cells: vec![(CellId(1), 0.0), (CellId(2), 0.0)],
        };
        assert_eq!(report.size_bytes(), 2 + 2 * 6);
        assert_eq!(report.size_bits(), (2 + 12) * 8);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(RrcMessage::decode(Bytes::new()), None);
        assert_eq!(RrcMessage::decode(Bytes::from_static(&[99])), None);
        // Truncated report.
        assert_eq!(RrcMessage::decode(Bytes::from_static(&[1, 2, 0, 0])), None);
        // Truncated command.
        assert_eq!(RrcMessage::decode(Bytes::from_static(&[2, 0])), None);
    }

    #[test]
    fn empty_report_is_valid() {
        round_trip(RrcMessage::MeasurementReport { cells: vec![] });
    }
}
