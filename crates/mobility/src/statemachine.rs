//! The handover procedure state machine and failure taxonomy.
//!
//! Mirrors the paper's three phases (Fig 1a): *triggering* (waiting
//! for measurement feedback), *decision* (serving cell evaluating
//! policy), *execution* (command delivery and target attach). Each
//! failure is classified with the taxonomy of Table 2, which the
//! simulator's accounting and the Table 2/5 benches consume.

use serde::{Deserialize, Serialize};

/// Why a handover (or the client's connectivity) failed, per the
/// breakdown of paper Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Feedback was delayed past viability or lost in delivery (§3.1).
    FeedbackDelayLoss,
    /// A viable candidate cell was never measured/reported (§3.2,
    /// multi-stage policy).
    MissedCell,
    /// The handover command never reached the client (§3.3).
    CommandLoss,
    /// No cell covered the client's position at all.
    CoverageHole,
}

impl FailureCause {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::FeedbackDelayLoss => "Feedback delay/loss",
            FailureCause::MissedCell => "Missed cell",
            FailureCause::CommandLoss => "Handover cmd. loss",
            FailureCause::CoverageHole => "Coverage holes",
        }
    }

    /// All causes, in the paper's table order.
    pub fn all() -> [FailureCause; 4] {
        [
            FailureCause::FeedbackDelayLoss,
            FailureCause::MissedCell,
            FailureCause::CommandLoss,
            FailureCause::CoverageHole,
        ]
    }
}

/// Handover procedure phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoPhase {
    /// Connected, no handover in progress.
    Idle,
    /// Event fired at the client; feedback (measurement report) in
    /// flight.
    Triggering,
    /// Serving cell has the report and is deciding / coordinating.
    Deciding,
    /// Handover command in flight / client attaching to the target.
    Executing,
    /// Handover completed successfully.
    Complete,
    /// Handover failed.
    Failed(FailureCause),
}

/// A single handover attempt's lifecycle with timing bookkeeping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HandoverAttempt {
    phase: HoPhase,
    /// Time the triggering event fired (ms).
    pub triggered_at_ms: f64,
    /// Time the report reached the serving cell, if it did.
    pub report_at_ms: Option<f64>,
    /// Time the command reached the client, if it did.
    pub command_at_ms: Option<f64>,
    /// Time the attempt concluded (complete or failed).
    pub finished_at_ms: Option<f64>,
}

/// Error for transitions that violate the procedure order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidTransition {
    /// Phase the attempt was in.
    pub from: HoPhase,
    /// What was attempted.
    pub op: &'static str,
}

impl HandoverAttempt {
    /// Starts an attempt at the moment the triggering event fires.
    pub fn trigger(now_ms: f64) -> Self {
        Self {
            phase: HoPhase::Triggering,
            triggered_at_ms: now_ms,
            report_at_ms: None,
            command_at_ms: None,
            finished_at_ms: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> HoPhase {
        self.phase
    }

    /// Timestamp of the most recent recorded event.
    pub fn last_event_ms(&self) -> f64 {
        self.finished_at_ms
            .or(self.command_at_ms)
            .or(self.report_at_ms)
            .unwrap_or(self.triggered_at_ms)
    }

    fn check_time(&self, now_ms: f64, op: &'static str) -> Result<(), InvalidTransition> {
        if !now_ms.is_finite() || now_ms < self.last_event_ms() {
            return Err(InvalidTransition { from: self.phase, op });
        }
        Ok(())
    }

    /// The measurement report arrived at the serving cell.
    pub fn report_received(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Triggering {
            return Err(InvalidTransition { from: self.phase, op: "report_received" });
        }
        self.check_time(now_ms, "report_received (time ordering)")?;
        self.phase = HoPhase::Deciding;
        self.report_at_ms = Some(now_ms);
        Ok(())
    }

    /// The handover command arrived at the client.
    pub fn command_received(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Deciding {
            return Err(InvalidTransition { from: self.phase, op: "command_received" });
        }
        self.check_time(now_ms, "command_received (time ordering)")?;
        self.phase = HoPhase::Executing;
        self.command_at_ms = Some(now_ms);
        Ok(())
    }

    /// The client attached to the target cell.
    pub fn complete(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Executing {
            return Err(InvalidTransition { from: self.phase, op: "complete" });
        }
        self.check_time(now_ms, "complete (time ordering)")?;
        self.phase = HoPhase::Complete;
        self.finished_at_ms = Some(now_ms);
        rem_obs::metrics::inc("rem_mobility_handover_complete_total");
        Ok(())
    }

    /// The attempt failed (legal from any non-terminal phase).
    pub fn fail(&mut self, now_ms: f64, cause: FailureCause) -> Result<(), InvalidTransition> {
        match self.phase {
            HoPhase::Complete | HoPhase::Failed(_) => {
                Err(InvalidTransition { from: self.phase, op: "fail" })
            }
            _ => {
                self.check_time(now_ms, "fail (time ordering)")?;
                self.phase = HoPhase::Failed(cause);
                self.finished_at_ms = Some(now_ms);
                rem_obs::metrics::inc("rem_mobility_handover_fail_total");
                Ok(())
            }
        }
    }

    /// Total duration, if concluded.
    pub fn duration_ms(&self) -> Option<f64> {
        self.finished_at_ms.map(|t| t - self.triggered_at_ms)
    }

    /// Whether the attempt concluded (success or failure).
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, HoPhase::Complete | HoPhase::Failed(_))
    }
}

/// Which supervision timer expired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupervisionExpiry {
    /// T310-style: no usable feedback/decision before the deadline —
    /// the report (or the decision it should have produced) is
    /// treated as lost.
    Feedback,
    /// T304-style: the command was issued but execution never
    /// concluded — treated as command loss.
    Execution,
}

impl SupervisionExpiry {
    /// The failure cause an expiry implies.
    pub fn cause(&self) -> FailureCause {
        match self {
            SupervisionExpiry::Feedback => FailureCause::FeedbackDelayLoss,
            SupervisionExpiry::Execution => FailureCause::CommandLoss,
        }
    }
}

/// 3GPP-style handover supervision deadlines (T310 / T304 analogues).
///
/// The radio stack cannot wait forever on an in-flight report or
/// command: [`SupervisionTimers::supervise`] turns a silently stuck
/// [`HandoverAttempt`] into a classified failure, which is what makes
/// injected *delay* faults observable rather than hangs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SupervisionTimers {
    /// Budget from trigger to a received command (ms); covers the
    /// Triggering and Deciding phases (T310 analogue).
    pub feedback_ms: f64,
    /// Budget from command receipt to completion (ms); covers the
    /// Executing phase (T304 analogue).
    pub execution_ms: f64,
}

impl Default for SupervisionTimers {
    fn default() -> Self {
        // Both sit well above the worst-case healthy attempt in the
        // simulator (tens of ms incl. HARQ retries and X2 prep), so
        // they only ever fire on genuinely lost/delayed messages.
        Self { feedback_ms: 800.0, execution_ms: 400.0 }
    }
}

impl SupervisionTimers {
    /// Checks a non-terminal attempt against the deadlines. Returns
    /// which timer expired, if any; terminal attempts never expire.
    pub fn supervise(&self, attempt: &HandoverAttempt, now_ms: f64) -> Option<SupervisionExpiry> {
        match attempt.phase() {
            HoPhase::Triggering | HoPhase::Deciding => {
                (now_ms - attempt.triggered_at_ms > self.feedback_ms)
                    .then_some(SupervisionExpiry::Feedback)
            }
            HoPhase::Executing => {
                let since = attempt.command_at_ms.unwrap_or(attempt.triggered_at_ms);
                (now_ms - since > self.execution_ms).then_some(SupervisionExpiry::Execution)
            }
            HoPhase::Idle | HoPhase::Complete | HoPhase::Failed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path() {
        let mut a = HandoverAttempt::trigger(100.0);
        assert_eq!(a.phase(), HoPhase::Triggering);
        a.report_received(150.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Deciding);
        a.command_received(180.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Executing);
        a.complete(220.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Complete);
        assert_eq!(a.duration_ms(), Some(120.0));
        assert!(a.is_terminal());
    }

    #[test]
    fn out_of_order_transitions_rejected() {
        let mut a = HandoverAttempt::trigger(0.0);
        assert!(a.command_received(1.0).is_err());
        assert!(a.complete(1.0).is_err());
        a.report_received(1.0).unwrap();
        assert!(a.report_received(2.0).is_err());
        assert!(a.complete(2.0).is_err());
    }

    #[test]
    fn failure_from_each_phase() {
        for advance in 0..3 {
            let mut a = HandoverAttempt::trigger(0.0);
            if advance >= 1 {
                a.report_received(1.0).unwrap();
            }
            if advance >= 2 {
                a.command_received(2.0).unwrap();
            }
            a.fail(5.0, FailureCause::CommandLoss).unwrap();
            assert_eq!(a.phase(), HoPhase::Failed(FailureCause::CommandLoss));
            assert_eq!(a.duration_ms(), Some(5.0));
        }
    }

    #[test]
    fn terminal_states_are_final() {
        let mut a = HandoverAttempt::trigger(0.0);
        a.fail(1.0, FailureCause::CoverageHole).unwrap();
        assert!(a.fail(2.0, FailureCause::CommandLoss).is_err());
        assert!(a.report_received(2.0).is_err());
    }

    #[test]
    fn cause_labels_match_tables() {
        assert_eq!(FailureCause::all().len(), 4);
        assert_eq!(FailureCause::FeedbackDelayLoss.label(), "Feedback delay/loss");
        assert_eq!(FailureCause::CoverageHole.label(), "Coverage holes");
    }

    /// Drives a fresh attempt to the requested phase with sane times.
    fn attempt_at(phase: HoPhase) -> HandoverAttempt {
        let mut a = HandoverAttempt::trigger(100.0);
        match phase {
            HoPhase::Triggering => {}
            HoPhase::Deciding => a.report_received(150.0).unwrap(),
            HoPhase::Executing => {
                a.report_received(150.0).unwrap();
                a.command_received(180.0).unwrap();
            }
            HoPhase::Complete => {
                a.report_received(150.0).unwrap();
                a.command_received(180.0).unwrap();
                a.complete(220.0).unwrap();
            }
            HoPhase::Failed(cause) => {
                a.fail(150.0, cause).unwrap();
            }
            HoPhase::Idle => unreachable!("trigger() never yields Idle"),
        }
        a
    }

    #[test]
    fn every_illegal_phase_transition_is_rejected() {
        let phases = [
            HoPhase::Triggering,
            HoPhase::Deciding,
            HoPhase::Executing,
            HoPhase::Complete,
            HoPhase::Failed(FailureCause::CommandLoss),
        ];
        for from in phases {
            // Legal ops per phase; everything else must error and
            // leave the attempt untouched.
            let legal_report = from == HoPhase::Triggering;
            let legal_command = from == HoPhase::Deciding;
            let legal_complete = from == HoPhase::Executing;
            let legal_fail =
                !matches!(from, HoPhase::Complete | HoPhase::Failed(_));

            let mut a = attempt_at(from);
            assert_eq!(a.report_received(1e6).is_ok(), legal_report, "report from {from:?}");
            let mut a = attempt_at(from);
            assert_eq!(a.command_received(1e6).is_ok(), legal_command, "command from {from:?}");
            let mut a = attempt_at(from);
            assert_eq!(a.complete(1e6).is_ok(), legal_complete, "complete from {from:?}");
            let mut a = attempt_at(from);
            assert_eq!(
                a.fail(1e6, FailureCause::CoverageHole).is_ok(),
                legal_fail,
                "fail from {from:?}"
            );

            // A rejected op must not mutate state.
            let mut a = attempt_at(from);
            let before = (a.phase(), a.last_event_ms());
            let _ = a.complete(f64::NAN);
            if !legal_complete {
                assert_eq!((a.phase(), a.last_event_ms()), before);
            }
        }
    }

    #[test]
    fn out_of_order_timestamps_are_rejected() {
        // Report earlier than trigger.
        let mut a = HandoverAttempt::trigger(100.0);
        let err = a.report_received(99.0).unwrap_err();
        assert_eq!(err.from, HoPhase::Triggering);
        assert_eq!(a.phase(), HoPhase::Triggering, "rejected op must not advance");
        // Equal timestamps are fine (same-epoch events).
        a.report_received(100.0).unwrap();

        // Command earlier than report.
        let err = a.command_received(50.0).unwrap_err();
        assert_eq!(err.from, HoPhase::Deciding);
        a.command_received(120.0).unwrap();

        // Completion earlier than the command — the satellite case:
        // complete(now) before trigger time must not be accepted.
        assert!(a.complete(80.0).is_err());
        assert!(a.complete(119.0).is_err());
        assert_eq!(a.phase(), HoPhase::Executing);
        a.complete(130.0).unwrap();

        // Failure timestamped before the last event.
        let mut a = HandoverAttempt::trigger(100.0);
        a.report_received(110.0).unwrap();
        assert!(a.fail(90.0, FailureCause::CommandLoss).is_err());
        assert_eq!(a.phase(), HoPhase::Deciding);
        a.fail(110.0, FailureCause::CommandLoss).unwrap();
    }

    #[test]
    fn non_finite_timestamps_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut a = HandoverAttempt::trigger(0.0);
            assert!(a.report_received(bad).is_err(), "report at {bad}");
            a.report_received(1.0).unwrap();
            assert!(a.command_received(bad).is_err(), "command at {bad}");
            a.command_received(2.0).unwrap();
            assert!(a.complete(bad).is_err(), "complete at {bad}");
            assert!(a.fail(bad, FailureCause::CommandLoss).is_err(), "fail at {bad}");
            a.complete(3.0).unwrap();
        }
    }

    #[test]
    fn supervision_timers_fire_per_phase() {
        let timers = SupervisionTimers::default();

        // Feedback (T310 analogue) covers Triggering and Deciding.
        let a = HandoverAttempt::trigger(0.0);
        assert_eq!(timers.supervise(&a, timers.feedback_ms), None);
        assert_eq!(
            timers.supervise(&a, timers.feedback_ms + 1.0),
            Some(SupervisionExpiry::Feedback)
        );
        let mut a = HandoverAttempt::trigger(0.0);
        a.report_received(10.0).unwrap();
        assert_eq!(
            timers.supervise(&a, timers.feedback_ms + 1.0),
            Some(SupervisionExpiry::Feedback)
        );

        // Execution (T304 analogue) restarts from command receipt.
        let mut a = HandoverAttempt::trigger(0.0);
        a.report_received(10.0).unwrap();
        a.command_received(700.0).unwrap();
        assert_eq!(timers.supervise(&a, 700.0 + timers.execution_ms), None);
        assert_eq!(
            timers.supervise(&a, 700.0 + timers.execution_ms + 1.0),
            Some(SupervisionExpiry::Execution)
        );

        // Terminal attempts never expire.
        let mut done = a;
        done.complete(750.0).unwrap();
        assert_eq!(timers.supervise(&done, 1e9), None);
        let mut failed = HandoverAttempt::trigger(0.0);
        failed.fail(1.0, FailureCause::CoverageHole).unwrap();
        assert_eq!(timers.supervise(&failed, 1e9), None);

        // Expiry causes map onto the Table 2 taxonomy.
        assert_eq!(SupervisionExpiry::Feedback.cause(), FailureCause::FeedbackDelayLoss);
        assert_eq!(SupervisionExpiry::Execution.cause(), FailureCause::CommandLoss);
    }
}
