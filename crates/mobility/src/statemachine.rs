//! The handover procedure state machine and failure taxonomy.
//!
//! Mirrors the paper's three phases (Fig 1a): *triggering* (waiting
//! for measurement feedback), *decision* (serving cell evaluating
//! policy), *execution* (command delivery and target attach). Each
//! failure is classified with the taxonomy of Table 2, which the
//! simulator's accounting and the Table 2/5 benches consume.

use serde::{Deserialize, Serialize};

/// Why a handover (or the client's connectivity) failed, per the
/// breakdown of paper Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Feedback was delayed past viability or lost in delivery (§3.1).
    FeedbackDelayLoss,
    /// A viable candidate cell was never measured/reported (§3.2,
    /// multi-stage policy).
    MissedCell,
    /// The handover command never reached the client (§3.3).
    CommandLoss,
    /// No cell covered the client's position at all.
    CoverageHole,
}

impl FailureCause {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::FeedbackDelayLoss => "Feedback delay/loss",
            FailureCause::MissedCell => "Missed cell",
            FailureCause::CommandLoss => "Handover cmd. loss",
            FailureCause::CoverageHole => "Coverage holes",
        }
    }

    /// All causes, in the paper's table order.
    pub fn all() -> [FailureCause; 4] {
        [
            FailureCause::FeedbackDelayLoss,
            FailureCause::MissedCell,
            FailureCause::CommandLoss,
            FailureCause::CoverageHole,
        ]
    }
}

/// Handover procedure phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoPhase {
    /// Connected, no handover in progress.
    Idle,
    /// Event fired at the client; feedback (measurement report) in
    /// flight.
    Triggering,
    /// Serving cell has the report and is deciding / coordinating.
    Deciding,
    /// Handover command in flight / client attaching to the target.
    Executing,
    /// Handover completed successfully.
    Complete,
    /// Handover failed.
    Failed(FailureCause),
}

/// A single handover attempt's lifecycle with timing bookkeeping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HandoverAttempt {
    phase: HoPhase,
    /// Time the triggering event fired (ms).
    pub triggered_at_ms: f64,
    /// Time the report reached the serving cell, if it did.
    pub report_at_ms: Option<f64>,
    /// Time the command reached the client, if it did.
    pub command_at_ms: Option<f64>,
    /// Time the attempt concluded (complete or failed).
    pub finished_at_ms: Option<f64>,
}

/// Error for transitions that violate the procedure order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidTransition {
    /// Phase the attempt was in.
    pub from: HoPhase,
    /// What was attempted.
    pub op: &'static str,
}

impl HandoverAttempt {
    /// Starts an attempt at the moment the triggering event fires.
    pub fn trigger(now_ms: f64) -> Self {
        Self {
            phase: HoPhase::Triggering,
            triggered_at_ms: now_ms,
            report_at_ms: None,
            command_at_ms: None,
            finished_at_ms: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> HoPhase {
        self.phase
    }

    /// The measurement report arrived at the serving cell.
    pub fn report_received(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Triggering {
            return Err(InvalidTransition { from: self.phase, op: "report_received" });
        }
        self.phase = HoPhase::Deciding;
        self.report_at_ms = Some(now_ms);
        Ok(())
    }

    /// The handover command arrived at the client.
    pub fn command_received(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Deciding {
            return Err(InvalidTransition { from: self.phase, op: "command_received" });
        }
        self.phase = HoPhase::Executing;
        self.command_at_ms = Some(now_ms);
        Ok(())
    }

    /// The client attached to the target cell.
    pub fn complete(&mut self, now_ms: f64) -> Result<(), InvalidTransition> {
        if self.phase != HoPhase::Executing {
            return Err(InvalidTransition { from: self.phase, op: "complete" });
        }
        self.phase = HoPhase::Complete;
        self.finished_at_ms = Some(now_ms);
        Ok(())
    }

    /// The attempt failed (legal from any non-terminal phase).
    pub fn fail(&mut self, now_ms: f64, cause: FailureCause) -> Result<(), InvalidTransition> {
        match self.phase {
            HoPhase::Complete | HoPhase::Failed(_) => {
                Err(InvalidTransition { from: self.phase, op: "fail" })
            }
            _ => {
                self.phase = HoPhase::Failed(cause);
                self.finished_at_ms = Some(now_ms);
                Ok(())
            }
        }
    }

    /// Total duration, if concluded.
    pub fn duration_ms(&self) -> Option<f64> {
        self.finished_at_ms.map(|t| t - self.triggered_at_ms)
    }

    /// Whether the attempt concluded (success or failure).
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, HoPhase::Complete | HoPhase::Failed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path() {
        let mut a = HandoverAttempt::trigger(100.0);
        assert_eq!(a.phase(), HoPhase::Triggering);
        a.report_received(150.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Deciding);
        a.command_received(180.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Executing);
        a.complete(220.0).unwrap();
        assert_eq!(a.phase(), HoPhase::Complete);
        assert_eq!(a.duration_ms(), Some(120.0));
        assert!(a.is_terminal());
    }

    #[test]
    fn out_of_order_transitions_rejected() {
        let mut a = HandoverAttempt::trigger(0.0);
        assert!(a.command_received(1.0).is_err());
        assert!(a.complete(1.0).is_err());
        a.report_received(1.0).unwrap();
        assert!(a.report_received(2.0).is_err());
        assert!(a.complete(2.0).is_err());
    }

    #[test]
    fn failure_from_each_phase() {
        for advance in 0..3 {
            let mut a = HandoverAttempt::trigger(0.0);
            if advance >= 1 {
                a.report_received(1.0).unwrap();
            }
            if advance >= 2 {
                a.command_received(2.0).unwrap();
            }
            a.fail(5.0, FailureCause::CommandLoss).unwrap();
            assert_eq!(a.phase(), HoPhase::Failed(FailureCause::CommandLoss));
            assert_eq!(a.duration_ms(), Some(5.0));
        }
    }

    #[test]
    fn terminal_states_are_final() {
        let mut a = HandoverAttempt::trigger(0.0);
        a.fail(1.0, FailureCause::CoverageHole).unwrap();
        assert!(a.fail(2.0, FailureCause::CommandLoss).is_err());
        assert!(a.report_received(2.0).is_err());
    }

    #[test]
    fn cause_labels_match_tables() {
        assert_eq!(FailureCause::all().len(), 4);
        assert_eq!(FailureCause::FeedbackDelayLoss.label(), "Feedback delay/loss");
        assert_eq!(FailureCause::CoverageHole.label(), "Coverage holes");
    }
}
