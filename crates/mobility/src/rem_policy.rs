//! REM's policy simplification (paper §5.3, Fig 8).
//!
//! Four rewriting steps turn a legacy multi-stage, multi-event policy
//! into a single-stage A3-only policy over delay-Doppler SNR:
//!
//! 1. the decision metric becomes the stable delay-Doppler SNR;
//! 2. the multi-stage A1/A2 gating disappears — inter-frequency cells
//!    are covered by cross-band estimation, so every rule's scope
//!    widens to *any frequency* without measurement gaps;
//! 3. A5 rewrites to A3 with `offset = neighbor_above - serving_below`
//!    (A5's two thresholds imply that difference), and A4 rewrites to
//!    A3 — gated A4s via the equivalent A5, direct (load-balancing)
//!    A4s with an operator-chosen capacity offset;
//! 4. everything else (priorities, access control) is retained
//!    untouched, which Theorem 3 shows cannot reintroduce loops.
//!
//! Finally [`enforce_theorem2`] raises negative A3 offsets to zero so
//! the Theorem 2 condition holds by construction.

use crate::events::{EventConfig, EventKind};
use crate::policy::{CellPolicy, HandoverRule, TargetScope};
use serde::{Deserialize, Serialize};

/// Simplification parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimplifyConfig {
    /// TTT for the simplified A3 rules. The delay-Doppler metric is
    /// stable (paper Fig 11), so a short interval does not oscillate.
    pub ttt_ms: f64,
    /// Hysteresis for the simplified rules (dB).
    pub hysteresis_db: f64,
    /// A3 offset substituted for *direct* (un-gated, load-balancing)
    /// A4 rules: the capacity-difference threshold of §5.3 step 3.
    pub load_balance_offset_db: f64,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        Self { ttt_ms: 40.0, hysteresis_db: 1.0, load_balance_offset_db: 0.0 }
    }
}

/// Rewrites one rule's event to its A3 equivalent (§5.3 step 3).
/// `gated_by_a2` is the serving threshold of the policy's A2 gate when
/// the rule sat in stage 2.
fn rewrite_event(kind: EventKind, gated_by_a2: Option<f64>, cfg: &SimplifyConfig) -> Option<f64> {
    match kind {
        EventKind::A3 { offset } => Some(offset),
        EventKind::A5 { serving_below, neighbor_above } => Some(neighbor_above - serving_below),
        EventKind::A4 { thresh } => match gated_by_a2 {
            // Gated A4 == A5(serving < a2, neighbor > thresh)
            //          == A3(offset = thresh - a2).
            Some(a2) => Some(thresh - a2),
            // Direct A4 (load balancing): capacity-comparison offset.
            None => Some(cfg.load_balance_offset_db),
        },
        // A1/A2 are stage plumbing, not handover rules: dropped.
        EventKind::A1 { .. } | EventKind::A2 { .. } => None,
    }
}

/// Simplifies one legacy policy into REM's single-stage A3-only form.
pub fn simplify_policy(legacy: &CellPolicy, cfg: &SimplifyConfig) -> CellPolicy {
    let a2_thresh = legacy.a2_gate.and_then(|g| match g.kind {
        EventKind::A2 { thresh } => Some(thresh),
        _ => None,
    });

    let mut rules = Vec::new();
    let stage1_len = legacy.stage1.len();
    for (i, rule) in legacy.all_rules().enumerate() {
        let gate = if i >= stage1_len { a2_thresh } else { None };
        if let Some(offset) = rewrite_event(rule.event.kind, gate, cfg) {
            rules.push(HandoverRule {
                event: EventConfig {
                    kind: EventKind::A3 { offset },
                    ttt_ms: cfg.ttt_ms,
                    hysteresis_db: cfg.hysteresis_db,
                },
                // Cross-band estimation removes the frequency barrier.
                target: TargetScope::AnyFreq,
            });
        }
    }

    CellPolicy {
        cell: legacy.cell,
        earfcn: legacy.earfcn,
        stage1: rules,
        a2_gate: None,
        stage2: Vec::new(),
        a1_exit: None,
    }
}

/// Raises every negative A3 offset to zero (REM's conflict repair): all
/// pairwise offset sums become nonnegative, satisfying Theorem 2, and
/// by Theorem 3 the remaining non-SNR policies cannot reintroduce
/// loops.
pub fn enforce_theorem2(policy: &CellPolicy) -> CellPolicy {
    let clamp = |r: &HandoverRule| {
        let mut r = *r;
        if let EventKind::A3 { offset } = r.event.kind {
            r.event.kind = EventKind::A3 { offset: offset.max(0.0) };
        }
        r
    };
    CellPolicy {
        cell: policy.cell,
        earfcn: policy.earfcn,
        stage1: policy.stage1.iter().map(clamp).collect(),
        a2_gate: policy.a2_gate,
        stage2: policy.stage2.iter().map(clamp).collect(),
        a1_exit: policy.a1_exit,
    }
}

/// Full REM pipeline over a policy set: simplify then repair.
pub fn rem_policies(legacy: &[CellPolicy], cfg: &SimplifyConfig) -> Vec<CellPolicy> {
    legacy.iter().map(|p| enforce_theorem2(&simplify_policy(p, cfg))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{a3_graph_from_policies, scan_conflicts};
    use crate::policy::{legacy_multi_stage_policy, CellId, Earfcn};

    fn cfg() -> SimplifyConfig {
        SimplifyConfig::default()
    }

    #[test]
    fn a5_rewrites_to_difference_offset() {
        // A5(Rs < -110, Rn > -108) -> A3(offset = 2).
        let got = rewrite_event(
            EventKind::A5 { serving_below: -110.0, neighbor_above: -108.0 },
            None,
            &cfg(),
        );
        assert_eq!(got, Some(2.0));
    }

    #[test]
    fn a5_implies_its_a3_rewrite() {
        // Soundness direction: whenever A5 fires, the rewritten A3 also
        // fires (the rewrite never misses a legacy handover).
        let a5 = EventKind::A5 { serving_below: -110.0, neighbor_above: -108.0 };
        let a3 = EventKind::A3 { offset: 2.0 };
        for rs in (-140..=-44).step_by(4) {
            for rn in (-140..=-44).step_by(4) {
                let (rs, rn) = (rs as f64, rn as f64);
                if a5.entering(rs, rn, 0.0) {
                    assert!(a3.entering(rs, rn, 0.0), "rs={rs} rn={rn}");
                }
            }
        }
    }

    #[test]
    fn gated_a4_uses_a2_threshold() {
        // A2 gate at -110, A4 at -108: offset = -108 - (-110) = 2.
        let got = rewrite_event(EventKind::A4 { thresh: -108.0 }, Some(-110.0), &cfg());
        assert_eq!(got, Some(2.0));
    }

    #[test]
    fn direct_a4_uses_load_balance_offset() {
        let c = SimplifyConfig { load_balance_offset_db: 1.5, ..cfg() };
        assert_eq!(rewrite_event(EventKind::A4 { thresh: -100.0 }, None, &c), Some(1.5));
    }

    #[test]
    fn a1_a2_are_dropped() {
        assert_eq!(rewrite_event(EventKind::A1 { thresh: -85.0 }, None, &cfg()), None);
        assert_eq!(rewrite_event(EventKind::A2 { thresh: -110.0 }, None, &cfg()), None);
    }

    #[test]
    fn simplified_policy_is_single_stage_a3_only() {
        let legacy = legacy_multi_stage_policy(
            CellId(7),
            Earfcn(1825),
            &[Earfcn(2452), Earfcn(100)],
            3.0,
            80.0,
            640.0,
        );
        let simple = simplify_policy(&legacy, &cfg());
        assert!(!simple.is_multi_stage());
        assert!(simple.a2_gate.is_none() && simple.a1_exit.is_none());
        assert!(simple.stage2.is_empty());
        // 1 intra A3 + 2 gated A4s -> 3 A3 rules, all AnyFreq.
        assert_eq!(simple.stage1.len(), 3);
        for r in &simple.stage1 {
            assert!(matches!(r.event.kind, EventKind::A3 { .. }));
            assert_eq!(r.target, TargetScope::AnyFreq);
        }
    }

    #[test]
    fn enforce_theorem2_clamps_only_negatives() {
        let legacy = legacy_multi_stage_policy(CellId(1), Earfcn(5), &[], -3.0, 40.0, 640.0);
        let fixed = enforce_theorem2(&simplify_policy(&legacy, &cfg()));
        match fixed.stage1[0].event.kind {
            EventKind::A3 { offset } => assert_eq!(offset, 0.0),
            other => panic!("unexpected {other:?}"),
        }
        let conservative = legacy_multi_stage_policy(CellId(2), Earfcn(5), &[], 4.0, 40.0, 640.0);
        let kept = enforce_theorem2(&simplify_policy(&conservative, &cfg()));
        match kept.stage1[0].event.kind {
            EventKind::A3 { offset } => assert_eq!(offset, 4.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rem_pipeline_eliminates_all_conflicts() {
        // The paper's Fig 4 scenario: mutually proactive A3 policies.
        let legacy = vec![
            legacy_multi_stage_policy(CellId(3), Earfcn(500), &[], -3.0, 40.0, 640.0),
            legacy_multi_stage_policy(CellId(4), Earfcn(500), &[], -1.0, 40.0, 640.0),
        ];
        assert!(!scan_conflicts(&legacy, |_, _| true).is_empty());
        let fixed = rem_policies(&legacy, &cfg());
        assert!(scan_conflicts(&fixed, |_, _| true).is_empty());
        let g = a3_graph_from_policies(&fixed);
        assert!(g.theorem2_holds());
        assert!(!g.has_persistent_loop());
    }

    #[test]
    fn simplified_ttt_is_shortened() {
        let legacy =
            legacy_multi_stage_policy(CellId(1), Earfcn(5), &[Earfcn(6)], 3.0, 80.0, 640.0);
        let simple = simplify_policy(&legacy, &cfg());
        for r in &simple.stage1 {
            assert_eq!(r.event.ttt_ms, 40.0);
        }
    }
}
