#![warn(missing_docs)]

//! # rem-mobility
//!
//! The 4G/5G mobility-management machinery of the REM reproduction:
//! measurement events A1–A5 with time-to-trigger (paper Table 1),
//! multi-stage handover policies and their runtime engine (Fig 1b),
//! RRC-style signaling messages, the handover state machine and
//! failure taxonomy (Table 2), feedback-delay models (Figs 2a/14a),
//! policy-conflict detection and classification (Table 3, Figs 3–4),
//! and REM's policy simplification with Theorem 2/3 conflict freedom
//! (§5.3, Fig 8).

pub mod capacity;
pub mod conflict;
pub mod events;
pub mod feedback;
pub mod messages;
pub mod policy;
pub mod rem_policy;
pub mod statemachine;
pub mod x2;

pub use capacity::{capacity_equivalent_a3_offset, capacity_mbps};
pub use conflict::{a3_graph_from_policies, scan_conflicts, A3Graph, TwoCellConflict};
pub use events::{EventConfig, EventKind, EventMonitor};
pub use messages::RrcMessage;
pub use policy::{
    CellId, CellPolicy, Earfcn, HandoverRule, NeighborMeasurement, PolicyAction, PolicyEngine,
    TargetScope,
};
pub use rem_policy::{rem_policies, simplify_policy, SimplifyConfig};
pub use statemachine::{
    FailureCause, HandoverAttempt, HoPhase, InvalidTransition, SupervisionExpiry, SupervisionTimers,
};
pub use x2::{AdmissionControl, HandoverPreparation, PrepState, UeId, X2Message};
