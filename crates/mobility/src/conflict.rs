//! Policy conflict analysis: detection, classification, and REM's
//! provable conflict freedom (paper §3.2, §5.3, Theorems 2–3).
//!
//! Two views:
//!
//! * **Pairwise satisfiability** — two cells' policies conflict when
//!   both handover conditions can hold simultaneously for some signal
//!   pair; the client then ping-pongs (Fig 3/4). We decide
//!   satisfiability exactly for every event-pair combination of
//!   Table 3 via interval/difference-constraint feasibility.
//! * **A3 offset graph** — REM's simplified policies are A3-only, so a
//!   policy set induces a weighted digraph with edge `i -> j` carrying
//!   `offset(i -> j)`. A persistent loop exists iff some cycle has
//!   negative total offset (the summed conditions of Eq. 8); Theorem 2's
//!   sufficient condition `off(i->j) + off(j->k) >= 0` for all
//!   composable edge pairs is checked directly, and negative cycles
//!   are found with Bellman–Ford.

use crate::events::EventKind;
use crate::policy::{CellId, CellPolicy, TargetScope};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Valid RSRP range (dBm) used for satisfiability (paper Table 4).
pub const RSRP_RANGE: (f64, f64) = (-140.0, -44.0);

/// Conditions a single rule imposes on `(R_serving, R_neighbor)`.
#[derive(Clone, Copy, Debug)]
struct RuleConstraint {
    /// Upper bound on serving: `Rs < s_hi`.
    s_hi: f64,
    /// Lower bound on neighbour: `Rn > n_lo`.
    n_lo: f64,
    /// Difference bound: `Rn - Rs > diff_lo`.
    diff_lo: f64,
}

impl RuleConstraint {
    fn unconstrained() -> Self {
        Self { s_hi: f64::INFINITY, n_lo: f64::NEG_INFINITY, diff_lo: f64::NEG_INFINITY }
    }

    fn from_event(kind: EventKind) -> Option<Self> {
        let mut c = Self::unconstrained();
        match kind {
            EventKind::A3 { offset } => c.diff_lo = offset,
            EventKind::A4 { thresh } => c.n_lo = thresh,
            EventKind::A5 { serving_below, neighbor_above } => {
                c.s_hi = serving_below;
                c.n_lo = neighbor_above;
            }
            // A1/A2 are not handover rules by themselves.
            EventKind::A1 { .. } | EventKind::A2 { .. } => return None,
        }
        Some(c)
    }

    /// Folds an A2 gate (serving below threshold) into the constraint.
    fn with_a2_gate(mut self, thresh: f64) -> Self {
        self.s_hi = self.s_hi.min(thresh);
        self
    }
}

/// Checks whether two rules — cell `a`'s rule toward `b` and cell `b`'s
/// rule toward `a` — can be satisfied simultaneously for some
/// `(R_a, R_b)` inside the valid RSRP range. If so, the pair forms a
/// handover loop.
fn simultaneously_satisfiable(ab: RuleConstraint, ba: RuleConstraint) -> bool {
    let (lo, hi) = RSRP_RANGE;
    const EPS: f64 = 1e-9;
    // Variables x = R_a, y = R_b.
    // ab: x < ab.s_hi,  y > ab.n_lo,  y - x > ab.diff_lo
    // ba: y < ba.s_hi,  x > ba.n_lo,  x - y > ba.diff_lo
    let x_lo = lo.max(ba.n_lo);
    let x_hi = hi.min(ab.s_hi);
    let y_lo = lo.max(ab.n_lo);
    let y_hi = hi.min(ba.s_hi);
    if x_hi - x_lo <= EPS || y_hi - y_lo <= EPS {
        return false;
    }
    let d = ab.diff_lo; // y - x > d
    let e = ba.diff_lo; // x - y > e
    if d > f64::NEG_INFINITY && e > f64::NEG_INFINITY && d + e >= -EPS {
        return false; // the two difference constraints contradict
    }
    // Exists x in (x_lo, x_hi) with (max(y_lo, x + d), min(y_hi, x - e))
    // nonempty: x < y_hi - d and x > y_lo + e.
    let x_min = x_lo.max(if e > f64::NEG_INFINITY { y_lo + e } else { f64::NEG_INFINITY });
    let x_max = x_hi.min(if d > f64::NEG_INFINITY { y_hi - d } else { f64::INFINITY });
    x_max - x_min > EPS
}

/// A detected two-cell policy conflict.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoCellConflict {
    /// First cell.
    pub a: CellId,
    /// Second cell.
    pub b: CellId,
    /// Event names of the conflicting rule pair, sorted ("A3-A4").
    pub kinds: String,
    /// Whether the two cells share a frequency.
    pub intra_frequency: bool,
}

/// Returns the effective rule constraints of `policy` toward a
/// candidate on frequency `target_earfcn`, one per applicable rule.
fn constraints_toward(
    policy: &CellPolicy,
    target_earfcn: crate::policy::Earfcn,
) -> Vec<(EventKind, RuleConstraint)> {
    let mut out = Vec::new();
    let stage1_len = policy.stage1.len();
    for (i, rule) in policy.all_rules().enumerate() {
        let applies = match rule.target {
            TargetScope::IntraFreq => target_earfcn == policy.earfcn,
            TargetScope::InterFreq(f) => target_earfcn == f,
            TargetScope::AnyFreq => true,
        };
        if !applies {
            continue;
        }
        let Some(mut c) = RuleConstraint::from_event(rule.event.kind) else { continue };
        // Stage-2 rules only fire while the A2 gate holds.
        if i >= stage1_len {
            if let Some(gate) = policy.a2_gate {
                if let EventKind::A2 { thresh } = gate.kind {
                    c = c.with_a2_gate(thresh);
                }
            }
        }
        out.push((rule.event.kind, c));
    }
    out
}

/// Finds every conflicting rule pair between two cells' policies.
pub fn find_two_cell_conflicts(pa: &CellPolicy, pb: &CellPolicy) -> Vec<TwoCellConflict> {
    let mut out = Vec::new();
    let a_to_b = constraints_toward(pa, pb.earfcn);
    let b_to_a = constraints_toward(pb, pa.earfcn);
    for (ka, ca) in &a_to_b {
        for (kb, cb) in &b_to_a {
            if simultaneously_satisfiable(*ca, *cb) {
                let mut names = [ka.name(), kb.name()];
                names.sort();
                out.push(TwoCellConflict {
                    a: pa.cell,
                    b: pb.cell,
                    kinds: format!("{}-{}", names[0], names[1]),
                    intra_frequency: pa.earfcn == pb.earfcn,
                });
            }
        }
    }
    out
}

/// Scans a whole policy set for two-cell conflicts among cells that
/// `covers` says overlap (pass `|_, _| true` to check all pairs).
pub fn scan_conflicts(
    policies: &[CellPolicy],
    mut covers: impl FnMut(CellId, CellId) -> bool,
) -> Vec<TwoCellConflict> {
    let mut out = Vec::new();
    for i in 0..policies.len() {
        for j in (i + 1)..policies.len() {
            if covers(policies[i].cell, policies[j].cell) {
                out.extend(find_two_cell_conflicts(&policies[i], &policies[j]));
            }
        }
    }
    out
}

/// The A3-offset digraph induced by a set of (REM-simplified) policies.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct A3Graph {
    /// `offset[(i, j)]` = effective A3 offset of `i`'s rule toward `j`.
    offsets: HashMap<(CellId, CellId), f64>,
}

impl A3Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the A3 offset for edge `i -> j` (keeps the minimum when a
    /// pair of rules gives several offsets — the loosest rule governs
    /// loop formation).
    pub fn set_offset(&mut self, i: CellId, j: CellId, offset_db: f64) {
        self.offsets
            .entry((i, j))
            .and_modify(|o| *o = o.min(offset_db))
            .or_insert(offset_db);
    }

    /// The offset of edge `i -> j`, if configured.
    pub fn offset(&self, i: CellId, j: CellId) -> Option<f64> {
        self.offsets.get(&(i, j)).copied()
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (CellId, CellId, f64)> + '_ {
        self.offsets.iter().map(|(&(i, j), &o)| (i, j, o))
    }

    /// All cells mentioned.
    pub fn cells(&self) -> Vec<CellId> {
        let mut v: Vec<CellId> =
            self.offsets.keys().flat_map(|&(i, j)| [i, j]).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Theorem 2's sufficient condition: for every composable pair of
    /// edges `i -> j` and `j -> k` (`j != i, k`; `i` may equal `k`),
    /// `off(i -> j) + off(j -> k) >= 0`. Returns the violations.
    pub fn theorem2_violations(&self) -> Vec<(CellId, CellId, CellId, f64)> {
        let mut out = Vec::new();
        for (&(i, j), &oij) in &self.offsets {
            for (&(j2, k), &ojk) in &self.offsets {
                if j2 != j || j == i || j == k {
                    continue;
                }
                let sum = oij + ojk;
                if sum < 0.0 {
                    out.push((i, j, k, sum));
                }
            }
        }
        out
    }

    /// Whether the Theorem 2 condition holds.
    pub fn theorem2_holds(&self) -> bool {
        self.theorem2_violations().is_empty()
    }

    /// Exact persistent-loop test: does some directed cycle have
    /// negative total offset? (Summing the loop's trigger conditions,
    /// Eq. 8, is satisfiable iff the cycle weight is negative.)
    /// Bellman–Ford from a virtual source.
    pub fn has_persistent_loop(&self) -> bool {
        let cells = self.cells();
        if cells.is_empty() {
            return false;
        }
        let idx: HashMap<CellId, usize> =
            cells.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let n = cells.len();
        // Virtual source: distance 0 to all nodes.
        let mut dist = vec![0.0f64; n];
        let edges: Vec<(usize, usize, f64)> = self
            .offsets
            .iter()
            .map(|(&(i, j), &o)| (idx[&i], idx[&j], o))
            .collect();
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, w) in &edges {
                if dist[u] + w < dist[v] - 1e-12 {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        // Still relaxing after n passes: negative cycle.
        let mut relaxable = false;
        for &(u, v, w) in &edges {
            if dist[u] + w < dist[v] - 1e-12 {
                relaxable = true;
            }
        }
        relaxable
    }

    /// REM's repair: raise every negative offset to zero. All pairwise
    /// sums then become nonnegative, so Theorem 2 holds by
    /// construction; positive (conservative) offsets are untouched.
    pub fn make_conflict_free(&self) -> Self {
        Self {
            offsets: self
                .offsets
                .iter()
                .map(|(&k, &o)| (k, o.max(0.0)))
                .collect(),
        }
    }
}

/// Extracts the A3 graph from a set of policies (using each cell's A3
/// rules toward every other listed cell whose frequency the rule
/// admits).
pub fn a3_graph_from_policies(policies: &[CellPolicy]) -> A3Graph {
    let mut g = A3Graph::new();
    for pa in policies {
        for pb in policies {
            if pa.cell == pb.cell {
                continue;
            }
            for rule in pa.all_rules() {
                let applies = match rule.target {
                    TargetScope::IntraFreq => pb.earfcn == pa.earfcn,
                    TargetScope::InterFreq(f) => pb.earfcn == f,
                    TargetScope::AnyFreq => true,
                };
                if !applies {
                    continue;
                }
                if let EventKind::A3 { offset } = rule.event.kind {
                    g.set_offset(pa.cell, pb.cell, offset);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventConfig;
    use crate::policy::{Earfcn, HandoverRule};

    fn a3_policy(cell: u32, earfcn: u32, offset: f64) -> CellPolicy {
        CellPolicy {
            cell: CellId(cell),
            earfcn: Earfcn(earfcn),
            stage1: vec![HandoverRule {
                event: EventConfig {
                    kind: EventKind::A3 { offset },
                    ttt_ms: 0.0,
                    hysteresis_db: 0.0,
                },
                target: TargetScope::IntraFreq,
            }],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        }
    }

    fn rule(kind: EventKind, target: TargetScope) -> HandoverRule {
        HandoverRule {
            event: EventConfig { kind, ttt_ms: 0.0, hysteresis_db: 0.0 },
            target,
        }
    }

    #[test]
    fn paper_fig3_load_balancing_conflict() {
        // Cell 1 -> 2 if RSRP2 > -110 (A4); cell 2 -> 1 if RSRP2 < -95
        // and RSRP1 > -100 (A5). Simultaneously satisfiable for
        // RSRP1 > -100, RSRP2 in (-110, -95): a conflict.
        let p1 = CellPolicy {
            cell: CellId(1),
            earfcn: Earfcn(100),
            stage1: vec![rule(EventKind::A4 { thresh: -110.0 }, TargetScope::InterFreq(Earfcn(200)))],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        };
        let p2 = CellPolicy {
            cell: CellId(2),
            earfcn: Earfcn(200),
            stage1: vec![rule(
                EventKind::A5 { serving_below: -95.0, neighbor_above: -100.0 },
                TargetScope::InterFreq(Earfcn(100)),
            )],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        };
        let conflicts = find_two_cell_conflicts(&p1, &p2);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kinds, "A4-A5");
        assert!(!conflicts[0].intra_frequency);
    }

    #[test]
    fn paper_fig4_proactive_a3_conflict() {
        // offset(3->4) = -3, offset(4->3) = -1: sum < 0 -> conflict.
        let p3 = a3_policy(3, 500, -3.0);
        let p4 = a3_policy(4, 500, -1.0);
        let conflicts = find_two_cell_conflicts(&p3, &p4);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kinds, "A3-A3");
        assert!(conflicts[0].intra_frequency);
    }

    #[test]
    fn conservative_a3_pair_is_conflict_free() {
        let pa = a3_policy(1, 500, 3.0);
        let pb = a3_policy(2, 500, 3.0);
        assert!(find_two_cell_conflicts(&pa, &pb).is_empty());
    }

    #[test]
    fn a3_boundary_sum_zero_is_free() {
        // d + e = 0 exactly: conditions contradict, no conflict.
        let pa = a3_policy(1, 500, 2.0);
        let pb = a3_policy(2, 500, -2.0);
        assert!(find_two_cell_conflicts(&pa, &pb).is_empty());
    }

    #[test]
    fn a4_a4_mutual_thresholds_conflict() {
        let mk = |cell, own, other, thresh| CellPolicy {
            cell: CellId(cell),
            earfcn: Earfcn(own),
            stage1: vec![rule(EventKind::A4 { thresh }, TargetScope::InterFreq(Earfcn(other)))],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        };
        let pa = mk(1, 100, 200, -108.0);
        let pb = mk(2, 200, 100, -103.0);
        let c = find_two_cell_conflicts(&pa, &pb);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].kinds, "A4-A4");
    }

    #[test]
    fn a2_gate_narrows_satisfiability() {
        // Stage-2 A4 rule gated on serving < -130: the neighbour's A4
        // back-rule needs serving > -103 — infeasible together.
        let pa = CellPolicy {
            cell: CellId(1),
            earfcn: Earfcn(100),
            stage1: vec![],
            a2_gate: Some(EventConfig {
                kind: EventKind::A2 { thresh: -130.0 },
                ttt_ms: 0.0,
                hysteresis_db: 0.0,
            }),
            stage2: vec![rule(EventKind::A4 { thresh: -110.0 }, TargetScope::InterFreq(Earfcn(200)))],
            a1_exit: None,
        };
        let pb = CellPolicy {
            cell: CellId(2),
            earfcn: Earfcn(200),
            stage1: vec![rule(EventKind::A4 { thresh: -103.0 }, TargetScope::InterFreq(Earfcn(100)))],
            a2_gate: None,
            stage2: vec![],
            a1_exit: None,
        };
        // pa's rule needs R_a < -130; pb's rule needs R_a > -103.
        assert!(find_two_cell_conflicts(&pa, &pb).is_empty());
    }

    #[test]
    fn theorem2_condition_and_violations() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), 3.0);
        g.set_offset(CellId(2), CellId(1), 3.0);
        assert!(g.theorem2_holds());
        g.set_offset(CellId(2), CellId(3), -4.0);
        // 1->2 (3) + 2->3 (-4) = -1 < 0.
        assert!(!g.theorem2_holds());
        let v = g.theorem2_violations();
        assert!(v.iter().any(|&(i, j, k, _)| i == CellId(1) && j == CellId(2) && k == CellId(3)));
    }

    #[test]
    fn two_cell_negative_cycle_detected() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), -3.0);
        g.set_offset(CellId(2), CellId(1), -1.0);
        assert!(g.has_persistent_loop());
        assert!(!g.theorem2_holds());
    }

    #[test]
    fn three_cell_negative_cycle_detected() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), 1.0);
        g.set_offset(CellId(2), CellId(3), 1.0);
        g.set_offset(CellId(3), CellId(1), -3.0);
        assert!(g.has_persistent_loop());
    }

    #[test]
    fn positive_cycle_is_loop_free() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), 3.0);
        g.set_offset(CellId(2), CellId(3), 3.0);
        g.set_offset(CellId(3), CellId(1), 3.0);
        assert!(!g.has_persistent_loop());
        assert!(g.theorem2_holds());
    }

    #[test]
    fn theorem2_implies_no_loop() {
        // Theorem 2 (sufficiency): whenever the pairwise condition
        // holds, Bellman-Ford must find no negative cycle. Exercise a
        // batch of structured graphs.
        for seed in 0..50u64 {
            let mut g = A3Graph::new();
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 13) as f64 - 4.0 // offsets in [-4, 8]
            };
            for i in 0..5u32 {
                for j in 0..5u32 {
                    if i != j {
                        g.set_offset(CellId(i), CellId(j), next());
                    }
                }
            }
            if g.theorem2_holds() {
                assert!(!g.has_persistent_loop(), "seed {seed}");
            }
        }
    }

    #[test]
    fn make_conflict_free_repairs() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), -3.0);
        g.set_offset(CellId(2), CellId(1), -1.0);
        g.set_offset(CellId(2), CellId(3), 5.0);
        let fixed = g.make_conflict_free();
        assert!(fixed.theorem2_holds());
        assert!(!fixed.has_persistent_loop());
        // Conservative offsets untouched.
        assert_eq!(fixed.offset(CellId(2), CellId(3)), Some(5.0));
    }

    #[test]
    fn graph_extraction_from_policies() {
        let policies =
            vec![a3_policy(1, 500, -2.0), a3_policy(2, 500, 3.0), a3_policy(3, 600, 1.0)];
        let g = a3_graph_from_policies(&policies);
        assert_eq!(g.offset(CellId(1), CellId(2)), Some(-2.0));
        assert_eq!(g.offset(CellId(2), CellId(1)), Some(3.0));
        // Cell 3 is on another frequency: intra-freq rules don't reach it.
        assert_eq!(g.offset(CellId(1), CellId(3)), None);
        assert_eq!(g.offset(CellId(3), CellId(1)), None);
    }

    #[test]
    fn scan_conflicts_over_policy_set() {
        let policies = vec![
            a3_policy(1, 500, -3.0),
            a3_policy(2, 500, -1.0),
            a3_policy(3, 500, 3.0),
        ];
        let conflicts = scan_conflicts(&policies, |_, _| true);
        // Only the (1,2) pair conflicts: (1,3) has -3+3=0, (2,3) has -1+3=2.
        assert_eq!(conflicts.len(), 1);
        assert_eq!((conflicts[0].a, conflicts[0].b), (CellId(1), CellId(2)));
    }
}

impl A3Graph {
    /// Enumerates the negative-weight simple cycles up to
    /// `max_len` cells — the concrete multi-cell conflicts behind
    /// [`has_persistent_loop`](Self::has_persistent_loop) (the paper
    /// notes Table 3's two-cell counts are "a lower bound" because
    /// conflicts also occur among >2 cells). Each cycle is returned
    /// once, starting from its smallest cell id.
    pub fn find_conflict_cycles(&self, max_len: usize) -> Vec<Vec<CellId>> {
        let cells = self.cells();
        let mut out = Vec::new();
        let mut path: Vec<CellId> = Vec::new();
        for &start in &cells {
            path.clear();
            path.push(start);
            self.dfs_cycles(start, start, 0.0, max_len, &mut path, &mut out);
        }
        out
    }

    fn dfs_cycles(
        &self,
        start: CellId,
        at: CellId,
        weight: f64,
        max_len: usize,
        path: &mut Vec<CellId>,
        out: &mut Vec<Vec<CellId>>,
    ) {
        for (i, j, w) in self.edges() {
            if i != at {
                continue;
            }
            if j == start {
                if path.len() >= 2 && weight + w < 0.0 {
                    out.push(path.clone());
                }
                continue;
            }
            // Canonical form: only walk cells larger than the start, and
            // never revisit.
            if j <= start || path.contains(&j) || path.len() >= max_len {
                continue;
            }
            path.push(j);
            self.dfs_cycles(start, j, weight + w, max_len, path, out);
            path.pop();
        }
    }
}

#[cfg(test)]
mod cycle_tests {
    use super::*;

    #[test]
    fn finds_two_cell_cycle() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), -3.0);
        g.set_offset(CellId(2), CellId(1), -1.0);
        let cycles = g.find_conflict_cycles(4);
        assert_eq!(cycles, vec![vec![CellId(1), CellId(2)]]);
    }

    #[test]
    fn finds_three_cell_cycle_missed_by_pairwise_scan() {
        // Each pair sums >= 0, but the 3-cycle is negative: exactly the
        // ">2 cells" case the paper flags.
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), 1.0);
        g.set_offset(CellId(2), CellId(1), 1.0);
        g.set_offset(CellId(2), CellId(3), 1.0);
        g.set_offset(CellId(3), CellId(2), 1.0);
        g.set_offset(CellId(3), CellId(1), -3.0);
        g.set_offset(CellId(1), CellId(3), 3.0);
        // No 2-cell conflicts...
        assert!(g
            .find_conflict_cycles(2)
            .is_empty());
        // ...but a 3-cell persistent loop exists.
        let cycles = g.find_conflict_cycles(3);
        assert_eq!(cycles, vec![vec![CellId(1), CellId(2), CellId(3)]]);
        assert!(g.has_persistent_loop());
    }

    #[test]
    fn clean_graph_has_no_cycles() {
        let mut g = A3Graph::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    g.set_offset(CellId(i), CellId(j), 3.0);
                }
            }
        }
        assert!(g.find_conflict_cycles(4).is_empty());
    }

    #[test]
    fn cycle_enumeration_consistent_with_bellman_ford() {
        // If enumeration up to n cells finds something, Bellman-Ford
        // must agree (and vice versa for graphs of <= 4 cells).
        for seed in 0..40u64 {
            let mut g = A3Graph::new();
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 11) as f64 - 3.0
            };
            for i in 0..4u32 {
                for j in 0..4u32 {
                    if i != j {
                        g.set_offset(CellId(i), CellId(j), next());
                    }
                }
            }
            let cycles = g.find_conflict_cycles(4);
            assert_eq!(!cycles.is_empty(), g.has_persistent_loop(), "seed {seed}");
        }
    }

    #[test]
    fn repair_removes_all_cycles() {
        let mut g = A3Graph::new();
        g.set_offset(CellId(1), CellId(2), -2.0);
        g.set_offset(CellId(2), CellId(3), -2.0);
        g.set_offset(CellId(3), CellId(1), 1.0);
        assert!(!g.find_conflict_cycles(3).is_empty());
        assert!(g.make_conflict_free().find_conflict_cycles(3).is_empty());
    }
}
