//! 4G/5G measurement events (paper Table 1).
//!
//! The standard triggering criteria: A1/A2 gate on the serving cell's
//! quality, A3/A6 compares a neighbour against serving with an offset,
//! A4/B1 gates on the neighbour alone, A5/B2 combines a serving
//! threshold with a neighbour threshold. Each configured event carries
//! a *time-to-trigger* (TTT): the entering condition must hold
//! continuously for the TTT before the client reports (the transient
//! loop mitigation of §3.1 — and the source of feedback delay in
//! extreme mobility), plus a hysteresis margin.

use serde::{Deserialize, Serialize};

/// The measurement-event criteria of Table 1. All quantities in dB(m).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Serving becomes better than a threshold: `Rs > thresh`.
    A1 {
        /// Serving-cell threshold (dBm).
        thresh: f64,
    },
    /// Serving becomes worse than a threshold: `Rs < thresh`.
    A2 {
        /// Serving-cell threshold (dBm).
        thresh: f64,
    },
    /// Neighbour becomes offset-better than serving: `Rn > Rs + offset`.
    A3 {
        /// Offset (dB); negative values are the "proactive" policies of §3.2.
        offset: f64,
    },
    /// Neighbour becomes better than a threshold: `Rn > thresh`.
    A4 {
        /// Neighbour-cell threshold (dBm).
        thresh: f64,
    },
    /// Serving worse than `serving_below` AND neighbour better than
    /// `neighbor_above`.
    A5 {
        /// Serving-cell upper threshold (dBm).
        serving_below: f64,
        /// Neighbour-cell lower threshold (dBm).
        neighbor_above: f64,
    },
}

impl EventKind {
    /// Short display name ("A1".."A5").
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::A1 { .. } => "A1",
            EventKind::A2 { .. } => "A2",
            EventKind::A3 { .. } => "A3",
            EventKind::A4 { .. } => "A4",
            EventKind::A5 { .. } => "A5",
        }
    }

    /// Whether the event references a neighbour cell's measurement.
    pub fn involves_neighbor(&self) -> bool {
        !matches!(self, EventKind::A1 { .. } | EventKind::A2 { .. })
    }

    /// Entering condition with hysteresis `hys` (dB): the margin makes
    /// entering strictly harder, leaving strictly easier.
    pub fn entering(&self, serving_dbm: f64, neighbor_dbm: f64, hys: f64) -> bool {
        match *self {
            EventKind::A1 { thresh } => serving_dbm > thresh + hys,
            EventKind::A2 { thresh } => serving_dbm < thresh - hys,
            EventKind::A3 { offset } => neighbor_dbm > serving_dbm + offset + hys,
            EventKind::A4 { thresh } => neighbor_dbm > thresh + hys,
            EventKind::A5 { serving_below, neighbor_above } => {
                serving_dbm < serving_below - hys && neighbor_dbm > neighbor_above + hys
            }
        }
    }

    /// Leaving condition (hysteresis applied in the opposite sense).
    pub fn leaving(&self, serving_dbm: f64, neighbor_dbm: f64, hys: f64) -> bool {
        match *self {
            EventKind::A1 { thresh } => serving_dbm < thresh - hys,
            EventKind::A2 { thresh } => serving_dbm > thresh + hys,
            EventKind::A3 { offset } => neighbor_dbm < serving_dbm + offset - hys,
            EventKind::A4 { thresh } => neighbor_dbm < thresh - hys,
            EventKind::A5 { serving_below, neighbor_above } => {
                serving_dbm > serving_below + hys || neighbor_dbm < neighbor_above - hys
            }
        }
    }
}

/// A configured event: criteria + time-to-trigger + hysteresis.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventConfig {
    /// The criteria.
    pub kind: EventKind,
    /// Time-to-trigger in milliseconds (4G/5G values: 0, 40, 64, 80,
    /// 100, 128, 160, 256, 320, 480, 512, 640, ...).
    pub ttt_ms: f64,
    /// Hysteresis in dB.
    pub hysteresis_db: f64,
}

/// Tracks one event's TTT state over a measurement stream.
///
/// Feed it `(time, serving, neighbor)` samples; it reports the trigger
/// once the entering condition has held for a full TTT window.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventMonitor {
    entered_at_ms: Option<f64>,
    fired: bool,
}

impl EventMonitor {
    /// Resets all state (e.g. after a handover).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Processes one measurement sample at `now_ms`; returns `true`
    /// exactly once, when the event fires.
    pub fn observe(
        &mut self,
        cfg: &EventConfig,
        now_ms: f64,
        serving_dbm: f64,
        neighbor_dbm: f64,
    ) -> bool {
        let hys = cfg.hysteresis_db;
        match self.entered_at_ms {
            None => {
                if cfg.kind.entering(serving_dbm, neighbor_dbm, hys) {
                    self.entered_at_ms = Some(now_ms);
                    if cfg.ttt_ms <= 0.0 && !self.fired {
                        self.fired = true;
                        return true;
                    }
                }
                false
            }
            Some(t0) => {
                if cfg.kind.leaving(serving_dbm, neighbor_dbm, hys) {
                    self.entered_at_ms = None;
                    self.fired = false;
                    return false;
                }
                if !self.fired && now_ms - t0 >= cfg.ttt_ms {
                    self.fired = true;
                    return true;
                }
                false
            }
        }
    }

    /// Whether the event has fired and not yet been reset/left.
    pub fn has_fired(&self) -> bool {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a3(offset: f64, ttt: f64) -> EventConfig {
        EventConfig { kind: EventKind::A3 { offset }, ttt_ms: ttt, hysteresis_db: 0.0 }
    }

    #[test]
    fn table1_semantics() {
        // A1: serving better than threshold.
        assert!(EventKind::A1 { thresh: -100.0 }.entering(-90.0, 0.0, 0.0));
        assert!(!EventKind::A1 { thresh: -100.0 }.entering(-110.0, 0.0, 0.0));
        // A2: serving worse than threshold.
        assert!(EventKind::A2 { thresh: -100.0 }.entering(-110.0, 0.0, 0.0));
        // A3: neighbour offset-better.
        assert!(EventKind::A3 { offset: 3.0 }.entering(-100.0, -96.0, 0.0));
        assert!(!EventKind::A3 { offset: 3.0 }.entering(-100.0, -98.0, 0.0));
        // A4: neighbour above threshold.
        assert!(EventKind::A4 { thresh: -103.0 }.entering(-80.0, -100.0, 0.0));
        // A5: both conditions.
        let a5 = EventKind::A5 { serving_below: -110.0, neighbor_above: -108.0 };
        assert!(a5.entering(-115.0, -100.0, 0.0));
        assert!(!a5.entering(-100.0, -100.0, 0.0));
        assert!(!a5.entering(-115.0, -109.0, 0.0));
    }

    #[test]
    fn hysteresis_widens_entering() {
        let k = EventKind::A3 { offset: 3.0 };
        // 3.5 dB better: enters with hys 0 but not with hys 1.
        assert!(k.entering(-100.0, -96.5, 0.0));
        assert!(!k.entering(-100.0, -96.5, 1.0));
    }

    #[test]
    fn negative_a3_offset_models_proactive_policy() {
        // Proactive handover (paper §3.2): trigger before the neighbour
        // is actually better.
        let k = EventKind::A3 { offset: -3.0 };
        assert!(k.entering(-100.0, -102.0, 0.0));
    }

    #[test]
    fn ttt_delays_trigger() {
        let cfg = a3(3.0, 100.0);
        let mut mon = EventMonitor::default();
        assert!(!mon.observe(&cfg, 0.0, -100.0, -90.0)); // enters
        assert!(!mon.observe(&cfg, 50.0, -100.0, -90.0)); // still waiting
        assert!(mon.observe(&cfg, 100.0, -100.0, -90.0)); // fires at TTT
        assert!(!mon.observe(&cfg, 150.0, -100.0, -90.0)); // fires once
        assert!(mon.has_fired());
    }

    #[test]
    fn zero_ttt_fires_immediately() {
        let cfg = a3(3.0, 0.0);
        let mut mon = EventMonitor::default();
        assert!(mon.observe(&cfg, 0.0, -100.0, -90.0));
    }

    #[test]
    fn leaving_resets_ttt() {
        let cfg = a3(3.0, 100.0);
        let mut mon = EventMonitor::default();
        assert!(!mon.observe(&cfg, 0.0, -100.0, -90.0)); // enter
        assert!(!mon.observe(&cfg, 50.0, -100.0, -105.0)); // leave
        assert!(!mon.observe(&cfg, 60.0, -100.0, -90.0)); // re-enter
        assert!(!mon.observe(&cfg, 120.0, -100.0, -90.0)); // 60ms held only
        assert!(mon.observe(&cfg, 160.0, -100.0, -90.0)); // fires
    }

    #[test]
    fn transient_oscillation_suppressed_by_ttt() {
        // The §3.1 mechanism: a flickering condition never fires with a
        // long TTT.
        let cfg = a3(3.0, 200.0);
        let mut mon = EventMonitor::default();
        let mut fired = false;
        for i in 0..100 {
            let t = i as f64 * 10.0;
            // Condition alternates every 50 ms.
            let good = (i / 5) % 2 == 0;
            let n = if good { -90.0 } else { -105.0 };
            fired |= mon.observe(&cfg, t, -100.0, n);
        }
        assert!(!fired);
    }

    #[test]
    fn reset_clears_state() {
        let cfg = a3(3.0, 0.0);
        let mut mon = EventMonitor::default();
        assert!(mon.observe(&cfg, 0.0, -100.0, -90.0));
        mon.reset();
        assert!(!mon.has_fired());
        assert!(mon.observe(&cfg, 1.0, -100.0, -90.0));
    }

    #[test]
    fn neighbor_involvement() {
        assert!(!EventKind::A1 { thresh: 0.0 }.involves_neighbor());
        assert!(!EventKind::A2 { thresh: 0.0 }.involves_neighbor());
        assert!(EventKind::A3 { offset: 0.0 }.involves_neighbor());
        assert!(EventKind::A4 { thresh: 0.0 }.involves_neighbor());
        assert!(EventKind::A5 { serving_below: 0.0, neighbor_above: 0.0 }.involves_neighbor());
    }
}
