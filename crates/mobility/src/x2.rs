//! Inter-base-station handover coordination (the "Coordination" arrow
//! of paper Fig 1a — X2AP-style preparation between serving and target).
//!
//! Before the serving cell can send the handover command (§2), it must
//! *prepare* the target: request admission, receive the random-access
//! resources, and after execution transfer PDCP sequence state and
//! release the old context. This module models that procedure — the
//! messages, the per-UE state machine, and target-side admission
//! control — so the execution phase has its full shape.

use crate::policy::CellId;
use serde::{Deserialize, Serialize};

/// A UE identity scoped to the X2 procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UeId(pub u32);

/// Why a target rejected the preparation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrepFailureCause {
    /// Target at capacity (admission control).
    AdmissionDenied,
    /// Target has no radio resources for the RACH allocation.
    NoRadioResources,
}

/// X2AP-style coordination messages.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum X2Message {
    /// Serving -> target: please admit this UE.
    HandoverRequest {
        /// The UE.
        ue: UeId,
        /// Target cell being prepared.
        target: CellId,
    },
    /// Target -> serving: admitted; dedicated RACH preamble allocated.
    HandoverRequestAck {
        /// The UE.
        ue: UeId,
        /// Dedicated random-access preamble index.
        rach_preamble: u8,
    },
    /// Target -> serving: rejected.
    HandoverPreparationFailure {
        /// The UE.
        ue: UeId,
        /// Why.
        cause: PrepFailureCause,
    },
    /// Serving -> target: PDCP sequence numbers for lossless handover.
    SnStatusTransfer {
        /// The UE.
        ue: UeId,
        /// Next expected uplink PDCP SN.
        ul_sn: u32,
        /// Next downlink PDCP SN to assign.
        dl_sn: u32,
    },
    /// Target -> serving: UE arrived, release the old context.
    UeContextRelease {
        /// The UE.
        ue: UeId,
    },
}

/// Preparation state for one UE at the serving cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrepState {
    /// Nothing in flight.
    Idle,
    /// HandoverRequest sent, awaiting ack.
    Requested,
    /// Ack received: the handover command may be sent to the UE.
    Prepared,
    /// SN status transferred; data forwarding in progress.
    Forwarding,
    /// Context released; procedure complete.
    Released,
    /// Preparation failed.
    Failed(PrepFailureCause),
}

/// Target-side admission control: a fixed UE capacity.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Maximum simultaneous UEs.
    pub capacity: usize,
    /// Currently admitted UEs.
    pub active: usize,
}

impl AdmissionControl {
    /// Creates a controller with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, active: 0 }
    }

    /// Processes an admission request.
    pub fn admit(&mut self) -> Result<(), PrepFailureCause> {
        if self.active >= self.capacity {
            Err(PrepFailureCause::AdmissionDenied)
        } else {
            self.active += 1;
            Ok(())
        }
    }

    /// Releases one UE (no-op at zero).
    pub fn release(&mut self) {
        self.active = self.active.saturating_sub(1);
    }

    /// Current load fraction.
    pub fn load(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.active as f64 / self.capacity as f64
        }
    }
}

/// The serving-side preparation state machine for one UE.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HandoverPreparation {
    ue: UeId,
    target: CellId,
    state: PrepState,
}

/// Error for out-of-order procedure steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcedureError {
    /// State the procedure was in.
    pub state: PrepState,
    /// The offending step.
    pub step: &'static str,
}

impl HandoverPreparation {
    /// Starts a preparation: emits the HandoverRequest.
    pub fn start(ue: UeId, target: CellId) -> (Self, X2Message) {
        (
            Self { ue, target, state: PrepState::Requested },
            X2Message::HandoverRequest { ue, target },
        )
    }

    /// Current state.
    pub fn state(&self) -> PrepState {
        self.state
    }

    /// The UE under preparation.
    pub fn ue(&self) -> UeId {
        self.ue
    }

    /// The target cell.
    pub fn target(&self) -> CellId {
        self.target
    }

    /// Handles the target's response.
    pub fn on_response(&mut self, msg: &X2Message) -> Result<(), ProcedureError> {
        match (self.state, msg) {
            (PrepState::Requested, X2Message::HandoverRequestAck { ue, .. }) if *ue == self.ue => {
                self.state = PrepState::Prepared;
                Ok(())
            }
            (PrepState::Requested, X2Message::HandoverPreparationFailure { ue, cause })
                if *ue == self.ue =>
            {
                self.state = PrepState::Failed(*cause);
                Ok(())
            }
            (PrepState::Forwarding, X2Message::UeContextRelease { ue }) if *ue == self.ue => {
                self.state = PrepState::Released;
                Ok(())
            }
            _ => Err(ProcedureError { state: self.state, step: "on_response" }),
        }
    }

    /// After the UE received the handover command: transfer PDCP state.
    pub fn send_sn_status(&mut self, ul_sn: u32, dl_sn: u32) -> Result<X2Message, ProcedureError> {
        if self.state != PrepState::Prepared {
            return Err(ProcedureError { state: self.state, step: "send_sn_status" });
        }
        self.state = PrepState::Forwarding;
        Ok(X2Message::SnStatusTransfer { ue: self.ue, ul_sn, dl_sn })
    }

    /// Whether the serving cell may send the handover command now.
    pub fn ready_to_command(&self) -> bool {
        self.state == PrepState::Prepared
    }

    /// Whether the procedure reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, PrepState::Released | PrepState::Failed(_))
    }
}

/// Runs the target side for one request: admission plus preamble
/// allocation. Returns the response message.
pub fn target_handle_request(
    admission: &mut AdmissionControl,
    msg: &X2Message,
    next_preamble: u8,
) -> Option<X2Message> {
    match msg {
        X2Message::HandoverRequest { ue, .. } => Some(match admission.admit() {
            Ok(()) => X2Message::HandoverRequestAck { ue: *ue, rach_preamble: next_preamble },
            Err(cause) => X2Message::HandoverPreparationFailure { ue: *ue, cause },
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_procedure() {
        let mut adm = AdmissionControl::new(4);
        let (mut prep, req) = HandoverPreparation::start(UeId(9), CellId(2));
        assert_eq!(prep.state(), PrepState::Requested);
        assert!(!prep.ready_to_command());

        let ack = target_handle_request(&mut adm, &req, 17).unwrap();
        assert!(matches!(ack, X2Message::HandoverRequestAck { rach_preamble: 17, .. }));
        prep.on_response(&ack).unwrap();
        assert!(prep.ready_to_command());

        let sn = prep.send_sn_status(100, 205).unwrap();
        assert!(matches!(sn, X2Message::SnStatusTransfer { ul_sn: 100, dl_sn: 205, .. }));
        assert_eq!(prep.state(), PrepState::Forwarding);

        prep.on_response(&X2Message::UeContextRelease { ue: UeId(9) }).unwrap();
        assert_eq!(prep.state(), PrepState::Released);
        assert!(prep.is_terminal());
        assert_eq!(adm.active, 1);
    }

    #[test]
    fn admission_control_rejects_at_capacity() {
        let mut adm = AdmissionControl::new(1);
        let (mut p1, r1) = HandoverPreparation::start(UeId(1), CellId(5));
        let (mut p2, r2) = HandoverPreparation::start(UeId(2), CellId(5));
        p1.on_response(&target_handle_request(&mut adm, &r1, 1).unwrap()).unwrap();
        p2.on_response(&target_handle_request(&mut adm, &r2, 2).unwrap()).unwrap();
        assert!(p1.ready_to_command());
        assert_eq!(p2.state(), PrepState::Failed(PrepFailureCause::AdmissionDenied));
        assert!((adm.load() - 1.0).abs() < 1e-12);
        adm.release();
        assert_eq!(adm.active, 0);
    }

    #[test]
    fn out_of_order_steps_rejected() {
        let (mut prep, _req) = HandoverPreparation::start(UeId(3), CellId(1));
        // SN transfer before ack: error.
        assert!(prep.send_sn_status(0, 0).is_err());
        // Context release before forwarding: error.
        assert!(prep
            .on_response(&X2Message::UeContextRelease { ue: UeId(3) })
            .is_err());
        // Wrong UE's ack: error.
        assert!(prep
            .on_response(&X2Message::HandoverRequestAck { ue: UeId(99), rach_preamble: 0 })
            .is_err());
    }

    #[test]
    fn target_ignores_non_requests() {
        let mut adm = AdmissionControl::new(2);
        assert!(target_handle_request(
            &mut adm,
            &X2Message::UeContextRelease { ue: UeId(1) },
            0
        )
        .is_none());
        assert_eq!(adm.active, 0);
    }

    #[test]
    fn zero_capacity_always_full() {
        let mut adm = AdmissionControl::new(0);
        assert_eq!(adm.admit(), Err(PrepFailureCause::AdmissionDenied));
        assert_eq!(adm.load(), 1.0);
    }
}
