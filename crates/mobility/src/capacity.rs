//! Capacity-based handover comparison (paper §5.3 step 3 and §8).
//!
//! Legacy A4/A5 load-balancing rules exist because heterogeneous cells
//! (different bandwidths) cannot be compared by signal strength alone
//! — the paper's Fig 3 conflict is exactly two cells disagreeing about
//! a 5 MHz vs 20 MHz tradeoff. With a stable SNR metric, Shannon
//! capacity `C = B log2(1 + SNR)` *is* directly comparable, and any
//! desired capacity preference reduces to an equivalent A3 offset.

use rem_num::stats::db_to_lin;

/// Shannon capacity in Mbit/s for a bandwidth (MHz) and SNR (dB).
pub fn capacity_mbps(bandwidth_mhz: f64, snr_db: f64) -> f64 {
    bandwidth_mhz * (1.0 + db_to_lin(snr_db)).log2()
}

/// The A3 offset (dB) equivalent to "target capacity exceeds serving
/// capacity", linearised at the serving operating point `snr_op_db`:
/// the smallest `delta` such that
/// `capacity(bw_target, snr_op + delta) >= capacity(bw_serving, snr_op)`.
///
/// A wider target needs a *negative* offset (it wins even when its SNR
/// is worse); a narrower target needs a positive one. Solved by
/// bisection on the monotone capacity curve.
pub fn capacity_equivalent_a3_offset(
    bw_serving_mhz: f64,
    bw_target_mhz: f64,
    snr_op_db: f64,
) -> f64 {
    let want = capacity_mbps(bw_serving_mhz, snr_op_db);
    let f = |delta: f64| capacity_mbps(bw_target_mhz, snr_op_db + delta) - want;
    // Bracket: capacity is monotone in delta.
    let (mut lo, mut hi) = (-60.0, 60.0);
    if f(lo) > 0.0 {
        return lo;
    }
    if f(hi) < 0.0 {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_known_values() {
        // 20 MHz at SNR 0 dB: 20 * log2(2) = 20 Mbps.
        assert!((capacity_mbps(20.0, 0.0) - 20.0).abs() < 1e-9);
        // 10 MHz at ~4.77 dB (lin 3): 10 * 2 = 20 Mbps.
        assert!((capacity_mbps(10.0, 4.771) - 20.0).abs() < 0.01);
    }

    #[test]
    fn equal_bandwidths_need_zero_offset() {
        for op in [-5.0, 0.0, 10.0, 20.0] {
            let d = capacity_equivalent_a3_offset(20.0, 20.0, op);
            assert!(d.abs() < 1e-6, "op={op} d={d}");
        }
    }

    #[test]
    fn wider_target_gets_negative_offset() {
        // Fig 3's shape: a 20 MHz target beats a 5 MHz serving cell
        // even at substantially lower SNR.
        let d = capacity_equivalent_a3_offset(5.0, 20.0, 10.0);
        assert!(d < -5.0, "d={d}");
        // And the offset is exact: capacities match at the boundary.
        let c_serving = capacity_mbps(5.0, 10.0);
        let c_target = capacity_mbps(20.0, 10.0 + d);
        assert!((c_serving - c_target).abs() < 1e-6);
    }

    #[test]
    fn narrower_target_gets_positive_offset() {
        let d = capacity_equivalent_a3_offset(20.0, 5.0, 10.0);
        assert!(d > 5.0, "d={d}");
    }

    #[test]
    fn offsets_are_antisymmetric_at_the_boundary() {
        // Crossing in both directions at the same operating point can
        // never be simultaneously satisfiable: delta_ab + delta_ba >= 0
        // (in fact the capacities tie exactly, so the pair satisfies
        // Theorem 2 with equality at worst).
        for (ba, bb) in [(5.0, 20.0), (10.0, 15.0), (20.0, 20.0)] {
            let ab = capacity_equivalent_a3_offset(ba, bb, 8.0);
            // The reverse offset is evaluated at the target's operating
            // point after a hypothetical handover: same tie point.
            let ba_off = capacity_equivalent_a3_offset(bb, ba, 8.0 + ab);
            assert!(ab + ba_off >= -1e-6, "({ba},{bb}): {ab} + {ba_off}");
        }
    }

    #[test]
    fn capacity_monotone_in_both_arguments() {
        assert!(capacity_mbps(20.0, 10.0) > capacity_mbps(10.0, 10.0));
        assert!(capacity_mbps(10.0, 12.0) > capacity_mbps(10.0, 10.0));
    }
}
