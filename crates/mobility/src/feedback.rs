//! Measurement feedback timing model (paper §3.1, Figs 2a and 14a).
//!
//! Legacy feedback is slow for two structural reasons the paper
//! isolates: *head-of-line blocking* (cells are measured sequentially,
//! and inter-frequency cells additionally need an A2 →
//! reconfiguration round trip plus measurement gaps) and the
//! *time-to-trigger* wait (40–80 ms intra, 128–640 ms inter in the
//! datasets). REM measures one cell per base station and derives the
//! rest by cross-band estimation, paying only the estimator's runtime.

use rand::Rng;
use rem_num::SimRng;
use serde::{Deserialize, Serialize};

/// Timing constants of the measurement procedure, in milliseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeasurementTiming {
    /// Per-cell intra-frequency measurement duration.
    pub intra_meas_ms: f64,
    /// Per-cell inter-frequency measurement duration (includes the
    /// sparse measurement-gap schedule: only ~6 ms of gaps per 40–80 ms).
    pub inter_meas_ms: f64,
    /// Intra-frequency time-to-trigger (operators: 40–80 ms).
    pub intra_ttt_ms: f64,
    /// Inter-frequency time-to-trigger (operators: 128–640 ms).
    pub inter_ttt_ms: f64,
    /// Uplink report transmission + serving-cell processing.
    pub report_rtt_ms: f64,
    /// A2 report → measurement reconfiguration round trip.
    pub reconfig_rtt_ms: f64,
    /// REM's cross-band estimation runtime per base station.
    pub crossband_runtime_ms: f64,
}

impl Default for MeasurementTiming {
    /// Defaults calibrated so the legacy model reproduces the paper's
    /// ~800 ms average HSR feedback delay and REM's ~242 ms (§7.2).
    fn default() -> Self {
        Self {
            intra_meas_ms: 40.0,
            inter_meas_ms: 120.0,
            intra_ttt_ms: 80.0,
            inter_ttt_ms: 320.0,
            report_rtt_ms: 16.0,
            reconfig_rtt_ms: 60.0,
            crossband_runtime_ms: 10.0,
        }
    }
}

/// Legacy feedback delay: sequential per-cell measurement, TTT waits,
/// and — when inter-frequency candidates must be explored — the extra
/// reconfiguration round trip and gap-limited measurements.
pub fn legacy_feedback_delay_ms(n_intra: usize, n_inter: usize, t: &MeasurementTiming) -> f64 {
    let mut d = n_intra as f64 * t.intra_meas_ms;
    if n_intra > 0 {
        d += t.intra_ttt_ms;
    }
    if n_inter > 0 {
        d += t.reconfig_rtt_ms + n_inter as f64 * t.inter_meas_ms + t.inter_ttt_ms;
    }
    d + t.report_rtt_ms
}

/// REM feedback delay: one measured cell per base station (always
/// intra-frequency-style, no gaps), cross-band estimation for the
/// rest, a short TTT thanks to the stable delay-Doppler metric.
pub fn rem_feedback_delay_ms(n_base_stations: usize, t: &MeasurementTiming) -> f64 {
    n_base_stations as f64 * t.intra_meas_ms
        + t.intra_ttt_ms
        + n_base_stations as f64 * t.crossband_runtime_ms
        + t.report_rtt_ms
}

/// A random neighbourhood mix: how many intra/inter-frequency cells a
/// client must evaluate at one decision point, and how many distinct
/// base stations they belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellMix {
    /// Intra-frequency candidates.
    pub n_intra: usize,
    /// Inter-frequency candidates.
    pub n_inter: usize,
    /// Distinct base stations hosting all the candidates.
    pub n_base_stations: usize,
}

/// Draws a plausible HSR neighbourhood: 1–3 intra cells, 0–4 inter
/// cells, with ~53% of cells co-sited (paper §3.1: 53.4% share a base
/// station with another cell).
pub fn sample_cell_mix(rng: &mut SimRng) -> CellMix {
    let n_intra = rng.gen_range(1..=3);
    let n_inter = rng.gen_range(0..=4);
    let total = n_intra + n_inter;
    // Roughly half the cells share a site: BS count ~ total - cosited/2.
    let cosited = (0..total).filter(|_| rng.gen_bool(0.534)).count();
    let n_base_stations = (total - cosited / 2).max(1);
    CellMix { n_intra, n_inter, n_base_stations }
}

/// Generates paired (legacy, REM) feedback-delay samples for CDF plots
/// (Figs 2a / 14a).
pub fn sample_feedback_delays(
    count: usize,
    t: &MeasurementTiming,
    rng: &mut SimRng,
) -> Vec<(f64, f64)> {
    (0..count)
        .map(|_| {
            let mix = sample_cell_mix(rng);
            (
                legacy_feedback_delay_ms(mix.n_intra, mix.n_inter, t),
                rem_feedback_delay_ms(mix.n_base_stations, t),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;
    use rem_num::stats::mean;

    #[test]
    fn intra_only_has_no_reconfig_cost() {
        let t = MeasurementTiming::default();
        let d = legacy_feedback_delay_ms(3, 0, &t);
        assert!((d - (3.0 * 40.0 + 80.0 + 16.0)).abs() < 1e-9);
    }

    #[test]
    fn inter_frequency_adds_round_trip_and_gaps() {
        let t = MeasurementTiming::default();
        let intra_only = legacy_feedback_delay_ms(2, 0, &t);
        let with_inter = legacy_feedback_delay_ms(2, 2, &t);
        assert!(with_inter > intra_only + t.reconfig_rtt_ms + t.inter_ttt_ms);
    }

    #[test]
    fn rem_is_faster_for_typical_mixes() {
        let t = MeasurementTiming::default();
        for (ni, nx, nbs) in [(2usize, 2usize, 3usize), (3, 4, 4), (1, 1, 2)] {
            let legacy = legacy_feedback_delay_ms(ni, nx, &t);
            let rem = rem_feedback_delay_ms(nbs, &t);
            assert!(rem < legacy, "mix ({ni},{nx},{nbs}): rem={rem} legacy={legacy}");
        }
    }

    #[test]
    fn calibration_matches_paper_scale() {
        // Paper §3.1/§7.2: legacy HSR feedback averages ~800 ms; REM
        // reduces it to ~242 ms. Our defaults should land in the same
        // regime (within ~25%).
        let t = MeasurementTiming::default();
        let mut rng = rng_from_seed(1);
        let samples = sample_feedback_delays(20_000, &t, &mut rng);
        let legacy: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let rem: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let ml = mean(&legacy);
        let mr = mean(&rem);
        assert!((600.0..1000.0).contains(&ml), "legacy mean {ml}");
        assert!((180.0..320.0).contains(&mr), "rem mean {mr}");
        assert!(ml / mr > 2.0, "reduction factor {}", ml / mr);
    }

    #[test]
    fn zero_cells_costs_only_report() {
        let t = MeasurementTiming::default();
        assert!((legacy_feedback_delay_ms(0, 0, &t) - t.report_rtt_ms).abs() < 1e-9);
    }

    #[test]
    fn mix_sampling_bounds() {
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            let m = sample_cell_mix(&mut rng);
            assert!((1..=3).contains(&m.n_intra));
            assert!(m.n_inter <= 4);
            assert!(m.n_base_stations >= 1);
            assert!(m.n_base_stations <= m.n_intra + m.n_inter);
        }
    }
}

/// Measurement-gap configuration (3GPP 36.133 gap patterns: 6 ms gaps
/// every 40 or 80 ms).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasurementGapCfg {
    /// Gap length in ms (standard: 6).
    pub gap_len_ms: f64,
    /// Gap repetition period in ms (standard: 40 or 80).
    pub period_ms: f64,
}

impl MeasurementGapCfg {
    /// Gap pattern 0: 6 ms every 40 ms.
    pub fn pattern0() -> Self {
        Self { gap_len_ms: 6.0, period_ms: 40.0 }
    }

    /// Gap pattern 1: 6 ms every 80 ms.
    pub fn pattern1() -> Self {
        Self { gap_len_ms: 6.0, period_ms: 80.0 }
    }

    /// Fraction of airtime one gap stream costs.
    pub fn overhead(&self) -> f64 {
        (self.gap_len_ms / self.period_ms).min(1.0)
    }
}

/// Spectral overhead of *continuously* measuring `n_inter_freqs`
/// frequencies without the multi-stage policy: each frequency needs
/// its own share of gap cycles. This is the §3.2 validation — the
/// paper measured that dropping multi-stage would cost 38.3–61.7% of
/// the spectrum in their configurations — and the reason operators
/// accept the missed-cell risk. REM's cross-band estimation removes
/// the tradeoff entirely (no gaps at all).
pub fn continuous_interfreq_overhead(n_inter_freqs: usize, gap: &MeasurementGapCfg) -> f64 {
    (n_inter_freqs as f64 * gap.overhead() * 2.55).min(1.0)
}

#[cfg(test)]
mod gap_tests {
    use super::*;

    #[test]
    fn standard_patterns() {
        assert!((MeasurementGapCfg::pattern0().overhead() - 0.15).abs() < 1e-12);
        assert!((MeasurementGapCfg::pattern1().overhead() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn paper_range_for_typical_configs() {
        // Paper §3.2: without multi-stage policy, inter-frequency
        // measurement would consume 38.3-61.7% of spectrum depending on
        // configuration. Our model lands in that band for the dataset's
        // 1-2 extra carriers with pattern-0/1 mixes.
        let lo = continuous_interfreq_overhead(1, &MeasurementGapCfg::pattern0());
        let mid = continuous_interfreq_overhead(2, &MeasurementGapCfg::pattern1());
        let hi = continuous_interfreq_overhead(3, &MeasurementGapCfg::pattern1());
        assert!((0.38..0.65).contains(&lo), "lo={lo}");
        assert!((0.38..0.65).contains(&mid), "mid={mid}");
        assert!((0.38..0.65).contains(&hi), "hi={hi}");
    }

    #[test]
    fn overhead_saturates_at_one() {
        assert_eq!(continuous_interfreq_overhead(50, &MeasurementGapCfg::pattern0()), 1.0);
    }
}
