//! Property-based tests for events, conflicts and policy rewriting.

use proptest::prelude::*;
use rem_mobility::conflict::{find_two_cell_conflicts, A3Graph};
use rem_mobility::events::{EventConfig, EventKind, EventMonitor};
use rem_mobility::messages::RrcMessage;
use rem_mobility::policy::{CellId, CellPolicy, Earfcn, HandoverRule, TargetScope};
use rem_mobility::rem_policy::{rem_policies, simplify_policy, SimplifyConfig};

fn a3_policy(cell: u32, earfcn: u32, offset: f64) -> CellPolicy {
    CellPolicy {
        cell: CellId(cell),
        earfcn: Earfcn(earfcn),
        stage1: vec![HandoverRule {
            event: EventConfig { kind: EventKind::A3 { offset }, ttt_ms: 0.0, hysteresis_db: 0.0 },
            target: TargetScope::IntraFreq,
        }],
        a2_gate: None,
        stage2: vec![],
        a1_exit: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A3-A3 conflict iff the offsets sum negative (paper Fig 4 logic).
    #[test]
    fn a3_pair_conflict_iff_negative_sum(o1 in -80i32..80, o2 in -80i32..80) {
        let (o1, o2) = (o1 as f64 / 10.0, o2 as f64 / 10.0);
        let pa = a3_policy(1, 500, o1);
        let pb = a3_policy(2, 500, o2);
        let conflicts = find_two_cell_conflicts(&pa, &pb);
        prop_assert_eq!(!conflicts.is_empty(), o1 + o2 < -1e-9,
            "o1={} o2={} conflicts={}", o1, o2, conflicts.len());
    }

    /// Event entering/leaving with hysteresis are mutually exclusive.
    #[test]
    fn entering_and_leaving_disjoint(
        s in -140.0f64..-44.0, n in -140.0f64..-44.0, hys in 0.0f64..5.0,
        off in -10.0f64..10.0, thresh in -130.0f64..-60.0,
    ) {
        for kind in [
            EventKind::A1 { thresh },
            EventKind::A2 { thresh },
            EventKind::A3 { offset: off },
            EventKind::A4 { thresh },
            EventKind::A5 { serving_below: thresh, neighbor_above: thresh + off },
        ] {
            if hys > 0.0 {
                prop_assert!(!(kind.entering(s, n, hys) && kind.leaving(s, n, hys)), "{:?}", kind);
            }
        }
    }

    /// A monitor fires at most once until the condition leaves.
    #[test]
    fn monitor_single_shot(samples in proptest::collection::vec(-120.0f64..-80.0, 2..60)) {
        let cfg = EventConfig { kind: EventKind::A3 { offset: 3.0 }, ttt_ms: 0.0, hysteresis_db: 1.0 };
        let mut mon = EventMonitor::default();
        let mut fired = 0;
        let mut left_since_fire = true;
        for (i, &n) in samples.iter().enumerate() {
            if mon.observe(&cfg, i as f64 * 20.0, -100.0, n) {
                prop_assert!(left_since_fire, "fired twice without leaving");
                fired += 1;
                left_since_fire = false;
            }
            if cfg.kind.leaving(-100.0, n, 1.0) {
                left_since_fire = true;
            }
        }
        prop_assert!(fired <= samples.len());
    }

    /// Simplified policies are always single-stage and A3-only, and the
    /// clamped set always satisfies Theorem 2.
    #[test]
    fn simplification_invariants(offsets in proptest::collection::vec(-60i32..60, 2..8)) {
        let policies: Vec<CellPolicy> = offsets
            .iter()
            .enumerate()
            .map(|(i, &o)| {
                rem_mobility::policy::legacy_multi_stage_policy(
                    CellId(i as u32),
                    Earfcn(500),
                    &[Earfcn(600)],
                    o as f64 / 10.0,
                    80.0,
                    640.0,
                )
            })
            .collect();
        let cfg = SimplifyConfig::default();
        for p in &policies {
            let s = simplify_policy(p, &cfg);
            prop_assert!(!s.is_multi_stage());
            let all_a3 = s.stage1.iter().all(|r| matches!(r.event.kind, EventKind::A3 { .. }));
            prop_assert!(all_a3);
            let all_anyfreq = s.stage1.iter().all(|r| r.target == TargetScope::AnyFreq);
            prop_assert!(all_anyfreq);
        }
        let fixed = rem_policies(&policies, &cfg);
        let g = rem_mobility::conflict::a3_graph_from_policies(&fixed);
        prop_assert!(g.theorem2_holds());
        prop_assert!(!g.has_persistent_loop());
    }

    /// RRC message codec round-trips for arbitrary content.
    #[test]
    fn rrc_codec_round_trip(
        cells in proptest::collection::vec((any::<u32>(), -140.0f64..60.0), 0..40),
        target in any::<u32>(),
        earfcns in proptest::collection::vec(any::<u32>(), 0..20),
    ) {
        let msgs = [
            RrcMessage::MeasurementReport {
                cells: cells.iter().map(|&(c, q)| (CellId(c), (q * 100.0).round() / 100.0)).collect(),
            },
            RrcMessage::HandoverCommand { target: CellId(target) },
            RrcMessage::Reconfiguration { earfcns: earfcns.clone() },
            RrcMessage::HandoverComplete,
        ];
        for m in msgs {
            prop_assert_eq!(RrcMessage::decode(m.encode()), Some(m));
        }
    }

    /// Negative-cycle detection agrees with brute-force cycle checking
    /// on small graphs.
    #[test]
    fn bellman_ford_matches_bruteforce(raw in proptest::collection::vec(-50i32..50, 12)) {
        let mut g = A3Graph::new();
        let mut k = 0;
        let n = 4u32;
        for i in 0..n {
            for j in 0..n {
                if i != j && k < raw.len() {
                    g.set_offset(CellId(i), CellId(j), raw[k] as f64);
                    k += 1;
                }
            }
        }
        // Brute force: enumerate all simple cycles up to length 4.
        let mut neg = false;
        let ids: Vec<u32> = (0..n).collect();
        for a in &ids { for b in &ids { if a == b { continue; }
            if let (Some(x), Some(y)) = (g.offset(CellId(*a), CellId(*b)), g.offset(CellId(*b), CellId(*a))) {
                if x + y < 0.0 { neg = true; }
            }
            for c in &ids { if c == a || c == b { continue; }
                if let (Some(x), Some(y), Some(z)) = (
                    g.offset(CellId(*a), CellId(*b)),
                    g.offset(CellId(*b), CellId(*c)),
                    g.offset(CellId(*c), CellId(*a)),
                ) {
                    if x + y + z < 0.0 { neg = true; }
                }
                for d in &ids { if d == a || d == b || d == c { continue; }
                    if let (Some(w), Some(x), Some(y), Some(z)) = (
                        g.offset(CellId(*a), CellId(*b)),
                        g.offset(CellId(*b), CellId(*c)),
                        g.offset(CellId(*c), CellId(*d)),
                        g.offset(CellId(*d), CellId(*a)),
                    ) {
                        if w + x + y + z < 0.0 { neg = true; }
                    }
                }
            }
        }}
        prop_assert_eq!(g.has_persistent_loop(), neg);
    }
}

proptest! {
    /// The RRC decoder never panics on arbitrary bytes and either
    /// rejects or produces a message that re-encodes decodably.
    #[test]
    fn rrc_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        use bytes::Bytes;
        if let Some(msg) = RrcMessage::decode(Bytes::from(bytes)) {
            // Whatever it parsed must round-trip through its own codec.
            prop_assert_eq!(RrcMessage::decode(msg.encode()), Some(msg));
        }
    }
}
