//! Transport-pathology fault schedules with ground-truth stall
//! attribution.
//!
//! The signaling-layer [`FaultPlan`](crate::FaultPlan) provokes the
//! paper's Table 2 handover failures; this module does the same job one
//! layer up, for the cellular *path* pathologies the NG-RMTP report and
//! the CGNAT campaign journals document: bufferbloat (a finite
//! bottleneck queue whose queuing delay inflates RTT past the adapted
//! RTO), delay-jitter spike episodes, silent NAT rebinds that zombie
//! the flow, and handover-aligned radio outage bursts.
//!
//! A [`NetFaultPlan`] is generated up-front from `(seed, client_id)`
//! with one [`child_rng`] stream per pathology
//! (`netfaults/{client}/{label}`), so re-rating one pathology never
//! shifts another's windows and plans are bit-identical on any worker
//! thread count. [`NetFaultPlan::apply`] stamps the schedule onto a
//! [`LinkModel`]; after the transfer, [`NetFaultPlan::check_stalls`]
//! and [`NetFaultPlan::check_recoveries`] score the run's classified
//! stalls and recovery actions against the ground truth — every scored
//! stall cause and every recovery event must be attributable to a fault
//! that actually happened.

use rem_net::tcp::{BloatEpisode, JitterEpisode, LinkModel, NatRebind, Outage};
use rem_net::{ClassifiedStall, RecoveryEvent, RecoveryKind, StallCause};
use rem_num::rng::{child_rng, exponential};
use serde::{Deserialize, Serialize};

/// One injectable transport pathology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetFaultKind {
    /// Finite bottleneck queue fills (cross-traffic backlog plus our
    /// own flood); queuing delay jumps past the adapted RTO.
    Bufferbloat,
    /// Per-packet delay jitter spikes (scheduler stalls, HARQ bursts).
    JitterSpike,
    /// The NAT binding dies silently: every in-flight and future packet
    /// of the old binding epoch is dropped without a signal.
    NatRebind,
    /// A radio blackout burst aligned with handover overlap.
    HandoverOutage,
}

impl NetFaultKind {
    /// Short display label (also the [`child_rng`] stream suffix).
    pub fn label(&self) -> &'static str {
        match self {
            NetFaultKind::Bufferbloat => "bufferbloat",
            NetFaultKind::JitterSpike => "jitter-spike",
            NetFaultKind::NatRebind => "nat-rebind",
            NetFaultKind::HandoverOutage => "handover-outage",
        }
    }

    /// The stall cause a correct classifier assigns to a stall this
    /// pathology produces. Jitter spikes stall the flow only through
    /// the spurious timeouts they trigger, so they score as RTO
    /// backoff.
    pub fn ground_truth(&self) -> StallCause {
        match self {
            NetFaultKind::Bufferbloat => StallCause::Bufferbloat,
            NetFaultKind::JitterSpike => StallCause::RtoBackoff,
            NetFaultKind::NatRebind => StallCause::NatRebind,
            NetFaultKind::HandoverOutage => StallCause::HandoverOutage,
        }
    }

    /// All kinds, in taxonomy order.
    pub fn all() -> [NetFaultKind; 4] {
        [
            NetFaultKind::Bufferbloat,
            NetFaultKind::JitterSpike,
            NetFaultKind::NatRebind,
            NetFaultKind::HandoverOutage,
        ]
    }
}

/// One scheduled pathology window. For [`NetFaultKind::NatRebind`] the
/// event is instantaneous and `end_ms == start_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetFaultEvent {
    /// Window start (ms).
    pub start_ms: f64,
    /// Window end (ms, exclusive; equals `start_ms` for rebinds).
    pub end_ms: f64,
    /// Pathology class.
    pub kind: NetFaultKind,
}

/// Pathology arrival rates (Poisson, per minute of simulated time) and
/// window shapes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetFaultConfig {
    /// Bufferbloat episodes per minute.
    pub bloat_per_min: f64,
    /// Bufferbloat episode width (ms).
    pub bloat_ms: f64,
    /// Bottleneck drain rate inside a bloat episode (packets/ms).
    pub bloat_drain_pkts_per_ms: f64,
    /// Bottleneck queue capacity (packets).
    pub bloat_queue_pkts: f64,
    /// Cross-traffic backlog already queued at episode onset (packets);
    /// this is what makes the delay *jump* rather than ramp.
    pub bloat_standing_pkts: f64,
    /// Jitter episodes per minute.
    pub jitter_per_min: f64,
    /// Jitter episode width (ms).
    pub jitter_ms: f64,
    /// Maximum per-packet delay spike inside a jitter episode (ms).
    pub jitter_spike_ms: f64,
    /// NAT rebind events per minute.
    pub rebind_per_min: f64,
    /// Handover-aligned outage bursts per minute.
    pub outage_per_min: f64,
    /// Outage burst width (ms).
    pub outage_ms: f64,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        Self {
            bloat_per_min: 0.4,
            bloat_ms: 2_500.0,
            bloat_drain_pkts_per_ms: 0.05,
            bloat_queue_pkts: 120.0,
            bloat_standing_pkts: 100.0,
            jitter_per_min: 0.8,
            jitter_ms: 1_500.0,
            jitter_spike_ms: 120.0,
            rebind_per_min: 0.12,
            outage_per_min: 0.5,
            outage_ms: 1_200.0,
        }
    }
}

impl NetFaultConfig {
    /// A high-rate configuration for oracle tests: every pathology
    /// fires even on short transfers.
    pub fn aggressive() -> Self {
        Self {
            bloat_per_min: 1.2,
            jitter_per_min: 2.0,
            rebind_per_min: 0.8,
            outage_per_min: 1.5,
            ..Self::default()
        }
    }

    /// Arrival rate for one kind (per minute).
    pub fn rate_per_min(&self, kind: NetFaultKind) -> f64 {
        match kind {
            NetFaultKind::Bufferbloat => self.bloat_per_min,
            NetFaultKind::JitterSpike => self.jitter_per_min,
            NetFaultKind::NatRebind => self.rebind_per_min,
            NetFaultKind::HandoverOutage => self.outage_per_min,
        }
    }

    /// Window width for one kind (0 for instantaneous rebinds).
    fn width_ms(&self, kind: NetFaultKind) -> f64 {
        match kind {
            NetFaultKind::Bufferbloat => self.bloat_ms,
            NetFaultKind::JitterSpike => self.jitter_ms,
            NetFaultKind::NatRebind => 0.0,
            NetFaultKind::HandoverOutage => self.outage_ms,
        }
    }

    /// Validates rates and shapes; returns a human-readable reason on
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("bloat_per_min", self.bloat_per_min),
            ("jitter_per_min", self.jitter_per_min),
            ("rebind_per_min", self.rebind_per_min),
            ("outage_per_min", self.outage_per_min),
        ] {
            if !r.is_finite() || r < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {r}"));
            }
        }
        for (name, w) in [
            ("bloat_ms", self.bloat_ms),
            ("jitter_ms", self.jitter_ms),
            ("outage_ms", self.outage_ms),
        ] {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("{name} must be finite and > 0, got {w}"));
            }
        }
        if !(self.bloat_drain_pkts_per_ms.is_finite() && self.bloat_drain_pkts_per_ms > 0.0) {
            return Err(format!(
                "bloat_drain_pkts_per_ms must be finite and > 0, got {}",
                self.bloat_drain_pkts_per_ms
            ));
        }
        if !(self.bloat_queue_pkts.is_finite() && self.bloat_queue_pkts >= 1.0) {
            return Err(format!(
                "bloat_queue_pkts must be finite and >= 1, got {}",
                self.bloat_queue_pkts
            ));
        }
        if !(self.bloat_standing_pkts.is_finite() && self.bloat_standing_pkts >= 0.0) {
            return Err(format!(
                "bloat_standing_pkts must be finite and >= 0, got {}",
                self.bloat_standing_pkts
            ));
        }
        if !(self.jitter_spike_ms.is_finite() && self.jitter_spike_ms >= 0.0) {
            return Err(format!(
                "jitter_spike_ms must be finite and >= 0, got {}",
                self.jitter_spike_ms
            ));
        }
        Ok(())
    }
}

/// One oracle mismatch: a scored stall or recovery action with no
/// ground-truth fault to justify it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetOracleMismatch {
    /// When the unjustified classification happened (ms).
    pub t_ms: f64,
    /// What the classifier (or recovery machinery) claimed.
    pub claimed: StallCause,
}

/// The full pathology schedule of one client's transfer, generated
/// up-front so injection never perturbs the simulation's RNG streams.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// A plan with nothing scheduled.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Generates the schedule for `(seed, client_id)` over
    /// `[0, horizon_ms)`. Each pathology draws from its own
    /// `netfaults/{client}/{label}` stream.
    pub fn generate(cfg: &NetFaultConfig, seed: u64, client_id: u64, horizon_ms: f64) -> Self {
        let mut events = Vec::new();
        for kind in NetFaultKind::all() {
            let rate = cfg.rate_per_min(kind);
            if rate <= 0.0 || horizon_ms <= 0.0 {
                continue;
            }
            let mut rng = child_rng(seed, &format!("netfaults/{client_id}/{}", kind.label()));
            let mean_gap_ms = 60_000.0 / rate;
            let width = cfg.width_ms(kind);
            let mut t = exponential(&mut rng, mean_gap_ms);
            while t < horizon_ms {
                events.push(NetFaultEvent { start_ms: t, end_ms: t + width, kind });
                // Windows of one kind never overlap.
                t += width + exponential(&mut rng, mean_gap_ms);
            }
        }
        events.sort_by(|a, b| {
            a.start_ms
                .partial_cmp(&b.start_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
        });
        Self { events }
    }

    /// Stamps the schedule onto a link. The pathology RNG stream seed
    /// (jitter draws) is derived from `(seed, client_id)` passed at
    /// generation time by the caller; `apply` only populates the event
    /// vectors, leaving `rtt_ms` / capacity / loss untouched.
    pub fn apply(&self, cfg: &NetFaultConfig, link: &mut LinkModel) {
        for e in &self.events {
            match e.kind {
                NetFaultKind::Bufferbloat => link.bloat.push(BloatEpisode {
                    start_ms: e.start_ms,
                    end_ms: e.end_ms,
                    drain_pkts_per_ms: cfg.bloat_drain_pkts_per_ms,
                    queue_pkts: cfg.bloat_queue_pkts,
                    standing_pkts: cfg.bloat_standing_pkts,
                }),
                NetFaultKind::JitterSpike => link.jitter.push(JitterEpisode {
                    start_ms: e.start_ms,
                    end_ms: e.end_ms,
                    spike_ms: cfg.jitter_spike_ms,
                }),
                NetFaultKind::NatRebind => link.rebinds.push(NatRebind { t_ms: e.start_ms }),
                NetFaultKind::HandoverOutage => {
                    link.outages.push(Outage { start_ms: e.start_ms, end_ms: e.end_ms })
                }
            }
        }
    }

    /// All scheduled events, by start time.
    pub fn events(&self) -> &[NetFaultEvent] {
        &self.events
    }

    /// Number of scheduled events of one kind.
    pub fn count(&self, kind: NetFaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether some ground-truth event could have produced a stall of
    /// `cause` overlapping `[start_ms, end_ms]` (with `slack_ms` of
    /// attribution lag on both sides — detection lags the fault, and a
    /// queue keeps delaying packets after its episode closes). A
    /// rebind justifies any stall from the rebind instant onward, since
    /// a zombied flow stays stalled until (unless) it reconnects.
    pub fn justifies(&self, cause: StallCause, start_ms: f64, end_ms: f64, slack_ms: f64) -> bool {
        self.events.iter().any(|e| {
            e.kind.ground_truth() == cause
                && match e.kind {
                    NetFaultKind::NatRebind => {
                        e.start_ms <= end_ms && e.start_ms >= start_ms - slack_ms
                    }
                    _ => e.start_ms < end_ms + slack_ms && start_ms < e.end_ms + slack_ms,
                }
        })
    }

    /// Scores classified stalls against the ground truth: every stall
    /// whose dominant cause names a pathology must overlap (within
    /// `slack_ms`) a scheduled event of that pathology. RTO-backoff
    /// stalls need no event — plain loss produces them — *unless* the
    /// plan is empty of every kind that can masquerade as one.
    pub fn check_stalls(&self, stalls: &[ClassifiedStall], slack_ms: f64) -> Vec<NetOracleMismatch> {
        stalls
            .iter()
            .filter(|s| {
                s.cause != StallCause::RtoBackoff
                    && !self.justifies(s.cause, s.start_ms, s.end_ms, slack_ms)
            })
            .map(|s| NetOracleMismatch { t_ms: s.start_ms, claimed: s.cause })
            .collect()
    }

    /// Scores recovery actions against the ground truth: a reconnect
    /// must follow a scheduled rebind, a spurious-RTO undo must follow
    /// a delay pathology (bufferbloat or jitter window), and a forecast
    /// freeze must cover a scheduled outage.
    pub fn check_recoveries(
        &self,
        recoveries: &[RecoveryEvent],
        slack_ms: f64,
    ) -> Vec<NetOracleMismatch> {
        let recent = |t: f64, kind: NetFaultKind| {
            self.events
                .iter()
                .any(|e| e.kind == kind && e.start_ms <= t && t < e.end_ms + slack_ms)
        };
        recoveries
            .iter()
            .filter_map(|r| match r.kind {
                RecoveryKind::Reconnect => {
                    // A zombied flow may take several backoff rounds to
                    // re-establish; any prior rebind justifies it. So
                    // does a recent handover outage: the zombie
                    // detector is a consecutive-RTO heuristic and
                    // cannot distinguish a dead binding from a radio
                    // blackout that outlives the RTO ladder, so a
                    // reconnect fired inside a long outage is
                    // explainable, not fabricated.
                    let ok = self
                        .events
                        .iter()
                        .any(|e| e.kind == NetFaultKind::NatRebind && e.start_ms <= r.t_ms)
                        || recent(r.t_ms, NetFaultKind::HandoverOutage);
                    (!ok).then_some(NetOracleMismatch { t_ms: r.t_ms, claimed: StallCause::NatRebind })
                }
                RecoveryKind::SpuriousRtoUndo => {
                    let ok = recent(r.t_ms, NetFaultKind::Bufferbloat)
                        || recent(r.t_ms, NetFaultKind::JitterSpike);
                    (!ok).then_some(NetOracleMismatch {
                        t_ms: r.t_ms,
                        claimed: StallCause::Bufferbloat,
                    })
                }
                RecoveryKind::ForecastFreeze => {
                    let ok = recent(r.t_ms, NetFaultKind::HandoverOutage);
                    (!ok).then_some(NetOracleMismatch {
                        t_ms: r.t_ms,
                        claimed: StallCause::HandoverOutage,
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_net::tcp::{simulate_transfer_resilient, TcpConfig};
    use rem_net::{classify_stalls, ResilienceConfig};

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let cfg = NetFaultConfig::default();
        let a = NetFaultPlan::generate(&cfg, 7, 0, 600_000.0);
        let b = NetFaultPlan::generate(&cfg, 7, 0, 600_000.0);
        assert_eq!(a, b);
        assert_ne!(a, NetFaultPlan::generate(&cfg, 8, 0, 600_000.0));
        assert_ne!(a, NetFaultPlan::generate(&cfg, 7, 1, 600_000.0));
    }

    #[test]
    fn rerating_one_kind_never_shifts_another() {
        let base = NetFaultConfig::default();
        let more_jitter = NetFaultConfig { jitter_per_min: 4.0, ..base.clone() };
        let a = NetFaultPlan::generate(&base, 3, 0, 600_000.0);
        let b = NetFaultPlan::generate(&more_jitter, 3, 0, 600_000.0);
        for kind in [NetFaultKind::Bufferbloat, NetFaultKind::NatRebind, NetFaultKind::HandoverOutage]
        {
            let xs: Vec<_> = a.events().iter().filter(|e| e.kind == kind).collect();
            let ys: Vec<_> = b.events().iter().filter(|e| e.kind == kind).collect();
            assert_eq!(xs, ys, "{kind:?} windows shifted when jitter was re-rated");
        }
    }

    #[test]
    fn plan_rates_roughly_match_config() {
        let cfg = NetFaultConfig::aggressive();
        let horizon_min = 60.0;
        let plan = NetFaultPlan::generate(&cfg, 5, 0, horizon_min * 60_000.0);
        for kind in NetFaultKind::all() {
            let expect = cfg.rate_per_min(kind) * horizon_min;
            let got = plan.count(kind) as f64;
            assert!(
                (got - expect).abs() < 0.5 * expect + 5.0,
                "{kind:?}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn apply_yields_a_valid_link() {
        let cfg = NetFaultConfig::aggressive();
        let plan = NetFaultPlan::generate(&cfg, 11, 2, 300_000.0);
        assert!(!plan.is_empty());
        let mut link = LinkModel::default();
        plan.apply(&cfg, &mut link);
        link.validate().expect("applied plan must validate");
        assert_eq!(link.bloat.len(), plan.count(NetFaultKind::Bufferbloat));
        assert_eq!(link.jitter.len(), plan.count(NetFaultKind::JitterSpike));
        assert_eq!(link.rebinds.len(), plan.count(NetFaultKind::NatRebind));
        assert_eq!(link.outages.len(), plan.count(NetFaultKind::HandoverOutage));
    }

    #[test]
    fn config_validation() {
        assert!(NetFaultConfig::default().validate().is_ok());
        assert!(NetFaultConfig::aggressive().validate().is_ok());
        let bad = NetFaultConfig { rebind_per_min: -0.1, ..NetFaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NetFaultConfig { bloat_queue_pkts: 0.0, ..NetFaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NetFaultConfig { outage_ms: f64::NAN, ..NetFaultConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn oracle_passes_on_a_real_faulted_transfer() {
        let cfg = NetFaultConfig::aggressive();
        let plan = NetFaultPlan::generate(&cfg, 21, 0, 60_000.0);
        let mut link = LinkModel { loss_prob: 0.005, ..LinkModel::default() };
        link.pathology_seed = 99;
        plan.apply(&cfg, &mut link);
        let mut rng = child_rng(21, "netfaults-test/replay");
        let trace = simulate_transfer_resilient(
            &TcpConfig::default(),
            &ResilienceConfig::frto(),
            &link,
            60_000.0,
            &mut rng,
        );
        let stalls = classify_stalls(&trace, &link, 1_000.0);
        let stall_mismatches = plan.check_stalls(&stalls, 2_000.0);
        assert!(stall_mismatches.is_empty(), "unjustified stalls: {stall_mismatches:?}");
        let rec_mismatches = plan.check_recoveries(&trace.net.recovery_events, 2_000.0);
        assert!(rec_mismatches.is_empty(), "unjustified recoveries: {rec_mismatches:?}");
    }

    #[test]
    fn oracle_flags_fabricated_claims() {
        let plan = NetFaultPlan::empty();
        let stall = ClassifiedStall {
            start_ms: 1_000.0,
            end_ms: 4_000.0,
            cause: StallCause::NatRebind,
            breakdown: Default::default(),
        };
        let mismatches = plan.check_stalls(&[stall.clone()], 500.0);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].claimed, StallCause::NatRebind);
        let rec = RecoveryEvent { t_ms: 2_000.0, kind: RecoveryKind::Reconnect };
        assert_eq!(plan.check_recoveries(&[rec], 500.0).len(), 1);
        // RTO-backoff stalls need no justification (plain loss).
        let benign = ClassifiedStall { cause: StallCause::RtoBackoff, ..stall };
        assert!(plan.check_stalls(&[benign], 500.0).is_empty());
    }
}
