#![warn(missing_docs)]

//! # rem-faults
//!
//! Seeded, deterministic fault injection for the REM reproduction.
//!
//! The paper's reliability claims (§2 Table 2, §4) rest on surviving
//! four concrete fault classes: feedback delay/loss, missed cells,
//! handover-command loss and coverage holes. The simulator used to
//! observe those failures only when the channel happened to produce
//! them; this crate lets a campaign *provoke* them on demand — and
//! because every injected fault carries its ground-truth
//! [`FailureCause`], the run's failure classifier can be checked
//! against an oracle instead of eyeballed.
//!
//! A [`FaultPlan`] is generated up-front from `(seed, client_id)` via
//! [`rem_num::rng::child_rng`], the same per-trial stream discipline
//! the parallel Monte-Carlo engine uses: the plan never consumes
//! simulation RNG state, so faulted campaigns stay bit-identical for
//! any worker-thread count.
//!
//! Fault taxonomy (one [`FaultKind`] per Table 2 row, plus a
//! transport-layer burst-loss channel for the TCP stack):
//!
//! | kind | injected as | ground truth |
//! |------|-------------|--------------|
//! | [`FaultKind::DropFeedback`] | measurement report dropped / delayed / corrupted | `FeedbackDelayLoss` |
//! | [`FaultKind::DropCommand`]  | handover command dropped / corrupted | `CommandLoss` |
//! | [`FaultKind::DropX2`]       | X2 preparation / state transfer lost on the backhaul | `CommandLoss` |
//! | [`FaultKind::MaskCell`]     | measurement pipeline blinded (multi-stage gap) | `MissedCell` |
//! | [`FaultKind::CoverageHole`] | timed radio blackout window | `CoverageHole` |
//!
//! ```
//! use rem_faults::{FaultConfig, FaultKind, FaultPlan};
//!
//! let cfg = FaultConfig::aggressive();
//! let plan = FaultPlan::generate(&cfg, 7, 0, 120_000.0);
//! assert!(plan.count(FaultKind::DropCommand) > 0);
//! // A plan is a pure function of (config, seed, client): regenerating
//! // it reproduces the schedule exactly, at any worker-thread count.
//! let again = FaultPlan::generate(&cfg, 7, 0, 120_000.0);
//! assert_eq!(plan.faults().len(), again.faults().len());
//! // Every window lies inside the horizon and is live at its own start.
//! assert!(plan.faults().iter().all(|f| f.start_ms < 120_000.0 && f.active_at(f.start_ms)));
//! ```

use rand::Rng;
use rem_mobility::FailureCause;
use rem_num::rng::{child_rng, exponential};
use serde::{Deserialize, Serialize};

pub mod chaos;
pub mod net;

pub use chaos::ChaosConfig;
pub use net::{NetFaultConfig, NetFaultEvent, NetFaultKind, NetFaultPlan, NetOracleMismatch};

/// One injectable fault class (the Table 2 taxonomy, plus X2 loss
/// which manifests as command loss).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Uplink measurement report never reaches (or reaches too late /
    /// garbled) the serving cell.
    DropFeedback,
    /// Downlink handover command never reaches the client.
    DropCommand,
    /// X2AP preparation or SN-status transfer lost between base
    /// stations: the command can never be issued.
    DropX2,
    /// The measurement pipeline is blinded: neighbour cells exist but
    /// are never measured/reported (the §3.2 multi-stage gap).
    MaskCell,
    /// A timed radio blackout: no cell is receivable at all.
    CoverageHole,
}

impl FaultKind {
    /// The failure cause a correctly-working classifier must assign
    /// when this fault brings the radio link down.
    pub fn ground_truth(&self) -> FailureCause {
        match self {
            FaultKind::DropFeedback => FailureCause::FeedbackDelayLoss,
            FaultKind::DropCommand | FaultKind::DropX2 => FailureCause::CommandLoss,
            FaultKind::MaskCell => FailureCause::MissedCell,
            FaultKind::CoverageHole => FailureCause::CoverageHole,
        }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DropFeedback => "drop-feedback",
            FaultKind::DropCommand => "drop-command",
            FaultKind::DropX2 => "drop-x2",
            FaultKind::MaskCell => "mask-cell",
            FaultKind::CoverageHole => "coverage-hole",
        }
    }

    /// All kinds, in taxonomy order.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::DropFeedback,
            FaultKind::DropCommand,
            FaultKind::DropX2,
            FaultKind::MaskCell,
            FaultKind::CoverageHole,
        ]
    }
}

/// How a signaling-message fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultMode {
    /// The message is silently lost.
    Drop,
    /// The message is delayed past the supervision deadline
    /// (feedback only).
    Delay,
    /// The message arrives with flipped bytes; the RRC codec must
    /// reject it, which manifests as a loss.
    Corrupt,
}

/// One scheduled fault window: `kind` is active on `[start_ms, end_ms)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Window start (ms).
    pub start_ms: f64,
    /// Window end (ms, exclusive).
    pub end_ms: f64,
    /// Fault class.
    pub kind: FaultKind,
    /// Manifestation for message faults (always [`FaultMode::Drop`]
    /// for radio-window kinds).
    pub mode: FaultMode,
}

impl ScheduledFault {
    /// Whether the window covers instant `t_ms`.
    pub fn active_at(&self, t_ms: f64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms
    }
}

/// A transport-layer bursty-loss window (Gilbert-Elliott-style "bad"
/// state) for the TCP stack.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LossBurst {
    /// Burst start (ms).
    pub start_ms: f64,
    /// Burst end (ms, exclusive).
    pub end_ms: f64,
    /// Per-packet loss probability inside the burst.
    pub loss_prob: f64,
}

/// Fault-injection rates and shapes. Rates are Poisson arrivals per
/// minute of simulated time; each arrival opens a window of the
/// configured width.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Measurement-report fault windows per minute.
    pub feedback_per_min: f64,
    /// Handover-command fault windows per minute.
    pub command_per_min: f64,
    /// X2 backhaul fault windows per minute.
    pub x2_per_min: f64,
    /// Measurement-masking windows per minute.
    pub mask_per_min: f64,
    /// Injected coverage-hole windows per minute.
    pub hole_per_min: f64,
    /// Width of signaling-fault and masking windows (ms).
    pub window_ms: f64,
    /// Width of injected coverage holes (ms).
    pub hole_ms: f64,
    /// Extra latency a [`FaultMode::Delay`] feedback fault adds (ms);
    /// chosen larger than the T310-style supervision deadline so the
    /// delay is indistinguishable from loss at the state machine.
    pub extra_delay_ms: f64,
    /// Fraction of feedback faults that delay instead of drop.
    pub delay_frac: f64,
    /// Fraction of feedback/command faults that corrupt instead of
    /// drop (exercises the RRC codec's rejection path).
    pub corrupt_frac: f64,
    /// TCP bursty-loss windows per minute.
    pub tcp_burst_per_min: f64,
    /// Burst width (ms).
    pub burst_ms: f64,
    /// Packet loss probability inside a burst.
    pub burst_loss_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            feedback_per_min: 1.2,
            command_per_min: 1.2,
            x2_per_min: 0.8,
            mask_per_min: 1.0,
            hole_per_min: 0.25,
            window_ms: 3_000.0,
            hole_ms: 1_500.0,
            extra_delay_ms: 1_200.0,
            delay_frac: 0.25,
            corrupt_frac: 0.25,
            tcp_burst_per_min: 1.0,
            burst_ms: 600.0,
            burst_loss_prob: 0.35,
        }
    }
}

impl FaultConfig {
    /// A high-rate configuration for oracle tests: every fault class
    /// fires several times even on short routes.
    pub fn aggressive() -> Self {
        Self {
            feedback_per_min: 4.0,
            command_per_min: 4.0,
            x2_per_min: 2.5,
            mask_per_min: 4.0,
            hole_per_min: 1.0,
            ..Self::default()
        }
    }

    /// Scales every arrival rate by `factor` (shapes untouched).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.feedback_per_min *= factor;
        self.command_per_min *= factor;
        self.x2_per_min *= factor;
        self.mask_per_min *= factor;
        self.hole_per_min *= factor;
        self.tcp_burst_per_min *= factor;
        self
    }

    /// Arrival rate for one kind (per minute).
    pub fn rate_per_min(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DropFeedback => self.feedback_per_min,
            FaultKind::DropCommand => self.command_per_min,
            FaultKind::DropX2 => self.x2_per_min,
            FaultKind::MaskCell => self.mask_per_min,
            FaultKind::CoverageHole => self.hole_per_min,
        }
    }

    /// Validates rates and shapes; returns a human-readable reason on
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("feedback_per_min", self.feedback_per_min),
            ("command_per_min", self.command_per_min),
            ("x2_per_min", self.x2_per_min),
            ("mask_per_min", self.mask_per_min),
            ("hole_per_min", self.hole_per_min),
            ("tcp_burst_per_min", self.tcp_burst_per_min),
        ];
        for (name, r) in rates {
            if !r.is_finite() || r < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {r}"));
            }
        }
        for (name, w) in [
            ("window_ms", self.window_ms),
            ("hole_ms", self.hole_ms),
            ("burst_ms", self.burst_ms),
            ("extra_delay_ms", self.extra_delay_ms),
        ] {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("{name} must be finite and > 0, got {w}"));
            }
        }
        if !(0.0..=1.0).contains(&self.delay_frac)
            || !(0.0..=1.0).contains(&self.corrupt_frac)
            || self.delay_frac + self.corrupt_frac > 1.0
        {
            return Err(format!(
                "delay_frac + corrupt_frac must stay within [0, 1], got {} + {}",
                self.delay_frac, self.corrupt_frac
            ));
        }
        if !(0.0..=1.0).contains(&self.burst_loss_prob) {
            return Err(format!("burst_loss_prob must be in [0, 1], got {}", self.burst_loss_prob));
        }
        Ok(())
    }
}

/// The full fault schedule of one client's run, generated up-front so
/// injection never perturbs the simulation's own RNG streams.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<ScheduledFault>,
    bursts: Vec<LossBurst>,
}

impl FaultPlan {
    /// A plan with nothing scheduled (fault injection off).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Generates the schedule for `(seed, client_id)` over
    /// `[0, horizon_ms)`. Every kind draws from its own
    /// [`child_rng`] stream, so enabling or re-rating one kind never
    /// shifts another kind's windows, and the plan is a pure function
    /// of its arguments — bit-identical on any thread count.
    pub fn generate(cfg: &FaultConfig, seed: u64, client_id: u64, horizon_ms: f64) -> Self {
        let mut faults = Vec::new();
        for kind in FaultKind::all() {
            let rate = cfg.rate_per_min(kind);
            if rate <= 0.0 || horizon_ms <= 0.0 {
                continue;
            }
            let mut rng = child_rng(seed, &format!("faults/{client_id}/{}", kind.label()));
            let mean_gap_ms = 60_000.0 / rate;
            let width = if kind == FaultKind::CoverageHole { cfg.hole_ms } else { cfg.window_ms };
            let mut t = exponential(&mut rng, mean_gap_ms);
            while t < horizon_ms {
                let mode = match kind {
                    FaultKind::DropFeedback | FaultKind::DropCommand => {
                        let u: f64 = rng.gen();
                        if kind == FaultKind::DropFeedback && u < cfg.delay_frac {
                            FaultMode::Delay
                        } else if u < cfg.delay_frac + cfg.corrupt_frac {
                            FaultMode::Corrupt
                        } else {
                            FaultMode::Drop
                        }
                    }
                    _ => FaultMode::Drop,
                };
                faults.push(ScheduledFault { start_ms: t, end_ms: t + width, kind, mode });
                // Windows of one kind never overlap.
                t += width + exponential(&mut rng, mean_gap_ms);
            }
        }
        faults.sort_by(|a, b| {
            a.start_ms
                .partial_cmp(&b.start_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
        });

        let mut bursts = Vec::new();
        if cfg.tcp_burst_per_min > 0.0 && horizon_ms > 0.0 {
            let mut rng = child_rng(seed, &format!("faults/{client_id}/tcp-burst"));
            let mean_gap_ms = 60_000.0 / cfg.tcp_burst_per_min;
            let mut t = exponential(&mut rng, mean_gap_ms);
            while t < horizon_ms {
                bursts.push(LossBurst {
                    start_ms: t,
                    end_ms: t + cfg.burst_ms,
                    loss_prob: cfg.burst_loss_prob,
                });
                t += cfg.burst_ms + exponential(&mut rng, mean_gap_ms);
            }
        }

        Self { faults, bursts }
    }

    /// The window of `kind` active at `t_ms`, if any.
    pub fn active(&self, kind: FaultKind, t_ms: f64) -> Option<&ScheduledFault> {
        self.faults.iter().find(|f| f.kind == kind && f.active_at(t_ms))
    }

    /// The window of `kind` active at `t_ms` or that ended within the
    /// last `slack_ms` (failure detection lags the fault that caused
    /// it, e.g. by the RLF timer).
    pub fn active_within(&self, kind: FaultKind, t_ms: f64, slack_ms: f64) -> Option<&ScheduledFault> {
        self.faults
            .iter()
            .find(|f| f.kind == kind && t_ms >= f.start_ms && t_ms < f.end_ms + slack_ms)
    }

    /// All scheduled fault windows, by start time.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// TCP bursty-loss windows, by start time.
    pub fn bursts(&self) -> &[LossBurst] {
        &self.bursts
    }

    /// Number of scheduled windows of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.faults.iter().filter(|f| f.kind == kind).count()
    }

    /// Whether nothing at all is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.bursts.is_empty()
    }
}

/// Deterministically corrupts an encoded message so the RRC codec
/// must reject it: the type tag is smashed (no valid tag survives
/// `^ 0xFF`) and the tail byte flipped for good measure.
pub fn corrupt(bytes: &mut [u8]) {
    if let Some(first) = bytes.first_mut() {
        *first ^= 0xFF;
    }
    if bytes.len() > 1 {
        let last = bytes.len() - 1;
        bytes[last] ^= 0xA5;
    }
}

/// One fault that actually bit the run (as opposed to a scheduled
/// window nothing happened to fall into).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// When it bit (ms).
    pub t_ms: f64,
    /// Fault class.
    pub kind: FaultKind,
    /// How it manifested.
    pub mode: FaultMode,
}

/// One oracle check: a failure attributable to an injected fault,
/// pairing the fault's ground-truth cause with what the run's
/// classifier decided.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OraclePair {
    /// Failure classification instant (ms).
    pub t_ms: f64,
    /// The injected fault class held responsible.
    pub kind: FaultKind,
    /// Ground truth implied by the fault class.
    pub truth: FailureCause,
    /// What the state machine classified.
    pub classified: FailureCause,
}

impl OraclePair {
    /// Whether classification agreed with ground truth.
    pub fn matches(&self) -> bool {
        self.truth == self.classified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_covers_table2() {
        assert_eq!(FaultKind::DropFeedback.ground_truth(), FailureCause::FeedbackDelayLoss);
        assert_eq!(FaultKind::DropCommand.ground_truth(), FailureCause::CommandLoss);
        assert_eq!(FaultKind::DropX2.ground_truth(), FailureCause::CommandLoss);
        assert_eq!(FaultKind::MaskCell.ground_truth(), FailureCause::MissedCell);
        assert_eq!(FaultKind::CoverageHole.ground_truth(), FailureCause::CoverageHole);
        // Every Table 2 cause is reachable by injection.
        for cause in FailureCause::all() {
            assert!(
                FaultKind::all().iter().any(|k| k.ground_truth() == cause),
                "{cause:?} unreachable"
            );
        }
    }

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let cfg = FaultConfig::default();
        let a = FaultPlan::generate(&cfg, 7, 0, 600_000.0);
        let b = FaultPlan::generate(&cfg, 7, 0, 600_000.0);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&cfg, 8, 0, 600_000.0);
        assert_ne!(a, c);
        let d = FaultPlan::generate(&cfg, 7, 1, 600_000.0);
        assert_ne!(a, d, "client_id must decorrelate plans");
    }

    #[test]
    fn plan_rates_roughly_match_config() {
        let cfg = FaultConfig::default();
        let horizon_min = 60.0;
        let plan = FaultPlan::generate(&cfg, 3, 0, horizon_min * 60_000.0);
        for kind in FaultKind::all() {
            let expect = cfg.rate_per_min(kind) * horizon_min;
            let got = plan.count(kind) as f64;
            assert!(
                (got - expect).abs() < 0.5 * expect + 5.0,
                "{kind:?}: got {got}, expected ~{expect}"
            );
        }
        let bursts = plan.bursts().len() as f64;
        let expect = cfg.tcp_burst_per_min * horizon_min;
        assert!((bursts - expect).abs() < 0.5 * expect + 5.0);
    }

    #[test]
    fn windows_sorted_and_disjoint_per_kind() {
        let plan = FaultPlan::generate(&FaultConfig::aggressive(), 11, 2, 1_200_000.0);
        for w in plan.faults().windows(2) {
            assert!(w[1].start_ms >= w[0].start_ms);
        }
        for kind in FaultKind::all() {
            let ws: Vec<_> = plan.faults().iter().filter(|f| f.kind == kind).collect();
            for w in ws.windows(2) {
                assert!(w[1].start_ms >= w[0].end_ms, "{kind:?} windows overlap");
            }
        }
    }

    #[test]
    fn active_lookups() {
        let cfg = FaultConfig { hole_per_min: 2.0, ..FaultConfig::default() };
        let plan = FaultPlan::generate(&cfg, 5, 0, 600_000.0);
        let hole = plan.faults().iter().find(|f| f.kind == FaultKind::CoverageHole).unwrap();
        let mid = (hole.start_ms + hole.end_ms) / 2.0;
        assert_eq!(plan.active(FaultKind::CoverageHole, mid).unwrap().start_ms, hole.start_ms);
        assert!(plan.active(FaultKind::CoverageHole, hole.end_ms + 1e9).is_none());
        // Slack keeps the window attributable shortly after it closes.
        assert!(plan.active_within(FaultKind::CoverageHole, hole.end_ms + 100.0, 500.0).is_some());
        assert!(plan
            .active_within(FaultKind::CoverageHole, hole.end_ms + 600.0, 500.0)
            .map_or(true, |f| f.start_ms != hole.start_ms));
    }

    #[test]
    fn empty_plan_and_zero_rates() {
        assert!(FaultPlan::empty().is_empty());
        let off = FaultConfig {
            feedback_per_min: 0.0,
            command_per_min: 0.0,
            x2_per_min: 0.0,
            mask_per_min: 0.0,
            hole_per_min: 0.0,
            tcp_burst_per_min: 0.0,
            ..FaultConfig::default()
        };
        assert!(FaultPlan::generate(&off, 1, 0, 600_000.0).is_empty());
        assert!(FaultPlan::generate(&FaultConfig::default(), 1, 0, 0.0).is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig::aggressive().validate().is_ok());
        let bad = FaultConfig { feedback_per_min: -1.0, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = FaultConfig { burst_loss_prob: 1.5, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = FaultConfig { delay_frac: 0.8, corrupt_frac: 0.5, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
        let bad = FaultConfig { window_ms: 0.0, ..FaultConfig::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn corruption_defeats_the_rrc_codec() {
        use rem_mobility::{CellId, RrcMessage};
        let messages = [
            RrcMessage::MeasurementReport { cells: vec![(CellId(3), -4.5), (CellId(9), 2.0)] },
            RrcMessage::HandoverCommand { target: CellId(12) },
            RrcMessage::Reconfiguration { earfcns: vec![1850, 2452] },
            RrcMessage::HandoverComplete,
        ];
        for msg in messages {
            let mut raw = msg.encode().to_vec();
            corrupt(&mut raw);
            assert!(
                RrcMessage::decode(bytes::Bytes::from(raw)).is_none(),
                "corrupted {msg:?} must not decode"
            );
        }
    }

    #[test]
    fn oracle_pair_matches() {
        let ok = OraclePair {
            t_ms: 1.0,
            kind: FaultKind::DropCommand,
            truth: FailureCause::CommandLoss,
            classified: FailureCause::CommandLoss,
        };
        assert!(ok.matches());
        let bad = OraclePair { classified: FailureCause::MissedCell, ..ok };
        assert!(!bad.matches());
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::generate(&FaultConfig::default(), 2, 1, 300_000.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
