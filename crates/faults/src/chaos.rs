//! Deterministic trial-level chaos: seeded panic injection for
//! exercising the campaign engine's crash isolation.
//!
//! The checked Monte-Carlo runner (`rem_exec::par_map_checked`) claims
//! two things: a panicking trial is retried and, when the panic was
//! transient, the campaign's result is **bit-identical** to an
//! unfaulted run; a persistently panicking trial is quarantined
//! without taking the campaign down. Both claims need a fault source
//! that is (a) deterministic in `(seed, trial index)` so CI can replay
//! it, and (b) aware of the retry `attempt` so "transient" and
//! "persistent" are choices, not luck. That source is [`ChaosConfig`].
//!
//! The decision hash never touches simulation RNG streams — a chaos
//! run and a clean run draw exactly the same channel realizations,
//! which is what makes the hash-equality CI gate meaningful.

use serde::{Deserialize, Serialize};

/// Seeded panic-injection policy for checked campaign runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Chaos stream seed (independent of the campaign seed so the same
    /// campaign can be replayed under different fault patterns).
    pub seed: u64,
    /// Probability in `[0, 1]` that a given trial panics.
    pub panic_rate: f64,
    /// `false` (default): a selected trial panics only on attempt 0 —
    /// the retry succeeds and the campaign result must equal a clean
    /// run's. `true`: the trial panics on *every* attempt and ends up
    /// quarantined.
    pub fatal: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { seed: 0, panic_rate: 0.0, fatal: false }
    }
}

impl ChaosConfig {
    /// A transient-panic policy at `rate` under `seed`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self { seed, panic_rate: rate, fatal: false }
    }

    /// A persistent-panic policy at `rate` under `seed`.
    pub fn fatal(seed: u64, rate: f64) -> Self {
        Self { seed, panic_rate: rate, fatal: true }
    }

    /// Whether this trial attempt should panic. Pure in
    /// `(self, index, attempt)`: the same config always selects the
    /// same trials, on any thread count and in any execution order.
    pub fn should_panic(&self, index: usize, attempt: u32) -> bool {
        if self.panic_rate <= 0.0 {
            return false;
        }
        if !self.fatal && attempt > 0 {
            return false;
        }
        trial_unit(self.seed, index) < self.panic_rate
    }

    /// Panics (deliberately) when [`should_panic`](Self::should_panic)
    /// selects this attempt; call at the top of an instrumented trial.
    pub fn maybe_panic(&self, index: usize, attempt: u32) {
        if self.should_panic(index, attempt) {
            panic!("chaos: injected panic in trial {index} (attempt {attempt})");
        }
    }
}

/// Uniform-ish value in `[0, 1)` from `(seed, index)` via the
/// splitmix64 finalizer — no RNG object, no state, no allocation.
fn trial_unit(seed: u64, index: usize) -> f64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 mantissa bits -> [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_panics() {
        let c = ChaosConfig::default();
        for i in 0..1000 {
            assert!(!c.should_panic(i, 0));
        }
        c.maybe_panic(7, 0); // must not panic
    }

    #[test]
    fn full_rate_selects_every_trial_on_attempt_zero_only() {
        let c = ChaosConfig::transient(9, 1.0);
        for i in 0..100 {
            assert!(c.should_panic(i, 0));
            assert!(!c.should_panic(i, 1), "transient chaos must spare retries");
        }
    }

    #[test]
    fn fatal_chaos_panics_on_every_attempt() {
        let c = ChaosConfig::fatal(9, 1.0);
        for attempt in 0..5 {
            assert!(c.should_panic(3, attempt));
        }
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let a = ChaosConfig::transient(1, 0.3);
        let b = ChaosConfig::transient(1, 0.3);
        let c = ChaosConfig::transient(2, 0.3);
        let pick = |cfg: &ChaosConfig| -> Vec<usize> {
            (0..200).filter(|&i| cfg.should_panic(i, 0)).collect()
        };
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c), "different seeds, different victims");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let c = ChaosConfig::transient(42, 0.25);
        let hits = (0..4000).filter(|&i| c.should_panic(i, 0)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.04, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic in trial 5")]
    fn maybe_panic_panics_when_selected() {
        ChaosConfig::transient(3, 1.0).maybe_panic(5, 0);
    }
}
