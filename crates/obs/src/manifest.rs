//! Reproducible run manifests.
//!
//! A [`RunManifest`] is written next to every checkpoint and bench
//! artifact. It captures everything needed to reproduce the run's
//! `--hash` from scratch — the campaign fingerprint (the same
//! `spec_json` the checkpoint stores), seed/trial counts, thread
//! count, retry/chaos policy, the DSP plan-cache mode and the git
//! SHA — plus the result hash itself, so `rem rerun <manifest>` can
//! replay the campaign and gate on hash equality (the CI
//! manifest-gate does exactly this).
//!
//! Provenance fields (`git_sha`, `threads`, timings) are recorded for
//! the reader; only `kind` + `spec_json` determine the recomputed
//! values, which is why a manifest replayed at a different thread
//! count still reproduces the identical hash.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Format tag of the manifest JSON (`format` field).
pub const MANIFEST_FORMAT: &str = "REMMANIFEST1";

/// Everything needed to reproduce (and attribute) one campaign or
/// bench run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Always [`MANIFEST_FORMAT`]; loading refuses anything else.
    pub format: String,
    /// Campaign kind (`"compare"`, `"bler"`, `"aggregate"`,
    /// `"bench:dsp_json"`, ...) — the same tag checkpoints carry.
    pub kind: String,
    /// Canonical campaign fingerprint: the JSON the checkpoint layer
    /// uses (dataset/scenarios, seeds, faults; thread count excluded).
    pub spec_json: String,
    /// Total trials in the campaign.
    pub n_trials: usize,
    /// Worker threads the run used (`0` = all cores). Provenance only:
    /// results are thread-count invariant.
    #[serde(default)]
    pub threads: usize,
    /// Panicking-trial retry budget the run used.
    #[serde(default)]
    pub max_retries: u32,
    /// Per-trial deadline, if one was set (detection only).
    #[serde(default)]
    pub trial_timeout_ms: Option<u64>,
    /// Checkpoint cadence in trials.
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Chaos-injection config, if any (provenance: injected panics are
    /// retried to the unfaulted value and never move the hash).
    #[serde(default)]
    pub chaos: Option<serde_json::Value>,
    /// DSP plan-cache mode (`REM_DSP_PLAN`, `"on"` when unset).
    #[serde(default)]
    pub plan_cache: String,
    /// Active SIMD dispatch tier of the DSP kernels (`"scalar"`,
    /// `"avx2"`, `"neon"`). Provenance only: every tier is bit-exact
    /// against the scalar reference, so the hash never depends on it.
    #[serde(default)]
    pub simd_dispatch: String,
    /// Vector features the CPU exposed at run time (e.g.
    /// `"avx2,fma,sse4.2"`), independent of the dispatch override.
    #[serde(default)]
    pub cpu_features: String,
    /// `git rev-parse HEAD` at run time, when available.
    #[serde(default)]
    pub git_sha: Option<String>,
    /// Whether observability probes were compiled into the binary that
    /// produced this manifest.
    #[serde(default)]
    pub obs_enabled: bool,
    /// The run's FNV-1a 64 result digest (`"fnv1a64:<16 hex>"`), when
    /// the run computes one. `rem rerun` recomputes and compares.
    #[serde(default)]
    pub result_hash: Option<String>,
    /// Scenario fingerprint (`"<name>:fnv1a64:<16 hex>"`) when the run
    /// was launched from a `--scenario` file. Provenance only: the
    /// campaign identity stays in `spec_json`, which is why `rem rerun`
    /// replays scenario runs without the scenario file present.
    #[serde(default)]
    pub scenario: Option<String>,
    /// Net stall-study summary (study dimensions, stall gap, oracle
    /// slack) when the run was a `rem net` study. Provenance only: the
    /// study identity stays in `spec_json`, so `rem rerun` replays the
    /// stall study hash-identically from that alone.
    #[serde(default)]
    pub net: Option<serde_json::Value>,
    /// Fleet campaign execution record (shard and thread counts the
    /// run actually used) when the run was a `rem fleet` campaign.
    /// Provenance only: results are bit-identical for every shard and
    /// thread count, so `rem rerun` is free to pick its own.
    #[serde(default)]
    pub fleet: Option<serde_json::Value>,
}

impl RunManifest {
    /// A manifest for a campaign of `n_trials` over fingerprint
    /// `spec_json`, with environment provenance (plan-cache mode, git
    /// SHA, probe availability) captured from the current process.
    pub fn new(kind: &str, spec_json: &str, n_trials: usize) -> Self {
        Self {
            format: MANIFEST_FORMAT.to_string(),
            kind: kind.to_string(),
            spec_json: spec_json.to_string(),
            n_trials,
            threads: 0,
            max_retries: 0,
            trial_timeout_ms: None,
            checkpoint_every: 0,
            chaos: None,
            plan_cache: std::env::var("REM_DSP_PLAN").unwrap_or_else(|_| "on".to_string()),
            simd_dispatch: rem_num::simd::active_tier().name().to_string(),
            cpu_features: rem_num::simd::cpu_features(),
            git_sha: git_sha(),
            obs_enabled: crate::compiled_in(),
            result_hash: None,
            scenario: None,
            net: None,
            fleet: None,
        }
    }

    /// Sets the result digest (`"fnv1a64:<16 hex>"`).
    pub fn with_result_hash(mut self, hash: String) -> Self {
        self.result_hash = Some(hash);
        self
    }

    /// Atomically writes the manifest as pretty JSON (`<path>.tmp`,
    /// fsync, rename) so a crashed run never leaves a truncated one.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let body = serde_json::to_string_pretty(self)
            .map_err(|e| format!("serialize manifest: {e}"))?;
        let tmp = path.with_extension("manifest.tmp");
        let io = |e: std::io::Error| format!("{}: {e}", tmp.display());
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(body.as_bytes()).map_err(io)?;
        f.write_all(b"\n").map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads and validates a manifest written by [`RunManifest::save`].
    pub fn load(path: &Path) -> Result<Self, String> {
        let body =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let m: RunManifest = serde_json::from_str(&body)
            .map_err(|e| format!("{}: not a manifest: {e}", path.display()))?;
        if m.format != MANIFEST_FORMAT {
            return Err(format!(
                "{}: format '{}' is not {MANIFEST_FORMAT}",
                path.display(),
                m.format
            ));
        }
        Ok(m)
    }
}

/// The commit SHA of the working tree, if `git` is available (runs
/// `git rev-parse HEAD`; any failure degrades to `None` — manifests
/// are provenance, never a hard dependency on a VCS).
pub fn git_sha() -> Option<String> {
    let out = std::process::Command::new("git").args(["rev-parse", "HEAD"]).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!sha.is_empty()).then_some(sha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rem-obs-manifest-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn save_load_roundtrip_preserves_the_fingerprint_verbatim() {
        let path = tmp("roundtrip.manifest.json");
        let spec = r#"[{"name":"beijing-taiyuan"},[1,2,3],null]"#;
        let mut m = RunManifest::new("compare", spec, 6)
            .with_result_hash("fnv1a64:00ff00ff00ff00ff".to_string());
        m.threads = 4;
        m.max_retries = 2;
        m.chaos = Some(serde_json::json!({"seed": 7, "panic_rate": 0.5}));
        m.save(&path).expect("save");
        let back = RunManifest::load(&path).expect("load");
        assert_eq!(back, m);
        assert_eq!(back.spec_json, spec, "fingerprint must survive byte-for-byte");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_refuses_other_formats() {
        let path = tmp("badformat.manifest.json");
        let mut m = RunManifest::new("bler", "{}", 2);
        m.format = "SOMETHINGELSE".to_string();
        let body = serde_json::to_string(&m).expect("serialize");
        std::fs::write(&path, body).expect("write");
        let err = RunManifest::load(&path).expect_err("must refuse");
        assert!(err.contains("REMMANIFEST1"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_reports_unparseable_files() {
        let path = tmp("garbage.manifest.json");
        std::fs::write(&path, "not json at all").expect("write");
        assert!(RunManifest::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sparse_manifests_deserialize_with_defaults() {
        // Forward compatibility: a minimal manifest (format, kind,
        // spec_json, n_trials) loads with every provenance field
        // defaulted.
        let body = r#"{"format":"REMMANIFEST1","kind":"bler","spec_json":"{}","n_trials":4}"#;
        let m: RunManifest = serde_json::from_str(body).expect("parse");
        assert_eq!(m.threads, 0);
        assert!(m.result_hash.is_none());
        assert!(m.chaos.is_none());
        assert!(m.scenario.is_none());
        assert!(m.net.is_none());
    }

    #[test]
    fn new_captures_environment_provenance() {
        let m = RunManifest::new("compare", "{}", 2);
        assert_eq!(m.format, MANIFEST_FORMAT);
        assert!(!m.plan_cache.is_empty());
        assert_eq!(m.obs_enabled, crate::compiled_in());
        // SIMD provenance: the active tier name and the CPU feature
        // list are always captured (both non-empty on every platform).
        assert_eq!(m.simd_dispatch, rem_num::simd::active_tier().name());
        assert!(!m.cpu_features.is_empty());
    }

    #[test]
    fn manifests_without_simd_provenance_still_load() {
        let body = r#"{"format":"REMMANIFEST1","kind":"bler","spec_json":"{}","n_trials":4}"#;
        let m: RunManifest = serde_json::from_str(body).expect("parse");
        assert_eq!(m.simd_dispatch, "");
        assert_eq!(m.cpu_features, "");
    }
}
