//! Structured event tracing with a JSONL wire format.
//!
//! A trace is a flat stream of [`TraceEvent`]s — `(seq, scope, name,
//! fields)` — collected in memory while a sink is active
//! ([`start`] / [`finish`]) and written one JSON object per line.
//! `seq` is a process-monotonic counter, **never wall-clock**: replays
//! of the same campaign produce the same event payloads, and at one
//! worker thread the same order. At higher thread counts the event
//! *set* is invariant while interleaving may differ; every aggregate
//! derived from the set (see [`crate::summary`]) is therefore
//! thread-count invariant.
//!
//! Emission is a single relaxed atomic load when no sink is active,
//! and compiles out entirely without the `enabled` feature.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A scalar field value carried by a trace event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum FieldValue {
    /// Unsigned integer (indices, counts, seeds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (times in simulated ms, ratios).
    F64(f64),
    /// Short string label (plane, dataset, kind).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured event of a campaign trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Process-monotonic sequence number (arrival order, no
    /// wall-clock).
    pub seq: u64,
    /// Subsystem that emitted the event (`exec`, `core`, `sim`, ...).
    pub scope: String,
    /// Event name within the scope (`trial_done`, `checkpoint_save`).
    pub name: String,
    /// Deterministic payload fields.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub fields: BTreeMap<String, FieldValue>,
}

impl TraceEvent {
    /// `scope/name`, the key summaries group by.
    pub fn kind(&self) -> String {
        format!("{}/{}", self.scope, self.name)
    }
}

/// Serializes events as JSONL (one JSON object per line, trailing
/// newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into events; blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))
        })
        .collect()
}

/// Emits a structured event to the active sink, if any. A relaxed
/// atomic load when no sink is active; compiled out entirely without
/// the `enabled` feature.
#[inline(always)]
pub fn emit(scope: &'static str, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    #[cfg(feature = "enabled")]
    imp::emit(scope, name, fields);
    #[cfg(not(feature = "enabled"))]
    let _ = (scope, name, fields);
}

/// Activates the in-memory sink (clearing any previous buffer) and
/// returns whether probes are compiled into this build. Subsequent
/// [`emit`] calls are recorded until [`finish`].
pub fn start() -> bool {
    #[cfg(feature = "enabled")]
    imp::start();
    crate::compiled_in()
}

/// True when a sink is currently collecting events.
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::active()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Deactivates the sink and returns everything it collected (empty
/// when probes are compiled out or no sink was started).
pub fn finish() -> Vec<TraceEvent> {
    #[cfg(feature = "enabled")]
    {
        imp::finish()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{FieldValue, TraceEvent};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

    pub(super) fn emit(
        scope: &'static str,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let event = TraceEvent {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            scope: scope.to_string(),
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        EVENTS.lock().unwrap().push(event);
    }

    pub(super) fn start() {
        let mut buf = EVENTS.lock().unwrap();
        buf.clear();
        SEQ.store(0, Ordering::Relaxed);
        ACTIVE.store(true, Ordering::Relaxed);
    }

    pub(super) fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    pub(super) fn finish() -> Vec<TraceEvent> {
        ACTIVE.store(false, Ordering::Relaxed);
        std::mem::take(&mut *EVENTS.lock().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, scope: &str, name: &str) -> TraceEvent {
        TraceEvent {
            seq,
            scope: scope.into(),
            name: name.into(),
            fields: [("index".to_string(), FieldValue::from(7usize))].into_iter().collect(),
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let events = vec![event(0, "exec", "trial_done"), event(1, "core", "wave_done")];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parse");
        assert_eq!(back, events);
        // Untagged field values come back as the same variants.
        assert_eq!(back[0].fields["index"], FieldValue::U64(7));
        assert_eq!(back[0].kind(), "exec/trial_done");
    }

    #[test]
    fn parse_reports_the_offending_line() {
        let err = parse_jsonl("{\"seq\":0,\"scope\":\"a\",\"name\":\"b\"}\nnot json\n")
            .expect_err("must fail");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n{\"seq\":3,\"scope\":\"s\",\"name\":\"n\"}\n\n";
        let back = parse_jsonl(text).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].seq, 3);
        assert!(back[0].fields.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn sink_collects_only_while_active() {
        // Process-global sink: this is the only test in this binary
        // that starts/finishes it, so no cross-test interference.
        emit("test", "before", &[]);
        assert!(start());
        assert!(active());
        emit("test", "during", &[("i", 1usize.into())]);
        emit("test", "during", &[("i", 2usize.into())]);
        let events = finish();
        assert!(!active());
        emit("test", "after", &[]);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.name == "during"));
        assert!(events[0].seq < events[1].seq, "seq is monotonic");
        assert!(finish().is_empty(), "buffer drained");
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_sink_is_inert() {
        assert!(!start());
        emit("test", "during", &[]);
        assert!(!active());
        assert!(finish().is_empty());
    }
}
