//! Order-independent rollups of a trace (`rem obs summarize`).
//!
//! A summary is computed from the event *set*, never the interleaving,
//! so it is identical at any worker-thread count — the trace-level
//! determinism contract campaigns are tested against.

use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate view of a campaign trace.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total events.
    pub total_events: u64,
    /// Event counts by `scope/name`, canonically ordered.
    pub by_kind: BTreeMap<String, u64>,
    /// Distinct scopes observed.
    pub scopes: Vec<String>,
}

impl TraceSummary {
    /// Count for one `scope/name` kind (0 when absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} events across {} scope(s)", self.total_events, self.scopes.len())?;
        for (kind, n) in &self.by_kind {
            writeln!(f, "  {kind:<40} {n:>8}")?;
        }
        Ok(())
    }
}

/// Summarizes a trace: total, per-kind counts, distinct scopes.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut scopes: Vec<String> = Vec::new();
    for e in events {
        *by_kind.entry(e.kind()).or_insert(0) += 1;
        if !scopes.contains(&e.scope) {
            scopes.push(e.scope.clone());
        }
    }
    scopes.sort();
    TraceSummary { total_events: events.len() as u64, by_kind, scopes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_jsonl;

    #[test]
    fn summary_counts_by_kind_and_ignores_order() {
        let text = "{\"seq\":0,\"scope\":\"exec\",\"name\":\"trial\"}\n\
                    {\"seq\":2,\"scope\":\"core\",\"name\":\"wave\"}\n\
                    {\"seq\":1,\"scope\":\"exec\",\"name\":\"trial\"}\n";
        let mut events = parse_jsonl(text).expect("parse");
        let a = summarize(&events);
        events.reverse();
        let b = summarize(&events);
        assert_eq!(a, b, "summaries are order-independent");
        assert_eq!(a.total_events, 3);
        assert_eq!(a.count("exec/trial"), 2);
        assert_eq!(a.count("core/wave"), 1);
        assert_eq!(a.count("missing/kind"), 0);
        assert_eq!(a.scopes, vec!["core".to_string(), "exec".to_string()]);
        let shown = a.to_string();
        assert!(shown.contains("exec/trial"));
        assert!(shown.contains("3 events"));
    }
}
