#![warn(missing_docs)]

//! # rem-obs
//!
//! Zero-cost-when-disabled observability for the REM reproduction:
//! structured tracing, a metrics registry and reproducible run
//! manifests.
//!
//! The paper's evaluation (§7) attributes end-to-end BLER/latency
//! deltas to per-stage behaviour — estimation error, Doppler/ICI,
//! handover events. Doing that on a grown system needs the same
//! introspection a training/inference stack has, without perturbing
//! the hot paths whose determinism the whole replay methodology rests
//! on. This crate follows the `log`-crate model:
//!
//! * Every instrumented crate depends on `rem-obs` **unconditionally**
//!   and calls its probes freely.
//! * Without the `enabled` cargo feature (the default), every probe is
//!   an empty `#[inline(always)]` function — the optimizer deletes the
//!   call and its argument construction, so release builds carry zero
//!   overhead.
//! * The top of the dependency graph (the `rem` CLI, feature `obs`,
//!   on by default there) turns `rem-obs/enabled` on; cargo feature
//!   unification then lights the probes up across the whole workspace
//!   for that build.
//!
//! Three subsystems:
//!
//! * [`trace`] — structured events ordered by a monotonic sequence
//!   counter (never wall-clock), collected in memory while a sink is
//!   active and drained to JSONL per campaign;
//! * [`metrics`] — process-wide counters and histograms (trials
//!   run/retried/quarantined, per-stage DSP timings, checkpoint IO),
//!   with deterministic snapshots and a Prometheus-style text dump;
//! * [`manifest`] — a [`manifest::RunManifest`] written next to every
//!   checkpoint/bench artifact: campaign fingerprint, seeds, thread
//!   count, chaos/fault config, DSP plan-cache mode, git SHA and the
//!   result hash, so any `--hash` value is reproducible from its
//!   manifest alone (`rem rerun <manifest>`).
//!
//! ## Determinism contract
//!
//! Probes **observe, never influence**: they touch no RNG, no trial
//! value, no aggregation order. A build with probes enabled produces
//! bit-identical campaign hashes to a build without them. Trace events
//! carry only deterministic payloads (trial indices, seeds, counts);
//! wall-clock durations go to metrics histograms, which live beside —
//! never inside — hashed results. Counter totals are order-independent
//! sums, so metrics snapshots are identical at any worker-thread
//! count; event *order* within a trace is only guaranteed at one
//! worker thread (the event *set*, and therefore every summary count,
//! is thread-count invariant).

pub mod manifest;
pub mod metrics;
pub mod summary;
pub mod trace;

pub use manifest::RunManifest;
pub use metrics::{MetricsSnapshot, Span};
pub use summary::TraceSummary;
pub use trace::TraceEvent;

/// True when the crate was compiled with the `enabled` feature, i.e.
/// the probes are live in this build.
#[inline(always)]
pub const fn compiled_in() -> bool {
    cfg!(feature = "enabled")
}
