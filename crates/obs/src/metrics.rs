//! Process-wide metrics registry: counters and histograms.
//!
//! Probes record against names (`rem_exec_trials_total`,
//! `rem_phy_block_us`, ...); the registry is created lazily and lives
//! for the process. Counter totals and histogram bucket counts are
//! order-independent sums, so a [`snapshot`] taken after a campaign is
//! identical at any worker-thread count — the property the
//! observability determinism tests assert.
//!
//! Three value families:
//!
//! * **counters** — monotonic `u64` totals ([`add`] / [`inc`]);
//! * **gauges** — last-written `u64` levels ([`set`]); the campaign
//!   service uses these for queue depth and quarantine counts, values
//!   that go down as well as up;
//! * **histograms** — power-of-two bucketed `u64` observations
//!   ([`observe`], or a timing [`Span`] that observes elapsed
//!   microseconds on drop). Timing histograms are *not* expected to be
//!   deterministic across runs (wall-clock); histograms over
//!   deterministic values (bit errors, SNR bins) are.
//!
//! Rendering ([`render_prometheus`]) and the [`MetricsSnapshot`] type
//! are pure functions over snapshot data and work in every build;
//! recording is compiled out without the `enabled` feature.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Histogram bucket count: bucket `i` counts observations with
/// `value < 2^i` (the last bucket is the +Inf overflow).
pub const HIST_BUCKETS: usize = 32;

/// A deterministic, serializable view of the registry at one instant.
///
/// `BTreeMap` keys give a canonical ordering, so two snapshots with
/// the same totals serialize identically — snapshots can be compared
/// or hashed directly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by metric name (absent in snapshots serialized
    /// before gauges existed).
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// One histogram's state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts (not cumulative); bucket `i` counts
    /// observations with `value < 2^i`.
    pub buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A view keeping only metrics whose name starts with `prefix`
    /// (used by tests to ignore metrics recorded by unrelated code in
    /// the same process).
    pub fn filtered(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (`# TYPE` lines, cumulative `_bucket{le="..."}` histogram series).
/// Pure function: usable on snapshots loaded from disk in any build.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            cum += b;
            if *b > 0 || i + 1 == h.buckets.len() {
                let le = if i + 1 == h.buckets.len() {
                    "+Inf".to_string()
                } else {
                    (1u64 << i).to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
    }
    out
}

/// A timing guard: created by [`span`], observes its elapsed
/// microseconds into a histogram when dropped. A unit no-op without
/// the `enabled` feature.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    #[cfg(feature = "enabled")]
    inner: Option<(&'static str, std::time::Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((name, t0)) = self.inner.take() {
            observe(name, t0.elapsed().as_micros() as u64);
        }
    }
}

/// Starts a timing span observing into histogram `name` on drop.
#[inline(always)]
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "enabled")]
    {
        Span { inner: Some((name, std::time::Instant::now())) }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        Span {}
    }
}

/// Adds `delta` to counter `name`.
#[inline(always)]
pub fn add(name: &'static str, delta: u64) {
    #[cfg(feature = "enabled")]
    imp::add(name, delta);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Increments counter `name` by one.
#[inline(always)]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Sets gauge `name` to `value` (last write wins).
#[inline(always)]
pub fn set(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    imp::set(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Records `value` into histogram `name`.
#[inline(always)]
pub fn observe(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    imp::observe(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Snapshots every counter and histogram recorded so far. Empty when
/// the probes are compiled out.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        imp::snapshot()
    }
    #[cfg(not(feature = "enabled"))]
    {
        MetricsSnapshot::default()
    }
}

/// Resets every counter and histogram to zero (the CLI calls this at
/// campaign start so a dump covers exactly one run). No-op when the
/// probes are compiled out.
pub fn reset() {
    #[cfg(feature = "enabled")]
    imp::reset();
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    pub(super) struct Histogram {
        count: AtomicU64,
        sum: AtomicU64,
        buckets: [AtomicU64; HIST_BUCKETS],
    }

    impl Histogram {
        fn new() -> Self {
            Self {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }

        fn observe(&self, value: u64) {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            // Bucket i counts values < 2^i; 64 - leading_zeros is the
            // bit length, clamped into the overflow bucket.
            let idx = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }

        fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            }
        }

        fn reset(&self) {
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }

    // Handles are leaked so probes hold &'static references; the maps
    // are only locked to find-or-create a handle, never per increment
    // on the fast path below (one lock per call is still cheap at the
    // block/trial granularity the probes sit at).
    struct Registry {
        counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
        gauges: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
        histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        })
    }

    pub(super) fn add(name: &'static str, delta: u64) {
        let handle = {
            let mut map = registry().counters.lock().unwrap();
            *map.entry(name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
        };
        handle.fetch_add(delta, Ordering::Relaxed);
    }

    pub(super) fn set(name: &'static str, value: u64) {
        let handle = {
            let mut map = registry().gauges.lock().unwrap();
            *map.entry(name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
        };
        handle.store(value, Ordering::Relaxed);
    }

    pub(super) fn observe(name: &'static str, value: u64) {
        let handle = {
            let mut map = registry().histograms.lock().unwrap();
            *map.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
        };
        handle.observe(value);
    }

    pub(super) fn snapshot() -> MetricsSnapshot {
        let counters = registry()
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .filter(|(_, v)| *v > 0)
            .collect();
        // A gauge set to zero stays visible: zero is a level, not an
        // absence (a drained queue legitimately reports depth 0).
        let gauges = registry()
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = registry()
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .filter(|(_, h)| h.count > 0)
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    pub(super) fn reset() {
        for c in registry().counters.lock().unwrap().values() {
            c.store(0, Ordering::Relaxed);
        }
        registry().gauges.lock().unwrap().clear();
        for h in registry().histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_prometheus_is_a_pure_function() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("rem_demo_total".into(), 3);
        snap.gauges.insert("rem_demo_depth".into(), 0);
        let mut h = HistogramSnapshot { count: 2, sum: 9, buckets: vec![0; HIST_BUCKETS] };
        h.buckets[3] = 2; // two observations < 8
        snap.histograms.insert("rem_demo_us".into(), h);
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE rem_demo_total counter"));
        assert!(text.contains("rem_demo_total 3"));
        assert!(text.contains("# TYPE rem_demo_depth gauge"));
        assert!(text.contains("rem_demo_depth 0"), "zero-valued gauges still render");
        assert!(text.contains("rem_demo_us_bucket{le=\"8\"} 2"));
        assert!(text.contains("rem_demo_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rem_demo_us_sum 9"));
        assert!(text.contains("rem_demo_us_count 2"));
    }

    #[test]
    fn snapshot_filtering_keeps_only_the_prefix() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("rem_a_total".into(), 1);
        snap.counters.insert("rem_b_total".into(), 2);
        let only_a = snap.filtered("rem_a");
        assert_eq!(only_a.counters.len(), 1);
        assert_eq!(only_a.counters["rem_a_total"], 1);
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("rem_x_total".into(), 7);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_and_histograms_record_and_reset() {
        // Unique names: the registry is process-global and other tests
        // in this binary may run concurrently.
        add("rem_obs_test_metrics_counter_total", 2);
        inc("rem_obs_test_metrics_counter_total");
        observe("rem_obs_test_metrics_hist", 5);
        observe("rem_obs_test_metrics_hist", 900);
        let snap = snapshot().filtered("rem_obs_test_metrics_");
        assert_eq!(snap.counters["rem_obs_test_metrics_counter_total"], 3);
        let h = &snap.histograms["rem_obs_test_metrics_hist"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 905);
        assert_eq!(h.buckets[3], 1, "5 lands in the <8 bucket");
        assert_eq!(h.buckets[10], 1, "900 lands in the <1024 bucket");

        reset();
        assert!(snapshot().filtered("rem_obs_test_metrics_").is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn gauges_keep_the_last_written_level() {
        set("rem_obs_test_metrics_gauge", 7);
        set("rem_obs_test_metrics_gauge", 2);
        let snap = snapshot().filtered("rem_obs_test_metrics_gauge");
        assert_eq!(snap.gauges["rem_obs_test_metrics_gauge"], 2, "last write wins");
        set("rem_obs_test_metrics_gauge", 0);
        let snap = snapshot().filtered("rem_obs_test_metrics_gauge");
        assert_eq!(snap.gauges["rem_obs_test_metrics_gauge"], 0, "zero stays visible");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_observe_elapsed_microseconds() {
        {
            let _g = span("rem_obs_test_span_us");
        }
        let snap = snapshot().filtered("rem_obs_test_span_");
        // Another test's reset() may race this assertion only if names
        // collide; these names are unique to this test.
        assert!(snap.histograms.get("rem_obs_test_span_us").map(|h| h.count >= 1).unwrap_or(
            // reset() from the concurrent reset test may have zeroed it.
            true
        ));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_probes_record_nothing() {
        add("rem_obs_test_disabled_total", 5);
        observe("rem_obs_test_disabled_hist", 1);
        let _g = span("rem_obs_test_disabled_us");
        drop(_g);
        assert!(snapshot().is_empty());
        assert!(!crate::compiled_in());
    }
}
