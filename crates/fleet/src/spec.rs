//! The fleet workload description: corridor geometry, spawn schedule
//! and radio policy knobs, plus the execution hints (shard count) that
//! never move the result.

use serde::{Deserialize, Serialize};

/// One fleet campaign: a bidirectional rail corridor, a spawn schedule
/// of trains and the simulated window to run them for.
///
/// The spec is the *identity* of a run — [`fingerprint`] digests its
/// canonical JSON — while shard and thread counts are execution knobs:
/// the engine produces bit-identical results for every decomposition,
/// so `shards` here is only the default the CLI starts from.
///
/// [`fingerprint`]: FleetSpec::fingerprint
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Trains in the spawn schedule. Odd-numbered trains run the
    /// corridor in the opposite direction, so both ends stay loaded.
    pub trains: u32,
    /// Passengers with an active session per train. Per-UE state is
    /// only touched at handover events, so this scales the signaling
    /// load, not the mobility hot loop.
    pub ues_per_train: u32,
    /// Corridor length (km). Cells are laid out uniformly along it.
    pub corridor_km: f64,
    /// Site spacing (m) of the uniform corridor deployment.
    pub cell_spacing_m: f64,
    /// Nominal line speed (km/h).
    pub speed_kmh: f64,
    /// Per-train speed jitter as a fraction of the line speed: train
    /// speeds are drawn once at spawn from
    /// `speed_kmh * (1 ± speed_jitter)`.
    pub speed_jitter: f64,
    /// Departure headway (s) between consecutive trains at each
    /// corridor end.
    pub headway_s: f64,
    /// Simulated window (s).
    pub duration_s: f64,
    /// Fleet epoch (ms) — the cross-shard exchange cadence. Coarser
    /// than the single-train simulator's 20 ms tick: fleet-scale
    /// questions are about event *rates*, not per-report timing.
    pub epoch_ms: f64,
    /// Base seed. Every stochastic draw is a stateless hash of
    /// `(seed, train, epoch, purpose)`, never a sequential stream, so
    /// the schedule of draws cannot depend on shard or thread count.
    pub seed: u64,
    /// Default shard count for the CLI / scenario lowering. Execution
    /// hint only: results are bit-identical for every value.
    pub shards: u32,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            trains: 64,
            ues_per_train: 100,
            corridor_km: 60.0,
            cell_spacing_m: 1_000.0,
            speed_kmh: 300.0,
            speed_jitter: 0.1,
            headway_s: 10.0,
            duration_s: 120.0,
            epoch_ms: 100.0,
            seed: 7,
            shards: 4,
        }
    }
}

impl FleetSpec {
    /// Number of cells in the corridor deployment (at least 2, so a
    /// handover is always possible).
    pub fn n_cells(&self) -> u32 {
        let n = (self.corridor_km * 1_000.0 / self.cell_spacing_m).ceil() as u32;
        n.max(2)
    }

    /// Epochs in the simulated window (at least 1).
    pub fn n_epochs(&self) -> u32 {
        let n = (self.duration_s * 1_000.0 / self.epoch_ms).ceil() as u32;
        n.max(1)
    }

    /// Total UEs across the schedule.
    pub fn total_ues(&self) -> u64 {
        self.trains as u64 * self.ues_per_train as u64
    }

    /// Structural validation with field paths, mirroring the scenario
    /// layer's style: an invalid spec never reaches the engine.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |path: &str, v: f64| -> Result<(), String> {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("fleet.{path}: {v} must be finite and > 0"));
            }
            Ok(())
        };
        if self.trains == 0 {
            return Err("fleet.trains: must be >= 1".into());
        }
        if self.ues_per_train == 0 {
            return Err("fleet.ues_per_train: must be >= 1".into());
        }
        if self.shards == 0 {
            return Err("fleet.shards: must be >= 1".into());
        }
        pos("corridor_km", self.corridor_km)?;
        pos("cell_spacing_m", self.cell_spacing_m)?;
        pos("speed_kmh", self.speed_kmh)?;
        pos("headway_s", self.headway_s)?;
        pos("duration_s", self.duration_s)?;
        pos("epoch_ms", self.epoch_ms)?;
        if !self.speed_jitter.is_finite() || !(0.0..1.0).contains(&self.speed_jitter) {
            return Err(format!(
                "fleet.speed_jitter: {} must be in [0, 1)",
                self.speed_jitter
            ));
        }
        Ok(())
    }

    /// Canonical campaign fingerprint: hand-rolled JSON of the spec in
    /// declaration order, the same string run manifests store in
    /// `spec_json` so `rem rerun` can replay a fleet run from the
    /// manifest alone. Floats use Rust's shortest round-trip `Display`,
    /// so `serde_json::from_str` recovers the spec exactly.
    pub fn fingerprint(&self) -> String {
        format!(
            concat!(
                "{{\"trains\":{},\"ues_per_train\":{},\"corridor_km\":{},",
                "\"cell_spacing_m\":{},\"speed_kmh\":{},\"speed_jitter\":{},",
                "\"headway_s\":{},\"duration_s\":{},\"epoch_ms\":{},",
                "\"seed\":{},\"shards\":{}}}"
            ),
            self.trains,
            self.ues_per_train,
            self.corridor_km,
            self.cell_spacing_m,
            self.speed_kmh,
            self.speed_jitter,
            self.headway_s,
            self.duration_s,
            self.epoch_ms,
            self.seed,
            self.shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FleetSpec::default().validate().expect("default spec is valid");
    }

    #[test]
    fn geometry_floors_hold() {
        let spec = FleetSpec {
            corridor_km: 0.1,
            duration_s: 0.01,
            ..FleetSpec::default()
        };
        assert_eq!(spec.n_cells(), 2, "a corridor always has a handover target");
        assert_eq!(spec.n_epochs(), 1);
    }

    #[test]
    fn validation_reports_dotted_paths() {
        let spec = FleetSpec { trains: 0, ..FleetSpec::default() };
        let err = spec.validate().expect_err("zero trains must fail");
        assert!(err.contains("fleet.trains"), "{err}");
        let spec = FleetSpec { speed_jitter: 1.5, ..FleetSpec::default() };
        let err = spec.validate().expect_err("jitter >= 1 must fail");
        assert!(err.contains("fleet.speed_jitter"), "{err}");
    }

    #[test]
    fn fingerprint_round_trips_through_serde() {
        let spec = FleetSpec { trains: 123, seed: 99, ..FleetSpec::default() };
        let json = spec.fingerprint();
        let back: FleetSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, spec);
    }
}
