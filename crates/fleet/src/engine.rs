//! The fleet engine: deterministic sharded epoch loop.
//!
//! Each epoch has three phases:
//!
//! 1. **Spawn** (serial): trains whose departure slot arrived are
//!    inserted into the shard owning their entry cell, in train-id
//!    order.
//! 2. **Advance** (parallel): every shard sweeps its residents on the
//!    `rem-exec` pool — `par_map(threads, shards, ..)` — producing a
//!    private intent list. `par_map` joins its workers, so the epoch
//!    barrier is the call returning.
//! 3. **Exchange** (serial): all intent lists are concatenated, sorted
//!    by train id, and applied one by one — admission control,
//!    per-seat UE outcome draws, residency migration between shards,
//!    despawn record capture.
//!
//! Why this is bit-identical for every shard and thread count: phase 2
//! computes only pure per-train functions of `(spec, carried state,
//! epoch)` (see [`crate::shard`]), so *what* each train asks for never
//! depends on the decomposition; and phase 3 — the only place where
//! trains interact, through admission counters — runs serially in
//! canonical train-id order, so *who wins* never does either.

use crate::ids::{CellId, TrainId, UeId};
use crate::metrics::{FleetReport, FleetTiming, TrainRecord};
use crate::params::Params;
use crate::rng::{unit, Stream};
use crate::shard::{Intent, IntentKind, Shard, TrainState};
use crate::spec::FleetSpec;
use std::sync::Mutex;
use std::time::Instant;

/// Execution knobs of one run. Neither moves the result — only the
/// wall clock.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Shard count (`0` = the spec's default).
    pub shards: u32,
    /// Worker threads for the advance phase (`0` = all cores).
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { shards: 0, threads: 0 }
    }
}

/// Runs a fleet campaign to completion. Returns the shard/thread
///-invariant [`FleetReport`] plus this run's [`FleetTiming`].
pub fn run_fleet(spec: &FleetSpec, opts: RunOptions) -> Result<(FleetReport, FleetTiming), String> {
    spec.validate()?;
    let p = Params::from_spec(spec);
    let n_shards = if opts.shards == 0 { spec.shards } else { opts.shards } as usize;
    let n_shards = n_shards.min(p.n_cells as usize).max(1);
    let n_epochs = spec.n_epochs();

    // Contiguous cell ranges, remainder spread over the first shards.
    let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(n_shards);
    let base = p.n_cells as usize / n_shards;
    let extra = p.n_cells as usize % n_shards;
    let mut lo = 0u32;
    let mut shard_of_cell = vec![0u32; p.n_cells as usize];
    for s in 0..n_shards {
        let width = (base + usize::from(s < extra)) as u32;
        let hi = lo + width;
        for c in lo..hi {
            shard_of_cell[c as usize] = s as u32;
        }
        shards.push(Mutex::new(Shard::new(lo, hi, spec.ues_per_train)));
        lo = hi;
    }

    // Departure schedule: train i leaves end (i % 2) in slot i / 2.
    let spawn_epoch = |i: u32| -> u64 {
        (((i / 2) as f64 * spec.headway_s) / p.dt_s).floor() as u64
    };
    let speed_mps = spec.speed_kmh / 3.6;
    let spawn_state = |i: u32| -> TrainState {
        let jitter = 2.0 * unit(p.seed, i as u64, 0, Stream::Spawn) - 1.0;
        let v = speed_mps * (1.0 + spec.speed_jitter * jitter);
        if i % 2 == 0 {
            TrainState::spawn(TrainId(i), 0.0, v, CellId(0), spec.ues_per_train)
        } else {
            let last = CellId(p.n_cells - 1);
            TrainState::spawn(TrainId(i), p.corridor_m, -v, last, spec.ues_per_train)
        }
    };

    // Where each train lives: shard index, SPAWNING before its slot,
    // FINISHED after despawn.
    const SPAWNING: u32 = u32::MAX;
    const FINISHED: u32 = u32::MAX - 1;
    let mut locus = vec![SPAWNING; spec.trains as usize];
    let mut next_spawn: u32 = 0;

    let mut finished: Vec<TrainRecord> = Vec::new();
    let mut admitted = vec![0u32; p.n_cells as usize];
    let mut touched_cells: Vec<u32> = Vec::new();
    let mut timing = FleetTiming::default();
    let wall_start = Instant::now();

    let mut totals = Totals::default();

    for epoch in 0..n_epochs {
        let t_serial = Instant::now();
        // Phase 1: spawns, in train-id order (slots are nondecreasing
        // in the id, so a cursor suffices).
        while next_spawn < spec.trains && spawn_epoch(next_spawn) <= epoch as u64 {
            let st = spawn_state(next_spawn);
            let shard = shard_of_cell[st.serving.0 as usize];
            shards[shard as usize].lock().expect("shard lock").insert(st);
            locus[next_spawn as usize] = shard;
            next_spawn += 1;
        }
        timing.exchange_s += t_serial.elapsed().as_secs_f64();

        // Phase 2: parallel shard advance. `par_map` reduces in shard
        // order and joins all workers — the epoch barrier.
        let advanced: Vec<(Vec<Intent>, f64)> =
            rem_exec::par_map(opts.threads, shards.len(), |s| {
                let t0 = Instant::now();
                let mut out = Vec::new();
                shards[s].lock().expect("shard lock").advance(epoch, &p, &mut out);
                (out, t0.elapsed().as_secs_f64())
            });
        let mut epoch_max = 0.0f64;
        for (_, secs) in &advanced {
            timing.busy_s += secs;
            epoch_max = epoch_max.max(*secs);
        }
        timing.critical_path_s += epoch_max;

        // Phase 3: canonical-order exchange.
        let t_serial = Instant::now();
        for &c in &touched_cells {
            admitted[c as usize] = 0;
        }
        touched_cells.clear();
        let mut intents: Vec<Intent> = advanced.into_iter().flat_map(|(v, _)| v).collect();
        intents.sort_unstable_by_key(|x| x.train.0);

        for intent in intents {
            let train = intent.train;
            let src = locus[train.0 as usize];
            debug_assert!(src != SPAWNING && src != FINISHED);
            match intent.kind {
                IntentKind::Despawn => {
                    let st = shards[src as usize].lock().expect("shard lock").remove(train);
                    finished.push(record_of(&st));
                    locus[train.0 as usize] = FINISHED;
                }
                IntentKind::Handover => {
                    let cell = intent.target.0 as usize;
                    if admitted[cell] >= p.admission_per_epoch {
                        shards[src as usize].lock().expect("shard lock").deny(train);
                        totals.denied += 1;
                        continue;
                    }
                    if admitted[cell] == 0 {
                        touched_cells.push(intent.target.0);
                    }
                    admitted[cell] += 1;
                    migrate(
                        &shards,
                        &shard_of_cell,
                        &mut locus,
                        train,
                        src,
                        intent.target,
                        &p,
                        epoch,
                        IntentKind::Handover,
                    );
                    totals.handovers += 1;
                }
                IntentKind::Reattach => {
                    // Forced re-establishment: no admission gate, a
                    // costlier per-UE storm.
                    migrate(
                        &shards,
                        &shard_of_cell,
                        &mut locus,
                        train,
                        src,
                        intent.target,
                        &p,
                        epoch,
                        IntentKind::Reattach,
                    );
                    totals.rlfs += 1;
                }
            }
        }
        timing.exchange_s += t_serial.elapsed().as_secs_f64();
    }

    // Terminal records: still-resident trains (per shard, then sorted
    // globally), despawned trains, and never-spawned trains.
    for shard in &shards {
        for st in shard.lock().expect("shard lock").drain_states() {
            finished.push(record_of(&st));
        }
    }
    for i in 0..spec.trains {
        if locus[i as usize] == SPAWNING && spawn_epoch(i) >= n_epochs as u64 {
            let st = spawn_state(i);
            finished.push(record_of(&st));
        }
    }
    finished.sort_unstable_by_key(|r| r.train);
    debug_assert_eq!(finished.len(), spec.trains as usize);

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut ue_events = 0u64;
    let mut ue_failures = 0u64;
    for r in &finished {
        digest = r.fold(digest);
        ue_events += r.ue_events;
        ue_failures += r.ue_failures;
    }

    let report = FleetReport {
        trains: spec.trains,
        ues: spec.total_ues(),
        cells: p.n_cells,
        epochs: n_epochs,
        sim_window_ms: (spec.duration_s * 1_000.0).round() as u64,
        handovers: totals.handovers,
        denied: totals.denied,
        rlfs: totals.rlfs,
        ue_events,
        ue_failures,
        train_digest: digest,
    };
    timing.wall_s = wall_start.elapsed().as_secs_f64();

    rem_obs::metrics::inc("rem_fleet_runs_total");
    rem_obs::metrics::add("rem_fleet_epochs_total", n_epochs as u64);
    rem_obs::metrics::add("rem_fleet_trains_total", spec.trains as u64);
    rem_obs::metrics::add("rem_fleet_handovers_total", report.handovers);
    rem_obs::metrics::add("rem_fleet_denied_total", report.denied);
    rem_obs::metrics::add("rem_fleet_rlfs_total", report.rlfs);
    rem_obs::metrics::add("rem_fleet_ue_events_total", report.ue_events);

    Ok((report, timing))
}

/// Order-free totals accumulated during the exchange phase (integers
/// only — float accumulation would reintroduce order sensitivity).
#[derive(Default)]
struct Totals {
    handovers: u64,
    denied: u64,
    rlfs: u64,
}

/// Moves a train to `target`, drawing the per-seat signaling outcomes
/// for the event kind. Runs in the serial exchange phase.
#[allow(clippy::too_many_arguments)]
fn migrate(
    shards: &[Mutex<Shard>],
    shard_of_cell: &[u32],
    locus: &mut [u32],
    train: TrainId,
    src: u32,
    target: CellId,
    p: &Params,
    epoch: u32,
    kind: IntentKind,
) {
    let mut st = shards[src as usize].lock().expect("shard lock").remove(train);
    st.serving = target;
    let p_fail = match kind {
        IntentKind::Handover => {
            st.handovers += 1;
            p.p_ue_ho_fail
        }
        // Reattaches reset the trigger state the outage invalidated.
        IntentKind::Reattach | IntentKind::Despawn => {
            st.ttt_epochs = 0;
            st.rlf_epochs = 0;
            p.p_ue_reattach_fail
        }
    };
    let ues = p.ues_per_train;
    st.ue_events += ues as u64;
    for seat in 0..ues {
        let ue = UeId::of(train, seat, ues);
        if unit(p.seed, ue.0, epoch as u64, Stream::UeOutcome) < p_fail {
            st.ue_failures += 1;
            let slot = seat as usize;
            st.ue_fail[slot] = st.ue_fail[slot].saturating_add(1);
        }
    }
    let dst = shard_of_cell[target.0 as usize];
    shards[dst as usize].lock().expect("shard lock").insert(st);
    locus[train.0 as usize] = dst;
}

/// A train's terminal digest record.
fn record_of(st: &TrainState) -> TrainRecord {
    TrainRecord {
        train: st.id.0,
        final_cell: st.serving.0,
        final_pos_mm: (st.pos_m * 1_000.0).round() as i64,
        handovers: st.handovers,
        denied: st.denied,
        rlfs: st.rlfs,
        ue_events: st.ue_events,
        ue_failures: st.ue_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetSpec {
        FleetSpec {
            trains: 24,
            ues_per_train: 8,
            corridor_km: 12.0,
            duration_s: 60.0,
            headway_s: 4.0,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn reports_are_bit_identical_across_shard_and_thread_counts() {
        let spec = small_spec();
        let baseline =
            run_fleet(&spec, RunOptions { shards: 1, threads: 1 }).expect("run").0;
        for shards in [2, 3, 4, 7] {
            for threads in [1, 2, 4] {
                let (report, _) =
                    run_fleet(&spec, RunOptions { shards, threads }).expect("run");
                assert_eq!(
                    report, baseline,
                    "shards={shards} threads={threads} diverged from 1/1"
                );
            }
        }
    }

    #[test]
    fn the_fleet_actually_moves_and_hands_over() {
        let (report, timing) = run_fleet(&small_spec(), RunOptions::default()).expect("run");
        assert!(report.handovers > 0, "a 60 s corridor run must hand over: {report:?}");
        assert!(report.ue_events > 0);
        assert!(timing.wall_s > 0.0);
        assert!(timing.busy_s >= timing.critical_path_s);
    }

    #[test]
    fn seeds_move_the_digest() {
        let spec = small_spec();
        let with_other_seed = FleetSpec { seed: spec.seed + 1, ..spec.clone() };
        let a = run_fleet(&spec, RunOptions::default()).expect("run").0;
        let b = run_fleet(&with_other_seed, RunOptions::default()).expect("run").0;
        assert_ne!(a.train_digest, b.train_digest);
    }

    #[test]
    fn shard_count_is_clamped_to_the_cell_count() {
        let spec = FleetSpec {
            trains: 4,
            corridor_km: 2.0, // 2 cells
            duration_s: 5.0,
            ..FleetSpec::default()
        };
        let (report, _) =
            run_fleet(&spec, RunOptions { shards: 64, threads: 1 }).expect("run");
        assert_eq!(report.cells, 2);
    }

    #[test]
    fn invalid_specs_are_rejected_before_running() {
        let spec = FleetSpec { trains: 0, ..FleetSpec::default() };
        let err = run_fleet(&spec, RunOptions::default()).expect_err("must reject");
        assert!(err.contains("fleet.trains"), "{err}");
    }
}
