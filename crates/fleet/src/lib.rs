#![deny(missing_docs)]

//! # rem-fleet
//!
//! Fleet-scale corridor simulation for the REM reproduction: thousands
//! of trains and millions of UE contexts over a sharded rail corridor,
//! bit-identical for every shard and thread count.
//!
//! The paper's reliability argument is *network-wide* — missed and
//! delayed handovers matter because they compound across a corridor
//! full of trains — but `rem-sim` replays one train at 20 ms fidelity.
//! This crate trades per-report fidelity for scale: a 100 ms epoch,
//! struct-of-arrays state behind interned [`CellId`]/[`TrainId`]/
//! [`UeId`], per-cell batched measurement evaluation, and geographic
//! shards that exchange handover intents only at epoch barriers.
//!
//! ## Determinism
//!
//! Two structural rules make the result independent of the
//! decomposition, extending `rem-exec`'s canonical-order contract to
//! stateful sharded simulation:
//!
//! - **Stateless draws.** Every stochastic value is a pure hash of
//!   `(seed, entity, epoch, purpose)` ([`rng`]) — no sequential RNG
//!   stream exists whose consumption order a schedule could perturb.
//! - **Canonical-order exchange.** Shards only *propose* events; all
//!   cross-train interaction (admission control, migration) happens in
//!   a serial barrier phase sorted by train id ([`engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use rem_fleet::{run_fleet, FleetSpec, RunOptions};
//!
//! let spec = FleetSpec {
//!     trains: 8,
//!     ues_per_train: 10,
//!     corridor_km: 6.0,
//!     duration_s: 30.0,
//!     headway_s: 3.0,
//!     ..FleetSpec::default()
//! };
//! // Shard and thread counts are execution knobs, not identity:
//! let (serial, _) = run_fleet(&spec, RunOptions { shards: 1, threads: 1 }).unwrap();
//! let (sharded, _) = run_fleet(&spec, RunOptions { shards: 4, threads: 2 }).unwrap();
//! assert_eq!(serial.result_hash(), sharded.result_hash());
//! assert!(serial.handovers > 0);
//! ```

pub mod engine;
pub mod ids;
pub mod metrics;
pub mod params;
pub mod rng;
pub mod shard;
pub mod spec;

pub use engine::{run_fleet, RunOptions};
pub use ids::{CellId, TrainId, UeId};
pub use metrics::{fnv1a64, FleetReport, FleetTiming, TrainRecord};
pub use params::Params;
pub use shard::{Intent, IntentKind, Shard, TrainState};
pub use spec::FleetSpec;
