//! Derived, engine-internal constants of one fleet run.
//!
//! [`Params`] is compiled once from a [`crate::FleetSpec`] and then
//! shared read-only across every shard and thread: everything the hot
//! loop needs, pre-resolved (epoch counts, thresholds, corridor
//! geometry), so the per-train work touches no `f64::ceil` or division
//! it does not have to.
//!
//! The radio constants echo the single-train simulator's semantics at
//! fleet fidelity: a UMa-style log-distance pathloss, log-normal
//! shadowing, a 3 dB / 400 ms A3 rule and a 1 s radio-link-failure
//! timer. They are constants, not knobs — the fleet engine answers
//! *rate and scale* questions; per-parameter studies belong to
//! `rem-sim`'s 20 ms replay.

use crate::ids::CellId;
use crate::spec::FleetSpec;

/// A3 hysteresis (dB), matching the single-train simulator's A3 rule.
pub const HYST_DB: f64 = 3.0;
/// A3 time-to-trigger (ms).
pub const TTT_MS: f64 = 400.0;
/// Site transmit power (dBm).
pub const TX_DBM: f64 = 30.0;
/// Log-normal shadowing sigma (dB). Draws are per `(train, epoch)` and
/// uncorrelated across epochs — coarser than `rem-sim`'s distance-
/// correlated field, which is the fidelity the 100 ms epoch buys.
pub const SHADOW_SIGMA_DB: f64 = 4.0;
/// RSRP below which the radio-link-failure timer runs (dBm).
pub const RLF_DBM: f64 = -110.0;
/// Radio-link-failure timer (ms).
pub const RLF_TIMER_MS: f64 = 1_000.0;
/// Train-level handovers one cell can admit per epoch. Beyond this the
/// attempt is denied and the train re-arms its time-to-trigger — the
/// fleet-scale mechanism that turns clustered arrivals into the
/// signaling storms the paper's §2.3 measures.
pub const ADMISSION_PER_EPOCH: u32 = 8;
/// Per-UE probability that one handover's context transfer fails.
pub const P_UE_HO_FAIL: f64 = 0.01;
/// Per-UE failure probability during an RLF re-establishment storm.
pub const P_UE_REATTACH_FAIL: f64 = 0.05;

/// Pre-resolved run constants (see module docs).
#[derive(Clone, Debug)]
pub struct Params {
    /// Base seed for every stateless draw.
    pub seed: u64,
    /// UE contexts per train.
    pub ues_per_train: u32,
    /// Epoch length (s).
    pub dt_s: f64,
    /// Corridor length (m).
    pub corridor_m: f64,
    /// Site spacing (m).
    pub spacing_m: f64,
    /// Cells in the deployment.
    pub n_cells: u32,
    /// Site transmit power (dBm).
    pub tx_dbm: f64,
    /// Shadowing sigma (dB).
    pub shadow_sigma_db: f64,
    /// A3 hysteresis (dB).
    pub hyst_db: f64,
    /// A3 time-to-trigger, in whole epochs (at least 1).
    pub ttt_epochs: u16,
    /// RLF threshold (dBm).
    pub rlf_dbm: f64,
    /// RLF timer, in whole epochs (at least 1).
    pub rlf_epochs: u16,
    /// Per-cell handover admissions per epoch.
    pub admission_per_epoch: u32,
    /// Per-UE handover failure probability.
    pub p_ue_ho_fail: f64,
    /// Per-UE re-establishment failure probability.
    pub p_ue_reattach_fail: f64,
}

impl Params {
    /// Compiles a validated spec into run constants.
    pub fn from_spec(spec: &FleetSpec) -> Self {
        let epochs_of = |ms: f64| ((ms / spec.epoch_ms).ceil() as u16).max(1);
        Self {
            seed: spec.seed,
            ues_per_train: spec.ues_per_train,
            dt_s: spec.epoch_ms / 1_000.0,
            corridor_m: spec.corridor_km * 1_000.0,
            spacing_m: spec.cell_spacing_m,
            n_cells: spec.n_cells(),
            tx_dbm: TX_DBM,
            shadow_sigma_db: SHADOW_SIGMA_DB,
            hyst_db: HYST_DB,
            ttt_epochs: epochs_of(TTT_MS),
            rlf_dbm: RLF_DBM,
            rlf_epochs: epochs_of(RLF_TIMER_MS),
            admission_per_epoch: ADMISSION_PER_EPOCH,
            p_ue_ho_fail: P_UE_HO_FAIL,
            p_ue_reattach_fail: P_UE_REATTACH_FAIL,
        }
    }

    /// The cell whose site is nearest to `pos_m` (clamped to the
    /// corridor, so out-of-range positions still resolve).
    #[inline]
    pub fn cell_at(&self, pos_m: f64) -> CellId {
        let raw = (pos_m / self.spacing_m).floor();
        let clamped = raw.max(0.0).min((self.n_cells - 1) as f64);
        CellId(clamped as u32)
    }

    /// Site coordinate of a cell (m): sites sit at the centre of their
    /// coverage stripe.
    #[inline]
    pub fn cell_center_m(&self, cell: CellId) -> f64 {
        (cell.0 as f64 + 0.5) * self.spacing_m
    }

    /// UMa-style log-distance pathloss (dB), floored at 10 m so a
    /// train directly under a site stays finite.
    #[inline]
    pub fn pathloss_db(&self, d_m: f64) -> f64 {
        128.1 + 37.6 * (d_m.max(10.0) / 1_000.0).log10()
    }

    /// The geographically strongest neighbour of `serving` for a train
    /// at `pos_m`: the adjacent site on the train's side of the
    /// serving site, or the cell under the train when it has already
    /// outrun its serving stripe. `None` only at a corridor end with
    /// no further cell.
    #[inline]
    pub fn neighbor_of(&self, serving: CellId, pos_m: f64) -> Option<CellId> {
        let under = self.cell_at(pos_m);
        if under != serving {
            return Some(under);
        }
        let center = self.cell_center_m(serving);
        let step: i64 = if pos_m >= center { 1 } else { -1 };
        let cand = serving.0 as i64 + step;
        if (0..self.n_cells as i64).contains(&cand) {
            Some(CellId(cand as u32))
        } else {
            // At the corridor edge, try the inward side instead.
            let inward = serving.0 as i64 - step;
            (0..self.n_cells as i64).contains(&inward).then(|| CellId(inward as u32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::from_spec(&FleetSpec::default())
    }

    #[test]
    fn cell_lookup_clamps_to_the_corridor() {
        let p = params();
        assert_eq!(p.cell_at(-5.0), CellId(0));
        assert_eq!(p.cell_at(0.0), CellId(0));
        assert_eq!(p.cell_at(1_500.0), CellId(1));
        assert_eq!(p.cell_at(p.corridor_m + 100.0), CellId(p.n_cells - 1));
    }

    #[test]
    fn pathloss_grows_with_distance_and_stays_finite_at_zero() {
        let p = params();
        assert!(p.pathloss_db(0.0).is_finite());
        assert!(p.pathloss_db(1_500.0) > p.pathloss_db(500.0));
    }

    #[test]
    fn neighbor_follows_the_direction_of_travel() {
        let p = params();
        // Train past its serving site: next cell is the neighbour.
        assert_eq!(p.neighbor_of(CellId(3), 3_900.0), Some(CellId(4)));
        // Train behind its serving site: previous cell.
        assert_eq!(p.neighbor_of(CellId(3), 3_100.0), Some(CellId(2)));
        // Train that outran its stripe entirely: the cell under it.
        assert_eq!(p.neighbor_of(CellId(3), 5_600.0), Some(CellId(5)));
        // Corridor edge bends inward instead of returning None.
        assert_eq!(p.neighbor_of(CellId(0), 100.0), Some(CellId(1)));
        let last = CellId(p.n_cells - 1);
        let end = p.corridor_m - 10.0;
        assert_eq!(p.neighbor_of(last, end), Some(CellId(p.n_cells - 2)));
    }

    #[test]
    fn timer_conversion_rounds_up_and_floors_at_one_epoch() {
        let spec = FleetSpec { epoch_ms: 300.0, ..FleetSpec::default() };
        let p = Params::from_spec(&spec);
        assert_eq!(p.ttt_epochs, 2, "400 ms at 300 ms epochs is 2 epochs");
        let coarse = FleetSpec { epoch_ms: 5_000.0, ..FleetSpec::default() };
        let p = Params::from_spec(&coarse);
        assert_eq!(p.ttt_epochs, 1);
        assert_eq!(p.rlf_epochs, 1);
    }
}
