//! One geographic shard: struct-of-arrays state for every train whose
//! *serving cell* falls in the shard's contiguous cell range.
//!
//! A shard is purely a container — the radio physics in
//! [`Shard::advance`] depends only on global corridor geometry, the
//! train's own carried state and the stateless draws of [`crate::rng`],
//! never on which shard hosts the train or on any neighbour's state.
//! That structural property is what makes the engine's results
//! bit-identical for every shard decomposition: moving a train between
//! shards moves its state verbatim and changes nothing it computes.
//!
//! Measurement-event evaluation is batched **per cell**: each epoch the
//! shard iterates its residents grouped by serving cell (a nearly
//! sorted index sort, cheap under pdqsort), so the serving-site and
//! neighbour geometry of a whole batch is computed once and the SoA
//! columns are walked in cache order — the Vienna-simulator style of
//! evaluation, instead of re-deriving the environment per UE.

use crate::ids::{CellId, TrainId, UeId};
use crate::params::Params;
use crate::rng::{gauss, Stream};

/// What a train asks the epoch barrier for. At most one intent per
/// train per epoch, by construction of [`Shard::advance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntentKind {
    /// A3 fired: move the train (and its UE contexts) to `target`,
    /// subject to per-cell admission control.
    Handover,
    /// A radio-link failure timer expired: forced re-establishment on
    /// `target` (no admission gate — the train is already in outage).
    Reattach,
    /// The train left the corridor; capture its terminal record.
    Despawn,
}

/// One cross-shard event, exchanged at the epoch barrier and applied
/// in canonical train-id order.
#[derive(Clone, Copy, Debug)]
pub struct Intent {
    /// The train asking.
    pub train: TrainId,
    /// Target cell (ignored for despawns).
    pub target: CellId,
    /// What to do.
    pub kind: IntentKind,
}

/// A train's full carried state, as moved between shards. The SoA
/// columns of a shard are exactly these fields, exploded.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// Interned id.
    pub id: TrainId,
    /// Position along the corridor (m).
    pub pos_m: f64,
    /// Signed speed (m/s); negative for odd trains running east→west.
    pub speed_mps: f64,
    /// Serving cell.
    pub serving: CellId,
    /// Consecutive epochs the A3 condition has held.
    pub ttt_epochs: u16,
    /// Consecutive epochs below the RLF threshold.
    pub rlf_epochs: u16,
    /// Completed handovers.
    pub handovers: u32,
    /// Admission-denied handover attempts.
    pub denied: u32,
    /// Radio-link failures.
    pub rlfs: u32,
    /// UE signaling events processed.
    pub ue_events: u64,
    /// UE-level signaling failures.
    pub ue_failures: u64,
    /// Per-seat failure counts (saturating), `ues_per_train` long.
    pub ue_fail: Vec<u8>,
}

impl TrainState {
    /// A freshly spawned train at `pos_m` moving at `speed_mps`,
    /// served by `serving`, with `ues` clean UE contexts.
    pub fn spawn(id: TrainId, pos_m: f64, speed_mps: f64, serving: CellId, ues: u32) -> Self {
        Self {
            id,
            pos_m,
            speed_mps,
            serving,
            ttt_epochs: 0,
            rlf_epochs: 0,
            handovers: 0,
            denied: 0,
            rlfs: 0,
            ue_events: 0,
            ue_failures: 0,
            ue_fail: vec![0; ues as usize],
        }
    }
}

/// Struct-of-arrays state for the trains resident in one cell range.
#[derive(Debug, Default)]
pub struct Shard {
    /// First owned cell (inclusive).
    pub cell_lo: u32,
    /// One past the last owned cell.
    pub cell_hi: u32,
    id: Vec<u32>,
    pos_m: Vec<f64>,
    speed_mps: Vec<f64>,
    serving: Vec<u32>,
    ttt_epochs: Vec<u16>,
    rlf_epochs: Vec<u16>,
    handovers: Vec<u32>,
    denied: Vec<u32>,
    rlfs: Vec<u32>,
    ue_events: Vec<u64>,
    ue_failures: Vec<u64>,
    /// Flat per-seat failure counts: row `i` is
    /// `ue_fail[i * ues_per_train .. (i + 1) * ues_per_train]`.
    ue_fail: Vec<u8>,
    ues_per_train: u32,
    /// Local index by train id (residency moves at epoch barriers, so
    /// this map only changes in the serial exchange phase).
    index_of: std::collections::HashMap<u32, u32>,
    /// Scratch: local indices sorted by (serving cell, train id) for
    /// the per-cell batched sweep.
    order: Vec<u32>,
}

impl Shard {
    /// An empty shard owning cells `cell_lo..cell_hi`.
    pub fn new(cell_lo: u32, cell_hi: u32, ues_per_train: u32) -> Self {
        Self { cell_lo, cell_hi, ues_per_train, ..Self::default() }
    }

    /// Resident train count.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when no train is resident.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// True when this shard owns `cell`.
    pub fn owns(&self, cell: CellId) -> bool {
        (self.cell_lo..self.cell_hi).contains(&cell.0)
    }

    /// Adds a train; its serving cell must be owned by this shard.
    pub fn insert(&mut self, t: TrainState) {
        debug_assert!(self.owns(t.serving), "train routed to the wrong shard");
        debug_assert_eq!(t.ue_fail.len(), self.ues_per_train as usize);
        let local = self.id.len() as u32;
        self.index_of.insert(t.id.0, local);
        self.id.push(t.id.0);
        self.pos_m.push(t.pos_m);
        self.speed_mps.push(t.speed_mps);
        self.serving.push(t.serving.0);
        self.ttt_epochs.push(t.ttt_epochs);
        self.rlf_epochs.push(t.rlf_epochs);
        self.handovers.push(t.handovers);
        self.denied.push(t.denied);
        self.rlfs.push(t.rlfs);
        self.ue_events.push(t.ue_events);
        self.ue_failures.push(t.ue_failures);
        self.ue_fail.extend_from_slice(&t.ue_fail);
    }

    /// Removes a train by id (swap-remove across every column),
    /// returning its carried state. Panics if the train is not
    /// resident — the engine's residency index makes that a logic bug,
    /// not an input error.
    pub fn remove(&mut self, train: TrainId) -> TrainState {
        let local = *self.index_of.get(&train.0).expect("train resident in shard") as usize;
        let last = self.id.len() - 1;
        let u = self.ues_per_train as usize;
        let state = TrainState {
            id: TrainId(self.id[local]),
            pos_m: self.pos_m[local],
            speed_mps: self.speed_mps[local],
            serving: CellId(self.serving[local]),
            ttt_epochs: self.ttt_epochs[local],
            rlf_epochs: self.rlf_epochs[local],
            handovers: self.handovers[local],
            denied: self.denied[local],
            rlfs: self.rlfs[local],
            ue_events: self.ue_events[local],
            ue_failures: self.ue_failures[local],
            ue_fail: self.ue_fail[local * u..(local + 1) * u].to_vec(),
        };
        self.id.swap_remove(local);
        self.pos_m.swap_remove(local);
        self.speed_mps.swap_remove(local);
        self.serving.swap_remove(local);
        self.ttt_epochs.swap_remove(local);
        self.rlf_epochs.swap_remove(local);
        self.handovers.swap_remove(local);
        self.denied.swap_remove(local);
        self.rlfs.swap_remove(local);
        self.ue_events.swap_remove(local);
        self.ue_failures.swap_remove(local);
        // Swap-remove the UE row: move the last row into the hole.
        if local != last {
            let (head, tail) = self.ue_fail.split_at_mut(last * u);
            head[local * u..local * u + u].copy_from_slice(&tail[..u]);
        }
        self.ue_fail.truncate(last * u);
        self.index_of.remove(&train.0);
        if local != last {
            self.index_of.insert(self.id[local], local as u32);
        }
        state
    }

    /// Records an admission denial against a resident train.
    pub fn deny(&mut self, train: TrainId) {
        let local = *self.index_of.get(&train.0).expect("train resident in shard") as usize;
        self.denied[local] += 1;
    }

    /// Credits a resident train with a batch of UE signaling outcomes
    /// (drawn by the engine at the barrier, where the canonical order
    /// lives).
    pub fn credit_ue_outcomes(&mut self, train: TrainId, events: u64, failures: u64) {
        let local = *self.index_of.get(&train.0).expect("train resident in shard") as usize;
        self.ue_events[local] += events;
        self.ue_failures[local] += failures;
    }

    /// Marks seat `seat` of a resident train as having failed once
    /// more (saturating).
    pub fn mark_ue_failure(&mut self, train: TrainId, seat: u32) {
        let local = *self.index_of.get(&train.0).expect("train resident in shard") as usize;
        let at = local * self.ues_per_train as usize + seat as usize;
        self.ue_fail[at] = self.ue_fail[at].saturating_add(1);
    }

    /// One fleet epoch over every resident train, batched per serving
    /// cell: advances positions, evaluates RLF and A3 time-to-trigger
    /// against the stateless shadowing draws, and appends at most one
    /// [`Intent`] per train to `out`.
    pub fn advance(&mut self, epoch: u32, p: &Params, out: &mut Vec<Intent>) {
        let n = self.id.len();
        self.order.clear();
        self.order.extend(0..n as u32);
        // Residency only changes at barriers, so this is nearly sorted
        // every epoch after the first — pdqsort's happy case.
        let serving = &self.serving;
        let id = &self.id;
        self.order.sort_unstable_by_key(|&i| (serving[i as usize], id[i as usize]));

        let mut k = 0;
        while k < n {
            let cell = self.serving[self.order[k] as usize];
            // Per-cell batch preamble: geometry shared by every train
            // the cell serves this epoch.
            let cell_x = p.cell_center_m(CellId(cell));
            let batch_end = {
                let mut e = k;
                while e < n && self.serving[self.order[e] as usize] == cell {
                    e += 1;
                }
                e
            };
            for &local in &self.order[k..batch_end] {
                let i = local as usize;
                self.pos_m[i] += self.speed_mps[i] * p.dt_s;
                let pos = self.pos_m[i];
                let train = TrainId(self.id[i]);
                if !(0.0..=p.corridor_m).contains(&pos) {
                    out.push(Intent { train, target: CellId(cell), kind: IntentKind::Despawn });
                    continue;
                }

                let gcell = p.cell_at(pos);
                let shadow_s = p.shadow_sigma_db
                    * gauss(p.seed, train.0 as u64, epoch as u64, Stream::ShadowServing);
                let rsrp_s = p.tx_dbm - p.pathloss_db((pos - cell_x).abs()) + shadow_s;

                // RLF: consecutive epochs below threshold expire into a
                // forced re-establishment on the geographically best cell.
                if rsrp_s < p.rlf_dbm {
                    self.rlf_epochs[i] += 1;
                } else {
                    self.rlf_epochs[i] = 0;
                }
                if self.rlf_epochs[i] >= p.rlf_epochs {
                    self.rlf_epochs[i] = 0;
                    self.ttt_epochs[i] = 0;
                    self.rlfs[i] += 1;
                    out.push(Intent { train, target: gcell, kind: IntentKind::Reattach });
                    continue;
                }

                // A3 against the strongest geographic neighbour.
                let Some(cand) = p.neighbor_of(CellId(cell), pos) else {
                    self.ttt_epochs[i] = 0;
                    continue;
                };
                let shadow_n = p.shadow_sigma_db
                    * gauss(p.seed, train.0 as u64, epoch as u64, Stream::ShadowNeighbor);
                let cand_x = p.cell_center_m(cand);
                let rsrp_n = p.tx_dbm - p.pathloss_db((pos - cand_x).abs()) + shadow_n;
                if rsrp_n > rsrp_s + p.hyst_db {
                    self.ttt_epochs[i] += 1;
                } else {
                    self.ttt_epochs[i] = 0;
                }
                if self.ttt_epochs[i] >= p.ttt_epochs {
                    self.ttt_epochs[i] = 0;
                    out.push(Intent { train, target: cand, kind: IntentKind::Handover });
                }
            }
            k = batch_end;
        }
    }

    /// Drains every resident train (ascending train id), for terminal
    /// record collection at the end of the window.
    pub fn drain_states(&mut self) -> Vec<TrainState> {
        let mut ids: Vec<u32> = self.id.clone();
        ids.sort_unstable();
        ids.into_iter().map(|id| self.remove(TrainId(id))).collect()
    }

    /// The UE ids resident on a train (used by tests; the engine works
    /// in seat indices).
    pub fn ue_ids_of(&self, train: TrainId) -> Vec<UeId> {
        (0..self.ues_per_train).map(|s| UeId::of(train, s, self.ues_per_train)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::from_spec(&crate::FleetSpec::default())
    }

    fn train(id: u32, pos: f64, serving: u32) -> TrainState {
        TrainState::spawn(TrainId(id), pos, 80.0, CellId(serving), 4)
    }

    #[test]
    fn insert_remove_round_trips_every_column() {
        let mut shard = Shard::new(0, 10, 4);
        let mut t = train(3, 1234.5, 1);
        t.handovers = 7;
        t.ue_fail = vec![1, 0, 2, 0];
        shard.insert(t.clone());
        shard.insert(train(9, 50.0, 0));
        let back = shard.remove(TrainId(3));
        assert_eq!(back.handovers, 7);
        assert_eq!(back.ue_fail, vec![1, 0, 2, 0]);
        assert_eq!(back.pos_m, 1234.5);
        assert_eq!(shard.len(), 1);
        let other = shard.remove(TrainId(9));
        assert_eq!(other.pos_m, 50.0);
        assert!(shard.is_empty());
    }

    #[test]
    fn swap_remove_keeps_the_index_consistent() {
        let mut shard = Shard::new(0, 10, 4);
        for i in 0..5 {
            shard.insert(train(i, i as f64 * 100.0, 0));
        }
        // Removing from the middle moves the last row into the hole.
        shard.remove(TrainId(1));
        let last = shard.remove(TrainId(4));
        assert_eq!(last.pos_m, 400.0);
        shard.deny(TrainId(2));
        let t2 = shard.remove(TrainId(2));
        assert_eq!(t2.denied, 1);
    }

    #[test]
    fn advance_emits_at_most_one_intent_per_train() {
        let p = params();
        let mut shard = Shard::new(0, p.n_cells, 4);
        for i in 0..50 {
            let pos = 100.0 + i as f64 * 37.0;
            shard.insert(train(i, pos, p.cell_at(pos).0));
        }
        for epoch in 0..40 {
            let mut out = Vec::new();
            shard.advance(epoch, &p, &mut out);
            let mut trains: Vec<u32> = out.iter().map(|x| x.train.0).collect();
            trains.sort_unstable();
            trains.dedup();
            assert_eq!(trains.len(), out.len(), "duplicate intent for one train");
        }
    }

    #[test]
    fn despawn_fires_past_the_corridor_end() {
        let p = params();
        let mut shard = Shard::new(0, p.n_cells, 4);
        let mut t = train(0, p.corridor_m - 1.0, p.n_cells - 1);
        t.speed_mps = 100.0;
        shard.insert(t);
        let mut out = Vec::new();
        shard.advance(0, &p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, IntentKind::Despawn);
    }
}
