//! Stateless, order-free randomness.
//!
//! The single-train simulator isolates RNG streams per trial with
//! `child_rng(seed, label)` — good enough when one trial is one unit
//! of scheduling. A sharded fleet cannot use sequential streams at
//! all: which shard advances a train, and in what order within an
//! epoch, depends on the decomposition, so *any* draw that consumes
//! mutable stream state would make the result depend on shard count.
//!
//! Every draw here is instead a pure hash of
//! `(seed, entity, epoch, purpose)` — the counter-based RNG idea
//! (Salmon et al., SC'11) reduced to a SplitMix64 finalizer chain.
//! Same inputs, same bits, no matter who asks first.

/// Domain-separation tags so different purposes at the same
/// `(seed, entity, epoch)` never correlate.
#[derive(Clone, Copy, Debug)]
#[repr(u64)]
pub enum Stream {
    /// Per-train spawn draws (speed jitter).
    Spawn = 1,
    /// Per-(train, epoch) shadowing on the serving cell.
    ShadowServing = 2,
    /// Per-(train, epoch) shadowing on the strongest neighbour.
    ShadowNeighbor = 3,
    /// Per-(UE, handover) signaling outcome.
    UeOutcome = 4,
}

/// SplitMix64 finalizer: a well-mixed 64-bit permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The raw 64-bit draw for `(seed, entity, epoch, stream)`.
#[inline]
pub fn draw(seed: u64, entity: u64, epoch: u64, stream: Stream) -> u64 {
    mix(seed ^ mix(entity ^ mix(epoch ^ mix(stream as u64))))
}

/// A uniform draw in `[0, 1)` with 53 random bits.
#[inline]
pub fn unit(seed: u64, entity: u64, epoch: u64, stream: Stream) -> f64 {
    (draw(seed, entity, epoch, stream) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An approximately standard-normal draw: the sum of four uniforms,
/// centred and scaled (Irwin–Hall with n = 4, sigma = sqrt(1/3)).
/// Plenty for log-normal shadowing at fleet fidelity, and four mixes
/// cheaper than a Box–Muller transcendental pair.
#[inline]
pub fn gauss(seed: u64, entity: u64, epoch: u64, stream: Stream) -> f64 {
    let d = draw(seed, entity, epoch, stream);
    // Four independent 16-bit lanes of one well-mixed draw.
    let sum = (d & 0xffff) + ((d >> 16) & 0xffff) + ((d >> 32) & 0xffff) + ((d >> 48) & 0xffff);
    let uniform_sum = sum as f64 / 65_536.0; // in [0, 4), mean 2, variance 1/3
    (uniform_sum - 2.0) * (3.0f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions() {
        assert_eq!(draw(7, 1, 2, Stream::Spawn), draw(7, 1, 2, Stream::Spawn));
        assert_ne!(draw(7, 1, 2, Stream::Spawn), draw(7, 1, 2, Stream::UeOutcome));
        assert_ne!(draw(7, 1, 2, Stream::Spawn), draw(8, 1, 2, Stream::Spawn));
        assert_ne!(draw(7, 1, 2, Stream::Spawn), draw(7, 1, 3, Stream::Spawn));
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let n = 10_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = unit(42, i, 0, Stream::UeOutcome);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} is far from 0.5");
    }

    #[test]
    fn gauss_is_roughly_standard() {
        let n = 10_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let g = gauss(42, i, 0, Stream::ShadowServing);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
