//! Fleet campaign results and timing.
//!
//! [`FleetReport`] is the *identity-bearing* result: every field is an
//! integer counter or a canonical-order digest, so its serde JSON is
//! the byte string `--hash` digests and shard/thread counts can never
//! perturb it. [`FleetTiming`] carries the wall-clock measurements and
//! is deliberately a separate type: timings differ on every run and
//! host and must never leak into the hash.

use serde::{Deserialize, Serialize};

/// Seed value of the FNV-1a 64 fold (same constants as
/// `rem_core::fnv1a64`, restated here because the engine sits below
/// `rem-core` in the dependency graph).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` starting from `state` — fold-friendly so the
/// per-train digest can be built incrementally in canonical order.
pub fn fnv1a64_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64 of `bytes` (the workspace's standard result digest).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(FNV_OFFSET, bytes)
}

/// Per-train terminal record, digested (in train-id order) into
/// [`FleetReport::train_digest`]. Kept as a struct so tests and the
/// engine agree on exactly what the digest covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainRecord {
    /// Train id (canonical digest order).
    pub train: u32,
    /// Serving cell at despawn / end of window.
    pub final_cell: u32,
    /// Position at despawn / end of window, quantised to millimetres
    /// so the digest covers trajectory state without hashing raw
    /// floats.
    pub final_pos_mm: i64,
    /// Completed handovers.
    pub handovers: u32,
    /// Handover attempts denied by cell admission control.
    pub denied: u32,
    /// Radio-link failures (with re-establishment).
    pub rlfs: u32,
    /// UE signaling events processed for this train.
    pub ue_events: u64,
    /// UE-level handover signaling failures.
    pub ue_failures: u64,
}

impl TrainRecord {
    /// Folds this record into a running FNV-1a state as a fixed-width
    /// little-endian byte image (no allocation in the hot path).
    pub fn fold(&self, state: u64) -> u64 {
        let mut state = fnv1a64_fold(state, &self.train.to_le_bytes());
        state = fnv1a64_fold(state, &self.final_cell.to_le_bytes());
        state = fnv1a64_fold(state, &self.final_pos_mm.to_le_bytes());
        state = fnv1a64_fold(state, &self.handovers.to_le_bytes());
        state = fnv1a64_fold(state, &self.denied.to_le_bytes());
        state = fnv1a64_fold(state, &self.rlfs.to_le_bytes());
        state = fnv1a64_fold(state, &self.ue_events.to_le_bytes());
        fnv1a64_fold(state, &self.ue_failures.to_le_bytes())
    }
}

/// The shard/thread-invariant result of one fleet campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Trains in the schedule.
    pub trains: u32,
    /// Total UEs across the schedule.
    pub ues: u64,
    /// Cells in the corridor deployment.
    pub cells: u32,
    /// Epochs simulated.
    pub epochs: u32,
    /// Simulated window (ms, integer so the report stays float-free).
    pub sim_window_ms: u64,
    /// Completed handovers fleet-wide.
    pub handovers: u64,
    /// Handover attempts denied by per-cell admission control.
    pub denied: u64,
    /// Radio-link failures fleet-wide.
    pub rlfs: u64,
    /// UE signaling events processed (the per-UE work unit the bench
    /// reports as UE-events/sec).
    pub ue_events: u64,
    /// UE-level handover signaling failures.
    pub ue_failures: u64,
    /// FNV-1a 64 fold of every [`TrainRecord`] in train-id order:
    /// the part of the digest that covers per-train terminal state.
    pub train_digest: u64,
}

impl FleetReport {
    /// Canonical JSON of the report — the byte string `--hash` digests
    /// and manifests record. Hand-rolled (field order fixed, integers
    /// only) so the digest never depends on a serializer's formatting
    /// choices; `serde_json::from_str` parses it back to an equal
    /// report.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"trains\":{},\"ues\":{},\"cells\":{},\"epochs\":{},",
                "\"sim_window_ms\":{},\"handovers\":{},\"denied\":{},",
                "\"rlfs\":{},\"ue_events\":{},\"ue_failures\":{},",
                "\"train_digest\":{}}}"
            ),
            self.trains,
            self.ues,
            self.cells,
            self.epochs,
            self.sim_window_ms,
            self.handovers,
            self.denied,
            self.rlfs,
            self.ue_events,
            self.ue_failures,
            self.train_digest,
        )
    }

    /// The `--hash` digest: `fnv1a64:<16 hex>` over [`Self::to_json`].
    pub fn result_hash(&self) -> String {
        format!("fnv1a64:{:016x}", fnv1a64(self.to_json().as_bytes()))
    }
}

/// Wall-clock measurements of one engine run. Never hashed.
#[derive(Clone, Debug, Default, Serialize)]
pub struct FleetTiming {
    /// End-to-end wall time (s), including exchange and spawn phases.
    pub wall_s: f64,
    /// Sum over epochs of the *maximum* per-shard advance time (s):
    /// the measured critical path a perfectly parallel host would pay.
    /// On a single-core host this is the honest basis for shard
    /// scaling claims; on a many-core host it converges to `wall_s`
    /// minus the serial exchange.
    pub critical_path_s: f64,
    /// Sum over epochs and shards of per-shard advance time (s): the
    /// total compute the decomposition distributed.
    pub busy_s: f64,
    /// Time spent in the serial epoch-barrier phases (s): intent
    /// routing, canonical-order application, spawns.
    pub exchange_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_workspace_reference_vectors() {
        // Same constants as rem_core::fnv1a64 (FNV-1a 64 test vectors).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn train_record_fold_is_order_sensitive() {
        let a = TrainRecord {
            train: 0,
            final_cell: 3,
            final_pos_mm: 1_000,
            handovers: 2,
            denied: 0,
            rlfs: 0,
            ue_events: 200,
            ue_failures: 1,
        };
        let b = TrainRecord { train: 1, ..a };
        let ab = b.fold(a.fold(FNV_OFFSET));
        let ba = a.fold(b.fold(FNV_OFFSET));
        assert_ne!(ab, ba, "digest must pin the canonical order");
    }

    #[test]
    fn report_hash_is_stable_for_equal_reports() {
        let r = FleetReport {
            trains: 4,
            ues: 400,
            cells: 60,
            epochs: 1200,
            sim_window_ms: 120_000,
            handovers: 37,
            denied: 1,
            rlfs: 2,
            ue_events: 3_700,
            ue_failures: 12,
            train_digest: 0xdead_beef,
        };
        assert_eq!(r.result_hash(), r.clone().result_hash());
        let mut r2 = r.clone();
        r2.handovers += 1;
        assert_ne!(r.result_hash(), r2.result_hash());
    }
}
