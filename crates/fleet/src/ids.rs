//! Interned identifiers for the fleet's struct-of-arrays state.
//!
//! The single-train simulator keys everything off rich structs; at
//! fleet scale that costs pointer chases and cache misses in the hot
//! loop. Here every entity is a dense index into an SoA table:
//! [`CellId`] indexes the uniform corridor deployment, [`TrainId`]
//! indexes the spawn schedule, and [`UeId`] is derived arithmetic —
//! `train * ues_per_train + seat` — so per-UE state never needs a map.

use serde::{Deserialize, Serialize};

/// Dense index of a corridor cell (`0..n_cells`, west to east).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Dense index of a train in the spawn schedule (`0..trains`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrainId(pub u32);

/// Dense index of one UE across the whole fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UeId(pub u64);

impl UeId {
    /// The UE in `seat` on `train`, for a fleet with `ues_per_train`
    /// sessions per train.
    pub fn of(train: TrainId, seat: u32, ues_per_train: u32) -> Self {
        UeId(train.0 as u64 * ues_per_train as u64 + seat as u64)
    }

    /// Inverse of [`UeId::of`]: which train and seat this UE is.
    pub fn split(self, ues_per_train: u32) -> (TrainId, u32) {
        let train = (self.0 / ues_per_train as u64) as u32;
        let seat = (self.0 % ues_per_train as u64) as u32;
        (TrainId(train), seat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_ids_are_dense_and_invertible() {
        let ues_per_train = 100;
        let ue = UeId::of(TrainId(42), 17, ues_per_train);
        assert_eq!(ue, UeId(4_217));
        assert_eq!(ue.split(ues_per_train), (TrainId(42), 17));
    }
}
