//! Property-based tests for the miniature TCP.

use proptest::prelude::*;
use rem_net::{
    simulate_transfer, simulate_transfer_resilient, ForecastWindow, LinkModel, NatRebind, Outage,
    RemForecast, ResilienceConfig, TcpConfig, TcpTrace,
};
use rem_num::rng::rng_from_seed;

/// The invariants every edge configuration must uphold: the replay
/// returned at all (terminated), and the cumulative-ack timeline is
/// monotone in both time and bytes.
fn assert_sane(t: &TcpTrace, horizon_ms: f64) {
    for w in t.ack_timeline.windows(2) {
        assert!(w[1].0 >= w[0].0, "ack time went backwards");
        assert!(w[1].1 >= w[0].1, "cumulative ack shrank");
    }
    assert!(t.total_stall_ms(500.0) <= horizon_ms + 1e-9);
}

/// Runs one edge configuration under all three recovery policies.
fn run_all_policies(cfg: &TcpConfig, link: &LinkModel, horizon_ms: f64, seed: u64) {
    let forecast = RemForecast {
        windows: vec![ForecastWindow { start_ms: 0.25 * horizon_ms, end_ms: 0.5 * horizon_ms }],
        issued_at_ms: 0.0,
        freshness_ms: horizon_ms,
    };
    for res in [
        ResilienceConfig::vanilla(),
        ResilienceConfig::frto(),
        ResilienceConfig::rem_informed(forecast),
    ] {
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer_resilient(cfg, &res, link, horizon_ms, &mut rng);
        assert_sane(&t, horizon_ms);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ack timeline is always monotone in time and bytes.
    #[test]
    fn ack_timeline_monotone(loss in 0.0f64..0.2, seed in 0u64..1000, rtt in 10.0f64..120.0) {
        let link = LinkModel { loss_prob: loss, rtt_ms: rtt, ..Default::default() };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&TcpConfig::default(), &link, 4_000.0, &mut rng);
        for w in t.ack_timeline.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!(t.total_acked_bytes as f64 <= 4_000.0 * link.capacity_pkts_per_ms * 1448.0);
    }

    /// RTO values never exceed the configured maximum.
    #[test]
    fn rto_respects_bounds(start in 1_000.0f64..3_000.0, dur in 1_000.0f64..8_000.0, seed in 0u64..100) {
        let cfg = TcpConfig { rto_max_ms: 10_000.0, ..Default::default() };
        let link = LinkModel {
            outages: vec![Outage { start_ms: start, end_ms: start + dur }],
            ..Default::default()
        };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&cfg, &link, 20_000.0, &mut rng);
        for (_, rto) in &t.rto_events {
            prop_assert!(*rto <= cfg.rto_max_ms + 1e-9);
            prop_assert!(*rto >= cfg.rto_min_ms - 1e-9);
        }
    }

    /// Stall accounting never exceeds the horizon.
    #[test]
    fn stall_bounded_by_duration(loss in 0.0f64..0.6, seed in 0u64..100) {
        let link = LinkModel { loss_prob: loss, ..Default::default() };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&TcpConfig::default(), &link, 6_000.0, &mut rng);
        prop_assert!(t.total_stall_ms(500.0) <= 6_000.0 + 1e-9);
    }

    /// Goodput can only decrease when loss increases (same seed).
    #[test]
    fn loss_hurts_goodput(seed in 0u64..50) {
        let mut r1 = rng_from_seed(seed);
        let clean = simulate_transfer(&TcpConfig::default(), &LinkModel::default(), 5_000.0, &mut r1);
        let mut r2 = rng_from_seed(seed);
        let lossy = simulate_transfer(
            &TcpConfig::default(),
            &LinkModel { loss_prob: 0.1, ..Default::default() },
            5_000.0,
            &mut r2,
        );
        prop_assert!(lossy.total_acked_bytes <= clean.total_acked_bytes);
    }

    /// Zero random loss on a clean link: the transfer proceeds and the
    /// invariants hold under every recovery policy.
    #[test]
    fn edge_zero_loss(seed in 0u64..50) {
        let link = LinkModel { loss_prob: 0.0, ..Default::default() };
        run_all_policies(&TcpConfig::default(), &link, 5_000.0, seed);
    }

    /// Total loss: every packet drops, nothing is ever acked, and the
    /// replay still terminates instead of spinning on retransmits.
    #[test]
    fn edge_total_loss(seed in 0u64..50) {
        let link = LinkModel { loss_prob: 1.0, ..Default::default() };
        let cfg = TcpConfig::default();
        run_all_policies(&cfg, &link, 10_000.0, seed);
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&cfg, &link, 10_000.0, &mut rng);
        prop_assert_eq!(t.total_acked_bytes, 0);
    }

    /// A degenerate RTO band (`rto_min == rto_max`): backoff cannot
    /// grow, so a long outage produces a dense RTO train — the replay
    /// must still terminate with every RTO pinned to the band.
    #[test]
    fn edge_pinned_rto(rto in 200.0f64..2_000.0, seed in 0u64..50) {
        let cfg = TcpConfig { rto_min_ms: rto, rto_max_ms: rto, ..Default::default() };
        let link = LinkModel {
            outages: vec![Outage { start_ms: 1_000.0, end_ms: 6_000.0 }],
            ..Default::default()
        };
        run_all_policies(&cfg, &link, 12_000.0, seed);
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&cfg, &link, 12_000.0, &mut rng);
        for (_, r) in &t.rto_events {
            prop_assert!((r - rto).abs() < 1e-9);
        }
    }

    /// One-segment receive window: the sender is permanently
    /// ack-clocked at a single packet in flight.
    #[test]
    fn edge_one_segment_window(loss in 0.0f64..0.3, seed in 0u64..50) {
        let cfg = TcpConfig { rwnd: 1.0, init_cwnd: 1.0, ..Default::default() };
        let link = LinkModel { loss_prob: loss, ..Default::default() };
        run_all_policies(&cfg, &link, 5_000.0, seed);
    }

    /// NAT rebind at t = 0: the binding is dead before the first
    /// packet leaves. Vanilla senders black-hole forever (and must
    /// still terminate); the zombie detector's reconnect is the only
    /// way any byte gets through.
    #[test]
    fn edge_rebind_at_zero(seed in 0u64..50) {
        let link = LinkModel { rebinds: vec![NatRebind { t_ms: 0.0 }], ..Default::default() };
        let cfg = TcpConfig::default();
        run_all_policies(&cfg, &link, 25_000.0, seed);
        let mut rng = rng_from_seed(seed);
        let dead = simulate_transfer(&cfg, &link, 25_000.0, &mut rng);
        prop_assert_eq!(dead.total_acked_bytes, 0);
        let mut rng = rng_from_seed(seed);
        let revived =
            simulate_transfer_resilient(&cfg, &ResilienceConfig::frto(), &link, 25_000.0, &mut rng);
        prop_assert!(revived.total_acked_bytes > 0);
        prop_assert!(revived.net.reconnects > 0);
    }
}
