//! Property-based tests for the miniature TCP.

use proptest::prelude::*;
use rem_net::{simulate_transfer, LinkModel, Outage, TcpConfig};
use rem_num::rng::rng_from_seed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ack timeline is always monotone in time and bytes.
    #[test]
    fn ack_timeline_monotone(loss in 0.0f64..0.2, seed in 0u64..1000, rtt in 10.0f64..120.0) {
        let link = LinkModel { loss_prob: loss, rtt_ms: rtt, ..Default::default() };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&TcpConfig::default(), &link, 4_000.0, &mut rng);
        for w in t.ack_timeline.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!(t.total_acked_bytes as f64 <= 4_000.0 * link.capacity_pkts_per_ms * 1448.0);
    }

    /// RTO values never exceed the configured maximum.
    #[test]
    fn rto_respects_bounds(start in 1_000.0f64..3_000.0, dur in 1_000.0f64..8_000.0, seed in 0u64..100) {
        let cfg = TcpConfig { rto_max_ms: 10_000.0, ..Default::default() };
        let link = LinkModel {
            outages: vec![Outage { start_ms: start, end_ms: start + dur }],
            ..Default::default()
        };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&cfg, &link, 20_000.0, &mut rng);
        for (_, rto) in &t.rto_events {
            prop_assert!(*rto <= cfg.rto_max_ms + 1e-9);
            prop_assert!(*rto >= cfg.rto_min_ms - 1e-9);
        }
    }

    /// Stall accounting never exceeds the horizon.
    #[test]
    fn stall_bounded_by_duration(loss in 0.0f64..0.6, seed in 0u64..100) {
        let link = LinkModel { loss_prob: loss, ..Default::default() };
        let mut rng = rng_from_seed(seed);
        let t = simulate_transfer(&TcpConfig::default(), &link, 6_000.0, &mut rng);
        prop_assert!(t.total_stall_ms(500.0) <= 6_000.0 + 1e-9);
    }

    /// Goodput can only decrease when loss increases (same seed).
    #[test]
    fn loss_hurts_goodput(seed in 0u64..50) {
        let mut r1 = rng_from_seed(seed);
        let clean = simulate_transfer(&TcpConfig::default(), &LinkModel::default(), 5_000.0, &mut r1);
        let mut r2 = rng_from_seed(seed);
        let lossy = simulate_transfer(
            &TcpConfig::default(),
            &LinkModel { loss_prob: 0.1, ..Default::default() },
            5_000.0,
            &mut r2,
        );
        prop_assert!(lossy.total_acked_bytes <= clean.total_acked_bytes);
    }
}
