//! Sender-side transport resilience: spurious-timeout undo, zombie
//! re-establishment and REM-forecast-informed outage handling.
//!
//! The pathologies in [`crate::tcp::LinkModel`] (bufferbloat queues,
//! jitter spikes, NAT rebinds, radio outages) defeat a loss-based
//! sender in three distinct ways: queuing delay fires the RTO although
//! nothing was lost, a NAT rebind silently kills the flow while the
//! sender keeps retransmitting into a dead binding, and a radio outage
//! triggers exponential backoff that outlives the outage itself
//! (the paper's Fig 9). [`ResilienceConfig`] turns on the three
//! countermeasures:
//!
//! * **Spurious-timeout undo** (`frto`) — Eifel/F-RTO style: when an
//!   ack that acknowledges an *original* (never-retransmitted)
//!   transmission arrives after an RTO fired, the timeout was spurious;
//!   the pre-collapse `cwnd`/`ssthresh` are restored and go-back-N is
//!   cancelled.
//! * **Zombie detection** (`zombie_rtos`) — after that many
//!   consecutive RTO expiries with zero forward progress the sender
//!   assumes its binding is dead, re-establishes (one RTT handshake,
//!   fresh NAT binding), and spaces further attempts with a *bounded*
//!   backoff instead of the unbounded RTO doubling.
//! * **REM-informed freezing** ([`RemForecast`]) — across a predicted
//!   outage window the sender freezes `cwnd`, suppresses RTO backoff
//!   and resumes with an immediate probe when the window closes.
//!   Stale or absent forecasts degrade gracefully to vanilla behaviour
//!   and record a [`rem_num::health::DegradedStats`] entry.
//!
//! Every recovery action is logged in [`NetStats`] with a timestamp so
//! the fault oracle can check it against the injected ground truth,
//! and [`classify_stalls`] attributes each goodput stall to its cause.

use serde::{Deserialize, Serialize};

/// A predicted radio-outage window, as issued by the REM plane's SNR
/// forecaster.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForecastWindow {
    /// Predicted outage start (ms).
    pub start_ms: f64,
    /// Predicted outage end (ms).
    pub end_ms: f64,
}

/// An SNR-forecast feed for the resilience shim: predicted outage
/// windows plus the freshness contract that gates how far ahead the
/// sender may trust them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RemForecast {
    /// Predicted outage windows, in ms on the replay clock.
    pub windows: Vec<ForecastWindow>,
    /// When the forecast was issued (ms on the replay clock).
    pub issued_at_ms: f64,
    /// Maximum lead time a window may have past `issued_at_ms` and
    /// still be trusted; windows starting later are *stale* — the
    /// sender falls back to vanilla behaviour for them and records a
    /// degradation.
    pub freshness_ms: f64,
}

impl RemForecast {
    /// Whether a window is within the freshness contract.
    pub fn is_fresh(&self, w: &ForecastWindow) -> bool {
        w.start_ms - self.issued_at_ms <= self.freshness_ms
    }
}

/// Sender-side resilience switches. [`ResilienceConfig::vanilla`]
/// (every switch off) reproduces the historical loss-based sender
/// bit-for-bit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Eifel/F-RTO-style spurious-timeout detection and undo.
    pub frto: bool,
    /// Consecutive zero-progress RTO expiries before the sender
    /// declares the connection a zombie and re-establishes; `0`
    /// disables zombie detection.
    pub zombie_rtos: u32,
    /// Initial spacing of re-establishment attempts (ms).
    pub reconnect_backoff_ms: f64,
    /// Cap on the re-establishment backoff (ms) — attempts never
    /// space out further than this, unlike the unbounded RTO ladder.
    pub reconnect_backoff_max_ms: f64,
    /// REM SNR-forecast feed; `None` runs without prediction.
    pub forecast: Option<RemForecast>,
}

impl ResilienceConfig {
    /// Every countermeasure off: the historical loss-based sender.
    pub fn vanilla() -> Self {
        Self {
            frto: false,
            zombie_rtos: 0,
            reconnect_backoff_ms: 500.0,
            reconnect_backoff_max_ms: 4_000.0,
            forecast: None,
        }
    }

    /// F-RTO spurious-timeout undo plus zombie re-establishment, no
    /// forecast. Four zero-progress RTOs (~3 s of silence at the
    /// 200 ms floor) distinguish a dead binding from a delay spike: a
    /// full bufferbloat queue stays under that, a NAT rebind never
    /// recovers without re-establishing.
    pub fn frto() -> Self {
        Self { frto: true, zombie_rtos: 4, ..Self::vanilla() }
    }

    /// The full REM-informed shim: F-RTO + zombie recovery + forecast
    /// freezing.
    pub fn rem_informed(forecast: RemForecast) -> Self {
        Self { forecast: Some(forecast), ..Self::frto() }
    }

    /// Checks the knobs for values the replay cannot handle.
    pub fn validate(&self) -> Result<(), crate::tcp::TcpError> {
        let bad = |why: String| Err(crate::tcp::TcpError::InvalidConfig(why));
        if !(self.reconnect_backoff_ms.is_finite() && self.reconnect_backoff_ms > 0.0) {
            return bad("reconnect_backoff_ms must be finite and positive".into());
        }
        if !(self.reconnect_backoff_max_ms.is_finite()
            && self.reconnect_backoff_max_ms >= self.reconnect_backoff_ms)
        {
            return bad("reconnect_backoff_max_ms must be >= reconnect_backoff_ms".into());
        }
        if let Some(fc) = &self.forecast {
            if !(fc.issued_at_ms.is_finite() && fc.freshness_ms.is_finite()) {
                return bad("forecast issued_at_ms/freshness_ms must be finite".into());
            }
            for w in &fc.windows {
                if !(w.start_ms.is_finite() && w.end_ms.is_finite() && w.start_ms <= w.end_ms) {
                    return bad(format!(
                        "forecast window [{}, {}] is malformed",
                        w.start_ms, w.end_ms
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::vanilla()
    }
}

/// A recovery action the resilient sender took.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// A spurious RTO was detected and its cwnd collapse undone.
    SpuriousRtoUndo,
    /// The zombie detector re-established the connection.
    Reconnect,
    /// The sender froze across a forecast outage window.
    ForecastFreeze,
}

/// One timestamped recovery action, scored against the fault oracle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// When the action was taken (ms).
    pub t_ms: f64,
    /// What the sender did.
    pub kind: RecoveryKind,
}

/// Resilience outcome counters of one transfer, kept on
/// [`crate::tcp::TcpTrace`]. Absent in traces serialized before the
/// resilience layer existed (every field defaults to zero).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Spurious RTOs detected (an original-transmission ack arrived
    /// after the timer fired).
    #[serde(default)]
    pub spurious_rto_detected: u64,
    /// Spurious RTOs whose cwnd collapse was actually undone.
    #[serde(default)]
    pub spurious_rto_undone: u64,
    /// Zombie re-establishments performed.
    #[serde(default)]
    pub reconnects: u64,
    /// Time spent frozen across forecast outage windows (ms).
    #[serde(default)]
    pub frozen_ms: f64,
    /// Forecast windows the sender trusted and froze across.
    #[serde(default)]
    pub forecast_windows_used: u64,
    /// Forecast windows rejected as stale (vanilla fallback).
    #[serde(default)]
    pub forecast_windows_stale: u64,
    /// Packets tail-dropped by a full bufferbloat queue.
    #[serde(default)]
    pub queue_overflow_drops: u64,
    /// Packets (or acks) silently eaten by a dead NAT binding.
    #[serde(default)]
    pub rebind_drops: u64,
    /// Timestamped recovery actions, for the ground-truth oracle.
    #[serde(default)]
    pub recovery_events: Vec<RecoveryEvent>,
}

impl NetStats {
    /// Adds another transfer's counters into this one (recovery events
    /// are concatenated in order).
    pub fn merge(&mut self, other: &NetStats) {
        self.spurious_rto_detected += other.spurious_rto_detected;
        self.spurious_rto_undone += other.spurious_rto_undone;
        self.reconnects += other.reconnects;
        self.frozen_ms += other.frozen_ms;
        self.forecast_windows_used += other.forecast_windows_used;
        self.forecast_windows_stale += other.forecast_windows_stale;
        self.queue_overflow_drops += other.queue_overflow_drops;
        self.rebind_drops += other.rebind_drops;
        self.recovery_events.extend(other.recovery_events.iter().copied());
    }
}

/// Why a stall happened — the Fig-9-style taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StallCause {
    /// The radio was down (handover failure / coverage hole / tunnel).
    HandoverOutage,
    /// The NAT binding was dead and the sender had not re-established.
    NatRebind,
    /// A bufferbloat episode was inflating queuing delay.
    Bufferbloat,
    /// Nothing was wrong with the path: pure RTO backoff overshoot.
    RtoBackoff,
}

impl StallCause {
    /// Stable lowercase label (metric names, report rows).
    pub fn label(&self) -> &'static str {
        match self {
            StallCause::HandoverOutage => "handover-outage",
            StallCause::NatRebind => "nat-rebind",
            StallCause::Bufferbloat => "bufferbloat",
            StallCause::RtoBackoff => "rto-backoff",
        }
    }

    /// Every cause, in classifier-priority order.
    pub fn all() -> [StallCause; 4] {
        [
            StallCause::HandoverOutage,
            StallCause::NatRebind,
            StallCause::Bufferbloat,
            StallCause::RtoBackoff,
        ]
    }
}

/// Stall time split by cause (ms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CauseBreakdown {
    /// Time the radio was genuinely down.
    pub handover_outage_ms: f64,
    /// Time the NAT binding was dead.
    pub nat_rebind_ms: f64,
    /// Time a bufferbloat episode was active.
    pub bufferbloat_ms: f64,
    /// Residual: the path was fine, only the timer was backed off.
    pub rto_backoff_ms: f64,
}

impl CauseBreakdown {
    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &CauseBreakdown) {
        self.handover_outage_ms += other.handover_outage_ms;
        self.nat_rebind_ms += other.nat_rebind_ms;
        self.bufferbloat_ms += other.bufferbloat_ms;
        self.rto_backoff_ms += other.rto_backoff_ms;
    }

    /// Total attributed stall time (ms).
    pub fn total_ms(&self) -> f64 {
        self.handover_outage_ms + self.nat_rebind_ms + self.bufferbloat_ms + self.rto_backoff_ms
    }

    fn slot(&mut self, cause: StallCause) -> &mut f64 {
        match cause {
            StallCause::HandoverOutage => &mut self.handover_outage_ms,
            StallCause::NatRebind => &mut self.nat_rebind_ms,
            StallCause::Bufferbloat => &mut self.bufferbloat_ms,
            StallCause::RtoBackoff => &mut self.rto_backoff_ms,
        }
    }

    /// The per-cause stall time (ms).
    pub fn get(&self, cause: StallCause) -> f64 {
        match cause {
            StallCause::HandoverOutage => self.handover_outage_ms,
            StallCause::NatRebind => self.nat_rebind_ms,
            StallCause::Bufferbloat => self.bufferbloat_ms,
            StallCause::RtoBackoff => self.rto_backoff_ms,
        }
    }
}

/// One stall, attributed: its dominant cause plus the full per-cause
/// split of its duration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedStall {
    /// Stall start (ms).
    pub start_ms: f64,
    /// Stall end (ms).
    pub end_ms: f64,
    /// The cause covering the largest share of the stall (ties broken
    /// in [`StallCause::all`] order).
    pub cause: StallCause,
    /// Millisecond-granular attribution of the whole stall.
    pub breakdown: CauseBreakdown,
}

impl ClassifiedStall {
    /// Stall duration (ms).
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Attributes every goodput stall of `trace` (gaps longer than
/// `min_gap_ms`) to the fault taxonomy, millisecond by millisecond:
/// radio outage beats a dead NAT binding beats bufferbloat; whatever
/// remains is RTO-backoff overshoot — the Fig 9 phenomenon where the
/// stall outlives the fault.
///
/// NAT-binding liveness is reconstructed from the link's rebind times
/// and the trace's [`RecoveryKind::Reconnect`] events: a binding dies
/// at each rebind and revives at the next later reconnect (never, for
/// a vanilla sender).
pub fn classify_stalls(
    trace: &crate::tcp::TcpTrace,
    link: &crate::tcp::LinkModel,
    min_gap_ms: f64,
) -> Vec<ClassifiedStall> {
    let reconnects: Vec<f64> = trace
        .net
        .recovery_events
        .iter()
        .filter(|e| e.kind == RecoveryKind::Reconnect)
        .map(|e| e.t_ms)
        .collect();
    let binding_dead = |t: f64| {
        link.rebinds.iter().any(|r| {
            r.t_ms <= t && !reconnects.iter().any(|&rc| rc > r.t_ms && rc <= t)
        })
    };
    trace
        .stall_periods(min_gap_ms)
        .into_iter()
        .map(|(start_ms, end_ms)| {
            let mut breakdown = CauseBreakdown::default();
            let mut t = start_ms;
            while t < end_ms {
                let step = 1.0f64.min(end_ms - t);
                let cause = if link.is_down(t) {
                    StallCause::HandoverOutage
                } else if binding_dead(t) {
                    StallCause::NatRebind
                } else if link.bloat_at(t).is_some() {
                    StallCause::Bufferbloat
                } else {
                    StallCause::RtoBackoff
                };
                *breakdown.slot(cause) += step;
                t += step;
            }
            // Dominant cause; ties go to the first in priority order
            // (reverse scan with >= leaves the highest-priority max).
            let mut cause = StallCause::RtoBackoff;
            for c in StallCause::all().into_iter().rev() {
                if breakdown.get(c) >= breakdown.get(cause) {
                    cause = c;
                }
            }
            ClassifiedStall { start_ms, end_ms, cause, breakdown }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{LinkModel, NatRebind, Outage, TcpTrace};

    fn trace_with_gap(gap: (f64, f64), horizon: f64) -> TcpTrace {
        // Dense acks everywhere except the gap, so the only stall
        // longer than the test threshold is the gap itself.
        let mut ack_timeline = Vec::new();
        let mut total = 0u64;
        let mut t = 0.0;
        while t < horizon {
            if t <= gap.0 || t >= gap.1 {
                total += 100;
                ack_timeline.push((t, total));
            }
            t += 500.0;
        }
        TcpTrace {
            ack_timeline,
            rto_events: vec![],
            total_acked_bytes: total,
            duration_ms: horizon,
            net: NetStats::default(),
        }
    }

    #[test]
    fn outage_dominated_stall_is_attributed_to_the_outage() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 2_000.0, end_ms: 4_000.0 }],
            ..Default::default()
        };
        let trace = trace_with_gap((1_900.0, 4_500.0), 10_000.0);
        let stalls = classify_stalls(&trace, &link, 1_000.0);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::HandoverOutage);
        assert!(stalls[0].breakdown.handover_outage_ms >= 1_999.0);
        assert!(stalls[0].breakdown.rto_backoff_ms > 0.0, "overshoot share missing");
    }

    #[test]
    fn dead_binding_beats_bufferbloat_and_backoff() {
        let link = LinkModel {
            rebinds: vec![NatRebind { t_ms: 3_000.0 }],
            ..Default::default()
        };
        let trace = trace_with_gap((2_900.0, 9_000.0), 10_000.0);
        let stalls = classify_stalls(&trace, &link, 1_000.0);
        assert_eq!(stalls[0].cause, StallCause::NatRebind);
        // Binding never revives without a reconnect event.
        assert!(stalls[0].breakdown.nat_rebind_ms >= 5_999.0);
    }

    #[test]
    fn reconnect_revives_the_binding_for_classification() {
        let link = LinkModel {
            rebinds: vec![NatRebind { t_ms: 3_000.0 }],
            ..Default::default()
        };
        let mut trace = trace_with_gap((2_900.0, 9_000.0), 10_000.0);
        trace.net.recovery_events =
            vec![RecoveryEvent { t_ms: 5_000.0, kind: RecoveryKind::Reconnect }];
        let stalls = classify_stalls(&trace, &link, 1_000.0);
        // Dead from 3000 to 5000, backoff after.
        let b = &stalls[0].breakdown;
        assert!((b.nat_rebind_ms - 2_000.0).abs() < 2.0, "{b:?}");
        assert!(b.rto_backoff_ms > 3_000.0, "{b:?}");
    }

    #[test]
    fn clean_link_stall_is_pure_backoff() {
        let trace = trace_with_gap((2_000.0, 5_000.0), 10_000.0);
        let stalls = classify_stalls(&trace, &LinkModel::default(), 1_000.0);
        assert_eq!(stalls[0].cause, StallCause::RtoBackoff);
        assert!((stalls[0].breakdown.total_ms() - stalls[0].duration_ms()).abs() < 1e-6);
    }

    #[test]
    fn vanilla_config_validates_and_is_default() {
        assert_eq!(ResilienceConfig::default(), ResilienceConfig::vanilla());
        assert!(ResilienceConfig::vanilla().validate().is_ok());
        assert!(ResilienceConfig::frto().validate().is_ok());
        let bad = ResilienceConfig { reconnect_backoff_ms: -1.0, ..ResilienceConfig::vanilla() };
        assert!(bad.validate().is_err());
        let bad = ResilienceConfig {
            forecast: Some(RemForecast {
                windows: vec![ForecastWindow { start_ms: 5.0, end_ms: 1.0 }],
                issued_at_ms: 0.0,
                freshness_ms: 1e9,
            }),
            ..ResilienceConfig::vanilla()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn forecast_freshness_contract() {
        let fc = RemForecast {
            windows: vec![
                ForecastWindow { start_ms: 10_000.0, end_ms: 12_000.0 },
                ForecastWindow { start_ms: 50_000.0, end_ms: 52_000.0 },
            ],
            issued_at_ms: 0.0,
            freshness_ms: 30_000.0,
        };
        assert!(fc.is_fresh(&fc.windows[0]));
        assert!(!fc.is_fresh(&fc.windows[1]));
    }

    #[test]
    fn net_stats_merge_and_serde_default() {
        let mut a = NetStats { spurious_rto_detected: 1, ..Default::default() };
        let b = NetStats {
            reconnects: 2,
            frozen_ms: 100.0,
            recovery_events: vec![RecoveryEvent { t_ms: 1.0, kind: RecoveryKind::Reconnect }],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reconnects, 2);
        assert_eq!(a.recovery_events.len(), 1);
        let sparse: NetStats = serde_json::from_str("{}").expect("all fields default");
        assert_eq!(sparse, NetStats::default());
    }
}
