#![warn(missing_docs)]

//! # rem-net
//!
//! A miniature, packet-granular TCP Reno implementation over an
//! outage-prone radio link, reproducing the transport-layer behaviour
//! behind the paper's Fig 9: RTO exponential backoff turns radio
//! failures into data stalls that outlive the outage itself.
//!
//! Beyond the clean lossy/outage link, [`tcp`] models the pathologies
//! that dominate real cellular paths — bufferbloat queues, jitter-spike
//! episodes, and silent NAT rebinds — and [`resilience`] provides the
//! sender-side countermeasures (F-RTO spurious-timeout undo, zombie
//! reconnects, REM-forecast cwnd freezing) plus the Fig-9-style stall
//! classifier that scores them.

pub mod resilience;
pub mod tcp;

pub use resilience::{
    classify_stalls, CauseBreakdown, ClassifiedStall, ForecastWindow, NetStats, RecoveryEvent,
    RecoveryKind, RemForecast, ResilienceConfig, StallCause,
};
pub use tcp::{
    simulate_transfer, simulate_transfer_resilient, try_simulate_transfer,
    try_simulate_transfer_resilient, BloatEpisode, CongestionControl, JitterEpisode, LinkModel,
    LossEpisode, NatRebind, Outage, TcpConfig, TcpError, TcpTrace,
};
