#![warn(missing_docs)]

//! # rem-net
//!
//! A miniature, packet-granular TCP Reno implementation over an
//! outage-prone radio link, reproducing the transport-layer behaviour
//! behind the paper's Fig 9: RTO exponential backoff turns radio
//! failures into data stalls that outlive the outage itself.

pub mod tcp;

pub use tcp::{
    simulate_transfer, try_simulate_transfer, CongestionControl, LinkModel, LossEpisode, Outage,
    TcpConfig, TcpError, TcpTrace,
};
