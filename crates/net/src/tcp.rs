//! A miniature TCP Reno sender/receiver over a lossy, outage-prone link.
//!
//! Built for the paper's Fig 9: when a handover failure takes the radio
//! down, TCP's retransmission timer backs off exponentially, so the
//! data stall outlives the radio outage (their trace: a 2.3 s failure
//! inflated RTO to 6.28 s and stalled the transfer ~9 s). The model is
//! packet-granular and slotted at 1 ms:
//!
//! * slow start / congestion avoidance / fast retransmit on 3 dup-acks
//!   (Reno), cumulative acks, out-of-order buffering at the receiver;
//! * RTO per RFC 6298 (SRTT/RTTVAR smoothing, Karn's algorithm, binary
//!   exponential backoff, min/max clamps);
//! * the link drops every packet while an outage is active, plus i.i.d.
//!   random loss otherwise, and enforces a rate cap;
//! * cellular link pathologies: a finite bottleneck queue whose
//!   queuing delay inflates the RTT ([`BloatEpisode`]), delay-jitter
//!   spikes ([`JitterEpisode`]) and NAT rebinds that silently kill the
//!   flow ([`NatRebind`]) — all seeded and RNG-isolated (the jitter
//!   stream derives from [`LinkModel::pathology_seed`], never from the
//!   loss-coin stream, so adding a pathology cannot perturb the
//!   legacy replay).
//!
//! Sender-side countermeasures (spurious-RTO undo, zombie
//! re-establishment, REM-forecast freezing) live in
//! [`crate::resilience`] and are driven through
//! [`try_simulate_transfer_resilient`]; the plain entry points run
//! the vanilla loss-based sender bit-identically to before.

use crate::resilience::{NetStats, RecoveryEvent, RecoveryKind, ResilienceConfig};
use rand::Rng;
use rem_num::rng::child_rng;
use rem_num::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A malformed TCP scenario: configuration or link parameters that
/// would make the replay meaningless (NaN timers, negative capacity,
/// probabilities outside `[0, 1]`, …).
///
/// Produced by [`TcpConfig::validate`], [`LinkModel::validate`] and
/// [`try_simulate_transfer`] instead of panicking mid-replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpError {
    /// The sender configuration is invalid.
    InvalidConfig(String),
    /// The link model is invalid.
    InvalidLink(String),
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpError::InvalidConfig(why) => write!(f, "invalid TCP config: {why}"),
            TcpError::InvalidLink(why) => write!(f, "invalid link model: {why}"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Congestion-control algorithm (smoltcp ships the same pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionControl {
    /// Classic AIMD Reno.
    Reno,
    /// CUBIC (RFC 8312): cubic window growth keyed to time since the
    /// last loss; the Linux default and the sender behind most
    /// real-world HSR iperf traces.
    Cubic,
}

/// TCP sender configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Congestion-control algorithm.
    pub congestion: CongestionControl,
    /// Segment size in bytes.
    pub mss_bytes: u64,
    /// Initial congestion window (segments).
    pub init_cwnd: f64,
    /// Initial ssthresh (segments).
    pub init_ssthresh: f64,
    /// Minimum RTO (ms). RFC 6298 says 1 s; Linux uses 200 ms.
    pub rto_min_ms: f64,
    /// Maximum RTO (ms).
    pub rto_max_ms: f64,
    /// Receiver window cap (segments).
    pub rwnd: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            congestion: CongestionControl::Reno,
            mss_bytes: 1448,
            init_cwnd: 10.0,
            init_ssthresh: 64.0,
            rto_min_ms: 200.0,
            rto_max_ms: 60_000.0,
            rwnd: 512.0,
        }
    }
}

impl TcpConfig {
    /// Checks the configuration for values the replay cannot handle.
    pub fn validate(&self) -> Result<(), TcpError> {
        let bad = |why: &str| Err(TcpError::InvalidConfig(why.to_string()));
        if self.mss_bytes == 0 {
            return bad("mss_bytes must be positive");
        }
        if !(self.init_cwnd.is_finite() && self.init_cwnd >= 1.0) {
            return bad("init_cwnd must be finite and >= 1");
        }
        if !(self.init_ssthresh.is_finite() && self.init_ssthresh >= 1.0) {
            return bad("init_ssthresh must be finite and >= 1");
        }
        if !(self.rto_min_ms.is_finite() && self.rto_min_ms > 0.0) {
            return bad("rto_min_ms must be finite and positive");
        }
        if !(self.rto_max_ms.is_finite() && self.rto_max_ms >= self.rto_min_ms) {
            return bad("rto_max_ms must be finite and >= rto_min_ms");
        }
        if !(self.rwnd.is_finite() && self.rwnd >= 1.0) {
            return bad("rwnd must be finite and >= 1");
        }
        Ok(())
    }
}

/// A radio outage interval during which every packet is lost.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Start (ms).
    pub start_ms: f64,
    /// End (ms).
    pub end_ms: f64,
}

impl Outage {
    /// Whether `t` falls inside the outage.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }

    /// Outage duration.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// A bursty-loss window: while active, the packet-loss probability is
/// raised to `loss_prob` (the base random loss still applies outside).
///
/// Fault-injection campaigns map their TCP loss bursts onto these
/// episodes, so a radio-layer fault plan degrades the transport replay
/// without taking the link fully down the way an [`Outage`] does.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LossEpisode {
    /// Start (ms).
    pub start_ms: f64,
    /// End (ms).
    pub end_ms: f64,
    /// Loss probability while the episode is active.
    pub loss_prob: f64,
}

impl LossEpisode {
    /// Whether `t` falls inside the episode.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }
}

/// A bufferbloat episode: while active, every packet passes through a
/// finite bottleneck queue that services one packet per
/// `1 / drain_pkts_per_ms` ms. Backlog inflates the delivery delay
/// (and hence the measured RTT) deterministically — no RNG is
/// involved — and a packet arriving to a full queue (`queue_pkts`
/// packets of backlog) is tail-dropped.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BloatEpisode {
    /// Start (ms).
    pub start_ms: f64,
    /// End (ms).
    pub end_ms: f64,
    /// Bottleneck service rate while the episode is active
    /// (packets per ms; well below the link capacity).
    pub drain_pkts_per_ms: f64,
    /// Queue capacity in packets; beyond it packets are tail-dropped.
    pub queue_pkts: f64,
    /// Cross-traffic backlog already sitting in the queue when the
    /// episode starts. This is what makes bufferbloat *spike* the RTT
    /// instead of ramping it: the first own packet of the episode
    /// waits behind the standing queue, so delay jumps by
    /// `standing_pkts / drain_pkts_per_ms` in one RTT — far past the
    /// sender's adapted RTO. Absent in links serialized before this
    /// field existed (defaults to an empty queue).
    #[serde(default)]
    pub standing_pkts: f64,
}

impl BloatEpisode {
    /// Whether `t` falls inside the episode.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }

    /// Worst-case queuing delay of the full queue (ms).
    pub fn max_queue_delay_ms(&self) -> f64 {
        self.queue_pkts / self.drain_pkts_per_ms
    }
}

/// A delay-jitter episode: packets sent while it is active pick up an
/// extra one-way delay drawn uniformly from `[0, spike_ms]` — from the
/// isolated pathology RNG stream, never the loss-coin stream.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JitterEpisode {
    /// Start (ms).
    pub start_ms: f64,
    /// End (ms).
    pub end_ms: f64,
    /// Maximum extra one-way delay (ms).
    pub spike_ms: f64,
}

impl JitterEpisode {
    /// Whether `t` falls inside the episode.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_ms && t < self.end_ms
    }
}

/// A NAT rebind: at `t_ms` the middlebox drops the flow's binding
/// without signalling either end. Every packet and ack crossing the
/// NAT afterwards is silently eaten until the sender re-establishes
/// (which a vanilla sender never does — the "zombie connection" from
/// the CGNAT campaign journals: the socket reports healthy while every
/// send vanishes).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NatRebind {
    /// When the binding dies (ms).
    pub t_ms: f64,
}

/// The path model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkModel {
    /// Base round-trip time (ms).
    pub rtt_ms: f64,
    /// Capacity in packets per millisecond.
    pub capacity_pkts_per_ms: f64,
    /// Random loss probability outside outages.
    pub loss_prob: f64,
    /// Radio outages (e.g. from handover failures).
    pub outages: Vec<Outage>,
    /// Bursty-loss windows (e.g. from injected TCP faults). Absent in
    /// serialized links from before this field existed.
    #[serde(default)]
    pub episodes: Vec<LossEpisode>,
    /// Bufferbloat episodes (finite bottleneck queue). Absent in links
    /// serialized before the pathology layer existed.
    #[serde(default)]
    pub bloat: Vec<BloatEpisode>,
    /// Delay-jitter spike episodes.
    #[serde(default)]
    pub jitter: Vec<JitterEpisode>,
    /// NAT rebind events.
    #[serde(default)]
    pub rebinds: Vec<NatRebind>,
    /// Seed of the isolated pathology RNG stream (jitter draws). Kept
    /// separate from the replay RNG so fault plans never perturb the
    /// loss-coin sequence.
    #[serde(default)]
    pub pathology_seed: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self {
            rtt_ms: 40.0,
            capacity_pkts_per_ms: 2.0,
            loss_prob: 0.0,
            outages: vec![],
            episodes: vec![],
            bloat: vec![],
            jitter: vec![],
            rebinds: vec![],
            pathology_seed: 0,
        }
    }
}

impl LinkModel {
    /// Whether a radio outage is active at `t`.
    pub fn is_down(&self, t: f64) -> bool {
        self.outages.iter().any(|o| o.contains(t))
    }

    /// The bufferbloat episode active at `t`, if any.
    pub fn bloat_at(&self, t: f64) -> Option<&BloatEpisode> {
        self.bloat.iter().find(|b| b.contains(t))
    }

    /// The jitter episode active at `t`, if any.
    pub fn jitter_at(&self, t: f64) -> Option<&JitterEpisode> {
        self.jitter.iter().find(|j| j.contains(t))
    }

    /// The NAT binding epoch at `t`: the number of rebinds that have
    /// happened. A packet crossing the NAT is delivered only when the
    /// epoch it was sent under is still current.
    pub fn rebind_epoch_at(&self, t: f64) -> usize {
        self.rebinds.iter().filter(|r| r.t_ms <= t).count()
    }

    /// Effective loss probability at `t`: the base rate, raised by any
    /// active bursty-loss episode.
    pub fn loss_prob_at(&self, t: f64) -> f64 {
        self.episodes
            .iter()
            .filter(|e| e.contains(t))
            .fold(self.loss_prob, |p, e| p.max(e.loss_prob))
    }

    /// Checks the link for values the replay cannot handle.
    pub fn validate(&self) -> Result<(), TcpError> {
        let bad = |why: String| Err(TcpError::InvalidLink(why));
        if !(self.rtt_ms.is_finite() && self.rtt_ms > 0.0) {
            return bad("rtt_ms must be finite and positive".into());
        }
        if !(self.capacity_pkts_per_ms.is_finite() && self.capacity_pkts_per_ms > 0.0) {
            return bad("capacity_pkts_per_ms must be finite and positive".into());
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return bad(format!("loss_prob {} outside [0, 1]", self.loss_prob));
        }
        for o in &self.outages {
            if !(o.start_ms.is_finite() && o.end_ms.is_finite() && o.start_ms <= o.end_ms) {
                return bad(format!("outage [{}, {}] is malformed", o.start_ms, o.end_ms));
            }
        }
        for e in &self.episodes {
            if !(e.start_ms.is_finite() && e.end_ms.is_finite() && e.start_ms <= e.end_ms) {
                return bad(format!("episode [{}, {}] is malformed", e.start_ms, e.end_ms));
            }
            if !(0.0..=1.0).contains(&e.loss_prob) {
                return bad(format!("episode loss_prob {} outside [0, 1]", e.loss_prob));
            }
        }
        for b in &self.bloat {
            if !(b.start_ms.is_finite() && b.end_ms.is_finite() && b.start_ms <= b.end_ms) {
                return bad(format!("bloat episode [{}, {}] is malformed", b.start_ms, b.end_ms));
            }
            if !(b.drain_pkts_per_ms.is_finite() && b.drain_pkts_per_ms > 0.0) {
                return bad("bloat drain_pkts_per_ms must be finite and positive".into());
            }
            if !(b.queue_pkts.is_finite() && b.queue_pkts >= 1.0) {
                return bad("bloat queue_pkts must be finite and >= 1".into());
            }
            if !(b.standing_pkts.is_finite() && b.standing_pkts >= 0.0) {
                return bad("bloat standing_pkts must be finite and >= 0".into());
            }
        }
        for j in &self.jitter {
            if !(j.start_ms.is_finite() && j.end_ms.is_finite() && j.start_ms <= j.end_ms) {
                return bad(format!("jitter episode [{}, {}] is malformed", j.start_ms, j.end_ms));
            }
            if !(j.spike_ms.is_finite() && j.spike_ms >= 0.0) {
                return bad("jitter spike_ms must be finite and non-negative".into());
            }
        }
        for r in &self.rebinds {
            if !(r.t_ms.is_finite() && r.t_ms >= 0.0) {
                return bad(format!("rebind at {} must be finite and non-negative", r.t_ms));
            }
        }
        Ok(())
    }
}

/// One RTO expiry record: `(time, rto after backoff)`.
pub type RtoEvent = (f64, f64);

/// Result of a simulated transfer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TcpTrace {
    /// `(time_ms, cumulative_acked_bytes)` — stepwise goodput curve.
    pub ack_timeline: Vec<(f64, u64)>,
    /// RTO expiries with the post-backoff RTO value.
    pub rto_events: Vec<RtoEvent>,
    /// Final cumulative acked bytes.
    pub total_acked_bytes: u64,
    /// Simulation horizon (ms).
    pub duration_ms: f64,
    /// Resilience outcome counters (recovery actions, pathology drops).
    /// Zero/empty for traces from before the resilience layer existed.
    #[serde(default)]
    pub net: NetStats,
}

impl TcpTrace {
    /// Goodput in Mbit/s over the whole run.
    pub fn mean_goodput_mbps(&self) -> f64 {
        if self.duration_ms <= 0.0 {
            return 0.0;
        }
        self.total_acked_bytes as f64 * 8.0 / (self.duration_ms * 1e3)
    }

    /// Stall periods: maximal gaps between consecutive goodput
    /// deliveries longer than `min_gap_ms` (also counting the tail gap
    /// to the horizon).
    pub fn stall_periods(&self, min_gap_ms: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut last = 0.0;
        for &(t, _) in &self.ack_timeline {
            if t - last > min_gap_ms {
                out.push((last, t));
            }
            last = t;
        }
        if self.duration_ms - last > min_gap_ms {
            out.push((last, self.duration_ms));
        }
        out
    }

    /// Total stalled time with the given gap threshold.
    pub fn total_stall_ms(&self, min_gap_ms: f64) -> f64 {
        self.stall_periods(min_gap_ms).iter().map(|(a, b)| b - a).sum()
    }

    /// Throughput series in Mbit/s over fixed bins (for Fig 9b).
    pub fn throughput_series_mbps(&self, bin_ms: f64) -> Vec<(f64, f64)> {
        if bin_ms <= 0.0 {
            return Vec::new();
        }
        let bins = (self.duration_ms / bin_ms).ceil() as usize;
        let mut acc = vec![0u64; bins.max(1)];
        let mut prev = 0u64;
        for &(t, total) in &self.ack_timeline {
            let idx = ((t / bin_ms) as usize).min(acc.len() - 1);
            acc[idx] += total - prev;
            prev = total;
        }
        acc.iter()
            .enumerate()
            .map(|(i, &b)| ((i as f64 + 0.5) * bin_ms, b as f64 * 8.0 / (bin_ms * 1e3)))
            .collect()
    }
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    sent_at_ms: f64,
    retransmitted: bool,
}

/// Simulates a bulk transfer (infinite source, like iperf) for
/// `duration_ms` over `link`. Deterministic given the RNG.
///
/// Panics on malformed inputs; use [`try_simulate_transfer`] to get a
/// typed [`TcpError`] instead.
pub fn simulate_transfer(
    cfg: &TcpConfig,
    link: &LinkModel,
    duration_ms: f64,
    rng: &mut SimRng,
) -> TcpTrace {
    match try_simulate_transfer(cfg, link, duration_ms, rng) {
        Ok(trace) => trace,
        Err(e) => panic!("{e}"),
    }
}

/// Validating front door to [`simulate_transfer`]: rejects malformed
/// configs and links with a [`TcpError`] rather than producing NaN
/// timers or panicking mid-replay. Runs the vanilla loss-based sender.
pub fn try_simulate_transfer(
    cfg: &TcpConfig,
    link: &LinkModel,
    duration_ms: f64,
    rng: &mut SimRng,
) -> Result<TcpTrace, TcpError> {
    try_simulate_transfer_resilient(cfg, &ResilienceConfig::vanilla(), link, duration_ms, rng)
}

/// [`try_simulate_transfer_resilient`] that panics on malformed input.
pub fn simulate_transfer_resilient(
    cfg: &TcpConfig,
    res: &ResilienceConfig,
    link: &LinkModel,
    duration_ms: f64,
    rng: &mut SimRng,
) -> TcpTrace {
    match try_simulate_transfer_resilient(cfg, res, link, duration_ms, rng) {
        Ok(trace) => trace,
        Err(e) => panic!("{e}"),
    }
}

/// Simulates a bulk transfer with the given sender-side resilience
/// switches. With [`ResilienceConfig::vanilla`] and a pathology-free
/// link this is bit-identical (same RNG draw sequence, same trace) to
/// the historical [`try_simulate_transfer`].
pub fn try_simulate_transfer_resilient(
    cfg: &TcpConfig,
    res: &ResilienceConfig,
    link: &LinkModel,
    duration_ms: f64,
    rng: &mut SimRng,
) -> Result<TcpTrace, TcpError> {
    cfg.validate()?;
    res.validate()?;
    link.validate()?;
    if !(duration_ms.is_finite() && duration_ms >= 0.0) {
        return Err(TcpError::InvalidLink(format!(
            "duration_ms {duration_ms} must be finite and non-negative"
        )));
    }
    let owd = link.rtt_ms / 2.0;
    // Jitter draws come from this isolated stream: creating it never
    // touches `rng`, and links without jitter episodes never draw from
    // it, so pathology-free replays keep their historical sequences.
    let mut path_rng = child_rng(link.pathology_seed, "net/pathology");
    let mut path = PathState { q_busy_until: 0.0, sender_epoch: 0 };
    let mut net = NetStats::default();

    // Trusted forecast windows; stale ones degrade to vanilla handling
    // and leave a mark in the numerical-health ledger.
    let mut freeze_windows: Vec<(f64, f64)> = Vec::new();
    if let Some(fc) = &res.forecast {
        for w in &fc.windows {
            if fc.is_fresh(w) {
                freeze_windows.push((w.start_ms, w.end_ms));
            } else {
                net.forecast_windows_stale += 1;
                rem_num::health::record(|d| d.forecast_fallbacks += 1);
            }
        }
    }

    // Sender state.
    let mut cwnd = cfg.init_cwnd;
    let mut ssthresh = cfg.init_ssthresh;
    let mut next_seq: u64 = 0; // next new sequence number to send
    let mut snd_una: u64 = 0; // lowest unacked
    let mut dup_acks = 0u32;
    let mut srtt: Option<f64> = None;
    let mut rttvar = 0.0;
    let mut rto = 1000.0f64;
    let mut rto_deadline: Option<f64> = None;
    let mut backoff = 1.0f64;
    let mut recover_seq: u64 = 0; // fast-recovery guard
    let mut rto_recover_until: u64 = 0; // go-back-N horizon after an RTO
    // CUBIC state (RFC 8312): window max before the last reduction and
    // the epoch the cubic curve is anchored to.
    const CUBIC_C: f64 = 0.4;
    const CUBIC_BETA: f64 = 0.7;
    let mut w_max = cfg.init_cwnd;
    let mut cubic_epoch: Option<f64> = None;
    let mut cubic_k = 0.0f64;
    // Resilience state: the pre-collapse (cwnd, ssthresh) saved at the
    // first RTO of a backoff run (for the spurious-timeout undo), the
    // zero-progress RTO counter feeding the zombie detector, the
    // in-progress re-establishment handshake, its bounded backoff, and
    // which forecast window (if any) the sender is frozen across.
    let mut spurious_save: Option<(f64, f64)> = None;
    let mut consecutive_rtos = 0u32;
    let mut reconnect_until: Option<f64> = None;
    let mut reconnect_backoff = res.reconnect_backoff_ms;
    let mut frozen_since: Option<f64> = None;

    // Receiver state.
    let mut rcv_next: u64 = 0;
    let mut ooo: std::collections::BTreeSet<u64> = Default::default();

    // Packets in flight: seq -> metadata. Ack events: time -> acks.
    let mut inflight: BTreeMap<u64, InFlight> = BTreeMap::new();
    // Scheduled deliveries at the receiver:
    // arrival time (us) -> (seq, was_retransmit, NAT epoch at send).
    let mut deliveries: BTreeMap<u64, Vec<(u64, bool, usize)>> = BTreeMap::new();
    // Scheduled ack arrivals at the sender:
    // time (us) -> (cumulative ack, is_dup, acks_a_retransmit, NAT epoch).
    #[allow(clippy::type_complexity)]
    let mut acks: BTreeMap<u64, Vec<(u64, bool, bool, usize)>> = BTreeMap::new();

    let mut trace = TcpTrace {
        ack_timeline: Vec::new(),
        rto_events: Vec::new(),
        total_acked_bytes: 0,
        duration_ms,
        net: NetStats::default(),
    };

    let to_us = |t: f64| (t * 1000.0).round() as u64;
    let tick_ms = 1.0;
    let mut now = 0.0f64;

    while now < duration_ms {
        let now_us = to_us(now);

        // Forecast freeze bookkeeping: entering a trusted window logs
        // the action and freezes the congestion state; leaving it
        // probes immediately instead of waiting out a backed-off timer.
        let freeze = freeze_windows.iter().copied().find(|&(s, e)| now >= s && now < e);
        match (freeze, frozen_since) {
            (Some((s, _)), since) if since != Some(s) => {
                frozen_since = Some(s);
                net.forecast_windows_used += 1;
                net.recovery_events
                    .push(RecoveryEvent { t_ms: now, kind: RecoveryKind::ForecastFreeze });
            }
            (None, Some(_)) => {
                frozen_since = None;
                // The predicted outage is over: resume with an
                // immediate probe retransmit, timer un-backed-off.
                if snd_una < next_seq {
                    let arrival =
                        transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                    inflight
                        .insert(snd_una, InFlight { sent_at_ms: now, retransmitted: true });
                    if let Some(t_exit) = arrival {
                        deliveries.entry(to_us(t_exit + owd)).or_default().push((
                            snd_una,
                            true,
                            link.rebind_epoch_at(now),
                        ));
                    }
                    rto_deadline = Some(now + rto);
                }
            }
            _ => {}
        }
        let frozen = frozen_since.is_some();
        if frozen {
            net.frozen_ms += tick_ms;
        }

        // 1. Receiver: process packet deliveries up to now.
        let due: Vec<u64> = deliveries.range(..=now_us).map(|(&k, _)| k).collect();
        for k in due {
            for (seq, was_retx, epoch) in deliveries.remove(&k).unwrap_or_default() {
                // A rebind between send and arrival eats the packet at
                // the NAT.
                if link.rebind_epoch_at(now) != epoch {
                    net.rebind_drops += 1;
                    continue;
                }
                let is_dup_ack;
                if seq == rcv_next {
                    rcv_next += 1;
                    while ooo.remove(&rcv_next) {
                        rcv_next += 1;
                    }
                    is_dup_ack = false;
                } else if seq > rcv_next {
                    ooo.insert(seq);
                    is_dup_ack = true;
                } else {
                    // Already-received (spurious retransmit): still acks.
                    is_dup_ack = false;
                }
                // Ack travels back; acks are never lost here beyond the
                // link state at send time (one loss coin per packet),
                // but a rebind while the ack is in flight eats it.
                let back = to_us(now + owd);
                acks.entry(back).or_default().push((
                    rcv_next,
                    is_dup_ack,
                    was_retx,
                    link.rebind_epoch_at(now),
                ));
            }
        }

        // 2. Sender: process ack arrivals.
        let due: Vec<u64> = acks.range(..=now_us).map(|(&k, _)| k).collect();
        for k in due {
            for (cum, is_dup, acks_retx, epoch) in acks.remove(&k).unwrap_or_default() {
                if link.rebind_epoch_at(now) != epoch {
                    net.rebind_drops += 1;
                    continue;
                }
                if cum > snd_una {
                    // New data acked.
                    let newly = cum - snd_una;
                    // RTT sample from the highest newly-acked original
                    // transmission (Karn: skip retransmitted).
                    if let Some(info) = inflight.get(&(cum - 1)) {
                        if !info.retransmitted {
                            let sample = now - info.sent_at_ms;
                            let smoothed = match srtt {
                                None => {
                                    rttvar = sample / 2.0;
                                    sample
                                }
                                Some(s) => {
                                    rttvar = 0.75 * rttvar + 0.25 * (s - sample).abs();
                                    0.875 * s + 0.125 * sample
                                }
                            };
                            srtt = Some(smoothed);
                            rto = (smoothed + (4.0 * rttvar).max(1.0))
                                .clamp(cfg.rto_min_ms, cfg.rto_max_ms);
                        }
                    }
                    for s in snd_una..cum {
                        inflight.remove(&s);
                    }
                    snd_una = cum;
                    backoff = 1.0;
                    dup_acks = 0;
                    consecutive_rtos = 0;
                    reconnect_backoff = res.reconnect_backoff_ms;
                    // Spurious-timeout detection (Eifel/F-RTO style):
                    // an ack for an *original* transmission arriving
                    // while an RTO collapse is outstanding proves the
                    // timer fired although nothing was lost — undo the
                    // collapse. An ack for the retransmission instead
                    // validates the timeout. Go-back-N stays armed
                    // either way: any real holes (e.g. tail drops at
                    // a bloated queue) still repair on partial acks
                    // instead of waiting out a delay-inflated RTO.
                    if let Some((saved_cwnd, saved_ssthresh)) = spurious_save {
                        if res.frto && !acks_retx {
                            net.spurious_rto_detected += 1;
                            if saved_cwnd > cwnd {
                                // RFC 4015-style cautious restore: resume at
                                // the saved slow-start threshold (at least half
                                // the saved window) instead of the full saved
                                // cwnd -- the spurious timeout was triggered by
                                // queuing delay, so the bottleneck is likely
                                // still congested and a full-window burst would
                                // overflow it.
                                cwnd = saved_ssthresh.max(saved_cwnd / 2.0).min(cfg.rwnd);
                                ssthresh = saved_ssthresh;
                                net.spurious_rto_undone += 1;
                                net.recovery_events.push(RecoveryEvent {
                                    t_ms: now,
                                    kind: RecoveryKind::SpuriousRtoUndo,
                                });
                            }
                        }
                        spurious_save = None;
                    }
                    // Congestion control (held still across a forecast
                    // freeze: predicted-outage stragglers must not move
                    // the window either way).
                    if !frozen {
                        if cwnd < ssthresh {
                            cwnd += newly as f64; // slow start
                        } else {
                            match cfg.congestion {
                                CongestionControl::Reno => {
                                    cwnd += newly as f64 / cwnd;
                                }
                                CongestionControl::Cubic => {
                                    // W(t) = C (t - K)^3 + W_max, t since the
                                    // loss epoch started.
                                    let epoch = *cubic_epoch.get_or_insert(now);
                                    let t_s = (now - epoch) / 1e3;
                                    let target =
                                        CUBIC_C * (t_s - cubic_k).powi(3) + w_max;
                                    if target > cwnd {
                                        cwnd += (target - cwnd).min(newly as f64);
                                    } else {
                                        // TCP-friendly floor: grow at least
                                        // like Reno.
                                        cwnd += 0.5 * newly as f64 / cwnd;
                                    }
                                }
                            }
                        }
                        cwnd = cwnd.min(cfg.rwnd);
                    }
                    trace.total_acked_bytes = snd_una * cfg.mss_bytes;
                    trace.ack_timeline.push((now, trace.total_acked_bytes));
                    // Go-back-N after an RTO: segments up to the loss
                    // horizon were (likely) lost with the window;
                    // retransmit the next hole immediately on each
                    // partial ack instead of waiting one RTO per segment.
                    if !frozen && snd_una < rto_recover_until && inflight.contains_key(&snd_una)
                    {
                        let arrival =
                            transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                        inflight
                            .insert(snd_una, InFlight { sent_at_ms: now, retransmitted: true });
                        if let Some(t_exit) = arrival {
                            deliveries.entry(to_us(t_exit + owd)).or_default().push((
                                snd_una,
                                true,
                                link.rebind_epoch_at(now),
                            ));
                        }
                    }
                    rto_deadline =
                        if inflight.is_empty() { None } else { Some(now + rto * backoff) };
                } else if is_dup && cum == snd_una {
                    dup_acks += 1;
                    if dup_acks == 3 && snd_una >= recover_seq && !frozen {
                        // Fast retransmit: multiplicative decrease
                        // (Reno halves; CUBIC reduces to beta*cwnd and
                        // re-anchors the cubic curve).
                        match cfg.congestion {
                            CongestionControl::Reno => {
                                ssthresh = (cwnd / 2.0).max(2.0);
                            }
                            CongestionControl::Cubic => {
                                w_max = cwnd;
                                cubic_k = (w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                                cubic_epoch = None;
                                ssthresh = (cwnd * CUBIC_BETA).max(2.0);
                            }
                        }
                        cwnd = ssthresh;
                        recover_seq = next_seq;
                        let arrival =
                            transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                        inflight
                            .insert(snd_una, InFlight { sent_at_ms: now, retransmitted: true });
                        if let Some(t_exit) = arrival {
                            deliveries.entry(to_us(t_exit + owd)).or_default().push((
                                snd_una,
                                true,
                                link.rebind_epoch_at(now),
                            ));
                        }
                        rto_deadline = Some(now + rto * backoff);
                    }
                }
            }
        }

        // 3. RTO expiry.
        if let Some(deadline) = rto_deadline {
            if now >= deadline && snd_una < next_seq {
                if let Some((_, freeze_end)) = freeze {
                    // Forecast says the radio is out: the timeout is
                    // expected, not congestion. Defer the timer to the
                    // window end without backing off or collapsing.
                    rto_deadline = Some(freeze_end);
                } else if res.zombie_rtos > 0 && consecutive_rtos + 1 >= res.zombie_rtos {
                    // Zombie connection: repeated zero-progress RTOs
                    // mean the path silently died (NAT rebind). Tear
                    // down and re-establish on the current binding
                    // instead of backing off forever.
                    net.reconnects += 1;
                    net.recovery_events
                        .push(RecoveryEvent { t_ms: now, kind: RecoveryKind::Reconnect });
                    path.sender_epoch = link.rebind_epoch_at(now);
                    cwnd = cfg.init_cwnd.min(cfg.rwnd);
                    dup_acks = 0;
                    backoff = 1.0;
                    rto_recover_until = next_seq;
                    spurious_save = None;
                    consecutive_rtos = 0;
                    reconnect_until = Some(now + link.rtt_ms);
                    rto_deadline = None;
                } else {
                    consecutive_rtos += 1;
                    // The pre-collapse state, captured at the *first*
                    // timeout of a backoff run so a later original-ack
                    // can prove the whole run spurious.
                    if res.frto {
                        spurious_save.get_or_insert((cwnd, ssthresh));
                    }
                    backoff = (backoff * 2.0).min(cfg.rto_max_ms / rto);
                    trace.rto_events.push((now, (rto * backoff).min(cfg.rto_max_ms)));
                    ssthresh = match cfg.congestion {
                        CongestionControl::Reno => (cwnd / 2.0).max(2.0),
                        CongestionControl::Cubic => {
                            w_max = cwnd.max(w_max * CUBIC_BETA);
                            cubic_k = (w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                            cubic_epoch = None;
                            (cwnd * CUBIC_BETA).max(2.0)
                        }
                    };
                    cwnd = 1.0;
                    dup_acks = 0;
                    rto_recover_until = next_seq;
                    // Retransmit the lowest unacked segment.
                    let arrival = transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                    inflight
                        .insert(snd_una, InFlight { sent_at_ms: now, retransmitted: true });
                    if let Some(t_exit) = arrival {
                        deliveries.entry(to_us(t_exit + owd)).or_default().push((
                            snd_una,
                            true,
                            link.rebind_epoch_at(now),
                        ));
                    }
                    rto_deadline = Some(now + (rto * backoff).min(cfg.rto_max_ms));
                }
            }
        }

        // 3b. Re-establishment handshake completion: one RTT after the
        // zombie teardown the new binding is live; probe immediately.
        if let Some(rc) = reconnect_until {
            if now >= rc {
                reconnect_until = None;
                if snd_una < next_seq {
                    let arrival = transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                    inflight
                        .insert(snd_una, InFlight { sent_at_ms: now, retransmitted: true });
                    if let Some(t_exit) = arrival {
                        deliveries.entry(to_us(t_exit + owd)).or_default().push((
                            snd_una,
                            true,
                            link.rebind_epoch_at(now),
                        ));
                    }
                    // If the probe dies too the next attempt waits out
                    // the bounded reconnect backoff, not 2^n RTOs.
                    rto_deadline = Some(now + rto.max(reconnect_backoff));
                }
                reconnect_backoff =
                    (reconnect_backoff * 2.0).min(res.reconnect_backoff_max_ms);
            }
        }

        // 4. Send new data up to cwnd and capacity.
        if !frozen && reconnect_until.is_none() {
            let mut budget = (link.capacity_pkts_per_ms * tick_ms) as u64;
            while budget > 0 && (next_seq - snd_una) < cwnd as u64 {
                let arrival = transmit(link, now, &mut path, &mut net, rng, &mut path_rng);
                inflight.insert(next_seq, InFlight { sent_at_ms: now, retransmitted: false });
                if let Some(t_exit) = arrival {
                    deliveries.entry(to_us(t_exit + owd)).or_default().push((
                        next_seq,
                        false,
                        link.rebind_epoch_at(now),
                    ));
                }
                if rto_deadline.is_none() {
                    rto_deadline = Some(now + rto * backoff);
                }
                next_seq += 1;
                budget -= 1;
            }
        }

        now += tick_ms;
    }
    trace.net = net;
    Ok(trace)
}

/// Sender-side path state threaded through [`transmit`]: the virtual
/// bottleneck-queue horizon and the NAT binding epoch the sender last
/// (re-)established on.
struct PathState {
    q_busy_until: f64,
    sender_epoch: usize,
}

/// Push one packet into the path at time `t`. Returns the time the
/// packet *exits* the bottleneck (caller adds the propagation OWD), or
/// `None` if the path ate it (dead NAT binding, outage, queue
/// overflow, or the random-loss coin).
///
/// RNG discipline: the main `rng` is consumed *only* for the loss coin
/// and only when `loss_prob_at > 0` — exactly the legacy sequence — so
/// pathology-free replays stay bit-identical to the historical model.
/// Jitter draws come from the isolated `path_rng` stream.
fn transmit(
    link: &LinkModel,
    t: f64,
    path: &mut PathState,
    net: &mut NetStats,
    rng: &mut SimRng,
    path_rng: &mut SimRng,
) -> Option<f64> {
    // A NAT rebind invalidated the 5-tuple: every send on the old
    // binding is silently eaten. No RNG consumed.
    if link.rebind_epoch_at(t) != path.sender_epoch {
        net.rebind_drops += 1;
        return None;
    }
    if link.is_down(t) {
        return None;
    }
    // Bufferbloat: a finite FIFO drains at `drain_pkts_per_ms`; the
    // packet waits behind everything already queued, or tail-drops if
    // the backlog exceeds the buffer.
    let mut extra = 0.0;
    if let Some(b) = link.bloat_at(t) {
        let service_ms = 1.0 / b.drain_pkts_per_ms;
        // Cross-traffic standing queue: at episode onset the buffer
        // already holds `standing_pkts` worth of someone else's
        // packets, and it drains from there.
        let standing_horizon = b.start_ms + b.standing_pkts * service_ms;
        if path.q_busy_until < standing_horizon {
            path.q_busy_until = standing_horizon;
        }
        let service_start = t.max(path.q_busy_until);
        if service_start - t >= b.queue_pkts as f64 * service_ms {
            net.queue_overflow_drops += 1;
            return None;
        }
        path.q_busy_until = service_start + service_ms;
        extra += path.q_busy_until - t;
    }
    let p = link.loss_prob_at(t);
    if p > 0.0 && rng.gen::<f64>() < p {
        return None;
    }
    if let Some(j) = link.jitter_at(t) {
        if j.spike_ms > 0.0 {
            extra += path_rng.gen::<f64>() * j.spike_ms;
        }
    }
    Some(t + extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn run(link: &LinkModel, ms: f64, seed: u64) -> TcpTrace {
        simulate_transfer(&TcpConfig::default(), link, ms, &mut rng_from_seed(seed))
    }

    #[test]
    fn clean_link_transfers_data() {
        let t = run(&LinkModel::default(), 5_000.0, 1);
        assert!(t.total_acked_bytes > 1_000_000, "bytes={}", t.total_acked_bytes);
        assert!(t.rto_events.is_empty());
        assert!(t.stall_periods(1000.0).is_empty());
    }

    #[test]
    fn goodput_bounded_by_capacity() {
        let link = LinkModel { capacity_pkts_per_ms: 1.0, ..Default::default() };
        let t = run(&link, 5_000.0, 2);
        // 1 pkt/ms * 1448 B = ~11.6 Mbps ceiling.
        assert!(t.mean_goodput_mbps() <= 11.6 + 0.1, "{}", t.mean_goodput_mbps());
        assert!(t.mean_goodput_mbps() > 5.0);
    }

    #[test]
    fn outage_causes_stall_and_rto_backoff() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 2_000.0, end_ms: 4_500.0 }],
            ..Default::default()
        };
        let t = run(&link, 10_000.0, 3);
        // There must be a stall covering the outage.
        let stalls = t.stall_periods(1_000.0);
        assert!(!stalls.is_empty());
        let total = t.total_stall_ms(1_000.0);
        assert!(total >= 2_400.0, "stall={total}");
        // And RTO events whose backoff grew well past the base RTO
        // during the outage.
        assert!(t.rto_events.len() >= 2, "rto events: {:?}", t.rto_events);
        let max_rto = t.rto_events.iter().map(|e| e.1).fold(0.0, f64::max);
        let first_rto = t.rto_events[0].1;
        assert!(max_rto >= 2.0 * first_rto, "max={max_rto} first={first_rto}");
    }

    #[test]
    fn stall_outlives_outage_due_to_backoff() {
        // The Fig 9b phenomenon: data resumes only at the next RTO
        // expiry after the radio recovers, so the stall exceeds the
        // outage duration.
        let link = LinkModel {
            outages: vec![Outage { start_ms: 2_000.0, end_ms: 4_300.0 }],
            ..Default::default()
        };
        let t = run(&link, 15_000.0, 4);
        let total = t.total_stall_ms(1_000.0);
        assert!(total > 2_300.0, "stall {total} should exceed the 2300 ms outage");
        // But transfer recovers eventually.
        let after: Vec<_> = t.ack_timeline.iter().filter(|(tt, _)| *tt > 6_000.0).collect();
        assert!(!after.is_empty(), "transfer never recovered");
    }

    #[test]
    fn longer_outage_longer_stall() {
        let mk = |end| LinkModel {
            outages: vec![Outage { start_ms: 2_000.0, end_ms: end }],
            ..Default::default()
        };
        let short = run(&mk(3_000.0), 15_000.0, 5).total_stall_ms(1_000.0);
        let long = run(&mk(6_000.0), 15_000.0, 5).total_stall_ms(1_000.0);
        assert!(long > short, "short={short} long={long}");
    }

    #[test]
    fn random_loss_reduces_goodput() {
        let clean = run(&LinkModel::default(), 8_000.0, 6).mean_goodput_mbps();
        let lossy = run(
            &LinkModel { loss_prob: 0.02, ..Default::default() },
            8_000.0,
            6,
        )
        .mean_goodput_mbps();
        assert!(lossy < clean, "lossy={lossy} clean={clean}");
        assert!(lossy > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let link = LinkModel { loss_prob: 0.05, ..Default::default() };
        let a = run(&link, 3_000.0, 7);
        let b = run(&link, 3_000.0, 7);
        assert_eq!(a.total_acked_bytes, b.total_acked_bytes);
        assert_eq!(a.rto_events, b.rto_events);
    }

    #[test]
    fn throughput_series_shows_outage_hole() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 3_000.0, end_ms: 5_000.0 }],
            ..Default::default()
        };
        let t = run(&link, 9_000.0, 8);
        let series = t.throughput_series_mbps(1_000.0);
        // Bin centred at 3.5s and 4.5s should be (near) zero.
        let hole = series.iter().find(|(c, _)| (*c - 4_500.0).abs() < 1.0).unwrap().1;
        let before = series.iter().find(|(c, _)| (*c - 1_500.0).abs() < 1.0).unwrap().1;
        assert!(hole < 0.5, "hole={hole}");
        assert!(before > 1.0, "before={before}");
    }

    #[test]
    fn ack_timeline_is_monotone() {
        let t = run(&LinkModel { loss_prob: 0.03, ..Default::default() }, 4_000.0, 9);
        for w in t.ack_timeline.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn zero_duration_is_empty() {
        let t = run(&LinkModel::default(), 0.0, 10);
        assert_eq!(t.total_acked_bytes, 0);
        assert_eq!(t.mean_goodput_mbps(), 0.0);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn attempt(cfg: &TcpConfig, link: &LinkModel) -> Result<TcpTrace, TcpError> {
        try_simulate_transfer(cfg, link, 2_000.0, &mut rng_from_seed(1))
    }

    #[test]
    fn default_scenario_validates() {
        assert!(TcpConfig::default().validate().is_ok());
        assert!(LinkModel::default().validate().is_ok());
        assert!(attempt(&TcpConfig::default(), &LinkModel::default()).is_ok());
    }

    #[test]
    fn bad_config_is_typed_not_a_panic() {
        let cfg = TcpConfig { rto_min_ms: f64::NAN, ..Default::default() };
        assert!(matches!(attempt(&cfg, &LinkModel::default()), Err(TcpError::InvalidConfig(_))));
        let cfg = TcpConfig { mss_bytes: 0, ..Default::default() };
        assert!(matches!(cfg.validate(), Err(TcpError::InvalidConfig(_))));
        let cfg = TcpConfig { rto_max_ms: 10.0, rto_min_ms: 20.0, ..Default::default() };
        assert!(matches!(cfg.validate(), Err(TcpError::InvalidConfig(_))));
    }

    #[test]
    fn bad_link_is_typed_not_a_panic() {
        let link = LinkModel { loss_prob: 1.5, ..Default::default() };
        assert!(matches!(attempt(&TcpConfig::default(), &link), Err(TcpError::InvalidLink(_))));
        let link = LinkModel { rtt_ms: 0.0, ..Default::default() };
        assert!(matches!(link.validate(), Err(TcpError::InvalidLink(_))));
        let link = LinkModel {
            outages: vec![Outage { start_ms: 5.0, end_ms: 1.0 }],
            ..Default::default()
        };
        assert!(matches!(link.validate(), Err(TcpError::InvalidLink(_))));
        let link = LinkModel {
            episodes: vec![LossEpisode { start_ms: 0.0, end_ms: 100.0, loss_prob: 2.0 }],
            ..Default::default()
        };
        assert!(matches!(link.validate(), Err(TcpError::InvalidLink(_))));
    }

    #[test]
    fn bad_duration_is_rejected() {
        let r = try_simulate_transfer(
            &TcpConfig::default(),
            &LinkModel::default(),
            f64::NAN,
            &mut rng_from_seed(1),
        );
        assert!(matches!(r, Err(TcpError::InvalidLink(_))));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = TcpError::InvalidLink("rtt_ms must be finite and positive".into());
        assert!(e.to_string().contains("rtt_ms"));
    }
}

#[cfg(test)]
mod episode_tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn run(link: &LinkModel, ms: f64, seed: u64) -> TcpTrace {
        simulate_transfer(&TcpConfig::default(), link, ms, &mut rng_from_seed(seed))
    }

    #[test]
    fn episode_raises_loss_prob_only_inside_window() {
        let link = LinkModel {
            loss_prob: 0.01,
            episodes: vec![LossEpisode { start_ms: 100.0, end_ms: 200.0, loss_prob: 0.4 }],
            ..Default::default()
        };
        assert_eq!(link.loss_prob_at(50.0), 0.01);
        assert_eq!(link.loss_prob_at(150.0), 0.4);
        assert_eq!(link.loss_prob_at(250.0), 0.01);
        // An episode weaker than the base rate never lowers it.
        let weak = LinkModel {
            loss_prob: 0.5,
            episodes: vec![LossEpisode { start_ms: 0.0, end_ms: 100.0, loss_prob: 0.1 }],
            ..Default::default()
        };
        assert_eq!(weak.loss_prob_at(50.0), 0.5);
    }

    #[test]
    fn bursty_loss_reduces_goodput() {
        let clean = run(&LinkModel::default(), 10_000.0, 11).total_acked_bytes;
        let bursty = run(
            &LinkModel {
                episodes: vec![LossEpisode {
                    start_ms: 2_000.0,
                    end_ms: 5_000.0,
                    loss_prob: 0.35,
                }],
                ..Default::default()
            },
            10_000.0,
            11,
        )
        .total_acked_bytes;
        assert!(bursty < clean, "bursty={bursty} clean={clean}");
        assert!(bursty > 0);
    }

    #[test]
    fn episodes_deserialize_as_empty_when_absent() {
        // Links serialized before the field existed must still load.
        let json = r#"{"rtt_ms":40.0,"capacity_pkts_per_ms":2.0,"loss_prob":0.0,"outages":[]}"#;
        let link: LinkModel = serde_json::from_str(json).expect("legacy link JSON");
        assert!(link.episodes.is_empty());
    }

    #[test]
    fn episode_runs_are_deterministic() {
        let link = LinkModel {
            episodes: vec![LossEpisode { start_ms: 500.0, end_ms: 2_500.0, loss_prob: 0.3 }],
            ..Default::default()
        };
        let a = run(&link, 5_000.0, 12);
        let b = run(&link, 5_000.0, 12);
        assert_eq!(a.total_acked_bytes, b.total_acked_bytes);
        assert_eq!(a.rto_events, b.rto_events);
    }
}

#[cfg(test)]
mod cubic_tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn run_cc(cc: CongestionControl, link: &LinkModel, ms: f64, seed: u64) -> TcpTrace {
        let cfg = TcpConfig { congestion: cc, ..Default::default() };
        simulate_transfer(&cfg, link, ms, &mut rng_from_seed(seed))
    }

    #[test]
    fn cubic_transfers_on_clean_link() {
        let t = run_cc(CongestionControl::Cubic, &LinkModel::default(), 5_000.0, 1);
        assert!(t.total_acked_bytes > 1_000_000);
        assert!(t.rto_events.is_empty());
    }

    #[test]
    fn cubic_recovers_faster_than_reno_after_loss() {
        // Large BDP link with sporadic loss: CUBIC's cubic ramp regains
        // the window faster, delivering more bytes.
        let link = LinkModel {
            rtt_ms: 120.0,
            capacity_pkts_per_ms: 4.0,
            loss_prob: 0.0008,
            ..Default::default()
        };
        let reno = run_cc(CongestionControl::Reno, &link, 30_000.0, 2);
        let cubic = run_cc(CongestionControl::Cubic, &link, 30_000.0, 2);
        assert!(
            cubic.total_acked_bytes > reno.total_acked_bytes,
            "cubic={} reno={}",
            cubic.total_acked_bytes,
            reno.total_acked_bytes
        );
    }

    #[test]
    fn cubic_survives_outages_like_reno() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 4_000.0, end_ms: 6_500.0 }],
            ..Default::default()
        };
        let t = run_cc(CongestionControl::Cubic, &link, 15_000.0, 3);
        assert!(t.total_stall_ms(1_000.0) >= 2_400.0);
        assert!(t.ack_timeline.iter().any(|(tt, _)| *tt > 8_000.0), "never recovered");
    }

    #[test]
    fn cubic_deterministic() {
        let link = LinkModel { loss_prob: 0.01, ..Default::default() };
        let a = run_cc(CongestionControl::Cubic, &link, 4_000.0, 4);
        let b = run_cc(CongestionControl::Cubic, &link, 4_000.0, 4);
        assert_eq!(a.total_acked_bytes, b.total_acked_bytes);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::resilience::{ForecastWindow, RemForecast, ResilienceConfig};
    use rem_num::rng::rng_from_seed;

    fn run_res(res: &ResilienceConfig, link: &LinkModel, ms: f64, seed: u64) -> TcpTrace {
        simulate_transfer_resilient(
            &TcpConfig::default(),
            res,
            link,
            ms,
            &mut rng_from_seed(seed),
        )
    }

    fn bloated() -> LinkModel {
        LinkModel {
            bloat: vec![BloatEpisode {
                start_ms: 2_000.0,
                end_ms: 8_000.0,
                drain_pkts_per_ms: 0.05,
                queue_pkts: 120.0,
                standing_pkts: 100.0,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn vanilla_resilient_matches_legacy_bit_for_bit() {
        let link = LinkModel {
            loss_prob: 0.02,
            outages: vec![Outage { start_ms: 3_000.0, end_ms: 4_500.0 }],
            episodes: vec![LossEpisode { start_ms: 6_000.0, end_ms: 7_000.0, loss_prob: 0.3 }],
            ..Default::default()
        };
        for seed in [1u64, 9, 77] {
            let legacy = simulate_transfer(
                &TcpConfig::default(),
                &link,
                10_000.0,
                &mut rng_from_seed(seed),
            );
            let resilient = run_res(&ResilienceConfig::vanilla(), &link, 10_000.0, seed);
            assert_eq!(legacy.ack_timeline, resilient.ack_timeline, "seed {seed}");
            assert_eq!(legacy.rto_events, resilient.rto_events, "seed {seed}");
            assert_eq!(legacy.total_acked_bytes, resilient.total_acked_bytes);
        }
    }

    #[test]
    fn bufferbloat_fires_spurious_rtos_and_frto_undoes_them() {
        let link = bloated();
        let vanilla = run_res(&ResilienceConfig::vanilla(), &link, 12_000.0, 3);
        let frto = run_res(&ResilienceConfig::frto(), &link, 12_000.0, 3);
        // Queuing delay, not loss, fired the timer: no packet was
        // dropped (queue of 120 never overflows a <=512-segment
        // window at this drain rate before the timer fires).
        assert!(!vanilla.rto_events.is_empty(), "bloat should trigger RTOs");
        assert!(frto.net.spurious_rto_detected > 0, "{:?}", frto.net);
        assert!(frto.net.spurious_rto_undone > 0);
        assert!(
            frto.total_acked_bytes >= vanilla.total_acked_bytes,
            "undoing bogus collapses must not lose goodput: {} < {}",
            frto.total_acked_bytes,
            vanilla.total_acked_bytes
        );
    }

    #[test]
    fn nat_rebind_zombies_vanilla_but_recovery_reconnects() {
        let link = LinkModel { rebinds: vec![NatRebind { t_ms: 3_000.0 }], ..Default::default() };
        let vanilla = run_res(&ResilienceConfig::vanilla(), &link, 20_000.0, 5);
        let frto = run_res(&ResilienceConfig::frto(), &link, 20_000.0, 5);
        // The vanilla sender never makes progress after the rebind —
        // every retransmission dies at the NAT.
        let vanilla_after = vanilla
            .ack_timeline
            .iter()
            .filter(|(t, _)| *t > 4_000.0)
            .count();
        assert_eq!(vanilla_after, 0, "vanilla sender should zombie after the rebind");
        assert!(vanilla.net.rebind_drops > 0);
        assert!(frto.net.reconnects >= 1, "{:?}", frto.net);
        assert!(
            frto.total_acked_bytes > 2 * vanilla.total_acked_bytes,
            "reconnect should restore goodput: {} vs {}",
            frto.total_acked_bytes,
            vanilla.total_acked_bytes
        );
    }

    #[test]
    fn rebind_at_time_zero_is_survivable() {
        let link = LinkModel { rebinds: vec![NatRebind { t_ms: 0.0 }], ..Default::default() };
        // Vanilla: every send from t=0 dies; the run must still
        // terminate (acceptance: no infinite loop, no panic).
        let vanilla = run_res(&ResilienceConfig::vanilla(), &link, 20_000.0, 2);
        assert_eq!(vanilla.total_acked_bytes, 0);
        // The zombie detector re-establishes onto the post-rebind
        // binding and completes the transfer. With no RTT sample the
        // ladder starts at the 1 s conservative RTO, so the fourth
        // zero-progress expiry lands at ~15 s.
        let frto = run_res(&ResilienceConfig::frto(), &link, 20_000.0, 2);
        assert!(frto.net.reconnects >= 1);
        assert!(frto.total_acked_bytes > 100_000, "bytes={}", frto.total_acked_bytes);
    }

    #[test]
    fn forecast_freeze_cuts_outage_stall() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 3_000.0, end_ms: 5_500.0 }],
            ..Default::default()
        };
        let forecast = RemForecast {
            windows: vec![ForecastWindow { start_ms: 3_000.0, end_ms: 5_500.0 }],
            issued_at_ms: 0.0,
            freshness_ms: 10_000.0,
        };
        let vanilla = run_res(&ResilienceConfig::vanilla(), &link, 15_000.0, 4);
        let informed =
            run_res(&ResilienceConfig::rem_informed(forecast), &link, 15_000.0, 4);
        assert_eq!(informed.net.forecast_windows_used, 1);
        assert!(informed.net.frozen_ms > 2_000.0);
        assert!(
            informed.total_stall_ms(1_000.0) < vanilla.total_stall_ms(1_000.0),
            "freeze should cut the stall: {} vs {}",
            informed.total_stall_ms(1_000.0),
            vanilla.total_stall_ms(1_000.0)
        );
        assert!(informed.total_acked_bytes > vanilla.total_acked_bytes);
    }

    #[test]
    fn stale_forecast_degrades_to_vanilla_and_records_it() {
        let link = LinkModel {
            outages: vec![Outage { start_ms: 3_000.0, end_ms: 5_500.0 }],
            ..Default::default()
        };
        let forecast = RemForecast {
            windows: vec![ForecastWindow { start_ms: 3_000.0, end_ms: 5_500.0 }],
            issued_at_ms: 0.0,
            freshness_ms: 1_000.0, // window starts past the trust horizon
        };
        let _ = rem_num::health::take_thread_stats();
        let mut cfg = ResilienceConfig::rem_informed(forecast);
        cfg.frto = false;
        cfg.zombie_rtos = 0;
        let stale = run_res(&cfg, &link, 15_000.0, 4);
        let health = rem_num::health::take_thread_stats();
        let vanilla = run_res(&ResilienceConfig::vanilla(), &link, 15_000.0, 4);
        assert_eq!(stale.net.forecast_windows_stale, 1);
        assert_eq!(stale.net.forecast_windows_used, 0);
        assert_eq!(health.forecast_fallbacks, 1);
        // Behaviour is exactly vanilla: same timeline, same timers.
        assert_eq!(stale.ack_timeline, vanilla.ack_timeline);
        assert_eq!(stale.rto_events, vanilla.rto_events);
    }

    #[test]
    fn jitter_episodes_are_deterministic_and_isolated() {
        let jittery = LinkModel {
            jitter: vec![JitterEpisode { start_ms: 1_000.0, end_ms: 6_000.0, spike_ms: 900.0 }],
            pathology_seed: 11,
            ..Default::default()
        };
        let a = run_res(&ResilienceConfig::vanilla(), &jittery, 10_000.0, 6);
        let b = run_res(&ResilienceConfig::vanilla(), &jittery, 10_000.0, 6);
        assert_eq!(a.ack_timeline, b.ack_timeline);
        // Jitter slows the transfer relative to the clean link.
        let clean = run_res(&ResilienceConfig::vanilla(), &LinkModel::default(), 10_000.0, 6);
        assert!(a.total_acked_bytes < clean.total_acked_bytes);
        // A different pathology seed reshuffles the spikes without
        // touching the main RNG stream.
        let reseeded = LinkModel { pathology_seed: 12, ..jittery.clone() };
        let c = run_res(&ResilienceConfig::vanilla(), &reseeded, 10_000.0, 6);
        assert_ne!(a.ack_timeline, c.ack_timeline);
    }

    #[test]
    fn queue_overflow_drops_are_counted() {
        let link = LinkModel {
            bloat: vec![BloatEpisode {
                start_ms: 1_000.0,
                end_ms: 9_000.0,
                drain_pkts_per_ms: 0.02,
                queue_pkts: 5.0,
                standing_pkts: 0.0,
            }],
            ..Default::default()
        };
        let t = run_res(&ResilienceConfig::vanilla(), &link, 10_000.0, 8);
        assert!(t.net.queue_overflow_drops > 0, "{:?}", t.net);
    }
}
