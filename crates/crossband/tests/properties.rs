//! Property-based tests for Algorithm 1 and its baselines.

use proptest::prelude::*;
use rem_channel::delaydoppler::{dd_channel_matrix, DdGrid};
use rem_channel::{MultipathChannel, Path};
use rem_crossband::{estimate_band2, SvdEstimatorConfig};
use rem_num::c64;

/// Random channels with pairwise-distinct delay bins *and* pairwise-
/// distinct Doppler bins — Theorem 1's condition (ii) requires both
/// (two paths sharing either coordinate make Γ or Φ rank-deficient).
fn on_grid_channel() -> impl Strategy<Value = MultipathChannel> {
    (
        proptest::collection::btree_set(0usize..8, 1..4),
        proptest::collection::btree_set(0usize..6, 3),
        proptest::collection::vec((0.2f64..1.0, 0.0f64..6.28), 4),
    )
        .prop_map(|(ks, ls, gains)| {
            let grid = DdGrid::lte(16, 12);
            let n = ks.len().min(ls.len());
            let paths: Vec<Path> = ks
                .into_iter()
                .zip(ls)
                .zip(gains)
                .take(n)
                .map(|((k, l), (mag, ph))| {
                    Path::new(
                        c64(mag * ph.cos(), mag * ph.sin()),
                        k as f64 * grid.delta_tau(),
                        l as f64 * grid.delta_nu(),
                    )
                })
                .collect();
            MultipathChannel::new(paths)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same-band estimation is (near-)exact for on-grid channels.
    #[test]
    fn same_band_identity(ch in on_grid_channel()) {
        let grid = DdGrid::lte(16, 12);
        let h1 = dd_channel_matrix(&grid, &ch);
        let est = estimate_band2(&grid, &h1, 2e9, 2e9, &SvdEstimatorConfig::default());
        let rel = est.h2_dd.frobenius_dist(&h1) / h1.frobenius_norm().max(1e-12);
        prop_assert!(rel < 0.02, "rel={rel}");
    }

    /// Cross-band estimation preserves total channel power (delays and
    /// attenuations are frequency independent).
    #[test]
    fn power_preserved_across_bands(ch in on_grid_channel(), f2 in 1.0f64..3.0) {
        let grid = DdGrid::lte(16, 12);
        let h1 = dd_channel_matrix(&grid, &ch);
        let est = estimate_band2(&grid, &h1, 2e9, f2 * 1e9, &SvdEstimatorConfig::default());
        let p1 = h1.frobenius_norm();
        let p2 = est.h2_dd.frobenius_norm();
        prop_assert!((p1 - p2).abs() / p1.max(1e-12) < 0.05, "p1={p1} p2={p2}");
    }

    /// Recovered magnitudes match the true path magnitudes (as the
    /// dominant singular values), sorted descending.
    #[test]
    fn recovered_magnitudes_match(ch in on_grid_channel()) {
        let grid = DdGrid::lte(16, 12);
        let h1 = dd_channel_matrix(&grid, &ch);
        let est = estimate_band2(&grid, &h1, 2e9, 2e9, &SvdEstimatorConfig::default());
        let mut true_mags: Vec<f64> = ch.paths().iter().map(|p| p.gain.abs()).collect();
        true_mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in est.paths.iter().zip(&true_mags) {
            // Rank truncation may drop the weakest; compare matched ones.
            prop_assert!((got.magnitude - want).abs() < 0.15 * want.max(0.2),
                "got={} want={}", got.magnitude, want);
        }
    }

    /// Doppler scaling is exactly linear in the carrier ratio.
    #[test]
    fn doppler_scaling_is_linear(ch in on_grid_channel()) {
        let grid = DdGrid::lte(16, 12);
        let h1 = dd_channel_matrix(&grid, &ch);
        let cfg = SvdEstimatorConfig::default();
        let e1 = estimate_band2(&grid, &h1, 2e9, 2.5e9, &cfg);
        let e2 = estimate_band2(&grid, &h1, 2e9, 3.0e9, &cfg);
        // The recovered band-1 profiles are identical regardless of f2.
        for (a, b) in e1.paths.iter().zip(&e2.paths) {
            prop_assert!((a.doppler_hz - b.doppler_hz).abs() < 1e-6);
            prop_assert!((a.delay_s - b.delay_s).abs() < 1e-12);
        }
    }
}
