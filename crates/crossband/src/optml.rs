//! OptML-style learned cross-band prediction baseline (paper ref [24]).
//!
//! OptML ("Fast and Efficient Cross Band Channel Prediction Using
//! Machine Learning", MobiCom'19) trains a model mapping one band's
//! observed channel to another band's. We reimplement it as a small
//! fully-connected network (tanh hidden layers, linear output) trained
//! with SGD on 80% of the generated channels, evaluated on the held-out
//! 20% — the paper's own protocol (§7.2).
//!
//! Structurally faithful properties: the feature set is built from
//! magnitude profiles without any Doppler notion (the paper's critique:
//! "they do not consider the Doppler effect in mobility"), and
//! inference costs a dense forward pass rather than REM's closed form.

use rand::Rng;
use rem_channel::DdGrid;
use rem_num::{CMatrix, Complex64, SimRng};
use serde::{Deserialize, Serialize};

/// A minimal multilayer perceptron: tanh hidden layers, linear output,
/// trained by plain SGD on mean-squared error.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    /// `weights[l][i * in + j]`: weight from input `j` to unit `i` of
    /// layer `l`.
    weights: Vec<Vec<f64>>,
    biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates a network with the given layer sizes (first = input
    /// dim, last = output dim), Xavier-ish initialisation.
    pub fn new(sizes: &[usize], rng: &mut SimRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
            weights.push(
                (0..fan_in * fan_out).map(|_| scale * rem_num::rng::standard_normal(rng)).collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        Self { sizes: sizes.to_vec(), weights, biases }
    }

    /// Number of layers with parameters.
    fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass; returns the output activations.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_full(x).pop().unwrap()
    }

    /// Forward pass keeping every layer's activations (for backprop).
    fn forward_full(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.sizes[0], "input dim mismatch");
        let mut acts = vec![x.to_vec()];
        for l in 0..self.depth() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let prev = &acts[l];
            let mut out = vec![0.0; fan_out];
            #[allow(clippy::needless_range_loop)] // row-slice index math
            for i in 0..fan_out {
                let mut z = self.biases[l][i];
                let row = &self.weights[l][i * fan_in..(i + 1) * fan_in];
                for (w, a) in row.iter().zip(prev) {
                    z += w * a;
                }
                out[i] = if l == self.depth() - 1 { z } else { z.tanh() };
            }
            acts.push(out);
        }
        acts
    }

    /// One SGD step on a single `(x, y)` example; returns the example's
    /// squared-error loss before the update.
    pub fn train_step(&mut self, x: &[f64], y: &[f64], lr: f64) -> f64 {
        let acts = self.forward_full(x);
        let out = acts.last().unwrap();
        assert_eq!(y.len(), out.len(), "target dim mismatch");
        let loss: f64 = out.iter().zip(y).map(|(o, t)| (o - t) * (o - t)).sum();

        // Output-layer delta (linear): dL/dz = 2 (o - t).
        let mut delta: Vec<f64> = out.iter().zip(y).map(|(o, t)| 2.0 * (o - t)).collect();
        for l in (0..self.depth()).rev() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let prev = &acts[l];
            // Gradient step for this layer and backprop to the previous.
            let mut prev_delta = vec![0.0; fan_in];
            #[allow(clippy::needless_range_loop)] // row-slice index math
            for i in 0..fan_out {
                let d = delta[i];
                let row = &mut self.weights[l][i * fan_in..(i + 1) * fan_in];
                for (j, w) in row.iter_mut().enumerate() {
                    prev_delta[j] += *w * d;
                    *w -= lr * d * prev[j];
                }
                self.biases[l][i] -= lr * d;
            }
            if l > 0 {
                // Through the tanh of layer l's input activations.
                for (pd, a) in prev_delta.iter_mut().zip(&acts[l][..]) {
                    *pd *= 1.0 - a * a;
                }
            }
            delta = prev_delta;
        }
        loss
    }

    /// Trains for `epochs` passes over the dataset with shuffling.
    pub fn train(
        &mut self,
        data: &[(Vec<f64>, Vec<f64>)],
        epochs: usize,
        lr: f64,
        rng: &mut SimRng,
    ) -> f64 {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            last = 0.0;
            for &i in &order {
                last += self.train_step(&data[i].0, &data[i].1, lr);
            }
            last /= data.len().max(1) as f64;
        }
        last
    }
}

/// Doppler-free feature vector from a band-1 TF observation:
/// per-subcarrier time-averaged magnitudes plus per-symbol
/// grid-averaged magnitudes (all in a fixed scale).
pub fn features(grid: &DdGrid, h1_tf: &CMatrix) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.m + grid.n);
    for m in 0..grid.m {
        let s: f64 = (0..grid.n).map(|n| h1_tf[(m, n)].abs()).sum();
        out.push(s / grid.n as f64);
    }
    for n in 0..grid.n {
        let s: f64 = (0..grid.m).map(|m| h1_tf[(m, n)].abs()).sum();
        out.push(s / grid.m as f64);
    }
    out
}

/// Learning target: band-2 per-subcarrier time-averaged magnitudes.
pub fn target(grid: &DdGrid, h2_tf: &CMatrix) -> Vec<f64> {
    (0..grid.m)
        .map(|m| (0..grid.n).map(|n| h2_tf[(m, n)].abs()).sum::<f64>() / grid.n as f64)
        .collect()
}

/// Expands a predicted per-subcarrier magnitude profile into a TF
/// matrix (zero phase, constant over time — OptML predicts magnitude
/// structure, which suffices for SNR-based handover decisions).
pub fn profile_to_tf(grid: &DdGrid, profile: &[f64]) -> CMatrix {
    CMatrix::from_fn(grid.m, grid.n, |m, _| Complex64::from_real(profile[m].max(0.0)))
}

/// The trained OptML predictor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptMl {
    mlp: Mlp,
    grid_m: usize,
    grid_n: usize,
}

/// OptML hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OptMlConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for OptMlConfig {
    fn default() -> Self {
        Self { hidden: 64, epochs: 60, lr: 0.01 }
    }
}

impl OptMl {
    /// Trains on `(band1 TF observation, band2 TF truth)` pairs.
    pub fn train(
        grid: &DdGrid,
        pairs: &[(CMatrix, CMatrix)],
        cfg: &OptMlConfig,
        rng: &mut SimRng,
    ) -> Self {
        let data: Vec<(Vec<f64>, Vec<f64>)> =
            pairs.iter().map(|(h1, h2)| (features(grid, h1), target(grid, h2))).collect();
        let in_dim = grid.m + grid.n;
        let mut mlp = Mlp::new(&[in_dim, cfg.hidden, cfg.hidden, grid.m], rng);
        mlp.train(&data, cfg.epochs, cfg.lr, rng);
        Self { mlp, grid_m: grid.m, grid_n: grid.n }
    }

    /// Predicts band 2's TF magnitude structure from a band-1
    /// observation.
    pub fn predict(&self, grid: &DdGrid, h1_tf: &CMatrix) -> CMatrix {
        assert_eq!((grid.m, grid.n), (self.grid_m, self.grid_n), "grid mismatch");
        let profile = self.mlp.forward(&features(grid, h1_tf));
        profile_to_tf(grid, &profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn forward_dims() {
        let mut rng = rng_from_seed(1);
        let mlp = Mlp::new(&[3, 5, 2], &mut rng);
        assert_eq!(mlp.forward(&[0.1, -0.2, 0.3]).len(), 2);
    }

    #[test]
    fn learns_identity_map() {
        let mut rng = rng_from_seed(2);
        let mut mlp = Mlp::new(&[2, 16, 2], &mut rng);
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..200)
            .map(|_| {
                let x = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
                (x.clone(), x)
            })
            .collect();
        let loss = mlp.train(&data, 200, 0.02, &mut rng);
        assert!(loss < 0.01, "loss={loss}");
        let y = mlp.forward(&[0.5, -0.3]);
        assert!((y[0] - 0.5).abs() < 0.15 && (y[1] + 0.3).abs() < 0.15, "{y:?}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x1 * x2 requires the hidden layer (not linearly separable).
        let mut rng = rng_from_seed(3);
        let mut mlp = Mlp::new(&[2, 24, 1], &mut rng);
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..400)
            .map(|_| {
                let a: f64 = rng.gen_range(-1.0..1.0);
                let b: f64 = rng.gen_range(-1.0..1.0);
                (vec![a, b], vec![a * b])
            })
            .collect();
        let loss = mlp.train(&data, 300, 0.02, &mut rng);
        assert!(loss < 0.02, "loss={loss}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rng_from_seed(4);
        let mut mlp = Mlp::new(&[4, 8, 4], &mut rng);
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..100)
            .map(|i| {
                let x: Vec<f64> = (0..4).map(|k| ((i * k) as f64 * 0.1).sin()).collect();
                let y: Vec<f64> = x.iter().map(|v| 0.5 * v).collect();
                (x, y)
            })
            .collect();
        let first: f64 = data.iter().map(|(x, y)| {
            let o = mlp.forward(x);
            o.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        }).sum::<f64>() / data.len() as f64;
        let last = mlp.train(&data, 100, 0.02, &mut rng);
        assert!(last < first, "first={first} last={last}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mlp::new(&[3, 4, 2], &mut rng_from_seed(7));
        let b = Mlp::new(&[3, 4, 2], &mut rng_from_seed(7));
        assert_eq!(a.forward(&[1.0, 2.0, 3.0]), b.forward(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn features_and_target_dims() {
        let grid = DdGrid::lte(12, 14);
        let tf = CMatrix::from_fn(12, 14, |r, c| rem_num::c64(r as f64, c as f64));
        assert_eq!(features(&grid, &tf).len(), 26);
        assert_eq!(target(&grid, &tf).len(), 12);
    }

    #[test]
    fn optml_learns_band_scaling_structure() {
        // Synthetic task: band-2 magnitude = 0.8 * band-1 magnitude.
        let grid = DdGrid::lte(8, 6);
        let mut rng = rng_from_seed(9);
        let pairs: Vec<(CMatrix, CMatrix)> = (0..150)
            .map(|_| {
                let base: Vec<f64> = (0..8).map(|_| rng.gen_range(0.2..1.5)).collect();
                let h1 = CMatrix::from_fn(8, 6, |m, _| rem_num::c64(base[m], 0.0));
                let h2 = CMatrix::from_fn(8, 6, |m, _| rem_num::c64(0.8 * base[m], 0.0));
                (h1, h2)
            })
            .collect();
        let cfg = OptMlConfig { hidden: 32, epochs: 80, lr: 0.01 };
        let model = OptMl::train(&grid, &pairs, &cfg, &mut rng);
        // Held-out check.
        let base: Vec<f64> = (0..8).map(|_| rng.gen_range(0.2..1.5)).collect();
        let h1 = CMatrix::from_fn(8, 6, |m, _| rem_num::c64(base[m], 0.0));
        let pred = model.predict(&grid, &h1);
        for m in 0..8 {
            let want = 0.8 * base[m];
            let got = pred[(m, 0)].re;
            assert!((got - want).abs() < 0.2, "sc {m}: got {got} want {want}");
        }
    }
}
