//! Evaluation metrics for cross-band estimation (paper Figs 12–13).
//!
//! Two quantities: the *SNR error* — the absolute dB gap between the
//! SNR implied by the predicted channel and the true one — and the
//! *handover decision precision* — whether the estimate triggers the
//! same A3 events as a direct measurement would.

use rem_num::stats::lin_to_db;
use rem_num::CMatrix;

/// Mean wideband SNR (dB) implied by a TF channel matrix and a noise
/// variance: `10 log10(mean |H|^2 / noise_var)`.
pub fn mean_snr_db(tf: &CMatrix, noise_var: f64) -> f64 {
    lin_to_db(tf.mean_power().max(1e-30) / noise_var)
}

/// Absolute SNR prediction error in dB (grid-mean form).
pub fn snr_error_db(pred_tf: &CMatrix, true_tf: &CMatrix, noise_var: f64) -> f64 {
    (mean_snr_db(pred_tf, noise_var) - mean_snr_db(true_tf, noise_var)).abs()
}

/// Time-resolved SNR error (dB): mean over OFDM symbols of the per-
/// symbol SNR gap. This is what separates Doppler-aware estimation
/// from static fits — a prediction with the right average power but no
/// time structure still scores poorly when the channel rotates within
/// the grid (the paper's Fig 13 critique of R2F2/OptML).
pub fn time_resolved_snr_error_db(pred_tf: &CMatrix, true_tf: &CMatrix, noise_var: f64) -> f64 {
    assert_eq!(pred_tf.shape(), true_tf.shape());
    let (m, n) = pred_tf.shape();
    let mut acc = 0.0;
    for col in 0..n {
        let p: f64 = (0..m).map(|r| pred_tf[(r, col)].norm_sqr()).sum::<f64>() / m as f64;
        let t: f64 = (0..m).map(|r| true_tf[(r, col)].norm_sqr()).sum::<f64>() / m as f64;
        acc += (lin_to_db(p.max(1e-30) / noise_var) - lin_to_db(t.max(1e-30) / noise_var)).abs();
    }
    acc / n as f64
}

/// Would an A3 event fire? `target > serving + offset` (paper Table 1).
pub fn a3_fires(target_snr_db: f64, serving_snr_db: f64, offset_db: f64) -> bool {
    target_snr_db > serving_snr_db + offset_db
}

/// Accumulates handover-decision agreement between estimated and
/// directly-measured target-cell quality.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrecisionCounter {
    correct: usize,
    total: usize,
}

impl PrecisionCounter {
    /// Records one decision: does the estimate trigger the same A3
    /// outcome as the ground truth?
    pub fn record(
        &mut self,
        est_target_snr_db: f64,
        true_target_snr_db: f64,
        serving_snr_db: f64,
        a3_offset_db: f64,
    ) {
        let est = a3_fires(est_target_snr_db, serving_snr_db, a3_offset_db);
        let truth = a3_fires(true_target_snr_db, serving_snr_db, a3_offset_db);
        if est == truth {
            self.correct += 1;
        }
        self.total += 1;
    }

    /// Fraction of agreeing decisions; 1.0 when empty.
    pub fn precision(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Decisions recorded.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::{c64, CMatrix};

    #[test]
    fn snr_of_unit_channel() {
        let tf = CMatrix::from_fn(4, 4, |_, _| c64(1.0, 0.0));
        assert!((mean_snr_db(&tf, 0.1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn snr_error_symmetry() {
        let a = CMatrix::from_fn(4, 4, |_, _| c64(1.0, 0.0));
        let b = CMatrix::from_fn(4, 4, |_, _| c64(2.0, 0.0));
        let e1 = snr_error_db(&a, &b, 0.1);
        let e2 = snr_error_db(&b, &a, 0.1);
        assert!((e1 - e2).abs() < 1e-12);
        assert!((e1 - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn a3_threshold_semantics() {
        assert!(a3_fires(10.0, 6.0, 3.0));
        assert!(!a3_fires(8.0, 6.0, 3.0));
        // Strict inequality at the boundary.
        assert!(!a3_fires(9.0, 6.0, 3.0));
    }

    #[test]
    fn precision_counts_agreement() {
        let mut p = PrecisionCounter::default();
        // Agree: both fire.
        p.record(12.0, 11.0, 6.0, 3.0);
        // Agree: neither fires.
        p.record(5.0, 4.0, 6.0, 3.0);
        // Disagree: estimate fires, truth does not.
        p.record(12.0, 7.0, 6.0, 3.0);
        assert_eq!(p.total(), 3);
        assert!((p.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_precision_is_one() {
        assert_eq!(PrecisionCounter::default().precision(), 1.0);
    }
}

#[cfg(test)]
mod time_resolved_tests {
    use super::*;
    use rem_num::{c64, CMatrix};

    #[test]
    fn time_resolved_zero_for_identical_grids() {
        let a = CMatrix::from_fn(4, 6, |r, c| c64(r as f64 + 1.0, c as f64));
        assert!(time_resolved_snr_error_db(&a, &a, 0.1) < 1e-9);
    }

    #[test]
    fn time_resolved_catches_missing_time_structure() {
        // True channel power doubles halfway through; a constant
        // prediction with the correct *mean* power still errs per-symbol.
        let truth = CMatrix::from_fn(4, 8, |_, c| {
            if c < 4 { c64(1.0, 0.0) } else { c64(2f64.sqrt(), 0.0) }
        });
        let mean_pow = truth.mean_power().sqrt();
        let flat = CMatrix::from_fn(4, 8, |_, _| c64(mean_pow, 0.0));
        // Grid-mean error is ~0...
        assert!(snr_error_db(&flat, &truth, 0.1) < 0.1);
        // ...but the time-resolved error is not.
        assert!(time_resolved_snr_error_db(&flat, &truth, 0.1) > 0.5);
    }

    #[test]
    fn time_resolved_symmetric() {
        let a = CMatrix::from_fn(3, 5, |r, c| c64(1.0 + r as f64 * 0.2, c as f64 * 0.1));
        let b = CMatrix::from_fn(3, 5, |r, c| c64(0.5 + c as f64 * 0.3, r as f64 * 0.2));
        let e1 = time_resolved_snr_error_db(&a, &b, 0.1);
        let e2 = time_resolved_snr_error_db(&b, &a, 0.1);
        assert!((e1 - e2).abs() < 1e-9);
    }
}
