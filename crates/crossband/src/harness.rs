//! Scenario generation and estimator evaluation (Figs 12–14).
//!
//! Generates labelled channel pairs `(band-1 observation, band-2
//! truth)` for the paper's three regimes — the USRP testbed (static),
//! driving (EVA, 30–100 km/h) and high-speed rail (HST, 350 km/h) —
//! and scores any [`CrossBandEstimator`] on SNR error and handover
//! decision precision.

use crate::estimator::{CrossBandEstimator, Observation, OptMlEstimator};
use crate::metrics::{mean_snr_db, time_resolved_snr_error_db, PrecisionCounter};
use crate::optml::{OptMl, OptMlConfig};
use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_channel::DdGrid;
use rem_num::rng::{complex_gaussian, rng_from_seed};
use rem_num::stats::db_to_lin;
use rem_num::{CMatrix, SimRng};
use serde::{Deserialize, Serialize};

/// The paper's three evaluation regimes (Fig 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// USRP testbed: static client, pedestrian multipath.
    Usrp,
    /// Driving dataset: EVA profile at 30–100 km/h.
    Driving,
    /// High-speed rail: HST profile at 350 km/h.
    Hsr,
}

impl Regime {
    /// Channel model and representative speed (m/s).
    pub fn model_and_speed(self) -> (ChannelModel, f64) {
        match self {
            Regime::Usrp => (ChannelModel::Epa, 0.0),
            Regime::Driving => (ChannelModel::Eva, kmh_to_ms(60.0)),
            Regime::Hsr => (ChannelModel::Hst, kmh_to_ms(350.0)),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Usrp => "USRP",
            Regime::Driving => "Driving",
            Regime::Hsr => "HSR",
        }
    }
}

/// One labelled cross-band scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// What the estimator sees.
    pub obs: Observation,
    /// Band 2 ground-truth TF response.
    pub h2_truth_tf: CMatrix,
    /// Band 1 clean TF response (serving-cell quality for decisions).
    pub h1_truth_tf: CMatrix,
}

/// Scenario generation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Grid geometry.
    pub grid: DdGrid,
    /// Band 1 carrier (Hz).
    pub f1_hz: f64,
    /// Band 2 carrier (Hz).
    pub f2_hz: f64,
    /// Pilot SNR of the band-1 observation (dB); `INFINITY` = clean.
    pub pilot_snr_db: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self { grid: DdGrid::lte(24, 14), f1_hz: 1.88e9, f2_hz: 2.36e9, pilot_snr_db: 25.0 }
    }
}

/// Generates `count` scenarios for a regime.
pub fn generate_scenarios(
    regime: Regime,
    cfg: &ScenarioConfig,
    count: usize,
    rng: &mut SimRng,
) -> Vec<Scenario> {
    let (model, speed) = regime.model_and_speed();
    let nv = if cfg.pilot_snr_db.is_infinite() { 0.0 } else { db_to_lin(-cfg.pilot_snr_db) };
    (0..count)
        .map(|_| {
            let ch1 = model.realize(rng, speed, cfg.f1_hz);
            let ch2 = ch1.scaled_to_carrier(cfg.f1_hz, cfg.f2_hz);
            let h1 = ch1.tf_grid(cfg.grid.m, cfg.grid.n, cfg.grid.delta_f, cfg.grid.t_sym);
            let h2 = ch2.tf_grid(cfg.grid.m, cfg.grid.n, cfg.grid.delta_f, cfg.grid.t_sym);
            let h1_obs = if nv > 0.0 {
                CMatrix::from_fn(cfg.grid.m, cfg.grid.n, |m, n| {
                    h1[(m, n)] + complex_gaussian(rng, nv)
                })
            } else {
                h1.clone()
            };
            Scenario {
                obs: Observation {
                    grid: cfg.grid,
                    h1_tf: h1_obs,
                    f1_hz: cfg.f1_hz,
                    f2_hz: cfg.f2_hz,
                },
                h2_truth_tf: h2,
                h1_truth_tf: h1,
            }
        })
        .collect()
}

/// Scores of one estimator over a scenario set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalResult {
    /// Estimator display name.
    pub name: String,
    /// Per-scenario absolute SNR errors (dB).
    pub snr_errors_db: Vec<f64>,
    /// Handover-decision agreement with direct measurement.
    pub precision: f64,
}

impl EvalResult {
    /// Mean SNR error in dB.
    pub fn mean_snr_error_db(&self) -> f64 {
        rem_num::stats::mean(&self.snr_errors_db)
    }

    /// Percentile of the SNR error distribution.
    pub fn snr_error_percentile(&self, p: f64) -> f64 {
        rem_num::stats::percentile(&self.snr_errors_db, p)
    }
}

/// Evaluates an estimator: time-resolved SNR error per scenario and A3
/// decision precision against direct measurement.
///
/// Decision precision is evaluated at the *boundary*: each scenario's
/// A3 comparison uses an effective serving quality placed within
/// `±boundary_window_db` of the true target quality (handovers are
/// decided exactly when cells are comparable — an estimator only needs
/// to be right where it is hard). `a3_offset_db` is the configured
/// offset.
pub fn evaluate(
    est: &dyn CrossBandEstimator,
    scenarios: &[Scenario],
    noise_var: f64,
    a3_offset_db: f64,
) -> EvalResult {
    let boundary_window_db = 3.0;
    let mut errors = Vec::with_capacity(scenarios.len());
    let mut prec = PrecisionCounter::default();
    // Deterministic per-scenario boundary placement.
    let mut jitter = rng_from_seed(0xB0DA);
    for sc in scenarios {
        let pred = est.predict_band2_tf(&sc.obs);
        errors.push(time_resolved_snr_error_db(&pred, &sc.h2_truth_tf, noise_var));
        let true_target = mean_snr_db(&sc.h2_truth_tf, noise_var);
        let est_target = mean_snr_db(&pred, noise_var);
        use rand::Rng;
        let serving = true_target - a3_offset_db
            + jitter.gen_range(-boundary_window_db..boundary_window_db);
        prec.record(est_target, true_target, serving, a3_offset_db);
    }
    EvalResult { name: est.name().to_string(), snr_errors_db: errors, precision: prec.precision() }
}

/// Trains OptML on the first 80% of the given scenarios (the paper's
/// 80/20 protocol) and returns the estimator; evaluate it on the
/// remaining 20%.
pub fn train_optml(
    scenarios: &[Scenario],
    cfg: &OptMlConfig,
    grid: &DdGrid,
    seed: u64,
) -> OptMlEstimator {
    let cut = scenarios.len() * 4 / 5;
    let pairs: Vec<(CMatrix, CMatrix)> = scenarios[..cut]
        .iter()
        .map(|s| (s.obs.h1_tf.clone(), s.h2_truth_tf.clone()))
        .collect();
    let mut rng = rng_from_seed(seed);
    OptMlEstimator { model: OptMl::train(grid, &pairs, cfg, &mut rng) }
}

/// The held-out 20% slice matching [`train_optml`]'s split.
pub fn test_split(scenarios: &[Scenario]) -> &[Scenario] {
    &scenarios[scenarios.len() * 4 / 5..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{R2f2Estimator, RemEstimator};

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = ScenarioConfig::default();
        let a = generate_scenarios(Regime::Hsr, &cfg, 3, &mut rng_from_seed(1));
        let b = generate_scenarios(Regime::Hsr, &cfg, 3, &mut rng_from_seed(1));
        assert_eq!(a[2].h2_truth_tf, b[2].h2_truth_tf);
    }

    #[test]
    fn rem_precision_high_in_all_regimes() {
        // Fig 12b: REM achieves >= 0.9 decision precision everywhere.
        let cfg = ScenarioConfig::default();
        for regime in [Regime::Usrp, Regime::Driving, Regime::Hsr] {
            let scenarios = generate_scenarios(regime, &cfg, 40, &mut rng_from_seed(2));
            let res = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
            assert!(res.precision >= 0.85, "{}: {}", regime.label(), res.precision);
        }
    }

    #[test]
    fn rem_beats_r2f2_in_hsr() {
        // Fig 13 headline: REM's SNR error is far below R2F2's at HSR.
        let cfg = ScenarioConfig::default();
        let scenarios = generate_scenarios(Regime::Hsr, &cfg, 30, &mut rng_from_seed(3));
        let rem = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
        let r2f2 = evaluate(&R2f2Estimator::default(), &scenarios, 0.1, 3.0);
        assert!(
            rem.mean_snr_error_db() < r2f2.mean_snr_error_db(),
            "rem={} r2f2={}",
            rem.mean_snr_error_db(),
            r2f2.mean_snr_error_db()
        );
    }

    #[test]
    fn optml_train_eval_pipeline_runs() {
        let cfg = ScenarioConfig { grid: DdGrid::lte(12, 8), ..Default::default() };
        let scenarios = generate_scenarios(Regime::Driving, &cfg, 25, &mut rng_from_seed(4));
        let opt_cfg = OptMlConfig { hidden: 16, epochs: 15, lr: 0.01 };
        let est = train_optml(&scenarios, &opt_cfg, &cfg.grid, 5);
        let res = evaluate(&est, test_split(&scenarios), 0.1, 3.0);
        assert_eq!(res.snr_errors_db.len(), 5);
        assert!(res.snr_errors_db.iter().all(|e| e.is_finite()));
    }
}
