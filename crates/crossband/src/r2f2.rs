//! R2F2-style cross-band estimation baseline (paper ref [23]).
//!
//! R2F2 ("Eliminating Channel Feedback in Next-Generation Cellular
//! Networks", SIGCOMM'16) infers the multipath profile from one band's
//! *time-frequency* response via nonlinear optimisation and transposes
//! it to another band. Two structural properties matter for the paper's
//! comparison (Fig 13/14) and are preserved here:
//!
//! 1. **Doppler-oblivious**: the fitted model is `H(f) = sum_p a_p
//!    e^{-j 2 pi f tau_p}` — static paths. Under HSR Doppler the true
//!    channel rotates during the measurement, so the fit (done on the
//!    time-averaged response) mispredicts the per-slot channel.
//! 2. **Iterative optimisation**: we implement matching pursuit over a
//!    dense delay dictionary with per-path golden-section refinement —
//!    orders of magnitude more work than REM's single SVD.

use rem_channel::DdGrid;
use rem_num::{CMatrix, Complex64};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// R2F2 configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct R2f2Config {
    /// Number of paths to extract (the paper found 6 optimal for both
    /// baselines and evaluated them at that setting).
    pub max_paths: usize,
    /// Delay dictionary resolution (candidates over one delay period).
    pub dictionary_size: usize,
    /// Golden-section refinement iterations per path.
    pub refine_iters: usize,
}

impl Default for R2f2Config {
    fn default() -> Self {
        Self { max_paths: 6, dictionary_size: 2048, refine_iters: 24 }
    }
}

/// A static path fitted by R2F2: complex amplitude and delay.
#[derive(Clone, Copy, Debug)]
pub struct FittedPath {
    /// Complex amplitude (at band-1's reference frequency).
    pub amp: Complex64,
    /// Delay in seconds.
    pub delay_s: f64,
}

/// Fits a static multipath model to band 1's time-frequency response
/// by matching pursuit on the time-averaged frequency profile.
pub fn fit_paths(grid: &DdGrid, h1_tf: &CMatrix, cfg: &R2f2Config) -> Vec<FittedPath> {
    let m = grid.m;
    let n = grid.n;
    // Time-average: R2F2 has no Doppler dimension, so the best static
    // explanation of a time-varying grid is its mean over time.
    let mut hbar: Vec<Complex64> = vec![Complex64::ZERO; m];
    for (sc, h) in hbar.iter_mut().enumerate() {
        for sym in 0..n {
            *h += h1_tf[(sc, sym)];
        }
        *h = h.scale(1.0 / n as f64);
    }

    let tau_period = 1.0 / grid.delta_f; // delay ambiguity period
    let mut residual = hbar;
    let mut paths = Vec::with_capacity(cfg.max_paths);

    for _ in 0..cfg.max_paths {
        // Coarse dictionary search.
        let mut best_tau = 0.0;
        let mut best_mag = -1.0;
        for i in 0..cfg.dictionary_size {
            let tau = tau_period * i as f64 / cfg.dictionary_size as f64;
            let mag = projection(&residual, grid.delta_f, tau).abs();
            if mag > best_mag {
                best_mag = mag;
                best_tau = tau;
            }
        }
        // Golden-section refinement around the best coarse candidate.
        let step = tau_period / cfg.dictionary_size as f64;
        let (mut lo, mut hi) = (best_tau - step, best_tau + step);
        const GR: f64 = 0.618_033_988_749_895;
        for _ in 0..cfg.refine_iters {
            let a = hi - GR * (hi - lo);
            let b = lo + GR * (hi - lo);
            if projection(&residual, grid.delta_f, a).abs()
                > projection(&residual, grid.delta_f, b).abs()
            {
                hi = b;
            } else {
                lo = a;
            }
        }
        let tau = 0.5 * (lo + hi);
        let amp = projection(&residual, grid.delta_f, tau);
        if amp.abs() < 1e-9 {
            break;
        }
        // Subtract the fitted component.
        for (sc, r) in residual.iter_mut().enumerate() {
            *r -= amp * steer(grid.delta_f, sc, tau);
        }
        paths.push(FittedPath { amp, delay_s: tau });
    }
    paths
}

#[inline]
fn steer(delta_f: f64, sc: usize, tau: f64) -> Complex64 {
    Complex64::cis(-2.0 * PI * sc as f64 * delta_f * tau)
}

/// Normalised projection of the residual onto the steering vector for
/// delay `tau`.
fn projection(residual: &[Complex64], delta_f: f64, tau: f64) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for (sc, &r) in residual.iter().enumerate() {
        acc += r * steer(delta_f, sc, tau).conj();
    }
    acc.scale(1.0 / residual.len() as f64)
}

/// Predicts band 2's time-frequency response from the fitted static
/// paths: `H2(m, n) = sum_p a_p e^{-j 2 pi (f2 - f1 + m delta_f) tau_p}`,
/// constant over time (the Doppler blindness that costs R2F2 accuracy
/// in extreme mobility).
pub fn predict_band2(
    grid: &DdGrid,
    paths: &[FittedPath],
    f1_hz: f64,
    f2_hz: f64,
) -> CMatrix {
    let df_carrier = f2_hz - f1_hz;
    CMatrix::from_fn(grid.m, grid.n, |m, _n| {
        let mut acc = Complex64::ZERO;
        for p in paths {
            let f = df_carrier + m as f64 * grid.delta_f;
            acc += p.amp * Complex64::cis(-2.0 * PI * f * p.delay_s);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::{MultipathChannel, Path};
    use rem_num::c64;

    fn grid() -> DdGrid {
        // Delay resolution 1/(M delta_f) ~ 1 us: the two test paths are
        // separated well beyond it so greedy pursuit can resolve them.
        DdGrid::lte(64, 8)
    }

    fn static_channel() -> MultipathChannel {
        MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.3e-6, 0.0),
            Path::new(c64(0.0, 0.5), 3.1e-6, 0.0),
        ])
    }

    #[test]
    fn fits_static_channel_delays() {
        let g = grid();
        let ch = static_channel();
        let tf = ch.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
        let paths = fit_paths(&g, &tf, &R2f2Config::default());
        // The two real paths dominate the fit.
        let mut delays: Vec<f64> = paths.iter().take(2).map(|p| p.delay_s).collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((delays[0] - 0.3e-6).abs() < 0.1e-6, "{delays:?}");
        assert!((delays[1] - 3.1e-6).abs() < 0.1e-6, "{delays:?}");
    }

    #[test]
    fn same_band_prediction_accurate_for_static_channel() {
        let g = grid();
        let ch = static_channel();
        let tf = ch.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
        let paths = fit_paths(&g, &tf, &R2f2Config::default());
        let pred = predict_band2(&g, &paths, 2e9, 2e9);
        let rel = pred.frobenius_dist(&tf) / tf.frobenius_norm();
        assert!(rel < 0.1, "rel={rel}");
    }

    #[test]
    fn doppler_blindness_hurts_time_varying_channels() {
        // Same channel, but the paths now carry HSR-scale Doppler.
        let g = grid();
        let moving = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.3e-6, 600.0),
            Path::new(c64(0.0, 0.5), 3.1e-6, -420.0),
        ]);
        let tf = moving.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
        let cfg = R2f2Config::default();
        let pred_static = {
            let ch = static_channel();
            let tf_s = ch.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
            let p = fit_paths(&g, &tf_s, &cfg);
            predict_band2(&g, &p, 2e9, 2e9).frobenius_dist(&tf_s) / tf_s.frobenius_norm()
        };
        let p = fit_paths(&g, &tf, &cfg);
        let pred_moving =
            predict_band2(&g, &p, 2e9, 2e9).frobenius_dist(&tf) / tf.frobenius_norm();
        assert!(
            pred_moving > 5.0 * pred_static,
            "moving={pred_moving} static={pred_static}"
        );
    }

    #[test]
    fn respects_max_paths() {
        let g = grid();
        let ch = static_channel();
        let tf = ch.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
        let cfg = R2f2Config { max_paths: 1, ..Default::default() };
        assert_eq!(fit_paths(&g, &tf, &cfg).len(), 1);
    }

    #[test]
    fn zero_channel_fits_nothing() {
        let g = grid();
        let tf = CMatrix::zeros(g.m, g.n);
        let paths = fit_paths(&g, &tf, &R2f2Config::default());
        assert!(paths.is_empty());
    }

    #[test]
    fn cross_band_static_prediction_tracks_truth() {
        let g = grid();
        let ch = static_channel();
        let (f1, f2) = (1.8e9, 2.1e9);
        let tf1 = ch.tf_grid(g.m, g.n, g.delta_f, g.t_sym);
        let paths = fit_paths(&g, &tf1, &R2f2Config::default());
        let pred = predict_band2(&g, &paths, f1, f2);
        // Ground truth band-2: same paths, carrier offset phase. For
        // SNR purposes magnitude profile matters; compare mean power.
        let truth_power = tf1.mean_power(); // attenuation unchanged
        assert!((pred.mean_power() - truth_power).abs() / truth_power < 0.1);
    }
}
