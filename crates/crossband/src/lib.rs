#![warn(missing_docs)]

//! # rem-crossband
//!
//! Cross-band channel estimation: REM's SVD-based Algorithm 1 (paper
//! §5.2) plus structural reimplementations of the paper's comparators —
//! R2F2-style static multipath fitting and OptML-style learned
//! prediction — with the SNR-error / decision-precision metrics and the
//! scenario harness behind Figs 12–14.
//!
//! ```
//! use rem_crossband::harness::{evaluate, generate_scenarios, Regime, ScenarioConfig};
//! use rem_crossband::estimator::RemEstimator;
//! use rem_num::rng::rng_from_seed;
//!
//! let cfg = ScenarioConfig::default();
//! let scenarios = generate_scenarios(Regime::Hsr, &cfg, 5, &mut rng_from_seed(1));
//! let res = evaluate(&RemEstimator::default(), &scenarios, 0.1, 3.0);
//! assert!(res.precision > 0.5);
//! ```

pub mod estimator;
pub mod harness;
pub mod metrics;
pub mod optml;
pub mod r2f2;
pub mod svd_estimator;

pub use estimator::{
    CrossBandEstimator, GuardedEstimator, Observation, OptMlEstimator, R2f2Estimator, RemEstimator,
};
pub use svd_estimator::{estimate_band2, CrossbandEstimate, SvdEstimatorConfig};
