//! A common interface over the three cross-band estimators.
//!
//! Each estimator receives band 1's (possibly noisy) time-frequency
//! observation and must predict band 2's time-frequency response; the
//! evaluation metrics (Fig 12/13) compare predicted vs true band-2 SNR
//! and the handover decisions both imply.

use crate::optml::OptMl;
use crate::r2f2::{fit_paths, predict_band2 as r2f2_predict, R2f2Config};
use crate::svd_estimator::{estimate_band2, SvdEstimatorConfig};
use rem_channel::DdGrid;
use rem_num::health;
use rem_num::CMatrix;
use rem_phy::chanest::tf_to_dd_into;
use rem_phy::dsp::with_thread_scratch;
use rem_phy::otfs::sfft_into;
use std::cell::RefCell;

/// A band-1 observation handed to an estimator.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The OFDM/delay-Doppler grid geometry.
    pub grid: DdGrid,
    /// Band 1's sampled (noisy) time-frequency response.
    pub h1_tf: CMatrix,
    /// Band 1 carrier frequency (Hz).
    pub f1_hz: f64,
    /// Band 2 carrier frequency (Hz).
    pub f2_hz: f64,
}

/// Anything that can predict band 2's TF response from band 1's.
pub trait CrossBandEstimator {
    /// Short display name ("REM", "R2F2", "OptML").
    fn name(&self) -> &'static str;
    /// Predicts band 2's time-frequency channel matrix.
    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix;
}

/// REM: ISFFT to delay-Doppler, Algorithm 1, SFFT back.
#[derive(Clone, Copy, Debug, Default)]
pub struct RemEstimator {
    /// Algorithm 1 configuration.
    pub cfg: SvdEstimatorConfig,
}

impl CrossBandEstimator for RemEstimator {
    fn name(&self) -> &'static str {
        "REM"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        // One scratch for the whole ISFFT -> Algorithm 1 -> SFFT chain:
        // repeated predictions on a thread reuse the same FFT plans.
        with_thread_scratch(|ws| {
            let (m, n) = obs.h1_tf.shape();
            let mut h1_dd = CMatrix::zeros(m, n);
            tf_to_dd_into(&obs.h1_tf, &mut h1_dd, ws);
            let est = estimate_band2(&obs.grid, &h1_dd, obs.f1_hz, obs.f2_hz, &self.cfg);
            // Back to the time-frequency domain (SFFT inverts the ISFFT).
            let mut out = CMatrix::zeros(m, n);
            sfft_into(&est.h2_dd, &mut out, ws);
            out
        })
    }
}

/// R2F2: static multipath fit in the time-frequency domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct R2f2Estimator {
    /// Matching-pursuit configuration.
    pub cfg: R2f2Config,
}

impl CrossBandEstimator for R2f2Estimator {
    fn name(&self) -> &'static str {
        "R2F2"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        let paths = fit_paths(&obs.grid, &obs.h1_tf, &self.cfg);
        r2f2_predict(&obs.grid, &paths, obs.f1_hz, obs.f2_hz)
    }
}

/// OptML: trained network inference.
#[derive(Clone, Debug)]
pub struct OptMlEstimator {
    /// The trained model.
    pub model: OptMl,
}

impl CrossBandEstimator for OptMlEstimator {
    fn name(&self) -> &'static str {
        "OptML"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        self.model.predict(&obs.grid, &obs.h1_tf)
    }
}

/// Degrades gracefully instead of emitting garbage: wraps any
/// estimator and, when the inner prediction contains a NaN/Inf,
/// substitutes the *last good* prediction this wrapper produced (or an
/// all-zero grid before any good one exists — "no channel knowledge"
/// is a safer claim to hand the handover logic than NaN SNRs). Every
/// substitution is counted in the thread's
/// [`rem_num::health::DegradedStats::estimator_fallbacks`] ledger, so
/// campaigns report how often the guard fired instead of hiding it.
///
/// The cached estimate lives in a `RefCell`, keeping the
/// [`CrossBandEstimator`] trait's `&self` signature; the wrapper is
/// therefore `!Sync` — give each worker thread its own instance, which
/// is how the campaign engine threads per-worker state anyway.
#[derive(Clone, Debug, Default)]
pub struct GuardedEstimator<E> {
    inner: E,
    last_good: RefCell<Option<CMatrix>>,
}

impl<E> GuardedEstimator<E> {
    /// Wraps `inner` with no fallback history yet.
    pub fn new(inner: E) -> Self {
        Self { inner, last_good: RefCell::new(None) }
    }

    /// Consumes the wrapper, returning the inner estimator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// The most recent finite prediction, if any (diagnostics).
    pub fn last_good(&self) -> Option<CMatrix> {
        self.last_good.borrow().clone()
    }
}

impl<E: CrossBandEstimator> CrossBandEstimator for GuardedEstimator<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        rem_obs::metrics::inc("rem_crossband_predictions_total");
        let pred = self.inner.predict_band2_tf(obs);
        if health::first_non_finite_c(pred.as_slice()).is_none() {
            *self.last_good.borrow_mut() = Some(pred.clone());
            return pred;
        }
        health::record(|d| d.estimator_fallbacks += 1);
        rem_obs::metrics::inc("rem_crossband_fallbacks_total");
        let (m, n) = pred.shape();
        self.last_good.borrow().clone().unwrap_or_else(|| CMatrix::zeros(m, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::{MultipathChannel, Path};
    use rem_num::c64;

    #[test]
    fn rem_estimator_round_trips_static_channel() {
        let grid = DdGrid::lte(16, 12);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.0, 0.5), 3.0 * grid.delta_tau(), 0.0),
        ]);
        let h1 = ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym);
        let obs = Observation { grid, h1_tf: h1.clone(), f1_hz: 2e9, f2_hz: 2e9 };
        let pred = RemEstimator::default().predict_band2_tf(&obs);
        let rel = pred.frobenius_dist(&h1) / h1.frobenius_norm();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(RemEstimator::default().name(), "REM");
        assert_eq!(R2f2Estimator::default().name(), "R2F2");
    }

    /// Test double whose prediction is garbage on selected calls.
    struct Flaky {
        calls: std::cell::Cell<usize>,
        bad_on: usize,
    }

    impl CrossBandEstimator for Flaky {
        fn name(&self) -> &'static str {
            "Flaky"
        }

        fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
            let call = self.calls.get();
            self.calls.set(call + 1);
            let (m, n) = obs.h1_tf.shape();
            if call == self.bad_on {
                CMatrix::from_fn(m, n, |_, _| c64(f64::NAN, 0.0))
            } else {
                CMatrix::from_fn(m, n, |r, c| c64((r + call) as f64, c as f64))
            }
        }
    }

    fn obs() -> Observation {
        let grid = DdGrid::lte(4, 3);
        Observation {
            grid,
            h1_tf: CMatrix::zeros(grid.m, grid.n),
            f1_hz: 2e9,
            f2_hz: 2.2e9,
        }
    }

    #[test]
    fn guarded_estimator_falls_back_to_last_good() {
        let _ = rem_num::health::take_thread_stats();
        let g = GuardedEstimator::new(Flaky { calls: std::cell::Cell::new(0), bad_on: 1 });
        let o = obs();
        let first = g.predict_band2_tf(&o); // call 0: good, cached
        let second = g.predict_band2_tf(&o); // call 1: NaN -> last good
        assert_eq!(second, first, "fallback must replay the cached grid");
        let third = g.predict_band2_tf(&o); // call 2: good again
        assert_ne!(third, first);
        assert_eq!(g.last_good().unwrap(), third);
        let stats = rem_num::health::take_thread_stats();
        assert_eq!(stats.estimator_fallbacks, 1);
    }

    #[test]
    fn guarded_estimator_zeros_before_any_good_estimate() {
        let _ = rem_num::health::take_thread_stats();
        let g = GuardedEstimator::new(Flaky { calls: std::cell::Cell::new(0), bad_on: 0 });
        let o = obs();
        let pred = g.predict_band2_tf(&o);
        assert_eq!(pred, CMatrix::zeros(o.grid.m, o.grid.n));
        assert_eq!(rem_num::health::take_thread_stats().estimator_fallbacks, 1);
    }

    #[test]
    fn guarded_estimator_is_transparent_when_healthy() {
        let _ = rem_num::health::take_thread_stats();
        let g_inner = RemEstimator::default();
        let guarded = GuardedEstimator::new(g_inner);
        assert_eq!(guarded.name(), "REM");
        let grid = DdGrid::lte(16, 12);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.0, 0.5), 3.0 * grid.delta_tau(), 0.0),
        ]);
        let h1 = ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym);
        let o = Observation { grid, h1_tf: h1.clone(), f1_hz: 2e9, f2_hz: 2e9 };
        let direct = RemEstimator::default().predict_band2_tf(&o);
        let via_guard = guarded.predict_band2_tf(&o);
        assert_eq!(via_guard, direct, "guard must not perturb healthy output");
        assert!(rem_num::health::take_thread_stats().is_clean());
    }
}
