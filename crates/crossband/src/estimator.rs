//! A common interface over the three cross-band estimators.
//!
//! Each estimator receives band 1's (possibly noisy) time-frequency
//! observation and must predict band 2's time-frequency response; the
//! evaluation metrics (Fig 12/13) compare predicted vs true band-2 SNR
//! and the handover decisions both imply.

use crate::optml::OptMl;
use crate::r2f2::{fit_paths, predict_band2 as r2f2_predict, R2f2Config};
use crate::svd_estimator::{estimate_band2, SvdEstimatorConfig};
use rem_channel::DdGrid;
use rem_num::CMatrix;
use rem_phy::chanest::tf_to_dd_into;
use rem_phy::dsp::with_thread_scratch;
use rem_phy::otfs::sfft_into;

/// A band-1 observation handed to an estimator.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The OFDM/delay-Doppler grid geometry.
    pub grid: DdGrid,
    /// Band 1's sampled (noisy) time-frequency response.
    pub h1_tf: CMatrix,
    /// Band 1 carrier frequency (Hz).
    pub f1_hz: f64,
    /// Band 2 carrier frequency (Hz).
    pub f2_hz: f64,
}

/// Anything that can predict band 2's TF response from band 1's.
pub trait CrossBandEstimator {
    /// Short display name ("REM", "R2F2", "OptML").
    fn name(&self) -> &'static str;
    /// Predicts band 2's time-frequency channel matrix.
    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix;
}

/// REM: ISFFT to delay-Doppler, Algorithm 1, SFFT back.
#[derive(Clone, Copy, Debug, Default)]
pub struct RemEstimator {
    /// Algorithm 1 configuration.
    pub cfg: SvdEstimatorConfig,
}

impl CrossBandEstimator for RemEstimator {
    fn name(&self) -> &'static str {
        "REM"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        // One scratch for the whole ISFFT -> Algorithm 1 -> SFFT chain:
        // repeated predictions on a thread reuse the same FFT plans.
        with_thread_scratch(|ws| {
            let (m, n) = obs.h1_tf.shape();
            let mut h1_dd = CMatrix::zeros(m, n);
            tf_to_dd_into(&obs.h1_tf, &mut h1_dd, ws);
            let est = estimate_band2(&obs.grid, &h1_dd, obs.f1_hz, obs.f2_hz, &self.cfg);
            // Back to the time-frequency domain (SFFT inverts the ISFFT).
            let mut out = CMatrix::zeros(m, n);
            sfft_into(&est.h2_dd, &mut out, ws);
            out
        })
    }
}

/// R2F2: static multipath fit in the time-frequency domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct R2f2Estimator {
    /// Matching-pursuit configuration.
    pub cfg: R2f2Config,
}

impl CrossBandEstimator for R2f2Estimator {
    fn name(&self) -> &'static str {
        "R2F2"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        let paths = fit_paths(&obs.grid, &obs.h1_tf, &self.cfg);
        r2f2_predict(&obs.grid, &paths, obs.f1_hz, obs.f2_hz)
    }
}

/// OptML: trained network inference.
#[derive(Clone, Debug)]
pub struct OptMlEstimator {
    /// The trained model.
    pub model: OptMl,
}

impl CrossBandEstimator for OptMlEstimator {
    fn name(&self) -> &'static str {
        "OptML"
    }

    fn predict_band2_tf(&self, obs: &Observation) -> CMatrix {
        self.model.predict(&obs.grid, &obs.h1_tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::{MultipathChannel, Path};
    use rem_num::c64;

    #[test]
    fn rem_estimator_round_trips_static_channel() {
        let grid = DdGrid::lte(16, 12);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.0, 0.5), 3.0 * grid.delta_tau(), 0.0),
        ]);
        let h1 = ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym);
        let obs = Observation { grid, h1_tf: h1.clone(), f1_hz: 2e9, f2_hz: 2e9 };
        let pred = RemEstimator::default().predict_band2_tf(&obs);
        let rel = pred.frobenius_dist(&h1) / h1.frobenius_norm();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(RemEstimator::default().name(), "REM");
        assert_eq!(R2f2Estimator::default().name(), "R2F2");
    }
}
