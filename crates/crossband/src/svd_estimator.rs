//! REM's SVD-based cross-band channel estimation (paper §5.2, Alg. 1).
//!
//! Given band 1's sampled delay-Doppler channel matrix `H1`, REM:
//!
//! 1. factorises `H1 = Γ P Φ1` via SVD (Theorem 1 guarantees the two
//!    coincide for on-grid sparse multipath);
//! 2. extracts each path's Doppler `nu1_p` from the rows of `Φ1` and
//!    delay `tau_p` from the columns of `Γ` with closed-form ratio
//!    estimators (Appendix C) — no optimisation, no learning;
//! 3. scales the Doppler to band 2: `nu2_p = nu1_p * f2 / f1` (delays
//!    and attenuations are frequency-independent);
//! 4. rebuilds `Φ2` and returns `H2 = (Γ P) Φ2`.
//!
//! The per-column phase ambiguity of the SVD cancels: the ratio
//! estimators are scale/phase invariant, and the phase estimator of
//! line 7 absorbs the ambiguity so that `(Γ P)` from the SVD and the
//! rebuilt `Φ2` compose correctly.
//!
//! **Limitation (Theorem 1, condition ii).** When two paths share a
//! delay bin (or a Doppler bin), `Γ` (resp. `Φ`) loses column rank and
//! the SVD merges the paths into one component whose extracted
//! parameters are a mixture; accuracy degrades gracefully but the
//! per-path profile is no longer physical. Finer grids (larger `M`,
//! `N`) restore the separation — the paper's §5.2 argues exactly this
//! for HSR geometries.

use rem_channel::delaydoppler::{phi_entry, DdGrid};
use rem_num::health;
use rem_num::svd::svd_monitored;
use rem_num::{CMatrix, Complex64};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Configuration for Algorithm 1.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SvdEstimatorConfig {
    /// Upper bound on the number of paths to extract. Real 4G/5G
    /// channels are sparse (paper cites 7–12 paths); singular values
    /// below `rank_rel_tol * s_max` are truncated regardless.
    pub max_paths: usize,
    /// Relative singular-value cutoff for rank truncation.
    pub rank_rel_tol: f64,
}

impl Default for SvdEstimatorConfig {
    fn default() -> Self {
        Self { max_paths: 12, rank_rel_tol: 0.08 }
    }
}

/// A path profile recovered by Algorithm 1 (band-1 Doppler).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RecoveredPath {
    /// Path magnitude `|h_p|` (singular value).
    pub magnitude: f64,
    /// Path delay `tau_p` in seconds.
    pub delay_s: f64,
    /// Band-1 Doppler `nu1_p` in Hz.
    pub doppler_hz: f64,
}

/// Full output of Algorithm 1.
#[derive(Clone, Debug)]
pub struct CrossbandEstimate {
    /// Estimated band-2 delay-Doppler channel matrix `H2`.
    pub h2_dd: CMatrix,
    /// Recovered multipath profile (diagnostics; Fig 12/13 use it).
    pub paths: Vec<RecoveredPath>,
}

/// Runs Algorithm 1: estimates band 2's delay-Doppler channel from
/// band 1's.
///
/// * `h1_dd` — band 1's sampled DD channel matrix (`M x N`), e.g. from
///   [`rem_phy::chanest::estimate_dd`] or
///   [`rem_channel::delaydoppler::dd_channel_matrix`].
/// * `f1_hz`, `f2_hz` — the two carrier frequencies.
pub fn estimate_band2(
    grid: &DdGrid,
    h1_dd: &CMatrix,
    f1_hz: f64,
    f2_hz: f64,
    cfg: &SvdEstimatorConfig,
) -> CrossbandEstimate {
    let (m, n) = h1_dd.shape();
    debug_assert_eq!((m, n), (grid.m, grid.n));

    // Line 1: H1 = Γ P Φ1 via SVD, truncated to the sparse path count.
    // A sweep-capped Jacobi is recorded in the health ledger and its
    // best-effort factors used; rank truncation below bounds the damage
    // and the caller (e.g. `GuardedEstimator`) can fall back entirely.
    let (full, svd_err) = svd_monitored(h1_dd);
    if svd_err.is_some() {
        health::record(|d| d.svd_non_converged += 1);
    }
    let rank = full.rank(cfg.rank_rel_tol).clamp(1, cfg.max_paths.min(m).min(n));
    let d = full.truncate(rank);

    let delta_tau = grid.delta_tau();
    let delta_nu = grid.delta_nu();
    let t = grid.t_sym;
    let df = grid.delta_f;

    let mut paths = Vec::with_capacity(rank);
    let mut phi2 = CMatrix::zeros(rank, n);

    for p in 0..rank {
        // Rows of Φ1 = (Σ-normalised) V^H; columns of Γ = U.
        let phi_row: Vec<Complex64> = (0..n).map(|l| d.v[(l, p)].conj()).collect();
        let gamma_col: Vec<Complex64> = (0..m).map(|k| d.u[(k, p)]).collect();

        // Line 4: Z = e^{-j 2 pi nu1_p T} from pair ratios of Φ1 row p.
        let z = pair_ratio_estimate(&phi_row, |l| Complex64::cis(2.0 * PI * l as f64 * delta_nu * t));
        // Line 5: Y = e^{+j 2 pi tau_p delta_f} from pair ratios of Γ col p.
        let y =
            pair_ratio_estimate(&gamma_col, |k| Complex64::cis(-2.0 * PI * k as f64 * delta_tau * df));

        // Phases to physical quantities. arg() in (-pi, pi] maps to
        // nu in (-1/(2T), 1/(2T)] and tau in [0, 1/delta_f).
        let nu1 = -z.arg() / (2.0 * PI * t);
        let mut tau = y.arg() / (2.0 * PI * df);
        // Delays are nonnegative; unwrap the estimator's period, but
        // leave slightly-negative noise around tau = 0 clamped so a
        // near-zero delay is not unwrapped to a full period.
        if tau < -0.5 * delta_tau {
            tau += 1.0 / df;
        }
        tau = tau.max(0.0);

        // Line 6: Doppler transfers with the carrier ratio.
        let nu2 = nu1 * f2_hz / f1_hz;

        // Line 7: residual phase of Φ1 row p relative to the model,
        // absorbing the SVD's per-column phase ambiguity.
        let mut acc = Complex64::ZERO;
        let mut wsum = 0.0;
        for (l, &v) in phi_row.iter().enumerate() {
            let model = phi_entry(grid, l, nu1).scale(1.0 / n as f64);
            let w = model.abs();
            if w > 1e-9 {
                acc += (v / model).scale(w);
                wsum += w;
            }
        }
        let phase = if wsum > 0.0 { acc.scale(1.0 / wsum) } else { Complex64::ONE };
        let phase = if phase.abs() > 1e-12 { phase / Complex64::from_real(phase.abs()) } else { Complex64::ONE };

        // Line 9: rebuild Φ2 row p. The extracted `phase` already
        // contains e^{-j(theta_p + 2 pi tau_p nu1_p)} times the SVD
        // ambiguity; moving to band 2 replaces the tau*nu1 term with
        // tau*nu2.
        let dphase = Complex64::cis(-2.0 * PI * tau * (nu2 - nu1));
        for l in 0..n {
            phi2[(p, l)] = phi_entry(grid, l, nu2).scale(1.0 / n as f64) * phase * dphase;
        }

        paths.push(RecoveredPath { magnitude: d.s[p], delay_s: tau, doppler_hz: nu1 });
    }

    // Line 10: H2 = (Γ P) Φ2 with Γ P = U Σ from the SVD.
    let gamma_p = CMatrix::from_fn(m, rank, |k, p| d.u[(k, p)].scale(d.s[p]));
    let h2_dd = gamma_p.matmul(&phi2);

    CrossbandEstimate { h2_dd, paths }
}

/// Averaged pair-ratio estimator (Appendix C): for a sequence
/// `v_i = A / (1 - Z w_i)` with known unit phasors `w_i`, every index
/// pair gives `Z = (v_i - v_j) / (v_i w_i - v_j w_j)`. We average over
/// all pairs, weighted by the denominator magnitude for noise
/// robustness, and project to the unit circle.
fn pair_ratio_estimate(values: &[Complex64], w: impl Fn(usize) -> Complex64) -> Complex64 {
    let n = values.len();
    let mut acc = Complex64::ZERO;
    let mut wsum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let num = values[i] - values[j];
            let den = values[i] * w(i) - values[j] * w(j);
            let d = den.abs();
            if d > 1e-12 {
                acc += (num / den).scale(d);
                wsum += d;
            }
        }
    }
    if wsum == 0.0 {
        return Complex64::ONE;
    }
    let z = acc.scale(1.0 / wsum);
    let a = z.abs();
    if a > 1e-12 {
        z / Complex64::from_real(a)
    } else {
        Complex64::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::delaydoppler::dd_channel_matrix;
    use rem_channel::{MultipathChannel, Path};
    use rem_num::c64;

    fn grid() -> DdGrid {
        DdGrid::lte(16, 12)
    }

    fn on_grid_two_path(g: &DdGrid) -> MultipathChannel {
        MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 2.0 * g.delta_nu()),
            Path::new(c64(0.0, 0.5), 3.0 * g.delta_tau(), 4.0 * g.delta_nu()),
        ])
    }

    #[test]
    fn pair_ratio_recovers_z_exactly() {
        // v_i = A/(1 - Z w_i) synthetic sequence.
        let z_true = Complex64::cis(-0.8);
        let a = c64(2.0, -1.0);
        let ws: Vec<Complex64> = (0..10).map(|i| Complex64::cis(0.37 * i as f64)).collect();
        let vs: Vec<Complex64> =
            ws.iter().map(|&w| a / (Complex64::ONE - z_true * w)).collect();
        let z = pair_ratio_estimate(&vs, |i| ws[i]);
        assert!(z.dist(z_true) < 1e-9);
    }

    #[test]
    fn recovers_path_profile_on_grid() {
        let g = grid();
        let ch = on_grid_two_path(&g);
        let h1 = dd_channel_matrix(&g, &ch);
        let est = estimate_band2(&g, &h1, 2e9, 2e9, &SvdEstimatorConfig::default());
        assert_eq!(est.paths.len(), 2);
        // Paths sorted by singular value: 1.0 then 0.5.
        assert!((est.paths[0].magnitude - 1.0).abs() < 1e-6);
        assert!((est.paths[1].magnitude - 0.5).abs() < 1e-6);
        assert!((est.paths[0].delay_s - 0.0).abs() < 0.05 * g.delta_tau());
        assert!((est.paths[1].delay_s - 3.0 * g.delta_tau()).abs() < 0.05 * g.delta_tau());
        assert!((est.paths[0].doppler_hz - 2.0 * g.delta_nu()).abs() < 0.05 * g.delta_nu());
        assert!((est.paths[1].doppler_hz - 4.0 * g.delta_nu()).abs() < 0.05 * g.delta_nu());
    }

    #[test]
    fn same_band_estimate_reconstructs_h1() {
        let g = grid();
        let ch = on_grid_two_path(&g);
        let h1 = dd_channel_matrix(&g, &ch);
        let est = estimate_band2(&g, &h1, 2e9, 2e9, &SvdEstimatorConfig::default());
        let rel = est.h2_dd.frobenius_dist(&h1) / h1.frobenius_norm();
        assert!(rel < 1e-6, "rel={rel}");
    }

    #[test]
    fn cross_band_matches_ground_truth_on_grid() {
        let g = grid();
        let (f1, f2) = (1.8e9, 2.1e9);
        // Build band-1 channel whose Doppler scales to band 2 exactly
        // on-grid for both (pick nu multiples of delta_nu * f1/f2... we
        // instead allow band-2 off-grid; the comparison uses the exact
        // dd matrix of the scaled channel, which handles off-grid).
        let ch1 = on_grid_two_path(&g);
        let ch2 = ch1.scaled_to_carrier(f1, f2);
        let h1 = dd_channel_matrix(&g, &ch1);
        let truth2 = dd_channel_matrix(&g, &ch2);
        let est = estimate_band2(&g, &h1, f1, f2, &SvdEstimatorConfig::default());
        let rel = est.h2_dd.frobenius_dist(&truth2) / truth2.frobenius_norm();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn estimated_band2_power_close_to_band1() {
        // Attenuations are frequency independent: total power must be
        // (approximately) preserved by the cross-band mapping.
        let g = grid();
        let ch = on_grid_two_path(&g);
        let h1 = dd_channel_matrix(&g, &ch);
        let est = estimate_band2(&g, &h1, 1.8e9, 2.6e9, &SvdEstimatorConfig::default());
        let p1 = h1.frobenius_norm();
        let p2 = est.h2_dd.frobenius_norm();
        assert!((p1 - p2).abs() / p1 < 0.05, "p1={p1} p2={p2}");
    }

    #[test]
    fn single_path_channel() {
        let g = grid();
        let ch = MultipathChannel::new(vec![Path::new(c64(0.8, 0.3), 2.0 * g.delta_tau(), 0.0)]);
        let h1 = dd_channel_matrix(&g, &ch);
        let est = estimate_band2(&g, &h1, 2e9, 2.2e9, &SvdEstimatorConfig::default());
        assert_eq!(est.paths.len(), 1);
        assert!((est.paths[0].delay_s - 2.0 * g.delta_tau()).abs() < 0.05 * g.delta_tau());
        // Zero Doppler stays zero on band 2.
        assert!(est.paths[0].doppler_hz.abs() < 0.05 * g.delta_nu());
    }

    #[test]
    fn rank_truncation_respects_max_paths() {
        let g = grid();
        let ch = on_grid_two_path(&g);
        let h1 = dd_channel_matrix(&g, &ch);
        let cfg = SvdEstimatorConfig { max_paths: 1, rank_rel_tol: 1e-6 };
        let est = estimate_band2(&g, &h1, 2e9, 2e9, &cfg);
        assert_eq!(est.paths.len(), 1);
        // Dominant path survives.
        assert!((est.paths[0].magnitude - 1.0).abs() < 1e-6);
    }

    #[test]
    fn off_grid_channel_still_close() {
        // Fractional delays/Dopplers: Theorem 1 holds approximately;
        // the estimate degrades gracefully rather than collapsing.
        let g = DdGrid::lte(32, 24);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.4e-6, 310.0),
            Path::new(c64(0.3, 0.2), 1.3e-6, -140.0),
        ]);
        let h1 = dd_channel_matrix(&g, &ch);
        let est = estimate_band2(&g, &h1, 2e9, 2e9, &SvdEstimatorConfig::default());
        let rel = est.h2_dd.frobenius_dist(&h1) / h1.frobenius_norm();
        assert!(rel < 0.35, "rel={rel}");
    }
}

/// Multi-antenna cross-band estimation (paper §5.2: "Algorithm 1
/// supports multi-antenna systems such as MIMO and beamforming, by
/// running it on each antenna"): one DD matrix per receive antenna in,
/// one band-2 estimate per antenna out, plus the combined (maximum
/// ratio) wideband quality the handover decision consumes.
pub fn estimate_band2_mimo(
    grid: &DdGrid,
    h1_per_antenna: &[CMatrix],
    f1_hz: f64,
    f2_hz: f64,
    cfg: &SvdEstimatorConfig,
) -> Vec<CrossbandEstimate> {
    h1_per_antenna
        .iter()
        .map(|h1| estimate_band2(grid, h1, f1_hz, f2_hz, cfg))
        .collect()
}

/// Maximum-ratio-combined channel power across antennas: the sum of
/// per-antenna Frobenius energies (what an MRC receiver's SNR scales
/// with).
pub fn mrc_power(estimates: &[CrossbandEstimate]) -> f64 {
    estimates.iter().map(|e| e.h2_dd.frobenius_norm().powi(2)).sum()
}

#[cfg(test)]
mod mimo_tests {
    use super::*;
    use rem_channel::delaydoppler::dd_channel_matrix;
    use rem_channel::{MultipathChannel, Path};

    fn grid() -> DdGrid {
        DdGrid::lte(16, 12)
    }

    fn antenna_channel(phase: f64, g: &DdGrid) -> MultipathChannel {
        // Same geometry (delays/Dopplers), antenna-dependent phases —
        // the physical situation for co-located antennas.
        MultipathChannel::new(vec![
            Path::new(rem_num::Complex64::cis(phase), 0.0, 2.0 * g.delta_nu()),
            Path::new(rem_num::Complex64::cis(phase + 1.0).scale(0.5), 3.0 * g.delta_tau(), 4.0 * g.delta_nu()),
        ])
    }

    #[test]
    fn per_antenna_estimates_are_independent_and_accurate() {
        let g = grid();
        let (f1, f2) = (1.8e9, 2.4e9);
        let chans = [antenna_channel(0.3, &g), antenna_channel(1.7, &g)];
        let h1s: Vec<_> = chans.iter().map(|c| dd_channel_matrix(&g, c)).collect();
        let ests = estimate_band2_mimo(&g, &h1s, f1, f2, &SvdEstimatorConfig::default());
        assert_eq!(ests.len(), 2);
        for (est, ch) in ests.iter().zip(&chans) {
            let truth = dd_channel_matrix(&g, &ch.scaled_to_carrier(f1, f2));
            let rel = est.h2_dd.frobenius_dist(&truth) / truth.frobenius_norm();
            assert!(rel < 0.05, "rel={rel}");
        }
    }

    #[test]
    fn mrc_power_adds_antenna_energies() {
        let g = grid();
        let chans = [antenna_channel(0.0, &g), antenna_channel(2.0, &g)];
        let h1s: Vec<_> = chans.iter().map(|c| dd_channel_matrix(&g, c)).collect();
        let ests = estimate_band2_mimo(&g, &h1s, 2e9, 2e9, &SvdEstimatorConfig::default());
        let combined = mrc_power(&ests);
        let single = ests[0].h2_dd.frobenius_norm().powi(2);
        // Two equal-power antennas: ~2x the single-antenna power.
        assert!((combined / single - 2.0).abs() < 0.1, "ratio={}", combined / single);
    }

    #[test]
    fn empty_antenna_set_is_empty() {
        let g = grid();
        let ests = estimate_band2_mimo(&g, &[], 2e9, 2.2e9, &SvdEstimatorConfig::default());
        assert!(ests.is_empty());
        assert_eq!(mrc_power(&ests), 0.0);
    }

}
