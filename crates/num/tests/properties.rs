//! Property-based tests for the numerical foundations.

use proptest::prelude::*;
use rem_num::fft::{dft_naive, fft_vec, ifft_vec};
use rem_num::svd::svd;
use rem_num::{c64, CMatrix, Complex64};

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

fn complex_matrix() -> impl Strategy<Value = CMatrix> {
    (1usize..9, 1usize..9)
        .prop_flat_map(|(r, c)| {
            proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), r * c)
                .prop_map(move |v| {
                    CMatrix::from_vec(r, c, v.into_iter().map(|(a, b)| c64(a, b)).collect())
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_inverts(v in complex_vec(64)) {
        let back = ifft_vec(&fft_vec(&v));
        for (a, b) in v.iter().zip(&back) {
            prop_assert!(a.dist(*b) < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_matches_naive_dft(v in complex_vec(24)) {
        let got = fft_vec(&v);
        let want = dft_naive(&v, false);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.dist(*b) < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn parseval(v in complex_vec(48)) {
        let y = fft_vec(&v);
        let ex: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / v.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-6 * ex.max(1.0));
    }

    #[test]
    fn fft_linearity(a in complex_vec(16)) {
        // fft(2a) == 2 fft(a)
        let doubled: Vec<Complex64> = a.iter().map(|z| z.scale(2.0)).collect();
        let lhs = fft_vec(&doubled);
        let rhs: Vec<Complex64> = fft_vec(&a).into_iter().map(|z| z.scale(2.0)).collect();
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!(x.dist(*y) < 1e-7 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn svd_reconstructs(m in complex_matrix()) {
        let d = svd(&m);
        let err = d.reconstruct().frobenius_dist(&m);
        prop_assert!(err < 1e-8 * m.frobenius_norm().max(1.0), "err={err}");
    }

    #[test]
    fn svd_values_sorted_nonnegative(m in complex_matrix()) {
        let d = svd(&m);
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(d.s.iter().all(|&s| s >= 0.0));
        prop_assert_eq!(d.s.len(), m.rows().min(m.cols()));
    }

    #[test]
    fn svd_energy_identity(m in complex_matrix()) {
        // ||A||_F^2 == sum sigma_i^2
        let d = svd(&m);
        let fro2 = m.frobenius_norm().powi(2);
        let sv2: f64 = d.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sv2).abs() < 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn hermitian_is_involution(m in complex_matrix()) {
        prop_assert_eq!(m.hermitian().hermitian(), m);
    }

    #[test]
    fn matmul_associative(a in complex_matrix()) {
        // (A * A^H) * A == A * (A^H * A)
        let ah = a.hermitian();
        let lhs = a.matmul(&ah).matmul(&a);
        let rhs = a.matmul(&ah.matmul(&a));
        prop_assert!(lhs.frobenius_dist(&rhs) < 1e-6 * lhs.frobenius_norm().max(1.0));
    }

    #[test]
    fn percentile_bounds(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let q = rem_num::stats::percentile(&v, p);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(q >= v[0] - 1e-9 && q <= v[v.len() - 1] + 1e-9);
    }

    #[test]
    fn ecdf_monotone(v in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let e = rem_num::stats::Ecdf::new(&v);
        let s = e.series(20);
        for w in s.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }
}
