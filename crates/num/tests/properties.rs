//! Property-based tests for the numerical foundations.

use proptest::prelude::*;
use rem_num::fft::{dft_naive, fft_vec, ifft_vec};
use rem_num::svd::svd;
use rem_num::{c64, CMatrix, Complex64, FftPlan, FftPlanner, FftScratch};

/// Deterministic non-trivial input for length-parameterised FFT tests.
fn test_signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            c64((0.3 * x).sin() + 0.1 * x.cos(), (0.7 * x).cos() - 0.2)
        })
        .collect()
}

/// Every length exercised by the LTE/OTFS grids plus all short lengths:
/// 1..=64 covers the radix-2 and Bluestein branch points, 12/14 the
/// delay-Doppler grid, 72/600/1200 the occupied-subcarrier widths.
fn plan_lengths() -> impl Iterator<Item = usize> {
    (1..=64).chain([72, 600, 1200])
}

#[test]
fn planned_fft_matches_naive_dft_for_all_plan_lengths() {
    let mut scratch = FftScratch::new();
    for n in plan_lengths() {
        let plan = FftPlan::new(n);
        assert_eq!(plan.len(), n);
        let x = test_signal(n);

        let mut fwd = x.clone();
        plan.forward(&mut fwd, &mut scratch);
        let want = dft_naive(&x, false);
        for (a, b) in fwd.iter().zip(&want) {
            assert!(a.dist(*b) < 1e-8 * (n as f64) * (1.0 + b.abs()), "n={n}");
        }

        // dft_naive(_, true) already applies the 1/N normalisation.
        let mut inv = x.clone();
        plan.inverse(&mut inv, &mut scratch);
        let want_inv = dft_naive(&x, true);
        for (a, b) in inv.iter().zip(&want_inv) {
            assert!(a.dist(*b) < 1e-8 * (n as f64) * (1.0 + b.abs()), "n={n}");
        }

        // Unnormalised inverse is the inverse DFT sum with no 1/N.
        let mut raw = x.clone();
        plan.inverse_unnormalized(&mut raw, &mut scratch);
        let want_raw: Vec<Complex64> =
            dft_naive(&x, true).into_iter().map(|z| z.scale(n as f64)).collect();
        for (a, b) in raw.iter().zip(&want_raw) {
            assert!(a.dist(*b) < 1e-8 * (n as f64) * (1.0 + b.abs()), "n={n}");
        }
    }
}

#[test]
fn plan_reuse_is_bit_identical_to_fresh_plans() {
    let mut planner = FftPlanner::new();
    let mut scratch = FftScratch::new();
    for n in plan_lengths() {
        let x = test_signal(n);
        // Two passes through the cached plan (planner.plan hits the
        // cache on the second call) vs a fresh plan each time.
        for _ in 0..2 {
            let cached = planner.plan(n);
            let mut a = x.clone();
            cached.forward(&mut a, &mut scratch);
            let mut b = x.clone();
            FftPlan::new(n).forward(&mut b, &mut FftScratch::new());
            assert_eq!(a, b, "forward n={n}");

            let mut ai = x.clone();
            cached.inverse(&mut ai, &mut scratch);
            let mut bi = x.clone();
            FftPlan::new(n).inverse(&mut bi, &mut FftScratch::new());
            assert_eq!(ai, bi, "inverse n={n}");
        }
    }
}

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

fn complex_matrix() -> impl Strategy<Value = CMatrix> {
    (1usize..9, 1usize..9)
        .prop_flat_map(|(r, c)| {
            proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), r * c)
                .prop_map(move |v| {
                    CMatrix::from_vec(r, c, v.into_iter().map(|(a, b)| c64(a, b)).collect())
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_inverts(v in complex_vec(64)) {
        let back = ifft_vec(&fft_vec(&v));
        for (a, b) in v.iter().zip(&back) {
            prop_assert!(a.dist(*b) < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_matches_naive_dft(v in complex_vec(24)) {
        let got = fft_vec(&v);
        let want = dft_naive(&v, false);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.dist(*b) < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn free_fft_is_bit_identical_to_explicit_plan(v in complex_vec(64)) {
        // The thread-local planner behind `fft_vec` must give exactly
        // the result of a plan built from scratch — plan caching can
        // never change bits.
        let via_free = fft_vec(&v);
        let mut via_plan = v.clone();
        FftPlan::new(v.len()).forward(&mut via_plan, &mut FftScratch::new());
        prop_assert_eq!(via_free, via_plan);
    }

    #[test]
    fn parseval(v in complex_vec(48)) {
        let y = fft_vec(&v);
        let ex: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / v.len() as f64;
        prop_assert!((ex - ey).abs() < 1e-6 * ex.max(1.0));
    }

    #[test]
    fn fft_linearity(a in complex_vec(16)) {
        // fft(2a) == 2 fft(a)
        let doubled: Vec<Complex64> = a.iter().map(|z| z.scale(2.0)).collect();
        let lhs = fft_vec(&doubled);
        let rhs: Vec<Complex64> = fft_vec(&a).into_iter().map(|z| z.scale(2.0)).collect();
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!(x.dist(*y) < 1e-7 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn svd_reconstructs(m in complex_matrix()) {
        let d = svd(&m);
        let err = d.reconstruct().frobenius_dist(&m);
        prop_assert!(err < 1e-8 * m.frobenius_norm().max(1.0), "err={err}");
    }

    #[test]
    fn svd_values_sorted_nonnegative(m in complex_matrix()) {
        let d = svd(&m);
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(d.s.iter().all(|&s| s >= 0.0));
        prop_assert_eq!(d.s.len(), m.rows().min(m.cols()));
    }

    #[test]
    fn svd_energy_identity(m in complex_matrix()) {
        // ||A||_F^2 == sum sigma_i^2
        let d = svd(&m);
        let fro2 = m.frobenius_norm().powi(2);
        let sv2: f64 = d.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sv2).abs() < 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn hermitian_is_involution(m in complex_matrix()) {
        prop_assert_eq!(m.hermitian().hermitian(), m);
    }

    #[test]
    fn matmul_associative(a in complex_matrix()) {
        // (A * A^H) * A == A * (A^H * A)
        let ah = a.hermitian();
        let lhs = a.matmul(&ah).matmul(&a);
        let rhs = a.matmul(&ah.matmul(&a));
        prop_assert!(lhs.frobenius_dist(&rhs) < 1e-6 * lhs.frobenius_norm().max(1.0));
    }

    #[test]
    fn percentile_bounds(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let q = rem_num::stats::percentile(&v, p);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(q >= v[0] - 1e-9 && q <= v[v.len() - 1] + 1e-9);
    }

    #[test]
    fn ecdf_monotone(v in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let e = rem_num::stats::Ecdf::new(&v);
        let s = e.series(20);
        for w in s.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }

    // SIMD tier equivalence (contract in `rem_num::simd`): the
    // vectorised butterflies and the Bluestein pointwise product must
    // be bit-identical to the scalar reference on arbitrary signals —
    // all lengths (radix-2 and Bluestein branches, lane remainders)
    // and unaligned slice starts. On a CPU without a vector tier,
    // `active_tier()` is `Scalar` and the property holds trivially.

    #[test]
    fn fft_plan_simd_tier_is_bit_identical_to_scalar(
        entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..200),
    ) {
        let x: Vec<Complex64> = entries.iter().map(|&(a, b)| c64(a, b)).collect();
        let plan = FftPlan::new(x.len());
        let mut scratch = FftScratch::new();
        let tier = rem_num::simd::active_tier();

        let mut reference = x.clone();
        plan.forward_with_tier(&mut reference, &mut scratch, rem_num::simd::SimdTier::Scalar);
        let mut fast = x.clone();
        plan.forward_with_tier(&mut fast, &mut scratch, tier);
        prop_assert_eq!(&reference, &fast);

        plan.inverse_with_tier(&mut reference, &mut scratch, rem_num::simd::SimdTier::Scalar);
        plan.inverse_with_tier(&mut fast, &mut scratch, tier);
        prop_assert_eq!(reference, fast);
    }

    #[test]
    fn cmul_simd_is_bit_identical_on_unaligned_slices(
        entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..80),
        skip in 0usize..3,
    ) {
        let a: Vec<Complex64> = entries.iter().map(|&(p, q)| c64(p, q)).collect();
        let b: Vec<Complex64> = entries.iter().map(|&(p, q)| c64(q, -p)).collect();
        let lo = skip.min(a.len());
        let mut reference = a[lo..].to_vec();
        rem_num::simd::cmul_in_place_with_tier(
            &mut reference,
            &b[lo..],
            rem_num::simd::SimdTier::Scalar,
        );
        // Multiply inside the original (possibly unaligned) slice.
        let mut fast = a.clone();
        rem_num::simd::cmul_in_place_with_tier(
            &mut fast[lo..],
            &b[lo..],
            rem_num::simd::active_tier(),
        );
        prop_assert_eq!(reference, fast[lo..].to_vec());
    }
}
