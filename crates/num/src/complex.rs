//! Double-precision complex arithmetic.
//!
//! The whole REM stack works on complex baseband samples, delay-Doppler
//! taps and channel matrices, so this type is the common currency of
//! every DSP crate in the workspace. It is a plain `Copy` struct with
//! the usual operator overloads; no allocation, no hidden state.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The layout is `#[repr(C)]`, i.e. `re` then `im` with no padding, so a
/// `&[Complex64]` can be reinterpreted as interleaved `[re, im, re, im,
/// ...]` doubles — the [`crate::simd`] kernels rely on this.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// `e^{i theta}`: a unit phasor with argument `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`, cheaper than [`abs`](Self::abs).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse `1/z`. Returns a non-finite value for zero input.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `|self - other|`: Euclidean distance in the complex plane.
    #[inline]
    pub fn dist(self, other: Self) -> f64 {
        (self - other).abs()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^{-1}
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - PI / 3.0).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn multiplication_matches_polar_composition() {
        let a = Complex64::from_polar(2.0, 0.3);
        let b = Complex64::from_polar(0.5, 1.1);
        let p = a * b;
        assert!((p.abs() - 1.0).abs() < EPS);
        assert!((p.arg() - 1.4).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c64(1.5, -2.5);
        let b = c64(-0.25, 3.0);
        let q = (a * b) / b;
        assert!(q.dist(a) < 1e-10);
    }

    #[test]
    fn conjugate_properties() {
        let z = c64(1.0, 2.0);
        assert_eq!(z.conj().conj(), z);
        let prod = z * z.conj();
        assert!((prod.re - z.norm_sqr()).abs() < EPS);
        assert!(prod.im.abs() < EPS);
    }

    #[test]
    fn exponential_of_imaginary_is_cis() {
        let theta = 0.77;
        let via_exp = c64(0.0, theta).exp();
        let via_cis = Complex64::cis(theta);
        assert!(via_exp.dist(via_cis) < EPS);
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(-1.0, 0.0), c64(3.0, -4.0)] {
            let r = z.sqrt();
            assert!((r * r).dist(z) < 1e-10);
        }
    }

    #[test]
    fn inverse_of_unit_is_conjugate() {
        let z = Complex64::cis(0.9);
        assert!(z.inv().dist(z.conj()) < EPS);
    }

    #[test]
    fn sum_iterator() {
        let xs = [c64(1.0, 1.0), c64(2.0, -3.0), c64(-0.5, 0.25)];
        let s: Complex64 = xs.iter().sum();
        assert!(s.dist(c64(2.5, -1.75)) < EPS);
    }

    #[test]
    fn scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
        assert_eq!(-z, c64(-1.0, 2.0));
    }
}
