//! Runtime-dispatched SIMD tiers for the DSP hot kernels.
//!
//! The Monte-Carlo link pipeline bottoms out in a handful of inner
//! loops — FFT butterflies, QAM soft-demap distances, Viterbi
//! add-compare-select — that are all data-parallel over `f64` lanes.
//! This module picks a vector instruction set **once per process** at
//! first use (`std::arch` runtime feature detection: AVX2 on x86_64,
//! NEON on aarch64) and the kernels in `rem-num`/`rem-phy` dispatch on
//! the result.
//!
//! ## The bit-identity contract
//!
//! Every SIMD kernel in the workspace is written so each output element
//! is produced by **the same IEEE-754 operations in the same order** as
//! the scalar reference — no FMA contraction, no reassociated
//! reductions, no approximate reciprocals. SIMD therefore changes
//! throughput, never results: `rem compare --hash` digests are
//! bit-identical across tiers, and CI gates `REM_DSP_SIMD=off` against
//! the auto-detected tier exactly the way the FFT plan cache is gated.
//!
//! ## Override
//!
//! `REM_DSP_SIMD` controls dispatch (read once, cached):
//!
//! * `off` / `scalar` / `0` — force the scalar reference path;
//! * `avx2` / `neon` — request a specific tier (falls back to scalar,
//!   with no error, when the CPU lacks it or the build targets another
//!   architecture);
//! * `auto` or unset — use the best tier the CPU supports.
//!
//! The active tier and detected CPU features are recorded in every
//! REMMANIFEST1 run manifest so benchmark provenance stays auditable
//! across machines.

use crate::complex::Complex64;
use std::sync::OnceLock;

/// One vector instruction tier the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// The scalar reference path (always available; the bit-exact
    /// ground truth every other tier is gated against).
    Scalar,
    /// 256-bit AVX2 on x86_64: 4 `f64` lanes.
    Avx2,
    /// 128-bit NEON on aarch64: 2 `f64` lanes.
    Neon,
}

impl SimdTier {
    /// Stable lower-case name (`"scalar"`, `"avx2"`, `"neon"`), as
    /// recorded in run manifests and `BENCH_dsp.json`.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
        }
    }

    /// Number of `f64` lanes per vector register in this tier (1 for
    /// scalar). Property tests sweep all remainder lengths around this.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Avx2 => 4,
            SimdTier::Neon => 2,
        }
    }

    /// True when the running CPU (and compilation target) can execute
    /// this tier.
    pub fn is_available(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            SimdTier::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            SimdTier::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }
}

/// The best tier the running CPU supports, ignoring the environment
/// override. Not cached; prefer [`active_tier`] in kernels.
pub fn detected_tier() -> SimdTier {
    if SimdTier::Avx2.is_available() {
        SimdTier::Avx2
    } else if SimdTier::Neon.is_available() {
        SimdTier::Neon
    } else {
        SimdTier::Scalar
    }
}

/// The tier all dispatching kernels use: `REM_DSP_SIMD` if set (see
/// module docs), otherwise the auto-detected best tier. Resolved once
/// per process and cached; tests and benches that need to compare
/// tiers in one process use the explicit `*_with_tier` kernel entry
/// points instead of re-reading the environment.
pub fn active_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let requested = std::env::var("REM_DSP_SIMD").unwrap_or_default();
        let tier = match requested.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" => SimdTier::Scalar,
            "avx2" => SimdTier::Avx2,
            "neon" => SimdTier::Neon,
            _ => detected_tier(),
        };
        if tier.is_available() {
            tier
        } else {
            SimdTier::Scalar
        }
    })
}

/// Comma-separated description of the vector features the running CPU
/// exposes (independent of the override), e.g. `"avx2,fma,sse4.2"` or
/// `"neon"`; `"none"` when nothing relevant is detected. Recorded in
/// run manifests for provenance.
pub fn cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            feats.push("sse4.2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            feats.push("neon");
        }
    }
    if feats.is_empty() {
        "none".to_string()
    } else {
        feats.join(",")
    }
}

/// Element-wise in-place complex product `a[i] *= b[i]` on the active
/// tier. This is the Bluestein circular-convolution pointwise multiply,
/// the only non-butterfly hot loop inside [`crate::fft`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn cmul_in_place(a: &mut [Complex64], b: &[Complex64]) {
    cmul_in_place_with_tier(a, b, active_tier());
}

/// [`cmul_in_place`] on an explicit tier (scalar fallback when the tier
/// is unavailable on this CPU). Exposed so equivalence tests and the
/// `dsp_json` benchmark can compare tiers within one process.
pub fn cmul_in_place_with_tier(a: &mut [Complex64], b: &[Complex64], tier: SimdTier) {
    assert_eq!(a.len(), b.len(), "cmul length mismatch");
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 if SimdTier::Avx2.is_available() => unsafe { cmul_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon if SimdTier::Neon.is_available() => unsafe { cmul_neon(a, b) },
        _ => cmul_scalar(a, b),
    }
}

fn cmul_scalar(a: &mut [Complex64], b: &[Complex64]) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
}

/// AVX2 pointwise complex product over interleaved `[re, im]` doubles,
/// two complex numbers per 256-bit register.
///
/// Per element the lanes compute exactly the scalar
/// `(ar*br - ai*bi, ar*bi + ai*br)`:
/// even lane `addsub` gives `ar*br - ai*bi`, odd lane gives
/// `ai*br + ar*bi`, which equals the scalar imaginary part bit-for-bit
/// because IEEE-754 addition is commutative. No FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cmul_avx2(a: &mut [Complex64], b: &[Complex64]) {
    use std::arch::x86_64::*;
    let n = a.len();
    let ap = a.as_mut_ptr() as *mut f64;
    let bp = b.as_ptr() as *const f64;
    let pairs = n / 2;
    for p in 0..pairs {
        let x = _mm256_loadu_pd(ap.add(2 * p * 2));
        let y = _mm256_loadu_pd(bp.add(2 * p * 2));
        let yr = _mm256_movedup_pd(y); // [br0, br0, br1, br1]
        let yi = _mm256_permute_pd(y, 0b1111); // [bi0, bi0, bi1, bi1]
        let t1 = _mm256_mul_pd(x, yr); // [ar*br, ai*br, ...]
        let xs = _mm256_permute_pd(x, 0b0101); // [ai, ar, ...]
        let t2 = _mm256_mul_pd(xs, yi); // [ai*bi, ar*bi, ...]
        let prod = _mm256_addsub_pd(t1, t2);
        _mm256_storeu_pd(ap.add(2 * p * 2), prod);
    }
    cmul_scalar(&mut a[2 * pairs..], &b[2 * pairs..]);
}

/// NEON pointwise complex product: de-interleaved loads (`vld2q_f64`)
/// compute the scalar expression verbatim on 2-wide re/im vectors.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn cmul_neon(a: &mut [Complex64], b: &[Complex64]) {
    use std::arch::aarch64::*;
    let n = a.len();
    let ap = a.as_mut_ptr() as *mut f64;
    let bp = b.as_ptr() as *const f64;
    let pairs = n / 2;
    for p in 0..pairs {
        let x = vld2q_f64(ap.add(2 * p * 2)); // x.0 = [ar0, ar1], x.1 = [ai0, ai1]
        let y = vld2q_f64(bp.add(2 * p * 2));
        let re = vsubq_f64(vmulq_f64(x.0, y.0), vmulq_f64(x.1, y.1));
        let im = vaddq_f64(vmulq_f64(x.0, y.1), vmulq_f64(x.1, y.0));
        vst2q_f64(ap.add(2 * p * 2), float64x2x2_t(re, im));
    }
    cmul_scalar(&mut a[2 * pairs..], &b[2 * pairs..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| c64(0.25 * i as f64 - 1.0, 0.5 - 0.125 * i as f64)).collect()
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Neon.name(), "neon");
        assert_eq!(SimdTier::Scalar.lanes(), 1);
    }

    #[test]
    fn scalar_tier_is_always_available() {
        assert!(SimdTier::Scalar.is_available());
        // Whatever was detected must itself be available.
        assert!(detected_tier().is_available());
        assert!(active_tier().is_available());
    }

    #[test]
    fn cmul_matches_scalar_on_every_tier_and_remainder() {
        for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Neon] {
            for n in 0..=11 {
                let b = ramp(n + 3)[3..].to_vec();
                let mut want = ramp(n);
                cmul_scalar(&mut want, &b);
                let mut got = ramp(n);
                cmul_in_place_with_tier(&mut got, &b, tier);
                assert_eq!(got, want, "tier={} n={n}", tier.name());
            }
        }
    }

    #[test]
    fn cmul_dispatching_entry_matches_scalar() {
        let b = ramp(9);
        let mut want = ramp(9);
        cmul_scalar(&mut want, &b);
        let mut got = ramp(9);
        cmul_in_place(&mut got, &b);
        assert_eq!(got, want);
    }

    #[test]
    fn cpu_features_is_nonempty() {
        assert!(!cpu_features().is_empty());
    }
}
