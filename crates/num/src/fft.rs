//! Discrete Fourier transforms of arbitrary length.
//!
//! The OTFS symplectic transform (SFFT) needs DFTs along both axes of
//! the delay-Doppler grid, and 4G/5G grid dimensions are rarely powers
//! of two (a subframe is 12 x 14). We therefore provide:
//!
//! * an iterative radix-2 Cooley-Tukey FFT for power-of-two lengths,
//! * Bluestein's chirp-z algorithm for every other length (it reduces an
//!   arbitrary-N DFT to a power-of-two circular convolution),
//! * a naive `O(N^2)` reference DFT used by the test-suite as ground
//!   truth.
//!
//! Conventions: `fft` computes `X[k] = sum_n x[n] e^{-j 2 pi k n / N}`
//! (no scaling); `ifft` applies the `+j` kernel and divides by `N`, so
//! `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// In-place forward FFT. Accepts any length; length 0 is a no-op.
pub fn fft(data: &mut [Complex64]) {
    transform(data, Direction::Forward);
}

/// In-place inverse FFT (includes the `1/N` scaling).
pub fn ifft(data: &mut [Complex64]) {
    transform(data, Direction::Inverse);
    let n = data.len();
    if n > 1 {
        let s = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(s);
        }
    }
}

/// Out-of-place forward FFT convenience wrapper.
pub fn fft_vec(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    fft(&mut v);
    v
}

/// Out-of-place inverse FFT convenience wrapper.
pub fn ifft_vec(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    ifft(&mut v);
    v
}

/// Naive `O(N^2)` DFT, used as a reference implementation in tests and
/// for very short transforms where setup cost dominates.
pub fn dft_naive(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *o = acc;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for z in out.iter_mut() {
            *z = z.scale(s);
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, dir);
    } else {
        bluestein(data, dir);
    }
}

/// Iterative radix-2 Cooley-Tukey with bit-reversal permutation.
fn radix2(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let levels = n.trailing_zeros();

    // Bit-reversal permutation.
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = dir.sign();
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: express the DFT as a circular convolution of
/// chirp-premultiplied input with a chirp kernel, evaluated with a
/// power-of-two FFT of length `>= 2N-1`.
fn bluestein(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    let sign = dir.sign();
    let m = (2 * n - 1).next_power_of_two();

    // Chirp c[k] = e^{sign * j pi k^2 / n}. Use k^2 mod 2n to keep the
    // argument small and numerically accurate for large k.
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n as u64 {
        let kk = (k * k) % (2 * n as u64);
        chirp.push(Complex64::cis(sign * PI * kk as f64 / n as f64));
    }

    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
    }
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let v = chirp[k].conj();
        b[k] = v;
        b[m - k] = v;
    }

    radix2(&mut a, Direction::Forward);
    radix2(&mut b, Direction::Forward);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    radix2(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;
    for (k, out) in data.iter_mut().enumerate() {
        *out = a[k].scale(scale) * chirp[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn close(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.dist(*y) < tol)
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| c64(i as f64, (i as f64) * 0.5 - 1.0)).collect()
    }

    #[test]
    fn radix2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = ramp(n);
            let got = fft_vec(&x);
            let want = dft_naive(&x, false);
            assert!(close(&got, &want, 1e-8), "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 13, 14, 15, 60, 100] {
            let x = ramp(n);
            let got = fft_vec(&x);
            let want = dft_naive(&x, false);
            assert!(close(&got, &want, 1e-7), "n={n}");
        }
    }

    #[test]
    fn inverse_round_trip_all_lengths() {
        for n in 1..=40usize {
            let x = ramp(n);
            let y = ifft_vec(&fft_vec(&x));
            assert!(close(&x, &y, 1e-8), "n={n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 14];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!(z.dist(Complex64::ONE) < 1e-10);
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let mut x = vec![Complex64::ONE; 12];
        fft(&mut x);
        assert!(x[0].dist(c64(12.0, 0.0)) < 1e-10);
        for z in &x[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        for n in [8usize, 12, 14, 21] {
            let x = ramp(n);
            let y = fft_vec(&x);
            let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((ex - ey).abs() < 1e-6 * ex.max(1.0), "n={n}");
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 20;
        let bin = 7usize;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * bin as f64 * t as f64 / n as f64))
            .collect();
        let y = fft_vec(&x);
        for (k, z) in y.iter().enumerate() {
            if k == bin {
                assert!(z.dist(c64(n as f64, 0.0)) < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut e: Vec<Complex64> = vec![];
        fft(&mut e);
        assert!(e.is_empty());
        let mut s = vec![c64(2.0, 3.0)];
        fft(&mut s);
        assert_eq!(s[0], c64(2.0, 3.0));
        ifft(&mut s);
        assert_eq!(s[0], c64(2.0, 3.0));
    }
}
