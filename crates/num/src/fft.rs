//! Discrete Fourier transforms of arbitrary length, with cached plans.
//!
//! The OTFS symplectic transform (SFFT) needs DFTs along both axes of
//! the delay-Doppler grid, and 4G/5G grid dimensions are rarely powers
//! of two (a subframe is 12 x 14). We therefore provide:
//!
//! * an iterative radix-2 Cooley-Tukey FFT for power-of-two lengths,
//! * Bluestein's chirp-z algorithm for every other length (it reduces an
//!   arbitrary-N DFT to a power-of-two circular convolution),
//! * a naive `O(N^2)` reference DFT used by the test-suite as ground
//!   truth.
//!
//! ## Plans
//!
//! Every Monte-Carlo trial bottoms out in these kernels, so the
//! per-length setup work — the bit-reversal permutation, the per-stage
//! twiddle factors, and (for Bluestein) the chirp and the forward
//! transform of the chirp kernel — is computed **once** per length in an
//! [`FftPlan`] and reused for every subsequent call:
//!
//! * [`FftPlan`] holds the precomputed tables and exposes in-place
//!   [`forward`](FftPlan::forward), [`inverse`](FftPlan::inverse) and
//!   [`inverse_unnormalized`](FftPlan::inverse_unnormalized) with
//!   caller-provided [`FftScratch`] (Bluestein needs one work buffer of
//!   the inner power-of-two length; radix-2 needs none).
//! * [`FftPlanner`] caches plans keyed by length. The free functions
//!   [`fft`]/[`ifft`] route through a thread-local planner + scratch,
//!   so steady-state transforms perform **zero heap allocations**.
//!
//! Plans are pure functions of the length: a cached plan produces
//! bit-identical output to a freshly built one, and any thread count
//! produces bit-identical results (each worker's planner builds the
//! same tables). Setting the environment variable `REM_DSP_PLAN=off`
//! routes the free functions through the original per-call
//! ([`fft_unplanned`]) implementation, which is the baseline the
//! `dsp_json` benchmark records and the determinism CI job compares
//! against.
//!
//! Conventions: `fft` computes `X[k] = sum_n x[n] e^{-j 2 pi k n / N}`
//! (no scaling); `ifft` applies the `+j` kernel and divides by `N`, so
//! `ifft(fft(x)) == x`; `ifft_unnormalized` applies the `+j` kernel
//! without the `1/N` division (the SFFT needs exactly that, saving a
//! rescale pass).

use crate::complex::Complex64;
use crate::simd::{self, SimdTier};
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;
use std::sync::OnceLock;

/// In-place forward FFT. Accepts any length; length 0 is a no-op.
pub fn fft(data: &mut [Complex64]) {
    if data.len() <= 1 {
        return;
    }
    if !plan_cache_enabled() {
        return fft_unplanned(data);
    }
    with_thread_planner(|planner, scratch| {
        let plan = planner.plan(data.len());
        plan.forward(data, scratch);
    });
}

/// In-place inverse FFT (includes the `1/N` scaling).
pub fn ifft(data: &mut [Complex64]) {
    if data.len() <= 1 {
        return;
    }
    if !plan_cache_enabled() {
        return ifft_unplanned(data);
    }
    with_thread_planner(|planner, scratch| {
        let plan = planner.plan(data.len());
        plan.inverse(data, scratch);
    });
}

/// In-place inverse FFT **without** the `1/N` scaling: the raw `+j`
/// kernel sum. `ifft_unnormalized(x) == ifft(x) * N` up to rounding,
/// with one fewer pass over the data.
pub fn ifft_unnormalized(data: &mut [Complex64]) {
    if data.len() <= 1 {
        return;
    }
    if !plan_cache_enabled() {
        legacy::transform(data, legacy::Direction::Inverse);
        return;
    }
    with_thread_planner(|planner, scratch| {
        let plan = planner.plan(data.len());
        plan.inverse_unnormalized(data, scratch);
    });
}

/// Out-of-place forward FFT convenience wrapper.
pub fn fft_vec(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    fft(&mut v);
    v
}

/// Out-of-place inverse FFT convenience wrapper.
pub fn ifft_vec(input: &[Complex64]) -> Vec<Complex64> {
    let mut v = input.to_vec();
    ifft(&mut v);
    v
}

/// In-place forward FFT through the original per-call implementation:
/// twiddles are recomputed by recurrence and the Bluestein chirp kernel
/// is rebuilt (and re-transformed) on every call. Kept as the measured
/// baseline for `BENCH_dsp.json` and as the reference the planned path
/// must match bit-for-bit.
pub fn fft_unplanned(data: &mut [Complex64]) {
    legacy::transform(data, legacy::Direction::Forward);
}

/// In-place inverse FFT (with `1/N` scaling) through the original
/// per-call implementation; see [`fft_unplanned`].
pub fn ifft_unplanned(data: &mut [Complex64]) {
    legacy::transform(data, legacy::Direction::Inverse);
    let n = data.len();
    if n > 1 {
        let s = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(s);
        }
    }
}

/// Naive `O(N^2)` DFT, used as a reference implementation in tests and
/// for very short transforms where setup cost dominates.
pub fn dft_naive(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k as f64) * (t as f64) / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *o = acc;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for z in out.iter_mut() {
            *z = z.scale(s);
        }
    }
    out
}

/// True unless `REM_DSP_PLAN=off` (or `0`) disables the plan cache,
/// routing the free functions through the per-call legacy path.
fn plan_cache_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("REM_DSP_PLAN").map(|v| v != "off" && v != "0").unwrap_or(true)
    })
}

thread_local! {
    static THREAD_PLANNER: RefCell<(FftPlanner, FftScratch)> =
        RefCell::new((FftPlanner::new(), FftScratch::new()));
}

fn with_thread_planner<R>(f: impl FnOnce(&mut FftPlanner, &mut FftScratch) -> R) -> R {
    THREAD_PLANNER.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (planner, scratch) = &mut *guard;
        f(planner, scratch)
    })
}

/// Reusable work memory for plan execution. Radix-2 plans need none;
/// Bluestein plans borrow one buffer of the inner power-of-two length.
/// The buffer grows to the largest length seen and is then reused, so
/// steady-state transforms allocate nothing.
#[derive(Debug, Default)]
pub struct FftScratch {
    buf: Vec<Complex64>,
}

impl FftScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mutable view of at least `len` elements (contents arbitrary).
    fn ensure(&mut self, len: usize) -> &mut [Complex64] {
        if self.buf.len() < len {
            self.buf.resize(len, Complex64::ZERO);
        }
        &mut self.buf[..len]
    }
}

/// A transform plan for one fixed length: every per-length table the
/// kernels need, computed once at construction.
///
/// * power-of-two lengths: the bit-reversal swap list and per-stage
///   twiddle tables (forward and inverse);
/// * other lengths (Bluestein): the chirp `c[k] = e^{±j pi k^2 / n}`,
///   the **pre-transformed** convolution kernel `FFT(b)`, and the inner
///   power-of-two radix-2 sub-plan of length `m = next_pow2(2n-1)`.
///
/// Execution is in place over caller memory with caller-provided
/// [`FftScratch`] — no per-call heap allocation.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug)]
enum PlanKind {
    /// Lengths 0 and 1: the transform is the identity.
    Trivial,
    Radix2(Radix2Plan),
    Bluestein(BluesteinPlan),
}

/// Cached tables for an iterative radix-2 Cooley-Tukey transform.
#[derive(Debug)]
struct Radix2Plan {
    n: usize,
    /// Bit-reversal permutation as an explicit swap list `(i, j)`,
    /// `j > i`, in ascending `i` order.
    swaps: Vec<(u32, u32)>,
    /// Per-stage twiddles, stages concatenated in ascending span order:
    /// the stage with butterfly span `len` contributes `len/2` entries
    /// `w^k = e^{-j 2 pi k / len}`. Total `n - 1` entries.
    ///
    /// Built with the same `w *= wlen` recurrence the per-call kernel
    /// used, so planned output is bit-identical to the legacy path —
    /// the recurrence now runs once per plan instead of once per call.
    tw_fwd: Vec<Complex64>,
    /// Inverse-kernel twiddles (`+j`), same layout.
    tw_inv: Vec<Complex64>,
}

impl Radix2Plan {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let levels = n.trailing_zeros();
        let mut swaps = Vec::new();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
            if j > i {
                swaps.push((i as u32, j as u32));
            }
        }
        let build = |sign: f64| -> Vec<Complex64> {
            let mut tw = Vec::with_capacity(n - 1);
            let mut len = 2usize;
            while len <= n {
                let ang = sign * 2.0 * PI / len as f64;
                let wlen = Complex64::cis(ang);
                let mut w = Complex64::ONE;
                for _ in 0..len / 2 {
                    tw.push(w);
                    w *= wlen;
                }
                len <<= 1;
            }
            tw
        };
        Self { n, swaps, tw_fwd: build(-1.0), tw_inv: build(1.0) }
    }

    /// In-place transform with the cached tables; no scaling either way.
    /// The butterfly stages run on `tier` (each SIMD stage kernel is
    /// bit-identical to the scalar loop — see [`crate::simd`]).
    fn execute(&self, data: &mut [Complex64], inverse: bool, tier: SimdTier) {
        let n = self.n;
        debug_assert_eq!(data.len(), n);
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let tw = if inverse { &self.tw_inv } else { &self.tw_fwd };
        let mut off = 0usize;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage = &tw[off..off + half];
            match tier {
                #[cfg(target_arch = "x86_64")]
                // Availability is checked by the public entry points.
                SimdTier::Avx2 => unsafe { butterfly_avx2::radix2_stage(data, len, stage) },
                #[cfg(target_arch = "aarch64")]
                SimdTier::Neon => unsafe { butterfly_neon::radix2_stage(data, len, stage) },
                _ => scalar_stage(data, len, stage),
            }
            off += half;
            len <<= 1;
        }
    }
}

/// One scalar radix-2 stage: butterfly span `len`, `stage` holding the
/// `len/2` twiddles. This loop is the bit-exact reference the SIMD
/// stage kernels reproduce.
fn scalar_stage(data: &mut [Complex64], len: usize, stage: &[Complex64]) {
    let n = data.len();
    let half = len / 2;
    let mut start = 0;
    while start < n {
        for (k, &w) in stage.iter().enumerate() {
            let u = data[start + k];
            let v = data[start + k + half] * w;
            data[start + k] = u + v;
            data[start + k + half] = u - v;
        }
        start += len;
    }
}

/// AVX2 butterfly stage: two complex butterflies per 256-bit register
/// over the interleaved `[re, im]` layout (`Complex64` is `repr(C)`).
///
/// Lane algebra per element, matching the scalar `u + v*w` / `u - v*w`
/// exactly: `addsub(v*wr, swap(v)*wi)` yields
/// `(vr*wr - vi*wi, vi*wr + vr*wi)`; the imaginary part is the scalar
/// `vr*wi + vi*wr` with the addition operands commuted, which IEEE-754
/// addition makes bit-identical. No FMA anywhere (the scalar path
/// compiles to separate mul/add).
#[cfg(target_arch = "x86_64")]
mod butterfly_avx2 {
    use super::Complex64;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix2_stage(data: &mut [Complex64], len: usize, stage: &[Complex64]) {
        let n = data.len();
        let half = len / 2;
        let ptr = data.as_mut_ptr() as *mut f64;
        let twp = stage.as_ptr() as *const f64;
        let mut start = 0usize;
        while start < n {
            let mut k = 0usize;
            while k + 2 <= half {
                let ui = 2 * (start + k);
                let vi = 2 * (start + k + half);
                let u = _mm256_loadu_pd(ptr.add(ui));
                let v = _mm256_loadu_pd(ptr.add(vi));
                let w = _mm256_loadu_pd(twp.add(2 * k));
                let wr = _mm256_movedup_pd(w); // [wr0, wr0, wr1, wr1]
                let wi = _mm256_permute_pd::<0b1111>(w); // [wi0, wi0, wi1, wi1]
                let t1 = _mm256_mul_pd(v, wr); // [vr*wr, vi*wr, ...]
                let vs = _mm256_permute_pd::<0b0101>(v); // [vi, vr, ...]
                let t2 = _mm256_mul_pd(vs, wi); // [vi*wi, vr*wi, ...]
                let vw = _mm256_addsub_pd(t1, t2);
                _mm256_storeu_pd(ptr.add(ui), _mm256_add_pd(u, vw));
                _mm256_storeu_pd(ptr.add(vi), _mm256_sub_pd(u, vw));
                k += 2;
            }
            // Remainder: the half == 1 first stage and odd trailing k.
            while k < half {
                let u = data[start + k];
                let v = data[start + k + half] * stage[k];
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                k += 1;
            }
            start += len;
        }
    }
}

/// NEON butterfly stage: de-interleaved (`vld2q_f64`) 2-wide re/im
/// vectors evaluate the scalar complex-multiply expression verbatim,
/// so it is bit-identical to [`scalar_stage`] by construction.
#[cfg(target_arch = "aarch64")]
mod butterfly_neon {
    use super::Complex64;
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn radix2_stage(data: &mut [Complex64], len: usize, stage: &[Complex64]) {
        let n = data.len();
        let half = len / 2;
        let ptr = data.as_mut_ptr() as *mut f64;
        let twp = stage.as_ptr() as *const f64;
        let mut start = 0usize;
        while start < n {
            let mut k = 0usize;
            while k + 2 <= half {
                let ui = 2 * (start + k);
                let vi = 2 * (start + k + half);
                let u = vld2q_f64(ptr.add(ui)); // u.0 = re lanes, u.1 = im lanes
                let v = vld2q_f64(ptr.add(vi));
                let w = vld2q_f64(twp.add(2 * k));
                let re = vsubq_f64(vmulq_f64(v.0, w.0), vmulq_f64(v.1, w.1));
                let im = vaddq_f64(vmulq_f64(v.0, w.1), vmulq_f64(v.1, w.0));
                vst2q_f64(ptr.add(ui), float64x2x2_t(vaddq_f64(u.0, re), vaddq_f64(u.1, im)));
                vst2q_f64(ptr.add(vi), float64x2x2_t(vsubq_f64(u.0, re), vsubq_f64(u.1, im)));
                k += 2;
            }
            while k < half {
                let u = data[start + k];
                let v = data[start + k + half] * stage[k];
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                k += 1;
            }
            start += len;
        }
    }
}

/// Cached state for Bluestein's chirp-z algorithm: the DFT as a
/// circular convolution of chirp-premultiplied input with a chirp
/// kernel, evaluated with the inner power-of-two sub-plan.
#[derive(Debug)]
struct BluesteinPlan {
    /// Inner convolution length `(2n - 1).next_power_of_two()`.
    m: usize,
    /// The power-of-two sub-plan the convolution runs on.
    inner: Radix2Plan,
    /// Forward chirp `c[k] = e^{-j pi k^2 / n}` (argument reduced mod 2n).
    chirp_fwd: Vec<Complex64>,
    /// Inverse chirp (`+j` kernel).
    chirp_inv: Vec<Complex64>,
    /// `FFT(b)` for the forward chirp kernel `b[k] = conj(c[k])`,
    /// wrapped circularly — transformed once here instead of per call.
    bfft_fwd: Vec<Complex64>,
    /// `FFT(b)` for the inverse chirp kernel.
    bfft_inv: Vec<Complex64>,
}

impl BluesteinPlan {
    fn new(n: usize) -> Self {
        debug_assert!(n >= 2 && !n.is_power_of_two());
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m);
        let chirp = |sign: f64| -> Vec<Complex64> {
            let mut c = Vec::with_capacity(n);
            for k in 0..n as u64 {
                let kk = (k * k) % (2 * n as u64);
                c.push(Complex64::cis(sign * PI * kk as f64 / n as f64));
            }
            c
        };
        let chirp_fwd = chirp(-1.0);
        let chirp_inv = chirp(1.0);
        let kernel = |c: &[Complex64]| -> Vec<Complex64> {
            let mut b = vec![Complex64::ZERO; m];
            b[0] = c[0].conj();
            for k in 1..n {
                let v = c[k].conj();
                b[k] = v;
                b[m - k] = v;
            }
            inner.execute(&mut b, false, simd::active_tier());
            b
        };
        let bfft_fwd = kernel(&chirp_fwd);
        let bfft_inv = kernel(&chirp_inv);
        Self { m, inner, chirp_fwd, chirp_inv, bfft_fwd, bfft_inv }
    }

    fn execute(
        &self,
        data: &mut [Complex64],
        inverse: bool,
        scratch: &mut FftScratch,
        tier: SimdTier,
    ) {
        let n = data.len();
        let m = self.m;
        let (chirp, bfft) = if inverse {
            (&self.chirp_inv, &self.bfft_inv)
        } else {
            (&self.chirp_fwd, &self.bfft_fwd)
        };
        let a = scratch.ensure(m);
        for k in 0..n {
            a[k] = data[k] * chirp[k];
        }
        for z in &mut a[n..] {
            *z = Complex64::ZERO;
        }
        self.inner.execute(a, false, tier);
        simd::cmul_in_place_with_tier(a, bfft, tier);
        self.inner.execute(a, true, tier);
        let scale = 1.0 / m as f64;
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].scale(scale) * chirp[k];
        }
    }
}

impl FftPlan {
    /// Builds the plan for transforms of length `n` (any length).
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            PlanKind::Trivial
        } else if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n))
        } else {
            PlanKind::Bluestein(BluesteinPlan::new(n))
        };
        Self { n, kind }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the length-0 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch elements [`forward`](Self::forward)/[`inverse`](Self::inverse)
    /// will borrow: 0 for power-of-two lengths, the inner convolution
    /// length for Bluestein.
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            PlanKind::Bluestein(b) => b.m,
            _ => 0,
        }
    }

    /// In-place forward transform (no scaling), on the active SIMD tier.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex64], scratch: &mut FftScratch) {
        self.execute(data, false, scratch, simd::active_tier());
    }

    /// In-place inverse transform with the `1/N` scaling, the inverse of
    /// [`forward`](Self::forward).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex64], scratch: &mut FftScratch) {
        self.execute(data, true, scratch, simd::active_tier());
        self.normalize(data);
    }

    /// In-place inverse transform **without** the `1/N` scaling: the raw
    /// `+j`-kernel DFT sum.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64], scratch: &mut FftScratch) {
        self.execute(data, true, scratch, simd::active_tier());
    }

    /// [`forward`](Self::forward) on an explicit SIMD tier (scalar
    /// fallback when the tier is unavailable on this CPU). Every tier
    /// produces bit-identical output; the equivalence tests and the
    /// `dsp_json` benchmark use this to compare tiers in one process,
    /// since [`crate::simd::active_tier`] is resolved only once.
    pub fn forward_with_tier(
        &self,
        data: &mut [Complex64],
        scratch: &mut FftScratch,
        tier: SimdTier,
    ) {
        self.execute(data, false, scratch, resolve_tier(tier));
    }

    /// [`inverse`](Self::inverse) on an explicit SIMD tier; see
    /// [`forward_with_tier`](Self::forward_with_tier).
    pub fn inverse_with_tier(
        &self,
        data: &mut [Complex64],
        scratch: &mut FftScratch,
        tier: SimdTier,
    ) {
        self.execute(data, true, scratch, resolve_tier(tier));
        self.normalize(data);
    }

    fn normalize(&self, data: &mut [Complex64]) {
        if self.n > 1 {
            let s = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.scale(s);
            }
        }
    }

    fn execute(
        &self,
        data: &mut [Complex64],
        inverse: bool,
        scratch: &mut FftScratch,
        tier: SimdTier,
    ) {
        assert_eq!(data.len(), self.n, "plan length mismatch");
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Radix2(p) => p.execute(data, inverse, tier),
            PlanKind::Bluestein(p) => p.execute(data, inverse, scratch, tier),
        }
    }
}

/// `tier` if the running CPU can execute it, otherwise scalar — the
/// fallback rule every `*_with_tier` entry point applies.
fn resolve_tier(tier: SimdTier) -> SimdTier {
    if tier.is_available() {
        tier
    } else {
        SimdTier::Scalar
    }
}

/// A cache of [`FftPlan`]s keyed by length.
///
/// Not thread-safe by design: give each worker its own planner (plans
/// are pure functions of the length, so every worker builds identical
/// tables and results stay bit-identical at any thread count — the
/// `rem-exec` determinism contract). The free functions [`fft`]/[`ifft`]
/// use a thread-local planner automatically.
#[derive(Debug, Default)]
pub struct FftPlanner {
    plans: HashMap<usize, Rc<FftPlan>>,
}

impl FftPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan for length `n`, building it on first request.
    pub fn plan(&mut self, n: usize) -> Rc<FftPlan> {
        self.plans.entry(n).or_insert_with(|| Rc::new(FftPlan::new(n))).clone()
    }

    /// Number of distinct lengths planned so far.
    pub fn cached_lengths(&self) -> usize {
        self.plans.len()
    }
}

/// The original per-call transform implementation, kept verbatim as the
/// measured baseline and the bit-identity reference for plans.
mod legacy {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(super) enum Direction {
        Forward,
        Inverse,
    }

    impl Direction {
        fn sign(self) -> f64 {
            match self {
                Direction::Forward => -1.0,
                Direction::Inverse => 1.0,
            }
        }
    }

    pub(super) fn transform(data: &mut [Complex64], dir: Direction) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        if n.is_power_of_two() {
            radix2(data, dir);
        } else {
            bluestein(data, dir);
        }
    }

    /// Iterative radix-2 Cooley-Tukey with bit-reversal permutation.
    fn radix2(data: &mut [Complex64], dir: Direction) {
        let n = data.len();
        debug_assert!(n.is_power_of_two());
        let levels = n.trailing_zeros();

        // Bit-reversal permutation.
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
            if j > i {
                data.swap(i, j);
            }
        }

        let sign = dir.sign();
        let mut len = 2usize;
        while len <= n {
            let ang = sign * 2.0 * PI / len as f64;
            let wlen = Complex64::cis(ang);
            let half = len / 2;
            let mut start = 0;
            while start < n {
                let mut w = Complex64::ONE;
                for k in 0..half {
                    let u = data[start + k];
                    let v = data[start + k + half] * w;
                    data[start + k] = u + v;
                    data[start + k + half] = u - v;
                    w *= wlen;
                }
                start += len;
            }
            len <<= 1;
        }
    }

    /// Bluestein's algorithm: express the DFT as a circular convolution
    /// of chirp-premultiplied input with a chirp kernel, evaluated with
    /// a power-of-two FFT of length `>= 2N-1`.
    fn bluestein(data: &mut [Complex64], dir: Direction) {
        let n = data.len();
        let sign = dir.sign();
        let m = (2 * n - 1).next_power_of_two();

        // Chirp c[k] = e^{sign * j pi k^2 / n}. Use k^2 mod 2n to keep
        // the argument small and numerically accurate for large k.
        let mut chirp = Vec::with_capacity(n);
        for k in 0..n as u64 {
            let kk = (k * k) % (2 * n as u64);
            chirp.push(Complex64::cis(sign * PI * kk as f64 / n as f64));
        }

        let mut a = vec![Complex64::ZERO; m];
        for k in 0..n {
            a[k] = data[k] * chirp[k];
        }
        let mut b = vec![Complex64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            let v = chirp[k].conj();
            b[k] = v;
            b[m - k] = v;
        }

        radix2(&mut a, Direction::Forward);
        radix2(&mut b, Direction::Forward);
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x *= *y;
        }
        radix2(&mut a, Direction::Inverse);
        let scale = 1.0 / m as f64;
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k].scale(scale) * chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn close(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.dist(*y) < tol)
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n).map(|i| c64(i as f64, (i as f64) * 0.5 - 1.0)).collect()
    }

    #[test]
    fn radix2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = ramp(n);
            let got = fft_vec(&x);
            let want = dft_naive(&x, false);
            assert!(close(&got, &want, 1e-8), "n={n}");
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 13, 14, 15, 60, 100] {
            let x = ramp(n);
            let got = fft_vec(&x);
            let want = dft_naive(&x, false);
            assert!(close(&got, &want, 1e-7), "n={n}");
        }
    }

    #[test]
    fn inverse_round_trip_all_lengths() {
        for n in 1..=40usize {
            let x = ramp(n);
            let y = ifft_vec(&fft_vec(&x));
            assert!(close(&x, &y, 1e-8), "n={n}");
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 14];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!(z.dist(Complex64::ONE) < 1e-10);
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let mut x = vec![Complex64::ONE; 12];
        fft(&mut x);
        assert!(x[0].dist(c64(12.0, 0.0)) < 1e-10);
        for z in &x[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        for n in [8usize, 12, 14, 21] {
            let x = ramp(n);
            let y = fft_vec(&x);
            let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!((ex - ey).abs() < 1e-6 * ex.max(1.0), "n={n}");
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 20;
        let bin = 7usize;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * bin as f64 * t as f64 / n as f64))
            .collect();
        let y = fft_vec(&x);
        for (k, z) in y.iter().enumerate() {
            if k == bin {
                assert!(z.dist(c64(n as f64, 0.0)) < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut e: Vec<Complex64> = vec![];
        fft(&mut e);
        assert!(e.is_empty());
        let mut s = vec![c64(2.0, 3.0)];
        fft(&mut s);
        assert_eq!(s[0], c64(2.0, 3.0));
        ifft(&mut s);
        assert_eq!(s[0], c64(2.0, 3.0));
    }

    #[test]
    fn planned_is_bit_identical_to_legacy() {
        // The plan caches exactly what the per-call kernel recomputed,
        // so outputs must match to the last bit, both directions, for
        // radix-2 and Bluestein lengths alike.
        let mut scratch = FftScratch::new();
        for n in (1..=64).chain([72usize, 128, 600, 1024, 1200]) {
            let x = ramp(n);
            let plan = FftPlan::new(n);

            let mut planned = x.clone();
            plan.forward(&mut planned, &mut scratch);
            let mut leg = x.clone();
            fft_unplanned(&mut leg);
            assert_eq!(planned, leg, "forward n={n}");

            let mut planned = x.clone();
            plan.inverse(&mut planned, &mut scratch);
            let mut leg = x.clone();
            ifft_unplanned(&mut leg);
            assert_eq!(planned, leg, "inverse n={n}");
        }
    }

    #[test]
    fn plan_reuse_is_bit_identical_to_fresh_plans() {
        let mut scratch = FftScratch::new();
        let mut planner = FftPlanner::new();
        for n in [7usize, 12, 14, 64, 72, 600] {
            let x = ramp(n);
            for rep in 0..3 {
                let cached = planner.plan(n);
                let fresh = FftPlan::new(n);
                let mut a = x.clone();
                cached.forward(&mut a, &mut scratch);
                let mut b = x.clone();
                fresh.forward(&mut b, &mut FftScratch::new());
                assert_eq!(a, b, "n={n} rep={rep}");
            }
        }
        assert_eq!(planner.cached_lengths(), 6);
    }

    #[test]
    fn unnormalized_inverse_is_scaled_inverse() {
        for n in [4usize, 12, 14, 30] {
            let x = ramp(n);
            let mut raw = x.clone();
            ifft_unnormalized(&mut raw);
            let mut scaled = x.clone();
            ifft(&mut scaled);
            for (r, s) in raw.iter().zip(&scaled) {
                assert!(r.dist(s.scale(n as f64)) < 1e-9 * (1.0 + r.abs()), "n={n}");
            }
        }
    }

    #[test]
    fn simd_tiers_are_bit_identical_to_scalar() {
        // Sweep every lane-remainder length around the widest tier
        // (1..=4*lanes+3) plus the LTE grid sizes the link simulator
        // actually transforms. Unavailable tiers fall back to scalar,
        // so this test is meaningful on any machine and exhaustive on
        // CPUs with the tier.
        let mut scratch = FftScratch::new();
        for tier in [SimdTier::Avx2, SimdTier::Neon] {
            for n in (1..=19usize).chain([64, 72, 128, 600, 1024, 1200]) {
                let x = ramp(n);
                let plan = FftPlan::new(n);

                let mut fast = x.clone();
                plan.forward_with_tier(&mut fast, &mut scratch, tier);
                let mut reference = x.clone();
                plan.forward_with_tier(&mut reference, &mut scratch, SimdTier::Scalar);
                assert_eq!(fast, reference, "forward tier={} n={n}", tier.name());

                let mut fast = x.clone();
                plan.inverse_with_tier(&mut fast, &mut scratch, tier);
                let mut reference = x.clone();
                plan.inverse_with_tier(&mut reference, &mut scratch, SimdTier::Scalar);
                assert_eq!(fast, reference, "inverse tier={} n={n}", tier.name());
            }
        }
    }

    #[test]
    fn simd_tiers_are_bit_identical_on_unaligned_slices() {
        // Offset the data by one element so the kernel's loads start
        // 16 bytes off any 32-byte boundary; loadu must not care.
        let mut scratch = FftScratch::new();
        for tier in [SimdTier::Avx2, SimdTier::Neon] {
            for n in [8usize, 12, 16, 600, 1024] {
                let backing = ramp(n + 1);
                let plan = FftPlan::new(n);

                let mut fast = backing.clone();
                plan.forward_with_tier(&mut fast[1..], &mut scratch, tier);
                let mut reference = backing.clone();
                plan.forward_with_tier(&mut reference[1..], &mut scratch, SimdTier::Scalar);
                assert_eq!(fast, reference, "unaligned tier={} n={n}", tier.name());
            }
        }
    }

    #[test]
    fn scratch_len_reports_bluestein_inner_length() {
        assert_eq!(FftPlan::new(8).scratch_len(), 0);
        assert_eq!(FftPlan::new(12).scratch_len(), 32);
        assert_eq!(FftPlan::new(1200).scratch_len(), 4096);
        assert_eq!(FftPlan::new(1).scratch_len(), 0);
        assert!(FftPlan::new(0).is_empty());
    }
}
