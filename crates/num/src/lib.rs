#![warn(missing_docs)]

//! # rem-num
//!
//! Numerical foundations for the REM reproduction: complex arithmetic,
//! FFTs of arbitrary length, dense complex matrices, a one-sided Jacobi
//! SVD, descriptive statistics and deterministic random sources.
//!
//! Everything here is implemented from scratch (no external linear
//! algebra or FFT crates) so the whole signal path of the paper —
//! OFDM/OTFS modulation, delay-Doppler channel estimation and the
//! SVD-based cross-band estimator of Algorithm 1 — is auditable within
//! this workspace.
//!
//! ## Quick tour
//!
//! ```
//! use rem_num::{c64, fft::fft_vec, matrix::CMatrix, svd::svd};
//!
//! // FFT of a delta is flat.
//! let mut x = vec![rem_num::Complex64::ZERO; 8];
//! x[0] = rem_num::Complex64::ONE;
//! let y = fft_vec(&x);
//! assert!(y.iter().all(|z| z.dist(rem_num::Complex64::ONE) < 1e-12));
//!
//! // SVD reconstructs its input.
//! let a = CMatrix::from_fn(4, 3, |r, c| c64(r as f64, c as f64));
//! let d = svd(&a);
//! assert!(d.reconstruct().frobenius_dist(&a) < 1e-9);
//! ```

pub mod complex;
pub mod fft;
pub mod health;
pub mod matrix;
pub mod rng;
pub mod simd;
pub mod stats;
pub mod svd;

pub use complex::{c64, Complex64};
pub use fft::{FftPlan, FftPlanner, FftScratch};
pub use health::DegradedStats;
pub use matrix::CMatrix;
pub use rng::SimRng;
pub use simd::SimdTier;
pub use svd::{svd, svd_checked, svd_monitored, Svd, SvdError, SvdOptions, SvdReport};
