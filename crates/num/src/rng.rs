//! Deterministic random sources for reproducible simulation.
//!
//! Every stochastic component of the workspace (noise, fading,
//! shadowing, packet loss) draws from an explicitly seeded ChaCha8
//! stream so that a simulation run is reproducible bit-for-bit across
//! machines and releases — the property that makes the replay-based
//! evaluation methodology (paper §7) meaningful.

use crate::complex::{c64, Complex64};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// The workspace-wide RNG type: seedable, portable, fast.
pub type SimRng = ChaCha8Rng;

/// Creates a [`SimRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent child stream from a parent seed and a label,
/// so subsystems can be re-ordered or added without perturbing each
/// other's random streams.
pub fn child_rng(seed: u64, label: &str) -> SimRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rng_from_seed(seed ^ h)
}

/// Draws a standard normal sample via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a circularly-symmetric complex Gaussian sample with total
/// variance `var` (i.e. each component has variance `var / 2`). This is
/// the standard model for both AWGN and Rayleigh path gains.
pub fn complex_gaussian(rng: &mut impl Rng, var: f64) -> Complex64 {
    let s = (var / 2.0).sqrt();
    c64(s * standard_normal(rng), s * standard_normal(rng))
}

/// Draws an exponential sample with the given mean.
pub fn exponential(rng: &mut impl Rng, mean_value: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean_value * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_independent_of_label_order() {
        let mut x1 = child_rng(7, "noise");
        let mut y1 = child_rng(7, "fading");
        let x_first: Vec<u64> = (0..8).map(|_| x1.gen()).collect();
        // Recreate in the opposite order: streams must be unchanged.
        let mut y2 = child_rng(7, "fading");
        let mut x2 = child_rng(7, "noise");
        let y_second: Vec<u64> = (0..8).map(|_| y2.gen()).collect();
        let x_second: Vec<u64> = (0..8).map(|_| x2.gen()).collect();
        let y_first: Vec<u64> = (0..8).map(|_| y1.gen()).collect();
        assert_eq!(x_first, x_second);
        assert_eq!(y_first, y_second);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(9);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.05);
        assert!((std_dev(&xs) - 1.0).abs() < 0.05);
    }

    #[test]
    fn complex_gaussian_variance() {
        let mut rng = rng_from_seed(11);
        let var = 4.0;
        let n = 20_000;
        let power: f64 =
            (0..n).map(|_| complex_gaussian(&mut rng, var).norm_sqr()).sum::<f64>() / n as f64;
        assert!((power - var).abs() < 0.15, "power={power}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(13);
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut rng, 3.0)).collect();
        assert!((mean(&xs) - 3.0).abs() < 0.1);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = rng_from_seed(17);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        assert!((mean(&xs) - 10.0).abs() < 0.1);
        assert!((std_dev(&xs) - 2.0).abs() < 0.1);
    }
}
