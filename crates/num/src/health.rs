//! Numerical-health guards: NaN/Inf spot checks and the
//! [`DegradedStats`] ledger.
//!
//! A multi-hour Monte-Carlo campaign must treat numerical trouble the
//! way it treats injected faults: *observe and account*, never silently
//! poison the aggregate. A single NaN LLR flowing into the Viterbi
//! decoder, or a non-converged SVD feeding the cross-band estimator,
//! turns a BLER point or an SNR prediction into garbage with no trace
//! in the output. The guards here give every stage boundary a cheap
//! finite-ness spot check and a place to record degradations:
//!
//! * [`first_non_finite`] / [`check_finite`] — scan real or complex
//!   slices for the first NaN/Inf;
//! * [`DegradedStats`] — a mergeable counter block, serialized next to
//!   (never inside) campaign aggregates so hashes of trial values are
//!   unaffected;
//! * a thread-local accumulator ([`record`] / [`take_thread_stats`])
//!   so deep DSP code can count an event without threading a stats
//!   parameter through every signature. Workers drain it per trial and
//!   reduce in canonical order, keeping campaigns deterministic.

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// A non-finite value was found at `index` of the scanned slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonFinite {
    /// Index of the first offending element.
    pub index: usize,
}

impl std::fmt::Display for NonFinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite value at index {}", self.index)
    }
}

impl std::error::Error for NonFinite {}

/// Index of the first NaN/Inf in a real slice, if any.
pub fn first_non_finite(xs: &[f64]) -> Option<usize> {
    xs.iter().position(|x| !x.is_finite())
}

/// Index of the first element with a NaN/Inf component in a complex
/// slice, if any.
pub fn first_non_finite_c(xs: &[Complex64]) -> Option<usize> {
    xs.iter().position(|z| !z.re.is_finite() || !z.im.is_finite())
}

/// Typed finite-ness check over a real slice.
pub fn check_finite(xs: &[f64]) -> Result<(), NonFinite> {
    match first_non_finite(xs) {
        Some(index) => Err(NonFinite { index }),
        None => Ok(()),
    }
}

/// Typed finite-ness check over a complex slice.
pub fn check_finite_c(xs: &[Complex64]) -> Result<(), NonFinite> {
    match first_non_finite_c(xs) {
        Some(index) => Err(NonFinite { index }),
        None => Ok(()),
    }
}

/// Counters of numerical degradations observed during a run. Kept
/// *beside* campaign aggregates (and out of determinism hashes): a
/// degraded trial contributes its sanitized value to the aggregate and
/// its event count here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedStats {
    /// Jacobi SVDs that hit the sweep cap (best-effort factors used).
    #[serde(default)]
    pub svd_non_converged: u64,
    /// NaN/Inf LLRs neutralised (set to 0.0) before Viterbi decoding.
    #[serde(default)]
    pub non_finite_llr: u64,
    /// Non-finite values detected at a DSP stage boundary
    /// (post-equalisation / post-OTFS-demodulation grids).
    #[serde(default)]
    pub non_finite_stage: u64,
    /// Cross-band predictions replaced by the last good estimate.
    #[serde(default)]
    pub estimator_fallbacks: u64,
    /// REM forecasts found absent/stale by the transport resilience
    /// shim, which fell back to vanilla loss-based recovery.
    #[serde(default)]
    pub forecast_fallbacks: u64,
}

impl DegradedStats {
    /// Adds another ledger into this one.
    pub fn merge(&mut self, other: &DegradedStats) {
        self.svd_non_converged += other.svd_non_converged;
        self.non_finite_llr += other.non_finite_llr;
        self.non_finite_stage += other.non_finite_stage;
        self.estimator_fallbacks += other.estimator_fallbacks;
        self.forecast_fallbacks += other.forecast_fallbacks;
    }

    /// Total events of any kind.
    pub fn total(&self) -> u64 {
        self.svd_non_converged
            + self.non_finite_llr
            + self.non_finite_stage
            + self.estimator_fallbacks
            + self.forecast_fallbacks
    }

    /// True when nothing degraded.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl std::fmt::Display for DegradedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "svd-non-converged {}, non-finite LLRs {}, non-finite stages {}, \
             estimator fallbacks {}, forecast fallbacks {}",
            self.svd_non_converged,
            self.non_finite_llr,
            self.non_finite_stage,
            self.estimator_fallbacks,
            self.forecast_fallbacks
        )
    }
}

thread_local! {
    static THREAD_STATS: Cell<DegradedStats> = const { Cell::new(DegradedStats {
        svd_non_converged: 0,
        non_finite_llr: 0,
        non_finite_stage: 0,
        estimator_fallbacks: 0,
        forecast_fallbacks: 0,
    }) };
}

/// Mutates the current thread's degradation ledger. DSP code calls
/// this at the point of degradation; the campaign worker drains the
/// ledger per trial with [`take_thread_stats`].
pub fn record(f: impl FnOnce(&mut DegradedStats)) {
    THREAD_STATS.with(|cell| {
        let mut stats = cell.get();
        f(&mut stats);
        cell.set(stats);
    });
}

/// Takes (and resets) the current thread's degradation ledger. Call
/// once before a trial to clear leftovers and once after to collect
/// what the trial recorded — counts are then per-trial deterministic
/// and can be reduced in canonical order.
pub fn take_thread_stats() -> DegradedStats {
    THREAD_STATS.with(|cell| cell.replace(DegradedStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn finite_scans_find_first_offender() {
        assert_eq!(first_non_finite(&[1.0, 2.0, 3.0]), None);
        assert_eq!(first_non_finite(&[1.0, f64::NAN, f64::INFINITY]), Some(1));
        assert_eq!(first_non_finite(&[f64::NEG_INFINITY]), Some(0));
        assert!(check_finite(&[0.0, -1.0]).is_ok());
        assert_eq!(check_finite(&[0.0, f64::NAN]), Err(NonFinite { index: 1 }));
    }

    #[test]
    fn complex_scans_catch_either_component() {
        let ok = [c64(1.0, -2.0), c64(0.0, 0.0)];
        assert_eq!(first_non_finite_c(&ok), None);
        let bad_re = [c64(1.0, 0.0), c64(f64::NAN, 0.0)];
        assert_eq!(first_non_finite_c(&bad_re), Some(1));
        let bad_im = [c64(1.0, f64::INFINITY)];
        assert_eq!(first_non_finite_c(&bad_im), Some(0));
    }

    #[test]
    fn stats_merge_total_and_display() {
        let mut a = DegradedStats { svd_non_converged: 1, ..Default::default() };
        let b = DegradedStats { non_finite_llr: 2, estimator_fallbacks: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert!(!a.is_clean());
        assert!(DegradedStats::default().is_clean());
        let shown = a.to_string();
        assert!(shown.contains("svd-non-converged 1"));
        assert!(shown.contains("estimator fallbacks 3"));
    }

    #[test]
    fn thread_ledger_records_and_drains() {
        let _ = take_thread_stats(); // clear anything a prior test left
        record(|d| d.non_finite_llr += 2);
        record(|d| d.svd_non_converged += 1);
        let taken = take_thread_stats();
        assert_eq!(taken.non_finite_llr, 2);
        assert_eq!(taken.svd_non_converged, 1);
        // Drained: the next take is clean.
        assert!(take_thread_stats().is_clean());
    }

    #[test]
    fn stats_serde_roundtrip_and_missing_fields_default() {
        let s = DegradedStats { non_finite_stage: 4, ..Default::default() };
        let json = serde_json::to_string(&s).expect("serialize");
        let back: DegradedStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
        let sparse: DegradedStats = serde_json::from_str("{}").expect("all fields default");
        assert!(sparse.is_clean());
    }
}
