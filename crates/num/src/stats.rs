//! Descriptive statistics used by the evaluation harness.
//!
//! Every figure in the paper is either a CDF, a bar of means, or a time
//! series; this module provides the small set of estimators those
//! need: mean/std, percentiles (linear interpolation, the common
//! "type 7" definition), empirical CDFs and fixed-width histograms.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (`n - 1` denominator); `0.0` for fewer
/// than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics. `0.0` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// An empirical cumulative distribution function over a sample.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample (NaNs are dropped).
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`, in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample `x` with `P(X <= x) >= q`, `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Samples the CDF at `points` evenly spaced x-values between the
    /// sample min and max; returns `(x, P(X <= x))` pairs ready to print
    /// as a figure series.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-width histogram over `[lo, hi)` with values outside the
/// range clamped into the first/last bin.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram spec");
        Self { lo, hi, counts: vec![0; bins] }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let bins = self.counts.len();
        let w = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Converts a linear power ratio to decibels; `-inf` for nonpositive input.
#[inline]
pub fn lin_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert!(Ecdf::new(&[]).is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((e.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((e.eval(3.0) - 0.6).abs() < 1e-12);
        assert!((e.eval(10.0) - 1.0).abs() < 1e-12);
        assert!((e.quantile(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let s = e.series(50);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.5, 2.5, 2.9, 9.9, 42.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        let s = h.series();
        assert_eq!(s[0].1, 2); // -1.0 clamped + 0.5
        assert_eq!(s[1].1, 2); // 2.5, 2.9
        assert_eq!(s[4].1, 2); // 9.9 + 42.0 clamped
    }

    #[test]
    fn db_round_trip() {
        for db in [-20.0, -3.0, 0.0, 10.0, 30.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-10);
        }
        assert!((db_to_lin(3.0103) - 2.0).abs() < 1e-3);
    }
}
