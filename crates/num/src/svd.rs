//! Singular value decomposition of complex matrices.
//!
//! REM's cross-band estimation (paper §5.2, Algorithm 1) approximates
//! the delay-Doppler channel factorisation `H = Γ P Φ` with an SVD.
//! We implement the one-sided Jacobi (Hestenes) method: it is simple,
//! numerically robust, and accurate to working precision for the small
//! and medium matrices used throughout the stack (12 x 14 subframes up
//! to the ~1200 x 560 grids in the paper's analysis).
//!
//! For an `m x n` input `A` the decomposition is the *thin* SVD
//! `A = U Σ V^H` with `U: m x k`, `Σ: k x k` diagonal, `V: n x k`,
//! `k = min(m, n)`, singular values sorted in descending order.

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// Result of a singular value decomposition `A = U Σ V^H`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m x k`, orthonormal columns (columns
    /// paired with zero singular values are zero).
    pub u: CMatrix,
    /// Singular values in descending order, length `k = min(m, n)`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n x k`, orthonormal columns.
    pub v: CMatrix,
}

impl Svd {
    /// Reconstructs `U Σ V^H`.
    pub fn reconstruct(&self) -> CMatrix {
        let k = self.s.len();
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = CMatrix::zeros(m, n);
        for p in 0..k {
            let sp = self.s[p];
            if sp == 0.0 {
                continue;
            }
            for r in 0..m {
                let us = self.u[(r, p)].scale(sp);
                for c in 0..n {
                    out[(r, c)] += us * self.v[(c, p)].conj();
                }
            }
        }
        out
    }

    /// Keeps only the `k` largest singular triplets ("principal
    /// components"), as used for the path-count truncation in REM.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        Svd {
            u: CMatrix::from_fn(self.u.rows(), k, |r, c| self.u[(r, c)]),
            s: self.s[..k].to_vec(),
            v: CMatrix::from_fn(self.v.rows(), k, |r, c| self.v[(r, c)]),
        }
    }

    /// Effective numerical rank: number of singular values above
    /// `rel_tol * s_max`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.s.iter().take_while(|&&s| s > rel_tol * smax).count()
    }
}

/// Options for the Jacobi iteration (see [`svd_with_opts`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvdOptions {
    /// Safety cap on Jacobi sweeps. The historical silent cap was 64;
    /// [`svd_with_opts`] surfaces hitting it as
    /// [`SvdError::NotConverged`] instead of returning garbage-adjacent
    /// factors without a trace.
    pub max_sweeps: usize,
    /// Relative orthogonality threshold: a column pair is "converged"
    /// once `|a_p^H a_q|` is negligible against `||a_p|| * ||a_q||`.
    pub tol_rel: f64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        Self { max_sweeps: 64, tol_rel: 1e-14 }
    }
}

/// Typed SVD failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SvdError {
    /// The Jacobi iteration hit the sweep cap while column pairs were
    /// still being rotated. `off_diag` is the worst remaining relative
    /// off-diagonal coupling `|a_p^H a_q| / (||a_p|| ||a_q||)` — how
    /// far from orthogonal the factors still are (0 = converged,
    /// against a tolerance of [`SvdOptions::tol_rel`]).
    NotConverged {
        /// Sweeps performed (equals the configured cap).
        sweeps: usize,
        /// Worst remaining relative column coupling.
        off_diag: f64,
    },
}

impl std::fmt::Display for SvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvdError::NotConverged { sweeps, off_diag } => write!(
                f,
                "jacobi SVD did not converge after {sweeps} sweeps \
                 (worst relative off-diagonal {off_diag:.3e})"
            ),
        }
    }
}

impl std::error::Error for SvdError {}

/// Convergence report attached to a successful checked decomposition.
#[derive(Clone, Debug)]
pub struct SvdReport {
    /// The decomposition.
    pub svd: Svd,
    /// Jacobi sweeps actually performed.
    pub sweeps: usize,
}

/// Computes the thin SVD of `a` using one-sided Jacobi rotations.
///
/// Converges to working precision in a handful of sweeps for
/// well-conditioned inputs; capped at 64 sweeps as a safety net. This
/// entry point keeps the historical behaviour — non-convergence is
/// silent and the best-effort factors are returned. Campaign code that
/// must *account* for numerical degradation should use
/// [`svd_checked`] (typed error) or [`svd_monitored`] (best-effort
/// factors plus the error, for degrade-don't-garbage paths).
pub fn svd(a: &CMatrix) -> Svd {
    svd_monitored(a).0
}

/// [`svd`] with a typed convergence result: `Err(SvdError::NotConverged)`
/// when the sweep cap was hit, `Ok` with the sweep count otherwise.
pub fn svd_checked(a: &CMatrix) -> Result<SvdReport, SvdError> {
    svd_with_opts(a, &SvdOptions::default())
}

/// [`svd_checked`] with explicit iteration options.
pub fn svd_with_opts(a: &CMatrix, opts: &SvdOptions) -> Result<SvdReport, SvdError> {
    let (svd, sweeps, err) = svd_any(a, opts);
    match err {
        Some(e) => Err(e),
        None => Ok(SvdReport { svd, sweeps }),
    }
}

/// Best-effort decomposition **plus** the convergence error, if any:
/// the factors are always returned (they are the same best-effort
/// result [`svd`] silently hands back), and callers on a degraded path
/// can count/report the error instead of either panicking or silently
/// poisoning downstream aggregates.
pub fn svd_monitored(a: &CMatrix) -> (Svd, Option<SvdError>) {
    let (svd, _sweeps, err) = svd_any(a, &SvdOptions::default());
    (svd, err)
}

/// Dispatches tall/wide and threads the convergence report through the
/// transpose trick.
fn svd_any(a: &CMatrix, opts: &SvdOptions) -> (Svd, usize, Option<SvdError>) {
    if a.rows() >= a.cols() {
        svd_tall(a, opts)
    } else {
        // A = U Σ V^H  <=>  A^H = V Σ U^H: decompose the (tall)
        // conjugate transpose and swap the factors.
        let (t, sweeps, err) = svd_tall(&a.hermitian(), opts);
        (Svd { u: t.v, s: t.s, v: t.u }, sweeps, err)
    }
}

fn svd_tall(a: &CMatrix, opts: &SvdOptions) -> (Svd, usize, Option<SvdError>) {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);
    // Work on columns of `work`; accumulate right rotations in `v`.
    let mut work = a.clone();
    let mut v = CMatrix::identity(n);

    let tol_rel = opts.tol_rel;
    let max_sweeps = opts.max_sweeps;
    let mut sweeps = 0usize;
    let mut converged = n <= 1;

    for _ in 0..max_sweeps {
        sweeps += 1;
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the (p, q) column pair.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = Complex64::ZERO;
                for r in 0..m {
                    let ap = work[(r, p)];
                    let aq = work[(r, q)];
                    alpha += ap.norm_sqr();
                    beta += aq.norm_sqr();
                    gamma += ap.conj() * aq;
                }
                let g = gamma.abs();
                let denom = (alpha * beta).sqrt();
                if denom <= f64::MIN_POSITIVE || g <= tol_rel * denom {
                    continue;
                }
                rotated = true;
                // Phase-align the q column so the pair behaves like the
                // real symmetric case, then apply the classic Jacobi
                // rotation that orthogonalises the two columns.
                let phase = gamma / Complex64::from_real(g); // e^{i phi}
                let tau = (beta - alpha) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let sp = phase.conj().scale(s); // s * e^{-i phi}
                let sq = phase.scale(s); // s * e^{+i phi}
                for r in 0..m {
                    let ap = work[(r, p)];
                    let aq = work[(r, q)];
                    work[(r, p)] = ap.scale(c) - sp * aq;
                    work[(r, q)] = sq * ap + aq.scale(c);
                }
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = vp.scale(c) - sp * vq;
                    v[(r, q)] = sq * vp + vq.scale(c);
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }

    // Non-convergence diagnostic: the worst remaining relative column
    // coupling (only computed on the failure path).
    let err = if converged {
        None
    } else {
        let mut off_diag = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = Complex64::ZERO;
                for r in 0..m {
                    let ap = work[(r, p)];
                    let aq = work[(r, q)];
                    alpha += ap.norm_sqr();
                    beta += aq.norm_sqr();
                    gamma += ap.conj() * aq;
                }
                let denom = (alpha * beta).sqrt();
                if denom > f64::MIN_POSITIVE {
                    off_diag = off_diag.max(gamma.abs() / denom);
                }
            }
        }
        Some(SvdError::NotConverged { sweeps, off_diag })
    };

    // Column norms are the singular values; normalised columns are U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| (0..m).map(|r| work[(r, c)].norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = CMatrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vs = CMatrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        let sigma = norms[src];
        s.push(sigma);
        if sigma > 0.0 {
            let inv = 1.0 / sigma;
            for r in 0..m {
                u[(r, dst)] = work[(r, src)].scale(inv);
            }
        }
        for r in 0..n {
            vs[(r, dst)] = v[(r, src)];
        }
    }
    (Svd { u, s, v: vs }, sweeps, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn reconstruction_error(a: &CMatrix) -> f64 {
        let d = svd(a);
        d.reconstruct().frobenius_dist(a) / a.frobenius_norm().max(1e-30)
    }

    #[test]
    fn identity_decomposes_to_unit_singular_values() {
        let d = svd(&CMatrix::identity(4));
        for &s in &d.s {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_recovers_sorted_diagonal() {
        let a = CMatrix::diag_real(&[1.0, 5.0, 3.0]);
        let d = svd(&a);
        assert!((d.s[0] - 5.0).abs() < 1e-12);
        assert!((d.s[1] - 3.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall_matrix() {
        let a = CMatrix::from_fn(6, 4, |r, c| {
            c64((r as f64 * 0.7 + c as f64).sin(), (r as f64 - 1.3 * c as f64).cos())
        });
        assert!(reconstruction_error(&a) < 1e-10);
    }

    #[test]
    fn reconstruction_wide_matrix() {
        let a = CMatrix::from_fn(3, 7, |r, c| {
            c64((1.0 + r as f64 * c as f64).ln(), (r + c) as f64 * 0.1)
        });
        assert!(reconstruction_error(&a) < 1e-10);
    }

    #[test]
    fn reconstruction_subframe_sized() {
        // 4G subframe dimensions used throughout the PHY layer.
        let a = CMatrix::from_fn(12, 14, |r, c| {
            Complex64::cis(0.37 * r as f64 * c as f64).scale(1.0 / (1.0 + r as f64))
        });
        assert!(reconstruction_error(&a) < 1e-10);
    }

    #[test]
    fn factors_have_orthonormal_columns() {
        let a = CMatrix::from_fn(8, 5, |r, c| c64((r * c) as f64 % 3.0, (r + 2 * c) as f64 % 5.0));
        let d = svd(&a);
        assert!(d.u.is_unitary_columns(1e-9));
        assert!(d.v.is_unitary_columns(1e-9));
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = CMatrix::from_fn(5, 5, |r, c| c64((r as f64 - c as f64).tanh(), 0.2 * r as f64));
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &d.s {
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Rank-1 outer product.
        let u = [c64(1.0, 0.5), c64(-0.3, 1.0), c64(2.0, 0.0)];
        let v = [c64(0.7, -0.2), c64(1.1, 0.4)];
        let a = CMatrix::from_fn(3, 2, |r, c| u[r] * v[c].conj());
        let d = svd(&a);
        assert_eq!(d.rank(1e-9), 1);
        assert!(d.s[1] < 1e-9 * d.s[0].max(1.0));
        assert!(d.reconstruct().frobenius_dist(&a) < 1e-10);
    }

    #[test]
    fn truncation_of_low_rank_is_lossless() {
        let u = [c64(1.0, 0.0), c64(0.0, 1.0), c64(1.0, 1.0), c64(2.0, -1.0)];
        let v = [c64(1.0, 0.0), c64(0.5, 0.5), c64(-1.0, 0.25)];
        let a = CMatrix::from_fn(4, 3, |r, c| u[r] * v[c].conj());
        let d = svd(&a).truncate(1);
        assert_eq!(d.s.len(), 1);
        assert!(d.reconstruct().frobenius_dist(&a) < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let d = svd(&CMatrix::zeros(3, 2));
        assert!(d.s.iter().all(|&s| s == 0.0));
        assert_eq!(d.rank(1e-9), 0);
    }

    #[test]
    fn checked_svd_reports_sweeps_and_matches_silent_path() {
        let a = CMatrix::from_fn(7, 5, |r, c| c64((r as f64 * 0.6).sin(), (c as f64 * 1.1).cos()));
        let rep = svd_checked(&a).expect("well-conditioned input must converge");
        assert!(rep.sweeps >= 1 && rep.sweeps < 64, "sweeps={}", rep.sweeps);
        // The checked path returns exactly what the silent path returns.
        let silent = svd(&a);
        assert_eq!(rep.svd.s, silent.s);
        assert_eq!(rep.svd.u, silent.u);
        assert_eq!(rep.svd.v, silent.v);
    }

    #[test]
    fn near_degenerate_shared_bin_matrix_converges_and_is_rank_deficient() {
        // Theorem 1, condition (ii): two multipath components sharing a
        // delay-Doppler bin. In the factorisation H = Γ P Φ that means
        // two terms with the *same* Γ column (same delay signature k)
        // but different complex gains — H collapses toward rank 1 and
        // the Jacobi iteration works on a nearly-degenerate column
        // space. The decomposition must still converge within the
        // sweep cap, reconstruct, and report the rank collapse.
        let (m, n) = (16, 12);
        // Shared delay bin k=3: identical steering column for both paths.
        let gamma: Vec<Complex64> =
            (0..m).map(|k| Complex64::cis(-2.0 * PI_T * k as f64 * 3.0 / m as f64)).collect();
        // Distinct Doppler rows, one of them perturbed off-grid by 1e-6
        // of a bin so the two terms are *nearly* (not exactly) aligned.
        let phi = |l: usize, bin: f64| Complex64::cis(2.0 * PI_T * l as f64 * bin / n as f64);
        let h = CMatrix::from_fn(m, n, |k, l| {
            gamma[k] * phi(l, 2.0)
                + gamma[k].scale(0.7) * phi(l, 2.0 + 1e-6)
        });
        let rep = svd_checked(&h).expect("near-degenerate shared-bin matrix must converge");
        assert!(rep.sweeps < 64, "sweeps={}", rep.sweeps);
        // The two shared-bin paths merge into one dominant component.
        assert_eq!(rep.svd.rank(1e-5), 1, "s={:?}", &rep.svd.s[..3]);
        let rel = rep.svd.reconstruct().frobenius_dist(&h) / h.frobenius_norm();
        assert!(rel < 1e-10, "rel={rel}");
    }

    const PI_T: f64 = std::f64::consts::PI;

    #[test]
    fn sweep_cap_is_surfaced_as_typed_error() {
        // Force the cap with max_sweeps = 1 on a matrix that needs more.
        let a = CMatrix::from_fn(6, 6, |r, c| {
            c64((1.0 + (r * 5 + c) as f64).sin(), ((r + 2 * c) as f64).cos())
        });
        let opts = SvdOptions { max_sweeps: 1, ..SvdOptions::default() };
        match svd_with_opts(&a, &opts) {
            Err(SvdError::NotConverged { sweeps, off_diag }) => {
                assert_eq!(sweeps, 1);
                assert!(off_diag > opts.tol_rel, "off_diag={off_diag}");
                assert!(off_diag <= 1.0 + 1e-12);
            }
            Ok(rep) => panic!("expected NotConverged, got convergence in {} sweeps", rep.sweeps),
        }
        // The monitored path still hands back usable best-effort factors
        // alongside the same error.
        let (best_effort, err) = {
            let (s, _, e) = super::svd_any(&a, &opts);
            (s, e)
        };
        assert!(err.is_some());
        assert_eq!(best_effort.s.len(), 6);
    }

    #[test]
    fn monitored_matches_silent_and_converges_on_clean_input() {
        let a = CMatrix::from_fn(5, 4, |r, c| c64(r as f64 - c as f64, 0.3 * (r + c) as f64));
        let (d, err) = svd_monitored(&a);
        assert!(err.is_none());
        assert_eq!(d.s, svd(&a).s);
    }

    #[test]
    fn frobenius_norm_equals_singular_value_energy() {
        let a = CMatrix::from_fn(6, 6, |r, c| c64((r as f64).cos() * c as f64, (c as f64).sin()));
        let d = svd(&a);
        let fro2: f64 = a.frobenius_norm().powi(2);
        let sv2: f64 = d.s.iter().map(|s| s * s).sum();
        assert!((fro2 - sv2).abs() < 1e-8 * fro2.max(1.0));
    }
}

impl Svd {
    /// Moore–Penrose pseudo-inverse `A⁺ = V Σ⁺ U^H`, truncating
    /// singular values below `rel_tol * s_max`.
    pub fn pseudo_inverse(&self, rel_tol: f64) -> CMatrix {
        let k = self.s.len();
        let m = self.u.rows();
        let n = self.v.rows();
        let smax = self.s.first().copied().unwrap_or(0.0);
        let mut out = CMatrix::zeros(n, m);
        for p in 0..k {
            let sp = self.s[p];
            if smax == 0.0 || sp <= rel_tol * smax {
                continue;
            }
            let inv = 1.0 / sp;
            for r in 0..n {
                let vs = self.v[(r, p)].scale(inv);
                for c in 0..m {
                    out[(r, c)] += vs * self.u[(c, p)].conj();
                }
            }
        }
        out
    }
}

/// Least-squares solve `min ||A x - b||` via the SVD pseudo-inverse.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn lstsq(a: &CMatrix, b: &[Complex64], rel_tol: f64) -> Vec<Complex64> {
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let pinv = svd(a).pseudo_inverse(rel_tol);
    (0..pinv.rows())
        .map(|r| {
            let mut acc = Complex64::ZERO;
            for (c, &bv) in b.iter().enumerate() {
                acc += pinv[(r, c)] * bv;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod pinv_tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn pinv_of_invertible_matrix_is_inverse() {
        let a = CMatrix::from_vec(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 1.0), c64(0.0, -1.0), c64(3.0, 0.0)],
        );
        let pinv = svd(&a).pseudo_inverse(1e-12);
        let prod = a.matmul(&pinv);
        assert!(prod.frobenius_dist(&CMatrix::identity(2)) < 1e-9);
    }

    #[test]
    fn pinv_satisfies_moore_penrose_identities() {
        let a = CMatrix::from_fn(5, 3, |r, c| c64((r as f64 * 0.9).sin(), c as f64 * 0.3));
        let p = svd(&a).pseudo_inverse(1e-12);
        // A A+ A == A and A+ A A+ == A+.
        let apa = a.matmul(&p).matmul(&a);
        assert!(apa.frobenius_dist(&a) < 1e-8 * a.frobenius_norm());
        let pap = p.matmul(&a).matmul(&p);
        assert!(pap.frobenius_dist(&p) < 1e-8 * p.frobenius_norm().max(1e-12));
    }

    #[test]
    fn lstsq_solves_exact_system() {
        // x = (1, -i): b = A x.
        let a = CMatrix::from_vec(
            3,
            2,
            vec![
                c64(1.0, 0.0), c64(0.0, 1.0),
                c64(2.0, 0.0), c64(1.0, 0.0),
                c64(0.0, 0.0), c64(3.0, 0.0),
            ],
        );
        let x_true = [c64(1.0, 0.0), c64(0.0, -1.0)];
        let b: Vec<Complex64> = (0..3)
            .map(|r| a[(r, 0)] * x_true[0] + a[(r, 1)] * x_true[1])
            .collect();
        let x = lstsq(&a, &b, 1e-12);
        assert!(x[0].dist(x_true[0]) < 1e-9);
        assert!(x[1].dist(x_true[1]) < 1e-9);
    }

    #[test]
    fn lstsq_minimises_residual_for_overdetermined_system() {
        let a = CMatrix::from_fn(6, 2, |r, c| c64((r + c) as f64, 0.0));
        let b: Vec<Complex64> = (0..6).map(|r| c64(r as f64 + 0.5, 0.1)).collect();
        let x = lstsq(&a, &b, 1e-12);
        // The residual must be orthogonal to the column space: A^H r = 0.
        let resid: Vec<Complex64> = (0..6)
            .map(|r| b[r] - (a[(r, 0)] * x[0] + a[(r, 1)] * x[1]))
            .collect();
        for c in 0..2 {
            let mut dot = Complex64::ZERO;
            for r in 0..6 {
                dot += a[(r, c)].conj() * resid[r];
            }
            assert!(dot.abs() < 1e-8, "col {c}: {dot:?}");
        }
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let p = svd(&CMatrix::zeros(3, 2)).pseudo_inverse(1e-12);
        assert!(p.frobenius_norm() < 1e-12);
        assert_eq!(p.shape(), (2, 3));
    }
}
