//! Dense complex matrices.
//!
//! Channel matrices `H`, the delay/Doppler spread factors `Γ`, `P`, `Φ`
//! of REM's cross-band decomposition, and the SVD all operate on small
//! to medium dense matrices (a 4G subframe is 12 x 14; the largest grid
//! used by the paper's analysis is 1200 x 560). A straightforward
//! row-major `Vec<Complex64>` with explicit loops is simple, cache
//! friendly at these sizes, and keeps the numerics auditable.

use crate::complex::Complex64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates an all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Creates a square diagonal matrix from real diagonal entries.
    pub fn diag_real(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = Complex64::from_real(v);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies out one column.
    pub fn col(&self, c: usize) -> Vec<Complex64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Copies column `c` into `out` without allocating (the hot-path
    /// sibling of [`col`](Self::col), used by the column-wise FFT
    /// passes of the symplectic transforms).
    ///
    /// # Panics
    /// Panics if `out.len() != self.rows()` or `c` is out of range.
    pub fn copy_col_into(&self, c: usize, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.rows, "column buffer size mismatch");
        assert!(c < self.cols, "column index out of range");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cols + c];
        }
    }

    /// Writes `src` into column `c`, the inverse of
    /// [`copy_col_into`](Self::copy_col_into).
    ///
    /// # Panics
    /// Panics if `src.len() != self.rows()` or `c` is out of range.
    pub fn set_col(&mut self, c: usize, src: &[Complex64]) {
        assert_eq!(src.len(), self.rows, "column buffer size mismatch");
        assert!(c < self.cols, "column index out of range");
        for (r, &v) in src.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
    }

    /// Copies row `r` into `out` without allocating.
    ///
    /// # Panics
    /// Panics if `out.len() != self.cols()` or `r` is out of range.
    pub fn copy_row_into(&self, r: usize, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.cols, "row buffer size mismatch");
        out.copy_from_slice(self.row(r));
    }

    /// Writes `src` into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != self.cols()` or `r` is out of range.
    pub fn set_row(&mut self, r: usize, src: &[Complex64]) {
        assert_eq!(src.len(), self.cols, "row buffer size mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Conjugate transpose `A^H`.
    pub fn hermitian(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose `A^T` (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Multiplies every entry by a real scalar, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }

    /// Returns `self` scaled by a real scalar.
    pub fn scaled(&self, s: f64) -> Self {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Frobenius distance `||self - other||_F`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn frobenius_dist(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// True when `A^H A` is within `tol` of the identity (columns are
    /// orthonormal).
    pub fn is_unitary_columns(&self, tol: f64) -> bool {
        let g = self.hermitian().matmul(self);
        let n = g.rows();
        for r in 0..n {
            for c in 0..n {
                let want = if r == c { Complex64::ONE } else { Complex64::ZERO };
                if g[(r, c)].dist(want) > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Mean of squared magnitudes over all entries (average power).
    pub fn mean_power(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>() / self.data.len() as f64
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: Self) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape());
        CMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: Self) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape());
        CMatrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Self) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_fn(3, 3, |r, c| c64((r * 3 + c) as f64, (r as f64) - (c as f64)));
        let i = CMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        // [[1, i], [0, 2]] * [[1, 0], [1, 1]] = [[1+i, i], [2, 2]]
        let a = CMatrix::from_vec(2, 2, vec![c64(1.0, 0.0), Complex64::I, Complex64::ZERO, c64(2.0, 0.0)]);
        let b = CMatrix::from_vec(2, 2, vec![Complex64::ONE, Complex64::ZERO, Complex64::ONE, Complex64::ONE]);
        let p = a.matmul(&b);
        assert!(p[(0, 0)].dist(c64(1.0, 1.0)) < 1e-12);
        assert!(p[(0, 1)].dist(Complex64::I) < 1e-12);
        assert!(p[(1, 0)].dist(c64(2.0, 0.0)) < 1e-12);
        assert!(p[(1, 1)].dist(c64(2.0, 0.0)) < 1e-12);
    }

    #[test]
    fn hermitian_involution_and_product_rule() {
        let a = CMatrix::from_fn(2, 3, |r, c| c64(r as f64 + 1.0, c as f64 - 1.0));
        let b = CMatrix::from_fn(3, 2, |r, c| c64(c as f64, r as f64));
        assert_eq!(a.hermitian().hermitian(), a);
        // (AB)^H == B^H A^H
        let lhs = a.matmul(&b).hermitian();
        let rhs = b.hermitian().matmul(&a.hermitian());
        assert!(lhs.frobenius_dist(&rhs) < 1e-12);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = CMatrix::from_vec(1, 2, vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identity_columns_are_unitary() {
        assert!(CMatrix::identity(5).is_unitary_columns(1e-12));
        let mut a = CMatrix::identity(3);
        a[(0, 1)] = c64(0.5, 0.0);
        assert!(!a.is_unitary_columns(1e-6));
    }

    #[test]
    fn diag_real_builds_expected() {
        let d = CMatrix::diag_real(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], c64(2.0, 0.0));
        assert_eq!(d[(0, 1)], Complex64::ZERO);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = CMatrix::from_fn(2, 2, |r, c| c64(r as f64, c as f64));
        let b = CMatrix::from_fn(2, 2, |r, c| c64(c as f64, r as f64));
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.frobenius_dist(&a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_and_col_access() {
        let a = CMatrix::from_fn(3, 2, |r, c| c64(r as f64, c as f64));
        assert_eq!(a.row(1), &[c64(1.0, 0.0), c64(1.0, 1.0)]);
        assert_eq!(a.col(1), vec![c64(0.0, 1.0), c64(1.0, 1.0), c64(2.0, 1.0)]);
    }
}
