//! Lock-free service counters, rendered on `/metrics`.
//!
//! The service keeps its own atomics instead of recording into the
//! `rem-obs` registry: the registry is compiled out without the `obs`
//! feature, but a *service* must always be able to report how many
//! jobs it lost (none) after a crash. Rendering reuses
//! [`rem_obs::metrics::render_prometheus`], which is a pure function
//! and works in every build; when the `obs` feature is on, the
//! campaign-layer metrics from the registry are appended after the
//! service's own series (the name prefixes are disjoint, so the
//! exposition stays well-formed).

use rem_obs::metrics::MetricsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::queue::QueueCounts;

/// Monotonic counters for the life of this service process.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs accepted by `POST /jobs`.
    pub submitted: AtomicU64,
    /// Jobs finished cleanly.
    pub completed: AtomicU64,
    /// Job attempts that failed (each may still be retried).
    pub failed_attempts: AtomicU64,
    /// Jobs parked as poison after exhausting their attempts.
    pub quarantined: AtomicU64,
    /// Submissions refused by admission control (HTTP 503).
    pub rejected: AtomicU64,
    /// Crashed worker threads respawned by the supervisor.
    pub worker_restarts: AtomicU64,
    /// In-flight jobs recovered back to the queue when this process
    /// opened the journal (the crash-recovery headline number).
    pub recovered_jobs: AtomicU64,
    /// Jobs whose heartbeat went stale past the deadline (detection
    /// only; the job keeps running).
    pub deadline_overruns: AtomicU64,
}

impl ServeStats {
    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// The service's own metrics as a snapshot: counters above, plus
    /// queue-level gauges (levels, not totals — a drained queue
    /// reports depth 0, visibly).
    pub fn snapshot(&self, counts: &QueueCounts) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let c = |snap: &mut MetricsSnapshot, name: &str, v: &AtomicU64| {
            snap.counters.insert(name.to_string(), v.load(Ordering::Relaxed));
        };
        c(&mut snap, "rem_serve_jobs_submitted_total", &self.submitted);
        c(&mut snap, "rem_serve_jobs_completed_total", &self.completed);
        c(&mut snap, "rem_serve_job_attempts_failed_total", &self.failed_attempts);
        c(&mut snap, "rem_serve_jobs_quarantined_total", &self.quarantined);
        c(&mut snap, "rem_serve_jobs_rejected_total", &self.rejected);
        c(&mut snap, "rem_serve_worker_restarts_total", &self.worker_restarts);
        c(&mut snap, "rem_serve_recovered_jobs_total", &self.recovered_jobs);
        c(&mut snap, "rem_serve_deadline_overruns_total", &self.deadline_overruns);
        snap.gauges.insert("rem_serve_queue_depth".to_string(), counts.queued as u64);
        snap.gauges.insert("rem_serve_jobs_running".to_string(), counts.running as u64);
        snap.gauges
            .insert("rem_serve_jobs_quarantined".to_string(), counts.quarantined as u64);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_obs::metrics::render_prometheus;

    #[test]
    fn snapshot_renders_every_series_including_zero_gauges() {
        let stats = ServeStats::default();
        ServeStats::inc(&stats.recovered_jobs);
        let text = render_prometheus(&stats.snapshot(&QueueCounts::default()));
        assert!(text.contains("# TYPE rem_serve_recovered_jobs_total counter"));
        assert!(text.contains("rem_serve_recovered_jobs_total 1"));
        assert!(text.contains("rem_serve_worker_restarts_total 0"));
        assert!(
            text.contains("rem_serve_queue_depth 0"),
            "an empty queue must still report its depth: {text}"
        );
        assert!(text.contains("# TYPE rem_serve_jobs_quarantined gauge"));
    }
}
