//! A deliberately minimal HTTP/1.1 server-side codec.
//!
//! The control plane of `rem serve` needs exactly four routes, one
//! client at a time, on a trusted loopback interface — a full HTTP
//! stack would be the largest dependency in the workspace for the
//! smallest job in it. This module reads one request (request line,
//! headers, `Content-Length` body) and writes one `Connection: close`
//! response, all over `std::net::TcpStream`, and nothing more: no
//! keep-alive, no chunked encoding, no TLS.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a scenario TOML is ~1 KiB; this is
/// generous while still bounding a misbehaving client).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client per RFC 9112).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// One response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body: body.into_bytes() }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Reads one request off the stream. `Err` covers both I/O failures
/// and malformed requests; the caller just drops the connection.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_string();
    let target = parts.next().ok_or_else(|| bad("request line without target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("unparseable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Writes `resp` and flushes. The connection is then done
/// (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs one request/response cycle over a real socket pair.
    fn roundtrip(raw_request: &str, resp: Response) -> (Request, String) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw_request.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side).unwrap();
        write_response(&mut server_side, &resp).unwrap();
        drop(server_side);
        (req, client.join().unwrap())
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let (req, reply) = roundtrip(
            "POST /jobs?src=test HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            Response::json(201, "{\"id\":0}".into()),
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs", "query string is stripped");
        assert_eq!(req.body, b"hello");
        assert!(reply.starts_with("HTTP/1.1 201 Created\r\n"), "reply: {reply}");
        assert!(reply.contains("Content-Length: 8\r\n"));
        assert!(reply.ends_with("{\"id\":0}"));
    }

    #[test]
    fn get_without_body_parses_empty() {
        let (req, reply) = roundtrip(
            "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
            Response::text(200, "ok".into()),
        );
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"));
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let head =
                format!("POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
            s.write_all(head.as_bytes()).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        assert!(read_request(&mut server_side).is_err());
        client.join().unwrap();
    }
}
