//! The resident service: spool directories, the HTTP control plane,
//! and the drain/restart lifecycle.
//!
//! ```text
//!            POST /jobs (scenario TOML)
//!   client ────────────────────────────► accept loop ──► JobQueue
//!                                                          │ REMQUEUE1 journal
//!   GET /healthz /metrics /jobs ◄── route handlers         │ (atomic+fsync+checksum)
//!                                                          ▼
//!                                          workers (claim → run → complete)
//!                                                          │ per-job REMCKPT1
//!                                          supervisor ◄────┘ checkpoints
//! ```
//!
//! Durability contract: every queue mutation is journalled before it
//! is acknowledged, every job checkpoints through the campaign
//! machinery, so `kill -9` at any instant loses no acknowledged job
//! and no completed trial wave — a restarted service resumes every
//! in-flight job from its checkpoint and produces `--hash`-identical
//! results.

use crate::http::{read_request, write_response, Request, Response};
use crate::queue::{JobQueue, JobState, QueueConfig, SubmitError};
use crate::signal;
use crate::stats::ServeStats;
use crate::worker::{WorkerConfig, WorkerPool};
use rem_core::{ExperimentError, ScenarioSpec};
use serde::Serialize;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service configuration (one `rem serve` invocation).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (written to
    /// `<spool>/serve.addr` for discovery).
    pub listen: String,
    /// Spool directory: queue journal, per-job checkpoints, address
    /// file. Created if missing; this is the service's whole durable
    /// state, so restarts must reuse it.
    pub spool: PathBuf,
    /// Concurrent worker loops (jobs in flight).
    pub workers: usize,
    /// Admission bound: queued + running jobs past this are rejected
    /// with HTTP 503.
    pub queue_capacity: usize,
    /// Attempts per job before it is quarantined as poison.
    pub job_retries: u32,
    /// Worker threads inside each job's campaign (`0` = all cores).
    pub job_threads: usize,
    /// Trials per checkpoint wave — the drain/crash granularity.
    pub checkpoint_every: usize,
    /// Heartbeat staleness (s) before a job is flagged overrun
    /// (`0` disables the watchdog).
    pub job_timeout_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:7787".into(),
            spool: PathBuf::from(".rem-spool"),
            workers: 1,
            queue_capacity: 64,
            job_retries: 2,
            job_threads: 0,
            checkpoint_every: 4,
            job_timeout_s: 0,
        }
    }
}

/// State shared between the accept loop and route handlers.
struct Shared {
    queue: Arc<JobQueue>,
    stats: Arc<ServeStats>,
    drain: Arc<AtomicBool>,
    workers: usize,
}

/// `GET /healthz` body.
#[derive(Serialize)]
struct Health {
    status: &'static str,
    workers: usize,
    queued: usize,
    running: usize,
    done: usize,
    quarantined: usize,
    worker_restarts: u64,
    recovered_jobs: u64,
}

/// `GET /jobs` element: a [`crate::queue::Job`] minus its TOML source.
#[derive(Serialize)]
struct JobSummary {
    id: u64,
    name: String,
    state: JobState,
    attempts: u32,
    result_hash: Option<String>,
    error: Option<String>,
}

/// A started service. Dropping it does **not** stop the threads; call
/// [`Server::drain`] then [`Server::join`] for a graceful exit.
pub struct Server {
    addr: SocketAddr,
    spool: PathBuf,
    queue: Arc<JobQueue>,
    stats: Arc<ServeStats>,
    drain: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Opens the spool, recovers the queue, binds the listener and
    /// spawns workers + supervisor + accept loop.
    pub fn start(cfg: &ServeConfig) -> Result<Server, ExperimentError> {
        let jobs_dir = cfg.spool.join("jobs");
        std::fs::create_dir_all(&jobs_dir).map_err(|e| ExperimentError::io(&jobs_dir, e))?;

        let (queue, recovered) = JobQueue::open(
            &cfg.spool.join("queue.journal"),
            QueueConfig { capacity: cfg.queue_capacity, max_attempts: cfg.job_retries },
        )?;
        let queue = Arc::new(queue);
        let stats = Arc::new(ServeStats::default());
        for _ in 0..recovered {
            ServeStats::inc(&stats.recovered_jobs);
        }
        if recovered > 0 {
            rem_obs::trace::emit("serve", "jobs_recovered", &[("count", recovered.into())]);
        }

        let listen_path = PathBuf::from(&cfg.listen);
        let listener = TcpListener::bind(&cfg.listen)
            .map_err(|e| ExperimentError::io(&listen_path, e))?;
        let addr = listener.local_addr().map_err(|e| ExperimentError::io(&listen_path, e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ExperimentError::io(&listen_path, e))?;
        // Port discovery for scripts that start with `--listen :0`.
        let addr_file = cfg.spool.join("serve.addr");
        std::fs::write(&addr_file, addr.to_string())
            .map_err(|e| ExperimentError::io(&addr_file, e))?;

        let drain = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            queue: queue.clone(),
            stats: stats.clone(),
            drain: drain.clone(),
            workers: cfg.workers.max(1),
        });
        let accept = std::thread::spawn(move || accept_loop(listener, shared));

        let pool = WorkerPool::start(
            queue.clone(),
            &jobs_dir,
            cfg.workers,
            WorkerConfig {
                job_threads: cfg.job_threads,
                checkpoint_every: cfg.checkpoint_every,
                job_timeout_s: cfg.job_timeout_s,
            },
            drain.clone(),
            stats.clone(),
        );

        Ok(Server {
            addr,
            spool: cfg.spool.clone(),
            queue,
            stats,
            drain,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves `--listen` port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The queue, for in-process submission and inspection (tests, the
    /// CLI's own status printing).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// The service counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Begins a graceful drain: stop accepting jobs, stop claiming,
    /// interrupt running jobs at their next checkpoint wave. Returns
    /// immediately; [`Server::join`] blocks until done.
    pub fn drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.queue.notify_all();
    }

    /// Blocks until the accept loop and the worker pool have exited
    /// (after [`Server::drain`], SIGINT or SIGTERM). Queue state is
    /// already durable — every mutation journals before acking — so
    /// there is nothing left to flush; the address file is removed to
    /// mark a clean exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.drain_and_join(&self.queue);
        }
        let _ = std::fs::remove_file(self.spool.join("serve.addr"));
        rem_obs::trace::emit("serve", "drained", &[]);
    }

    /// Runs until SIGINT/SIGTERM (or [`Server::drain`]) then completes
    /// the graceful shutdown — the body of `rem serve`.
    pub fn run_to_completion(self) {
        while !self.drain.load(Ordering::SeqCst) && !signal::requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.drain();
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.drain.load(Ordering::SeqCst) || signal::requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(req) = read_request(&mut stream) else { return };
    let resp = route(&req, shared);
    let _ = write_response(&mut stream, &resp);
}

fn route(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => metrics(shared),
        ("GET", "/jobs") => jobs(shared),
        ("GET", path) if path.starts_with("/jobs/") => job_by_id(shared, &path[6..]),
        ("POST", "/jobs") => submit(shared, &req.body),
        (_, "/healthz" | "/metrics" | "/jobs") => {
            Response::text(405, "method not allowed\n".into())
        }
        _ => Response::text(404, "not found\n".into()),
    }
}

fn healthz(shared: &Shared) -> Response {
    let c = shared.queue.counts();
    let draining = shared.drain.load(Ordering::SeqCst) || signal::requested();
    let health = Health {
        status: if draining { "draining" } else { "ok" },
        workers: shared.workers,
        queued: c.queued,
        running: c.running,
        done: c.done,
        quarantined: c.quarantined,
        worker_restarts: shared.stats.worker_restarts.load(Ordering::Relaxed),
        recovered_jobs: shared.stats.recovered_jobs.load(Ordering::Relaxed),
    };
    match serde_json::to_string(&health) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::text(500, format!("serialize: {e}\n")),
    }
}

fn metrics(shared: &Shared) -> Response {
    // Service-native series first (always present, even in builds
    // without the obs feature), then the process-wide registry dump
    // (empty unless `enabled`); the name prefixes are disjoint.
    let mut text =
        rem_obs::metrics::render_prometheus(&shared.stats.snapshot(&shared.queue.counts()));
    text.push_str(&rem_obs::metrics::render_prometheus(&rem_obs::metrics::snapshot()));
    Response { status: 200, content_type: "text/plain; version=0.0.4", body: text.into_bytes() }
}

fn summarize(j: crate::queue::Job) -> JobSummary {
    JobSummary {
        id: j.id,
        name: j.name,
        state: j.state,
        attempts: j.attempts,
        result_hash: j.result_hash,
        error: j.error,
    }
}

fn jobs(shared: &Shared) -> Response {
    let list: Vec<JobSummary> = shared.queue.jobs().into_iter().map(summarize).collect();
    match serde_json::to_string(&list) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::text(500, format!("serialize: {e}\n")),
    }
}

fn job_by_id(shared: &Shared, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::text(400, "job id must be an integer\n".into());
    };
    match shared.queue.job(id) {
        None => Response::text(404, format!("no job {id}\n")),
        Some(j) => match serde_json::to_string(&summarize(j)) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::text(500, format!("serialize: {e}\n")),
        },
    }
}

fn submit(shared: &Shared, body: &[u8]) -> Response {
    if shared.drain.load(Ordering::SeqCst) || signal::requested() {
        ServeStats::inc(&shared.stats.rejected);
        return Response::text(503, "draining: not accepting jobs\n".into());
    }
    let Ok(toml_src) = std::str::from_utf8(body) else {
        return Response::text(400, "body must be UTF-8 scenario TOML\n".into());
    };
    // Full validation up front: a job the workers cannot parse is the
    // submitter's error (400), not a poison job to burn retries on.
    let spec = match ScenarioSpec::from_toml(toml_src) {
        Ok(s) => s,
        Err(e) => return Response::text(400, format!("invalid scenario: {e}\n")),
    };
    match shared.queue.submit(&spec.name, toml_src) {
        Ok(id) => {
            ServeStats::inc(&shared.stats.submitted);
            rem_obs::trace::emit("serve", "job_submitted", &[("job", id.into())]);
            Response::json(201, format!("{{\"id\":{id},\"name\":{:?}}}", spec.name))
        }
        Err(e @ SubmitError::Full { .. }) => {
            ServeStats::inc(&shared.stats.rejected);
            Response::text(503, format!("{e}\n"))
        }
        Err(e) => Response::text(500, format!("{e}\n")),
    }
}
