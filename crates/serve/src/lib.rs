#![warn(missing_docs)]

//! # rem-serve
//!
//! A supervised, crash-tolerant resident campaign service for the REM
//! reproduction: submit REMSCENARIO1 scenario TOMLs over a minimal
//! std-only HTTP/1.1 control plane, and a supervised worker pool runs
//! each through the existing checkpointed campaign machinery.
//!
//! The headline guarantee is the same one the one-shot CLI makes for
//! `--checkpoint`/`--resume`, lifted to a whole service: **`kill -9`
//! at any instant loses no acknowledged job and no completed trial
//! wave**. Every queue mutation is journalled (`REMQUEUE1`, atomic
//! write + fsync + checksum — the checkpoint discipline of
//! [`rem_core::write_atomic_checksummed`]) before it is acknowledged;
//! every job checkpoints trial waves as it runs; a restarted service
//! requeues in-flight jobs and resumes them from their checkpoints,
//! producing byte-identical result hashes.
//!
//! ```no_run
//! use rem_serve::{ServeConfig, Server};
//!
//! let cfg = ServeConfig { listen: "127.0.0.1:0".into(), ..ServeConfig::default() };
//! let server = Server::start(&cfg).expect("bind and recover");
//! println!("serving on {}", server.addr());
//! server.run_to_completion(); // until SIGINT/SIGTERM, then drain
//! ```
//!
//! Control plane:
//!
//! | route | purpose |
//! |---|---|
//! | `POST /jobs` | submit a scenario TOML (400 invalid, 503 queue full/draining) |
//! | `GET /jobs`, `GET /jobs/<id>` | job status as JSON |
//! | `GET /healthz` | liveness + queue counts + recovery counters |
//! | `GET /metrics` | Prometheus text: service series + the rem-obs registry |

pub mod http;
pub mod queue;
pub mod server;
pub mod signal;
pub mod stats;
pub mod worker;

pub use queue::{Job, JobQueue, JobState, QueueConfig, QueueCounts, SubmitError, QUEUE_MAGIC};
pub use server::{ServeConfig, Server};
pub use stats::ServeStats;
pub use worker::WorkerConfig;
