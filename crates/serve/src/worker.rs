//! The supervised worker pool: claims jobs off the [`JobQueue`], runs
//! each through the checkpointed campaign machinery, and keeps itself
//! alive.
//!
//! Supervision has three layers, mirroring the trial-level machinery
//! one level up:
//!
//! * **per-trial** — `rem-exec` already catches panicking trials,
//!   retries them and quarantines persistent offenders;
//! * **per-job** — a whole-job `catch_unwind` plus the queue's
//!   bounded-attempt accounting: a job that dies (panic, corrupt
//!   checkpoint, quarantined trials) is retried from its checkpoint,
//!   then parked as poison;
//! * **per-worker** — a supervisor thread heartbeat-watches every
//!   worker, flags deadline overruns (detection only), and respawns
//!   crashed worker threads with exponential backoff.
//!
//! Every job runs with a cancel hook wired to the drain flag, so a
//! SIGTERM stops each job at its next checkpoint wave
//! ([`rem_core::ExperimentError::Interrupted`]), requeues it without
//! consuming the attempt, and leaves a checkpoint whose resume is
//! hash-identical to an uninterrupted run.

use crate::queue::JobQueue;
use crate::signal;
use crate::stats::ServeStats;
use rem_core::{fnv1a64, Comparison, ExperimentError, ScenarioSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job execution knobs, fixed at service start.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Worker threads *inside* each job's campaign (`0` = all cores).
    pub job_threads: usize,
    /// Trials per checkpoint wave (the drain granularity).
    pub checkpoint_every: usize,
    /// Heartbeat staleness (seconds) before the supervisor flags a
    /// deadline overrun. `0` disables the watchdog.
    pub job_timeout_s: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self { job_threads: 0, checkpoint_every: 4, job_timeout_s: 0 }
    }
}

/// Shared per-slot state the supervisor watches.
struct Slot {
    /// Milliseconds since pool start of the last heartbeat.
    heartbeat_ms: AtomicU64,
    /// Current job id + 1 (`0` = idle).
    job: AtomicU64,
    /// False once the worker thread has exited (cleanly or by panic).
    alive: AtomicBool,
    /// Whether the current job was already flagged as overrun.
    overrun_flagged: AtomicBool,
}

impl Slot {
    fn new() -> Self {
        Self {
            heartbeat_ms: AtomicU64::new(0),
            job: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            overrun_flagged: AtomicBool::new(false),
        }
    }
}

/// The pool: `workers` claim loops plus one supervisor thread.
pub struct WorkerPool {
    supervisor: Option<JoinHandle<()>>,
    drain: Arc<AtomicBool>,
}

/// Everything a worker loop needs, bundled for respawns.
struct WorkerCtx {
    queue: Arc<JobQueue>,
    stats: Arc<ServeStats>,
    drain: Arc<AtomicBool>,
    jobs_dir: PathBuf,
    cfg: WorkerConfig,
    epoch: Instant,
}

impl WorkerPool {
    /// Spawns `workers` workers plus the supervisor. Workers stop when
    /// `drain` goes true (or on SIGINT/SIGTERM via [`signal`]); the
    /// supervisor stops after every worker has exited.
    pub fn start(
        queue: Arc<JobQueue>,
        jobs_dir: &Path,
        workers: usize,
        cfg: WorkerConfig,
        drain: Arc<AtomicBool>,
        stats: Arc<ServeStats>,
    ) -> Self {
        let ctx = Arc::new(WorkerCtx {
            queue,
            stats,
            drain: drain.clone(),
            jobs_dir: jobs_dir.to_path_buf(),
            cfg,
            epoch: Instant::now(),
        });
        let n = workers.max(1);
        let slots: Vec<Arc<Slot>> = (0..n).map(|_| Arc::new(Slot::new())).collect();
        let mut handles: Vec<Option<JoinHandle<()>>> = slots
            .iter()
            .map(|slot| Some(spawn_worker(ctx.clone(), slot.clone())))
            .collect();

        let sup_ctx = ctx;
        let supervisor = std::thread::spawn(move || {
            // Per-slot consecutive-restart count drives the backoff;
            // a worker that stays alive resets it.
            let mut restarts = vec![0u32; n];
            let mut respawn_at: Vec<Option<Instant>> = vec![None; n];
            loop {
                let draining = sup_ctx.drain.load(Ordering::SeqCst) || signal::requested();
                let mut all_done = true;
                for (i, slot) in slots.iter().enumerate() {
                    if slot.alive.load(Ordering::SeqCst) {
                        all_done = false;
                        restarts[i] = 0;
                        watch_deadline(&sup_ctx, slot);
                        continue;
                    }
                    if draining {
                        continue; // exited because we asked it to
                    }
                    all_done = false;
                    // Crashed worker: respawn with exponential backoff
                    // (100 ms, 200 ms, ... capped at 5 s).
                    let due = *respawn_at[i].get_or_insert_with(|| {
                        let shift = restarts[i].min(6);
                        Instant::now() + Duration::from_millis((100u64 << shift).min(5_000))
                    });
                    if Instant::now() >= due {
                        respawn_at[i] = None;
                        restarts[i] = restarts[i].saturating_add(1);
                        ServeStats::inc(&sup_ctx.stats.worker_restarts);
                        rem_obs::trace::emit(
                            "serve",
                            "worker_restarted",
                            &[("slot", (i as u64).into())],
                        );
                        slot.alive.store(true, Ordering::SeqCst);
                        let h = spawn_worker(sup_ctx.clone(), slot.clone());
                        if let Some(old) = handles[i].replace(h) {
                            let _ = old.join(); // reap the dead thread
                        }
                    }
                }
                if draining && all_done {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            for h in handles.iter_mut().filter_map(Option::take) {
                let _ = h.join();
            }
        });

        Self { supervisor: Some(supervisor), drain }
    }

    /// Asks every worker to stop at its next wave boundary and blocks
    /// until the pool (workers + supervisor) has fully exited.
    pub fn drain_and_join(mut self, queue: &JobQueue) {
        self.drain.store(true, Ordering::SeqCst);
        queue.notify_all();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// Flags a job whose heartbeat is older than the deadline. Detection
/// only: the job keeps running (a trial can't be safely killed), but
/// the overrun is counted, traced, and visible on `/metrics`.
fn watch_deadline(ctx: &WorkerCtx, slot: &Slot) {
    if ctx.cfg.job_timeout_s == 0 || slot.job.load(Ordering::SeqCst) == 0 {
        return;
    }
    let now_ms = ctx.epoch.elapsed().as_millis() as u64;
    let beat = slot.heartbeat_ms.load(Ordering::SeqCst);
    if now_ms.saturating_sub(beat) > ctx.cfg.job_timeout_s * 1_000
        && !slot.overrun_flagged.swap(true, Ordering::SeqCst)
    {
        let job = slot.job.load(Ordering::SeqCst).saturating_sub(1);
        ServeStats::inc(&ctx.stats.deadline_overruns);
        rem_obs::trace::emit("serve", "job_deadline_overrun", &[("job", job.into())]);
    }
}

fn spawn_worker(ctx: Arc<WorkerCtx>, slot: Arc<Slot>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // `alive` must drop even if the loop panics.
        struct AliveGuard(Arc<Slot>);
        impl Drop for AliveGuard {
            fn drop(&mut self) {
                self.0.alive.store(false, Ordering::SeqCst);
            }
        }
        let _guard = AliveGuard(slot.clone());
        worker_loop(&ctx, &slot);
    })
}

fn worker_loop(ctx: &WorkerCtx, slot: &Slot) {
    loop {
        if ctx.drain.load(Ordering::SeqCst) || signal::requested() {
            return;
        }
        slot.heartbeat_ms
            .store(ctx.epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
        let job = match ctx.queue.claim(Duration::from_millis(200)) {
            Ok(Some(job)) => job,
            Ok(None) => continue,
            Err(e) => {
                // Journal I/O trouble: report and back off rather than
                // spin (the claim may have marked nothing).
                rem_obs::trace::emit("serve", "claim_error", &[("error", format!("{e}").into())]);
                std::thread::sleep(Duration::from_millis(500));
                continue;
            }
        };
        slot.job.store(job.id + 1, Ordering::SeqCst);
        slot.overrun_flagged.store(false, Ordering::SeqCst);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(ctx, slot, &job.scenario_toml, job.id)
        }));
        match outcome {
            Ok(JobOutcome::Done(hash)) => {
                let _ = std::fs::remove_file(job_ckpt(&ctx.jobs_dir, job.id));
                if let Err(e) = ctx.queue.complete(job.id, &hash) {
                    rem_obs::trace::emit(
                        "serve",
                        "complete_error",
                        &[("job", job.id.into()), ("error", format!("{e}").into())],
                    );
                } else {
                    ServeStats::inc(&ctx.stats.completed);
                }
            }
            Ok(JobOutcome::Interrupted) => {
                // Drain: the checkpoint stays; the attempt is returned.
                let _ = ctx.queue.requeue_interrupted(job.id);
                slot.job.store(0, Ordering::SeqCst);
                return;
            }
            Ok(JobOutcome::Failed(msg)) => record_failure(ctx, job.id, &msg),
            Err(panic) => {
                let msg = panic_message(&panic);
                record_failure(ctx, job.id, &format!("worker panic: {msg}"));
            }
        }
        slot.job.store(0, Ordering::SeqCst);
    }
}

/// Marks one failed attempt and bumps the right counters (the queue
/// decides retry vs quarantine).
fn record_failure(ctx: &WorkerCtx, id: u64, msg: &str) {
    ServeStats::inc(&ctx.stats.failed_attempts);
    let _ = ctx.queue.fail(id, msg);
    if ctx.queue.job(id).map(|j| j.state) == Some(crate::queue::JobState::Quarantined) {
        ServeStats::inc(&ctx.stats.quarantined);
        rem_obs::trace::emit("serve", "job_quarantined", &[("job", id.into())]);
    }
}

enum JobOutcome {
    Done(String),
    Interrupted,
    Failed(String),
}

/// The checkpoint a job resumes from across drains, crashes and
/// retries.
pub(crate) fn job_ckpt(jobs_dir: &Path, id: u64) -> PathBuf {
    jobs_dir.join(format!("job-{id}.ckpt"))
}

/// Runs one job: parse the scenario, run its paired comparison through
/// the checkpointed machinery (resuming any existing checkpoint), and
/// digest the result exactly like `rem compare --scenario f --hash`
/// does, so service results are directly comparable with one-shot
/// runs.
fn run_job(ctx: &WorkerCtx, slot: &Slot, scenario_toml: &str, id: u64) -> JobOutcome {
    let spec = match ScenarioSpec::from_toml(scenario_toml) {
        Ok(s) => s,
        Err(e) => return JobOutcome::Failed(format!("invalid scenario: {e}")),
    };
    let campaign = spec.campaign();
    let chaos = spec.chaos();
    let mut policy = spec.run_policy();
    if ctx.cfg.job_threads > 0 {
        policy.threads = ctx.cfg.job_threads;
    }
    policy.checkpoint_every = ctx.cfg.checkpoint_every;
    let drain = ctx.drain.clone();
    policy.cancel = Some(Arc::new(move || {
        drain.load(Ordering::SeqCst) || signal::requested()
    }));

    let ckpt = job_ckpt(&ctx.jobs_dir, id);
    let checked = Comparison::run_checkpointed_with(&campaign, &policy, Some(&ckpt), |i, a| {
        slot.heartbeat_ms
            .store(ctx.epoch.elapsed().as_millis() as u64, Ordering::SeqCst);
        if let Some(c) = &chaos {
            c.maybe_panic(i, a);
        }
    });
    match checked {
        Ok(c) if c.is_clean() => {
            let json = match serde_json::to_string(&c.comparison) {
                Ok(j) => j,
                Err(e) => return JobOutcome::Failed(format!("serialize result: {e}")),
            };
            JobOutcome::Done(format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes())))
        }
        // Quarantined trials: the checkpoint (with its holes) stays on
        // disk, so a retry re-runs exactly the faulty trials.
        Ok(c) => JobOutcome::Failed(
            ExperimentError::Quarantined { trials: c.quarantined }.to_string(),
        ),
        Err(ExperimentError::Interrupted { .. }) => JobOutcome::Interrupted,
        Err(e) => JobOutcome::Failed(e.to_string()),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
